"""The cost model and the EXPLAIN ANALYZE report."""

import math

import pytest

from repro.algebra.programs import parse_program
from repro.algebra.programs.registry import OPERATIONS
from repro.data import sales_info1, sales_info2
from repro.obs import (
    CostModel,
    analyze_records,
    analyze_table,
    explain_analyze_text,
    observation,
)
from repro.obs.cost import ESTIMATORS

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


class TestModelCoverage:
    def test_every_registered_operation_has_an_estimator(self):
        missing = sorted(set(OPERATIONS) - set(ESTIMATORS))
        assert missing == []

    def test_estimates_are_well_formed_for_every_operation(self):
        model = CostModel()
        for name in OPERATIONS:
            estimate = model.estimate(name, [(8, 3), (8, 3)])
            assert estimate is not None, name
            assert estimate.op == name
            assert estimate.tables_out >= 0
            assert estimate.rows_out >= 0
            assert estimate.cols_out >= 0
            assert estimate.cost_units > 0
            assert model.estimate_seconds(estimate) > 0

    def test_unknown_operation_estimates_to_none(self):
        assert CostModel().estimate("FROBNICATE", [(4, 4)]) is None


class TestEstimates:
    def test_merge_estimate_matches_figure5_exactly(self):
        # SalesInfo2's pivot is 4×5; MERGE unfolds it to the printed
        # 12×3 table — the shape heuristic nails this one.
        estimate = CostModel().estimate("MERGE", [(4, 5)])
        assert (estimate.rows_out, estimate.cols_out) == (12, 3)

    def test_union_follows_the_figure3_shape_laws(self):
        estimate = CostModel().estimate("UNION", [(3, 2), (5, 4)])
        assert estimate.rows_out == 8
        assert estimate.cols_out == 6

    def test_product_is_quadratic(self):
        small = CostModel().estimate("PRODUCT", [(10, 2), (10, 2)])
        large = CostModel().estimate("PRODUCT", [(100, 2), (100, 2)])
        assert large.rows_out == 100 * small.rows_out
        assert large.cost_units > 50 * small.cost_units

    def test_setnew_carries_the_power_set_blowup(self):
        estimate = CostModel().estimate("SETNEW", [(10, 2)])
        assert estimate.rows_out == 2**10

    def test_transpose_swaps_the_shape(self):
        estimate = CostModel().estimate("TRANSPOSE", [(7, 3)])
        assert (estimate.rows_out, estimate.cols_out) == (3, 7)

    def test_calibrated_model_measures_a_positive_constant(self):
        model = CostModel.calibrated()
        assert model.ns_per_unit >= 1.0
        assert math.isfinite(model.ns_per_unit)


class TestAnalyze:
    def observed_pivot(self):
        with observation() as obs:
            parse_program(PIVOT).run(sales_info1())
        return obs

    def test_records_cover_the_pipeline_in_order(self):
        records = analyze_records(self.observed_pivot())
        assert [r["op"] for r in records] == ["GROUP", "CLEANUP", "PURGE"]

    def test_records_pair_estimates_with_actuals(self):
        records = analyze_records(self.observed_pivot())
        group = records[0]
        assert group["act_rows"] == 9  # Figure 4's printed result
        assert group["est_rows"] > 0
        assert group["row_ratio"] == pytest.approx(
            group["act_rows"] / group["est_rows"]
        )
        assert group["act_ms"] > 0
        assert group["time_ratio"] > 0

    def test_merge_row_estimate_is_exact_on_figure5(self):
        with observation() as obs:
            parse_program("Sales <- MERGE on {Sold} by {Region} (Sales)").run(
                sales_info2()
            )
        (record,) = analyze_records(obs)
        assert record["est_rows"] == record["act_rows"] == 12
        assert record["row_ratio"] == pytest.approx(1.0)

    def test_analyze_table_is_deterministic_without_timings(self):
        table = analyze_table(self.observed_pivot(), timings=False)
        assert table is not None
        again = analyze_table(self.observed_pivot(), timings=False)
        assert table == again

    def test_analyze_text_report_shape(self):
        text = explain_analyze_text(self.observed_pivot())
        assert "EXPLAIN ANALYZE" in text
        assert "Row ratio" in text
        assert "Time ratio" in text
        assert "worst row mis-estimate" in text

    def test_empty_observation_yields_no_records(self):
        with observation() as obs:
            pass
        assert analyze_records(obs) == []
        assert analyze_table(obs) is None
        assert "no analyzable operation spans" in explain_analyze_text(obs)

    def test_metrics_only_observation_yields_no_records(self):
        with observation(trace=False) as obs:
            parse_program(PIVOT).run(sales_info1())
        assert analyze_records(obs) == []
