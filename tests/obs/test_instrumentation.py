"""End-to-end instrumentation: interpreter, compilers, bridges."""

from repro.algebra.programs import parse_program
from repro.core import database, make_table
from repro.data import figure4_top
from repro.obs import observation
from repro.obs.examples import EXAMPLES, run_example, trace_example


def span_names(obs):
    return [s.name for root in obs.spans for s in root.walk()]


class TestInterpreterSpans:
    def test_statement_spans_carry_combinations_and_shapes(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with observation() as obs:
            program.run(database(figure4_top()))
        (root,) = obs.spans
        (statement,) = root.children
        assert statement.attributes["combinations"] == 1
        (op,) = statement.children
        assert op.name == "GROUP"
        assert op.attributes["rows_in"] == 8
        assert op.attributes["rows_out"] == 9

    def test_wildcard_bindings_are_snapshotted(self):
        program = parse_program("Out <- DEDUP (*)")
        db = database(
            make_table("A", ["X"], [["1"], ["1"]]),
            make_table("B", ["X"], [["2"]]),
        )
        with observation() as obs:
            program.run(db)
        (root,) = obs.spans
        (statement,) = root.children
        bindings = statement.attributes["bindings"]
        assert bindings == ["Binding(*0=A)", "Binding(*0=B)"]
        assert statement.attributes["combinations"] == 2

    def test_aggregate_and_multi_result_ops_are_accounted(self):
        program = parse_program("Parts <- SPLIT on {Part} (Sales)")
        with observation() as obs:
            program.run(database(figure4_top()))
        record = obs.metrics.op("SPLIT")
        assert record.calls == 1
        assert record.tables_out > 1  # one table per part


class TestCompilerSpans:
    def test_schemalog_pipeline_produces_one_coherent_trace(self):
        obs, _result = trace_example("schemalog")
        names = span_names(obs)
        assert "compile.schemalog" in names
        assert "compile.fo_while" in names
        assert "program" in names
        assert "while" in names  # the compiled fixpoint loop

    def test_fo_while_example_shows_fixpoint_convergence(self):
        obs, result = trace_example("fo-while")
        whiles = [
            s for root in obs.spans for s in root.walk() if s.name == "while"
        ]
        (loop,) = whiles
        assert loop.attributes["iterations"] >= 2
        rows = loop.attributes["condition_rows"]
        assert rows == sorted(rows, reverse=True)  # the delta drains
        assert obs.metrics.counter("while_iterations") == loop.attributes["iterations"]

    def test_schemasql_compile_is_spanned(self):
        from repro.schemasql import compile_to_ta, parse_schemasql

        # note: uppercase-initial identifiers are schema variables in
        # SchemaSQL, so the alias and target must be lowercase names
        query = parse_schemasql(
            "SELECT T.part AS part INTO out FROM sales T"
        )
        with observation() as obs:
            compile_to_ta(query)
        assert "compile.schemasql" in span_names(obs)

    def test_good_compile_is_spanned(self):
        from repro.good import GoodProgram, NodeAddition, compile_to_ta
        from repro.good.patterns import Pattern, PatternNode

        pattern = Pattern([PatternNode.make("n", "Part")])
        program = GoodProgram((NodeAddition(pattern, "Tagged", ()),))
        with observation() as obs:
            compile_to_ta(program)
        names = span_names(obs)
        assert "compile.good" in names
        assert "compile.fo_while" in names


class TestNativeFWSpans:
    def test_fw_program_spans_statements(self):
        from repro.relational import (
            Assign,
            FWProgram,
            Rel,
            Relation,
            RelationalDatabase,
        )

        program = FWProgram([Assign("Out", Rel("R"))])
        db = RelationalDatabase([Relation("R", ["A"], [("x",), ("y",)])])
        with observation() as obs:
            program.run(db)
        (root,) = obs.spans
        assert root.name == "fw-program"
        (statement,) = root.children
        assert statement.name == "fw-statement"
        assert statement.attributes["rows_out"] == 2
        assert obs.metrics.counter("fw_statements") == 1


class TestBridgeSpans:
    def test_olap_example_traces_all_bridges(self):
        obs, _result = trace_example("olap")
        names = span_names(obs)
        for expected in (
            "bridge.relation_table_to_cube",
            "bridge.cube_to_grouped_table",
            "bridge.cube_to_relation_table",
            "bridge.cube_to_database",
            "bridge.cube_to_ndtable",
            "bridge.ndtable_to_cube",
        ):
            assert expected in names, expected


class TestExamplesRegistry:
    def test_every_example_runs_and_traces(self):
        for name in EXAMPLES:
            obs, _result = trace_example(name)
            assert obs.spans, name

    def test_unknown_example_raises(self):
        import pytest

        with pytest.raises(KeyError):
            run_example("frobnicate")
