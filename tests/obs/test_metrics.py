"""MetricsRegistry unit tests: aggregation, counters, thread safety."""

import threading

from repro.obs import MetricsRegistry


class TestOperationRecords:
    def test_record_op_aggregates(self):
        registry = MetricsRegistry()
        registry.record_op("GROUP", 0.25, tables_in=1, tables_out=1, rows_in=8, rows_out=9, cols_in=3, cols_out=9)
        registry.record_op("GROUP", 0.5, tables_in=1, tables_out=1, rows_in=2, rows_out=2, cols_in=3, cols_out=4)
        record = registry.op("GROUP")
        assert record.calls == 2
        assert record.errors == 0
        assert record.wall_time == 0.75
        assert (record.rows_in, record.rows_out) == (10, 11)
        assert (record.cols_in, record.cols_out) == (6, 13)
        assert (record.tables_in, record.tables_out) == (2, 2)

    def test_errors_count_separately(self):
        registry = MetricsRegistry()
        registry.record_op("SELECT", 0.1, rows_in=5, error=True)
        record = registry.op("SELECT")
        assert record.calls == 1
        assert record.errors == 1
        assert record.rows_out == 0

    def test_unknown_op_is_none(self):
        assert MetricsRegistry().op("NOPE") is None

    def test_counters(self):
        registry = MetricsRegistry()
        registry.count("statements")
        registry.count("statements", 4)
        assert registry.counter("statements") == 5
        assert registry.counter("never") == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.record_op("MERGE", 0.002, tables_in=1, tables_out=1, rows_in=3, rows_out=8)
        registry.count("while_iterations", 7)
        snap = registry.snapshot()
        assert set(snap) == {"operations", "counters"}
        assert snap["operations"]["MERGE"]["calls"] == 1
        assert snap["operations"]["MERGE"]["wall_time_ms"] == 2.0
        assert snap["counters"] == {"while_iterations": 7}

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.record_op("UNION", 0.001)
        json.dumps(registry.snapshot())

    def test_reset_and_is_empty(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        registry.record_op("UNION", 0.0)
        registry.count("x")
        assert not registry.is_empty()
        registry.reset()
        assert registry.is_empty()
        assert registry.snapshot() == {"operations": {}, "counters": {}}


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        registry = MetricsRegistry()

        def work() -> None:
            for _ in range(500):
                registry.record_op("OP", 0.0, rows_in=1)
                registry.count("ticks")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.op("OP").calls == 2000
        assert registry.op("OP").rows_in == 2000
        assert registry.counter("ticks") == 2000
