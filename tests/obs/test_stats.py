"""The ANALYZE pass: parity, persistence, and schema validation."""

import json

import pytest

from repro.core import database, make_table
from repro.core.errors import StatsError
from repro.data import sales_info1, sales_info2, sales_info4
from repro.obs.stats import (
    DEFAULT_TOP_K,
    STATS_SCHEMA_VERSION,
    DatabaseStats,
    analyze_database,
    analyze_table_stats,
    database_fingerprint,
    load_stats,
    validate_stats_data,
)
from repro.runtime.workloads import parse_workload


def _nulled_table():
    return make_table(
        "T",
        ["A", "B"],
        [["x", 1], ["x", None], ["y", 2], [None, 2], ["y", None]],
    )


class TestAnalyze:
    def test_row_and_distinct_counts(self):
        stats = analyze_database(sales_info1())
        (table,) = stats.tables
        assert table.name == "Sales"
        assert table.height == 8
        assert table.width == 3
        assert table.distinct_rows == 8
        assert stats.total_rows == 8

    def test_column_ndv_nulls_min_max(self):
        stats = analyze_table_stats(_nulled_table())
        by_attr = {str(c.attribute): c for c in stats.columns}
        a, b = by_attr["A"], by_attr["B"]
        assert (a.nulls, a.ndv) == (1, 2)
        assert (b.nulls, b.ndv) == (2, 2)
        assert (str(a.min), str(a.max)) == ("'x'", "'y'")
        assert a.null_fraction(stats.height) == pytest.approx(0.2)

    def test_top_k_sketch_is_complete_histogram_when_small(self):
        stats = analyze_table_stats(_nulled_table())
        column = next(c for c in stats.columns if str(c.attribute) == "A")
        # NDV 2 <= top-K: the sketch is the full histogram, exact counts.
        assert sorted((str(s), n) for s, n in column.top) == [("'x'", 2), ("'y'", 2)]
        assert column.frequency(column.top[0][0]) == column.top[0][1]

    def test_top_k_truncates(self):
        table = make_table("T", ["A"], [[f"v{i}"] for i in range(10)])
        stats = analyze_table_stats(table, top_k=3)
        (column,) = stats.columns
        assert len(column.top) == 3
        assert column.ndv == 10

    def test_bad_engine_raises(self):
        with pytest.raises(StatsError):
            analyze_database(sales_info1(), engine="gpu")


class TestParity:
    @pytest.mark.parametrize("db_factory", [sales_info1, sales_info2, sales_info4])
    def test_naive_and_vector_agree_on_figures(self, db_factory):
        db = db_factory()
        assert analyze_database(db, engine="naive") == analyze_database(
            db, engine="vector"
        )

    def test_naive_and_vector_agree_on_fixpoint_output(self):
        # The while-fixpoint's output database (transitive closure) has
        # duplicated names and intermediate tables — the stress case for
        # interned counting.
        _label, program, db = parse_workload("tc:6")
        result = program.run(db)
        assert analyze_database(result, engine="naive") == analyze_database(
            result, engine="vector"
        )

    def test_parity_with_nulls(self):
        db = database(_nulled_table())
        assert analyze_database(db, engine="naive") == analyze_database(
            db, engine="vector"
        )


class TestPersistence:
    def test_round_trip(self, tmp_path):
        stats = analyze_database(sales_info1())
        path = stats.save(tmp_path / "stats.json")
        loaded = load_stats(path)
        assert loaded == stats
        assert loaded.version == STATS_SCHEMA_VERSION
        assert loaded.top_k == DEFAULT_TOP_K

    def test_snapshot_is_schema_valid(self):
        stats = analyze_database(sales_info2())
        assert validate_stats_data(stats.to_json()) == []

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(StatsError):
            load_stats(tmp_path / "absent.json")

    def test_load_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StatsError):
            load_stats(path)

    def test_from_json_rejects_wrong_version(self):
        data = analyze_database(sales_info1()).to_json()
        data["version"] = 999
        with pytest.raises(StatsError):
            DatabaseStats.from_json(data)


class TestValidation:
    def test_not_an_object(self):
        assert validate_stats_data([1, 2]) != []

    def test_missing_tables(self):
        data = analyze_database(sales_info1()).to_json()
        del data["tables"]
        assert validate_stats_data(data) != []

    def test_malformed_column(self):
        data = analyze_database(sales_info1()).to_json()
        data["tables"][0]["columns"][0]["ndv"] = "three"
        assert validate_stats_data(data) != []


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert database_fingerprint(sales_info1()) == database_fingerprint(
            sales_info1()
        )

    def test_differs_across_content(self):
        assert database_fingerprint(sales_info1()) != database_fingerprint(
            sales_info2()
        )

    def test_lookup_by_name_and_shape(self):
        stats = analyze_database(sales_info1())
        assert stats.lookup("Sales", 8, 3) is stats.tables[0]
        assert stats.lookup("Sales", 9, 3) is None
        assert stats.lookup("Absent", 8, 3) is None
        assert [t.name for t in stats.for_name("Sales")] == ["Sales"]
