"""Benchmark trajectory persistence and regression comparison."""

from repro.obs.regress import (
    MAX_ENTRIES_PER_LABEL,
    Comparison,
    compare_trajectories,
    current_git_sha,
    latest_medians,
    load_trajectory,
    render_comparison,
    update_trajectory,
)


def write_trajectory(path, medians, sha="abc1234"):
    update_trajectory(path, medians, sha=sha, recorded="2026-08-06T00:00:00+00:00")


class TestTrajectoryFile:
    def test_update_creates_and_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        write_trajectory(path, {"fig4/group": 0.5, "fig5/merge": 1.25})
        data = load_trajectory(path)
        assert data["format"] == 1
        assert latest_medians(data) == {"fig4/group": 0.5, "fig5/merge": 1.25}

    def test_same_sha_replaces_instead_of_appending(self, tmp_path):
        path = tmp_path / "t.json"
        write_trajectory(path, {"fig4/group": 0.5}, sha="aaa")
        write_trajectory(path, {"fig4/group": 0.7}, sha="aaa")
        entries = load_trajectory(path)["benchmarks"]["fig4/group"]
        assert len(entries) == 1
        assert entries[0]["median_ms"] == 0.7

    def test_new_sha_appends_history(self, tmp_path):
        path = tmp_path / "t.json"
        write_trajectory(path, {"fig4/group": 0.5}, sha="aaa")
        write_trajectory(path, {"fig4/group": 0.6}, sha="bbb")
        entries = load_trajectory(path)["benchmarks"]["fig4/group"]
        assert [e["sha"] for e in entries] == ["aaa", "bbb"]
        assert latest_medians(load_trajectory(path)) == {"fig4/group": 0.6}

    def test_history_is_capped(self, tmp_path):
        path = tmp_path / "t.json"
        for index in range(MAX_ENTRIES_PER_LABEL + 10):
            write_trajectory(path, {"label": float(index)}, sha=f"sha{index}")
        entries = load_trajectory(path)["benchmarks"]["label"]
        assert len(entries) == MAX_ENTRIES_PER_LABEL
        assert entries[-1]["sha"] == f"sha{MAX_ENTRIES_PER_LABEL + 9}"

    def test_unreadable_file_loads_as_empty(self, tmp_path):
        missing = load_trajectory(tmp_path / "nope.json")
        assert missing == {"format": 1, "benchmarks": {}}
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert load_trajectory(garbage)["benchmarks"] == {}

    def test_current_git_sha_of_this_checkout(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        sha = current_git_sha(repo_root)
        assert sha == "unknown" or (len(sha) >= 6 and sha.isalnum())

    def test_git_probe_timeout_degrades_to_unknown(self, monkeypatch):
        import subprocess

        from repro.obs import regress

        def hang(*_args, **_kwargs):
            raise subprocess.TimeoutExpired(cmd="git rev-parse", timeout=10)

        monkeypatch.setattr(regress.subprocess, "run", hang)
        assert current_git_sha() == "unknown"

    def test_git_probe_timeout_is_typed_in_strict_mode(self, monkeypatch):
        import subprocess

        import pytest

        from repro.core.errors import ExternalToolError, ReproError
        from repro.obs import regress

        def hang(*_args, **_kwargs):
            raise subprocess.TimeoutExpired(cmd="git rev-parse", timeout=10)

        monkeypatch.setattr(regress.subprocess, "run", hang)
        with pytest.raises(ExternalToolError) as excinfo:
            current_git_sha(strict=True)
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert err.tool == "git rev-parse"
        assert err.timeout_s == regress.GIT_PROBE_TIMEOUT_S

    def test_git_probe_failure_is_typed_in_strict_mode(self, monkeypatch):
        import pytest

        from repro.core.errors import ExternalToolError
        from repro.obs import regress

        def missing(*_args, **_kwargs):
            raise OSError("no git binary")

        monkeypatch.setattr(regress.subprocess, "run", missing)
        assert current_git_sha() == "unknown"
        with pytest.raises(ExternalToolError):
            current_git_sha(strict=True)


class TestCompare:
    def make_pair(self, tmp_path, baseline, current):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        write_trajectory(base_path, baseline, sha="base")
        write_trajectory(cur_path, current, sha="cur")
        return base_path, cur_path

    def test_within_tolerance_passes(self, tmp_path):
        base, cur = self.make_pair(
            tmp_path, {"a": 1.0, "b": 2.0}, {"a": 1.2, "b": 2.5}
        )
        comparison = compare_trajectories(base, cur, tolerance=1.5)
        assert comparison.ok
        assert [row["label"] for row in comparison.rows] == ["a", "b"]

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"a": 1.0}, {"a": 2.0})
        comparison = compare_trajectories(base, cur, tolerance=1.5)
        assert not comparison.ok
        assert comparison.regressions[0]["label"] == "a"
        assert comparison.regressions[0]["ratio"] == 2.0

    def test_speedups_never_fail(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"a": 10.0}, {"a": 0.1})
        assert compare_trajectories(base, cur, tolerance=1.5).ok

    def test_one_sided_labels_are_reported_not_failed(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"old": 1.0}, {"new": 1.0})
        comparison = compare_trajectories(base, cur)
        assert comparison.ok
        assert comparison.only_baseline == ("old",)
        assert comparison.only_current == ("new",)

    def test_render_flags_regressions(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"a": 1.0, "b": 1.0}, {"a": 3.0, "b": 1.0})
        text = render_comparison(compare_trajectories(base, cur, tolerance=1.5))
        assert "REGRESSED" in text
        assert "1 regression(s) beyond 1.50x" in text

    def test_render_empty_comparison(self):
        text = render_comparison(
            Comparison(rows=(), tolerance=1.5, only_baseline=(), only_current=())
        )
        assert "no benchmark labels" in text


class TestDedupe:
    def entry(self, sha, ms):
        return {"sha": sha, "median_ms": ms, "recorded": "2026-08-06T00:00:00+00:00"}

    def test_collapses_same_sha_keeping_the_last_measurement(self):
        from repro.obs.regress import dedupe_trajectory

        trajectory = {
            "format": 1,
            "benchmarks": {
                "lbl": [self.entry("aaa", 1.0), self.entry("bbb", 2.0), self.entry("aaa", 3.0)]
            },
        }
        deduped = dedupe_trajectory(trajectory)
        entries = deduped["benchmarks"]["lbl"]
        # the later same-sha measurement wins, at the first-seen position
        assert [(e["sha"], e["median_ms"]) for e in entries] == [("aaa", 3.0), ("bbb", 2.0)]

    def test_preserves_order_and_non_dict_entries(self):
        from repro.obs.regress import dedupe_trajectory

        trajectory = {
            "format": 1,
            "benchmarks": {"lbl": ["junk", self.entry("aaa", 1.0), self.entry("aaa", 2.0)]},
        }
        entries = dedupe_trajectory(trajectory)["benchmarks"]["lbl"]
        assert entries == ["junk", self.entry("aaa", 2.0)]

    def test_update_self_heals_labels_the_run_did_not_touch(self, tmp_path):
        import json

        path = tmp_path / "t.json"
        dirty = {
            "format": 1,
            "benchmarks": {
                "stale/label": [self.entry("old", 1.0), self.entry("old", 1.5)]
            },
        }
        path.write_text(json.dumps(dirty))
        update_trajectory(path, {"fresh/label": 0.3}, sha="new", recorded="2026-08-06")
        healed = load_trajectory(path)["benchmarks"]
        assert len(healed["stale/label"]) == 1  # deduped without being written to
        assert healed["stale/label"][0]["median_ms"] == 1.5
        assert [e["sha"] for e in healed["fresh/label"]] == ["new"]

    def test_committed_trajectory_file_is_duplicate_free(self):
        import pathlib

        from repro.obs.regress import dedupe_trajectory

        path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_trajectory.json"
        trajectory = load_trajectory(path)
        import copy

        assert dedupe_trajectory(copy.deepcopy(trajectory)) == trajectory
