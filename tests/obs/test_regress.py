"""Benchmark trajectory persistence and regression comparison."""

from repro.obs.regress import (
    MAX_ENTRIES_PER_LABEL,
    Comparison,
    compare_trajectories,
    current_git_sha,
    latest_medians,
    load_trajectory,
    render_comparison,
    update_trajectory,
)


def write_trajectory(path, medians, sha="abc1234"):
    update_trajectory(path, medians, sha=sha, recorded="2026-08-06T00:00:00+00:00")


class TestTrajectoryFile:
    def test_update_creates_and_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        write_trajectory(path, {"fig4/group": 0.5, "fig5/merge": 1.25})
        data = load_trajectory(path)
        assert data["format"] == 1
        assert latest_medians(data) == {"fig4/group": 0.5, "fig5/merge": 1.25}

    def test_same_sha_replaces_instead_of_appending(self, tmp_path):
        path = tmp_path / "t.json"
        write_trajectory(path, {"fig4/group": 0.5}, sha="aaa")
        write_trajectory(path, {"fig4/group": 0.7}, sha="aaa")
        entries = load_trajectory(path)["benchmarks"]["fig4/group"]
        assert len(entries) == 1
        assert entries[0]["median_ms"] == 0.7

    def test_new_sha_appends_history(self, tmp_path):
        path = tmp_path / "t.json"
        write_trajectory(path, {"fig4/group": 0.5}, sha="aaa")
        write_trajectory(path, {"fig4/group": 0.6}, sha="bbb")
        entries = load_trajectory(path)["benchmarks"]["fig4/group"]
        assert [e["sha"] for e in entries] == ["aaa", "bbb"]
        assert latest_medians(load_trajectory(path)) == {"fig4/group": 0.6}

    def test_history_is_capped(self, tmp_path):
        path = tmp_path / "t.json"
        for index in range(MAX_ENTRIES_PER_LABEL + 10):
            write_trajectory(path, {"label": float(index)}, sha=f"sha{index}")
        entries = load_trajectory(path)["benchmarks"]["label"]
        assert len(entries) == MAX_ENTRIES_PER_LABEL
        assert entries[-1]["sha"] == f"sha{MAX_ENTRIES_PER_LABEL + 9}"

    def test_unreadable_file_loads_as_empty(self, tmp_path):
        missing = load_trajectory(tmp_path / "nope.json")
        assert missing == {"format": 1, "benchmarks": {}}
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert load_trajectory(garbage)["benchmarks"] == {}

    def test_current_git_sha_of_this_checkout(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        sha = current_git_sha(repo_root)
        assert sha == "unknown" or (len(sha) >= 6 and sha.isalnum())


class TestCompare:
    def make_pair(self, tmp_path, baseline, current):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        write_trajectory(base_path, baseline, sha="base")
        write_trajectory(cur_path, current, sha="cur")
        return base_path, cur_path

    def test_within_tolerance_passes(self, tmp_path):
        base, cur = self.make_pair(
            tmp_path, {"a": 1.0, "b": 2.0}, {"a": 1.2, "b": 2.5}
        )
        comparison = compare_trajectories(base, cur, tolerance=1.5)
        assert comparison.ok
        assert [row["label"] for row in comparison.rows] == ["a", "b"]

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"a": 1.0}, {"a": 2.0})
        comparison = compare_trajectories(base, cur, tolerance=1.5)
        assert not comparison.ok
        assert comparison.regressions[0]["label"] == "a"
        assert comparison.regressions[0]["ratio"] == 2.0

    def test_speedups_never_fail(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"a": 10.0}, {"a": 0.1})
        assert compare_trajectories(base, cur, tolerance=1.5).ok

    def test_one_sided_labels_are_reported_not_failed(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"old": 1.0}, {"new": 1.0})
        comparison = compare_trajectories(base, cur)
        assert comparison.ok
        assert comparison.only_baseline == ("old",)
        assert comparison.only_current == ("new",)

    def test_render_flags_regressions(self, tmp_path):
        base, cur = self.make_pair(tmp_path, {"a": 1.0, "b": 1.0}, {"a": 3.0, "b": 1.0})
        text = render_comparison(compare_trajectories(base, cur, tolerance=1.5))
        assert "REGRESSED" in text
        assert "1 regression(s) beyond 1.50x" in text

    def test_render_empty_comparison(self):
        text = render_comparison(
            Comparison(rows=(), tolerance=1.5, only_baseline=(), only_current=())
        )
        assert "no benchmark labels" in text
