"""The progress ticker: human lines rendered from the event feed."""

import io

import pytest

from repro.core.errors import BudgetExceededError
from repro.obs import ProgressTicker
from repro.obs.events import EventBus, event_stream
from repro.runtime import Limits, run_hardened
from repro.runtime.workloads import parse_workload


def _tick(ticker, bus, kind, **data):
    bus.attach(ticker)
    bus.publish(kind, **data)
    bus.detach(ticker)


class TestRendering:
    def test_while_iteration_line(self):
        buffer = io.StringIO()
        ticker = ProgressTicker(buffer)
        bus = EventBus()
        _tick(
            ticker, bus, "while_iteration",
            condition="Delta", iteration=3, frontier_rows=5,
            total_rows=40, total_cells=120, delta_rows=7, delta_cells=21,
        )
        line = buffer.getvalue()
        assert "iter 3" in line
        assert "frontier Delta = 5 row(s)" in line
        assert "total 40" in line and "+7 rows" in line
        assert ticker.lines == 1

    def test_budget_headroom_folds_into_the_tick_line(self):
        buffer = io.StringIO()
        ticker = ProgressTicker(buffer)
        bus = EventBus()
        bus.attach(ticker)
        bus.publish(
            "governor_budget",
            condition="Delta", iteration=2, elapsed_s=0.25, deadline_s=1.0,
            rows_emitted=30, max_total_rows=100, max_while_iterations=8,
        )
        assert buffer.getvalue() == ""  # budget alone prints nothing
        bus.publish(
            "while_iteration",
            condition="Delta", iteration=2, frontier_rows=4,
            total_rows=30, total_cells=90, delta_rows=4, delta_cells=12,
        )
        line = buffer.getvalue()
        assert "[budget: deadline 750ms left, rows 30/100, iter 2/8]" in line

    def test_kill_fault_and_checkpoint_lines(self):
        buffer = io.StringIO()
        ticker = ProgressTicker(buffer)
        bus = EventBus()
        bus.attach(ticker)
        bus.publish("governor_kill", kind="deadline", limit=0.5, used=0.7)
        bus.publish("fault_injected", op="GROUP", fault="delay", occurrence=2, seed=7)
        bus.publish("checkpoint_write", path="x.ckpt", statement_index=0, done=False)
        bus.publish("checkpoint_write", path="x.ckpt", statement_index=3, done=True)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "KILLED: deadline budget tripped (limit=0.5, used=0.7)"
        assert lines[1] == "fault: delay injected at GROUP (occurrence 2)"
        # Mid-run checkpoints are quiet; only the final one prints.
        assert lines[2] == "checkpoint: done, written to x.ckpt"
        assert len(lines) == 3

    def test_throttling_suppresses_tight_ticks_but_not_kills(self):
        buffer = io.StringIO()
        ticker = ProgressTicker(buffer, min_interval_s=60.0)
        bus = EventBus()
        bus.attach(ticker)
        for iteration in range(1, 6):
            bus.publish(
                "while_iteration",
                condition="D", iteration=iteration, frontier_rows=1,
                total_rows=1, total_cells=1, delta_rows=0, delta_cells=0,
            )
        bus.publish("governor_kill", kind="rows", limit=1, used=2)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2  # first tick + the kill; the rest throttled
        assert lines[-1].startswith("KILLED")

    def test_fine_grained_events_are_ignored(self):
        buffer = io.StringIO()
        ticker = ProgressTicker(buffer)
        bus = EventBus()
        bus.attach(ticker)
        bus.publish("span_start", op="GROUP")
        bus.publish("span_finish", op="GROUP", ok=True)
        bus.publish("engine_dispatch", op="SELECT", rows_in=4)
        assert buffer.getvalue() == "" and ticker.lines == 0


class TestEndToEnd:
    def test_governed_fixpoint_renders_run_frame_and_kill(self):
        buffer = io.StringIO()
        _label, program, db = parse_workload("tc:6")
        with event_stream() as bus:
            bus.attach(ProgressTicker(buffer))
            with pytest.raises(BudgetExceededError):
                run_hardened(program, db, limits=Limits(max_total_rows=60))
        text = buffer.getvalue()
        assert text.startswith("run: ")
        assert "iter 1" in text
        assert "rows" in text and "/60]" in text  # headroom vs the cap
        assert "KILLED: total_rows" in text

    def test_clean_run_frames_start_and_finish(self):
        buffer = io.StringIO()
        _label, program, db = parse_workload("tc:4")
        with event_stream() as bus:
            bus.attach(ProgressTicker(buffer))
            run_hardened(program, db)
        lines = buffer.getvalue().splitlines()
        assert lines[0].startswith("run: ")
        assert lines[-1].startswith("finished: ")
