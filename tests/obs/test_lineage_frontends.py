"""One golden witness set per compiled frontend.

Each frontend (relational algebra + while, SchemaLog, SchemaSQL, GOOD)
compiles to TA programs through the shared registry, so lineage comes
for free — these tests pin one concrete witness per frontend so a
compiler change that breaks provenance threading fails loudly, with the
expected input cells spelled out rather than recomputed.

Rows are located by value, not index, wherever the frontend does not
guarantee output order.
"""

import pytest

from repro.core import Name, Value
from repro.obs.examples import EXAMPLES
from repro.obs.lineage import lineage


def tagged_run(name):
    db, run = EXAMPLES[name].setup()
    with lineage() as lin:
        tagged = lin.tag_database(db)
        out = run(tagged)
    return lin, run, out


def find_row(table, col, value):
    """First data row whose ``col``-cell equals ``value``."""
    for i in table.data_row_indices():
        if table.entry(i, col) == value:
            return i
    raise AssertionError(f"no row with [{col}]={value!r} in {table.name}")


def source_labels(lin):
    return [lin.label(k) for k in range(len(list(lin.sources)))]


class TestRelationalWhileFrontend:
    """Transitive closure: multi-hop facts cite every edge on the chain."""

    def test_golden_witness(self):
        lin, run, out = tagged_run("fo-while")
        assert source_labels(lin) == ["E"]
        tc = out.tables_named(Name("TC"))[0]
        row = next(
            i
            for i in tc.data_row_indices()
            if tc.entry(i, 1) == Value(1) and tc.entry(i, 2) == Value(4)
        )
        witness = lin.witness(tc, row, 1)
        # TC(1,4) exists because of edges (1,2), (2,3), (3,4) — the source
        # rows 1..3 of E — accumulated across three while iterations.
        assert witness.rows == ((0, (1, 2, 3)),)
        origins = {lin.describe_ref(ref) for ref in witness.origins}
        assert "E[1,1]=1" in origins
        assert lin.replay_check(run, witness).regenerated


class TestSchemaSQLFrontend:
    """Schema-restructuring SQL over the two-region federation."""

    def test_golden_witness(self):
        lin, run, out = tagged_run("schemasql")
        assert source_labels(lin) == ["Facts"]
        sales = out.tables_named(Name("sales"))[0]
        assert [str(s) for s in sales.row(0)] == ["sales", "region", "part", "sold"]
        # the (west, screws, 50) tuple's sold-cell comes from the west
        # relation's screws facts — Facts rows 7 (part) and 8 (sold)
        row = find_row(sales, 2, Value("screws"))
        assert sales.entry(row, 1) == Name("west")
        witness = lin.witness(sales, row, 3)
        origins = {lin.describe_ref(ref) for ref in witness.origins}
        assert "Facts[8,4]=50" in origins
        assert witness.rows == ((0, (7, 8)),)
        assert lin.replay_check(run, witness).regenerated


class TestSchemaLogFrontend:
    """SchemaLog rule over the same federation, via the Derived relation."""

    def test_golden_witness(self):
        lin, run, out = tagged_run("schemalog")
        assert source_labels(lin) == ["Facts"]
        derived = out.tables_named(Name("Derived"))[0]
        # find the derived tuple (sales, _, region, east): the SchemaLog
        # rule reifies the east relation's *name* into a region value
        row = next(
            i
            for i in derived.data_row_indices()
            if derived.entry(i, 1) == Name("sales")
            and derived.entry(i, 3) == Name("region")
            and derived.entry(i, 4) == Value("east")
        )
        witness = lin.witness(derived, row, 4)
        # the value itself is minted by the rule head (no cell origins),
        # but its existence is witnessed by an east fact — Facts row 1
        assert witness.origins == ()
        assert witness.rows == ((0, (1,)),)
        assert lin.replay_check(run, witness).regenerated


class TestGoodFrontend:
    """GOOD edge-addition: grandparent edges cite the two parent hops."""

    def test_golden_witness(self):
        lin, run, out = tagged_run("good")
        assert sorted(source_labels(lin)) == ["Edges", "Nodes"]
        edges = out.tables_named(Name("Edges"))[0]
        row = next(
            i
            for i in edges.data_row_indices()
            if edges.entry(i, 2) == Name("gp")
        )
        witness = lin.witness(edges, row, 1)
        rows = dict(witness.rows)
        ordinal = {lin.label(k): k for k in range(len(list(lin.sources)))}
        # ann -gp-> cal exists because of both parent edges
        assert rows[ordinal["Edges"]] == (1, 2)
        assert lin.replay_check(run, witness).regenerated


class TestOlapBridge:
    def test_olap_is_not_lineage_capable(self):
        # the OLAP bridge renders a report rather than returning a
        # TabularDatabase, so it deliberately has no lineage setup
        assert EXAMPLES["olap"].setup is None


@pytest.mark.parametrize(
    "name", ["fo-while", "schemasql", "schemalog", "good"]
)
def test_frontend_results_unchanged_by_tagging(name):
    db, run = EXAMPLES[name].setup()
    plain = run(db)
    db2, run2 = EXAMPLES[name].setup()
    with lineage() as lin:
        traced = run2(lin.tag_database(db2))
    assert traced == plain
