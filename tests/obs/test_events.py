"""The event bus: typed kinds, ring bounding, callbacks, chokepoint feeds."""

import io
import json

import pytest

from repro.algebra.programs import parse_program
from repro.core.errors import BudgetExceededError, FaultInjectedError
from repro.data import sales_info1
from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EVT,
    EventBus,
    JsonlEventWriter,
    emit,
    event_stream,
)
from repro.runtime import FaultPlan, FaultRule, Limits, governed
from repro.runtime.workloads import parse_workload

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


class TestEventBus:
    def test_publish_assigns_monotonic_seq_and_schema_version(self):
        bus = EventBus()
        ring = bus.ring()
        first = bus.publish("span_start", op="GROUP")
        second = bus.publish("span_finish", op="GROUP", ok=True)
        assert (first.seq, second.seq) == (1, 2)
        wire = second.to_json()
        assert wire["v"] == EVENT_SCHEMA_VERSION
        assert wire["kind"] == "span_finish"
        assert wire["data"] == {"op": "GROUP", "ok": True}
        assert [e.seq for e in ring.tail()] == [1, 2]

    def test_unknown_kind_is_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.publish("made_up_kind")

    def test_payload_may_carry_its_own_kind_field(self):
        # governor_kill events carry the *budget* kind in their payload;
        # the positional-only parameter keeps the two from colliding.
        bus = EventBus()
        event = bus.publish("governor_kill", kind="deadline", limit=0.5)
        assert event.data == {"kind": "deadline", "limit": 0.5}

    def test_ring_bounds_and_counts_drops(self):
        bus = EventBus()
        ring = bus.ring(capacity=3)
        for index in range(10):
            bus.publish("span_start", op=f"OP{index}")
        assert len(ring) == 3
        assert ring.received == 10
        assert ring.dropped == 7
        # The tail is the *most recent* events, seq gap shows the loss.
        assert [e.seq for e in ring.tail()] == [8, 9, 10]
        assert ring.tail(1)[0].data["op"] == "OP9"

    def test_ring_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus().ring(capacity=0)

    def test_drain_empties_the_ring(self):
        bus = EventBus()
        ring = bus.ring()
        bus.publish("span_start", op="A")
        bus.publish("span_start", op="B")
        drained = ring.drain()
        assert [e.data["op"] for e in drained] == ["A", "B"]
        assert len(ring) == 0 and ring.received == 2

    def test_callbacks_receive_events_and_detach(self):
        bus = EventBus()
        seen = []
        callback = bus.attach(seen.append)
        bus.publish("span_start", op="A")
        assert bus.detach(callback) is True
        bus.publish("span_start", op="B")
        assert [e.data["op"] for e in seen] == ["A"]
        assert bus.detach(callback) is False  # already gone

    def test_broken_callback_never_kills_the_publisher(self):
        bus = EventBus()

        def boom(_event):
            raise RuntimeError("subscriber bug")

        bus.attach(boom)
        event = bus.publish("span_start", op="A")
        assert event.seq == 1
        assert bus.callback_errors == 1

    def test_subscriber_count(self):
        bus = EventBus()
        ring = bus.ring()
        bus.attach(lambda e: None)
        assert bus.subscribers == 2
        bus.detach(ring)
        assert bus.subscribers == 1


class TestEventStreamScope:
    def test_disabled_by_default_and_emit_is_noop(self):
        assert EVT.active is False and EVT.bus is None
        emit("span_start", op="A")  # no active bus: silently dropped

    def test_scope_installs_and_restores(self):
        with event_stream() as bus:
            assert EVT.active is True and EVT.bus is bus
            inner = EventBus()
            with event_stream(inner):
                assert EVT.bus is inner
            assert EVT.bus is bus
        assert EVT.active is False and EVT.bus is None

    def test_jsonl_writer_streams_wire_form(self, tmp_path):
        target = tmp_path / "events.jsonl"
        writer = JsonlEventWriter(target)
        with event_stream() as bus:
            bus.attach(writer)
            emit("span_start", op="GROUP", rows_in=4)
            emit("span_finish", op="GROUP", ok=True)
        writer.close()
        lines = target.read_text().splitlines()
        assert writer.written == 2 and len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert [d["kind"] for d in decoded] == ["span_start", "span_finish"]
        assert all(d["v"] == EVENT_SCHEMA_VERSION for d in decoded)

    def test_jsonl_writer_accepts_streams(self):
        buffer = io.StringIO()
        writer = JsonlEventWriter(buffer)
        with event_stream() as bus:
            bus.attach(writer)
            emit("error", op="X", error="boom", error_type="RuntimeError")
        writer.close()  # does not close a caller-owned stream
        assert json.loads(buffer.getvalue())["data"]["error"] == "boom"


class TestChokepointFeeds:
    """Each instrumented engine layer publishes its typed events."""

    def _kinds(self, ring):
        return [event.kind for event in ring.tail()]

    def test_registry_publishes_span_events(self):
        with event_stream() as bus:
            ring = bus.ring(capacity=512)
            parse_program(PIVOT).run(sales_info1())
        kinds = self._kinds(ring)
        assert kinds.count("span_start") == kinds.count("span_finish") == 3
        finish = [e for e in ring.tail() if e.kind == "span_finish"]
        assert all(e.data["ok"] and "duration_ms" in e.data for e in finish)
        assert {e.data["op"] for e in finish} == {"GROUP", "CLEANUP", "PURGE"}

    def test_registry_publishes_error_events(self):
        from repro.core import UndefinedOperationError, database
        from repro.data import figure4_top

        program = parse_program("T <- GROUP by {Missing} on {Sold} (Sales)")
        with event_stream() as bus:
            ring = bus.ring()
            with pytest.raises(UndefinedOperationError):
                program.run(database(figure4_top()))
        errors = [e for e in ring.tail() if e.kind == "error"]
        assert len(errors) == 1
        assert errors[0].data["error_type"] == "UndefinedOperationError"
        failed = [e for e in ring.tail() if e.kind == "span_finish"]
        assert failed and failed[-1].data["ok"] is False

    def test_while_loop_publishes_iteration_frontier(self):
        _label, program, db = parse_workload("tc:5")
        with event_stream() as bus:
            ring = bus.ring(capacity=4096)
            program.run(db)
        ticks = [e for e in ring.tail() if e.kind == "while_iteration"]
        assert len(ticks) >= 3
        assert [t.data["iteration"] for t in ticks] == list(
            range(1, len(ticks) + 1)
        )
        for tick in ticks:
            assert tick.data["condition"] == "Delta"
            assert tick.data["frontier_rows"] >= 0
            assert tick.data["total_rows"] >= 0
            assert "delta_rows" in tick.data and "delta_cells" in tick.data
        # The frontier shrinks to empty as the closure converges.
        assert ticks[-1].data["frontier_rows"] <= ticks[0].data["frontier_rows"]

    def test_governor_kill_and_budget_events(self):
        _label, program, db = parse_workload("tc:6")
        with event_stream() as bus:
            ring = bus.ring(capacity=4096)
            with pytest.raises(BudgetExceededError):
                with governed(Limits(max_total_rows=50)):
                    program.run(db)
        kinds = self._kinds(ring)
        assert "governor_budget" in kinds
        kills = [e for e in ring.tail() if e.kind == "governor_kill"]
        assert len(kills) == 1
        assert kills[0].data["kind"] == "total_rows"
        assert kills[0].data["limit"] == 50
        assert kills[0].data["used"] > 50

    def test_fault_injection_publishes_events(self):
        plan = FaultPlan([FaultRule(op="GROUP", kind="raise")], seed=7)
        with event_stream() as bus:
            ring = bus.ring()
            with pytest.raises(FaultInjectedError):
                with governed(faults=plan):
                    parse_program(PIVOT).run(sales_info1())
        faults = [e for e in ring.tail() if e.kind == "fault_injected"]
        assert len(faults) == 1
        assert faults[0].data == {
            "op": "GROUP", "fault": "raise", "occurrence": 1, "seed": 7
        }

    def test_engine_dispatch_and_fallback_events(self):
        from repro.engine.runtime import engine_scope

        with event_stream() as bus:
            ring = bus.ring(capacity=4096)
            with engine_scope():
                parse_program(PIVOT).run(sales_info1())
        dispatches = [e for e in ring.tail() if e.kind == "engine_dispatch"]
        fallbacks = [e for e in ring.tail() if e.kind == "engine_fallback"]
        assert {e.data["op"] for e in dispatches} >= {"CLEANUP", "PURGE"}
        assert {e.data["op"] for e in fallbacks} == {"GROUP"}
        assert all(e.data["reason"] == "no_kernel" for e in fallbacks)

    def test_checkpoint_and_run_framing_events(self, tmp_path):
        from repro.runtime import run_hardened

        _label, program, db = parse_workload("tc:4")
        path = tmp_path / "run.ckpt"
        with event_stream() as bus:
            ring = bus.ring(capacity=4096)
            run_hardened(program, db, checkpoint_path=path)
        kinds = self._kinds(ring)
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_finish"
        writes = [e for e in ring.tail() if e.kind == "checkpoint_write"]
        assert writes and all(e.data["path"] == str(path) for e in writes)
        assert writes[-1].data["done"] is True
        finish = ring.tail()[-1]
        assert finish.data["governor"]["ops_dispatched"] > 0

    def test_hardened_resume_publishes_restore_event(self, tmp_path):
        from repro.runtime import run_hardened

        _label, program, db = parse_workload("tc:5")
        path = tmp_path / "resume.ckpt"
        with pytest.raises(BudgetExceededError):
            run_hardened(
                program, db, limits=Limits(max_total_rows=40),
                checkpoint_path=path,
            )
        with event_stream() as bus:
            ring = bus.ring(capacity=4096)
            run_hardened(program, db, checkpoint_path=path, resume=True)
        restores = [e for e in ring.tail() if e.kind == "checkpoint_restore"]
        assert len(restores) == 1
        assert restores[0].data["path"] == str(path)
        # Hardened while stepping reports iteration ticks too.
        assert "while_iteration" in self._kinds(ring)

    def test_all_published_kinds_are_in_the_vocabulary(self):
        _label, program, db = parse_workload("tc:5")
        with event_stream() as bus:
            ring = bus.ring(capacity=8192)
            with pytest.raises(BudgetExceededError):
                with governed(Limits(max_total_rows=60)):
                    program.run(db)
        assert {e.kind for e in ring.tail()} <= EVENT_KINDS

    def test_results_identical_with_and_without_events(self):
        plain = parse_program(PIVOT).run(sales_info1())
        with event_stream():
            evented = parse_program(PIVOT).run(sales_info1())
        assert evented == plain
