"""EXPLAIN rendering tests, including the Figure 4 golden output."""

import json

import pytest

from repro.algebra.programs import parse_program
from repro.core import database
from repro.data import figure4_top
from repro.obs import format_span, observation, span_tree_text
from repro.obs.trace import Span, Tracer

#: The deterministic (timings-off) EXPLAIN of the Figure 4 group program.
FIGURE4_GOLDEN = """\
program  tables 1→1  statements=1
└─ statement: Sales <- GROUP by {Region} on {Sold} (Sales)  tables 1→1  combinations=1
   └─ GROUP  tables 1→1  rows 8→9  cols 3→9

Operation metrics
+-----------+-------+--------+---------+----------+---------+----------+
| OpMetrics | Calls | Errors | Rows in | Rows out | Cols in | Cols out |
+-----------+-------+--------+---------+----------+---------+----------+
| GROUP     | 1     | 0      | 8       | 9        | 3       | 9        |
+-----------+-------+--------+---------+----------+---------+----------+

Counters
+--------------+-------+
| Counters     | Value |
+--------------+-------+
| combinations | 1     |
| programs     | 1     |
| statements   | 1     |
+--------------+-------+"""


def run_figure4():
    program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
    with observation() as obs:
        program.run(database(figure4_top()))
    return obs


class TestGolden:
    def test_figure4_group_explain_text(self):
        assert run_figure4().explain(timings=False) == FIGURE4_GOLDEN

    def test_timings_add_ms_figures(self):
        text = run_figure4().explain()
        assert "ms" in text
        assert "Time ms" in text


class TestJsonExport:
    def test_round_trips_through_json(self):
        data = run_figure4().to_json()
        decoded = json.loads(json.dumps(data))
        assert set(decoded) == {"spans", "metrics"}
        (program_span,) = decoded["spans"]
        assert program_span["name"] == "program"
        (statement,) = program_span["children"]
        (op,) = statement["children"]
        assert op["name"] == "GROUP"
        assert op["attributes"]["rows_in"] == 8
        assert op["attributes"]["rows_out"] == 9
        assert op["duration_ms"] >= 0
        assert decoded["metrics"]["operations"]["GROUP"]["calls"] == 1
        assert decoded["metrics"]["counters"]["statements"] == 1

    def test_empty_observation(self):
        with observation() as obs:
            pass
        assert obs.to_json() == {
            "spans": [],
            "metrics": {"operations": {}, "counters": {}},
        }
        assert obs.explain() == "(nothing observed)"


class TestSpanFormatting:
    def test_format_span_orders_parts(self):
        span = Span("GROUP", {"rows_in": 5, "rows_out": 3, "note": "x"})
        assert format_span(span, timings=False) == "GROUP  rows 5→3  note=x"

    def test_error_is_marked(self):
        span = Span("SELECT")
        span.error = "ValueError('boom')"
        assert format_span(span, timings=False).endswith("!ValueError('boom')")

    def test_tree_uses_box_drawing(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        text = span_tree_text(root, timings=False)
        assert text.splitlines() == [
            "root",
            "├─ a",
            "│  └─ a1",
            "└─ b",
        ]


class TestWhileExplain:
    def test_fixpoint_shows_iterations_and_convergence(self):
        program = parse_program(
            """
            while Work do
                Work <- DIFFERENCE (Work, Work)
            end
            """
        )
        from repro.core import make_table

        work = make_table("Work", ["A"], [["x"], ["y"]])
        with observation() as obs:
            program.run(database(work))
        text = obs.explain(timings=False)
        assert "while: Work  iterations=1  condition_rows=[2]" in text
        assert "iteration  n=1" in text
        assert obs.metrics.counter("while_iterations") == 1
        assert obs.metrics.counter("while_loops") == 1
