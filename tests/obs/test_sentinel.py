"""The drift sentinel: sliding-window regressions over the ledger."""

from repro.obs.ledger import RunLedger, new_run_id
from repro.obs.sentinel import sentinel_report


def _record(ledger, *, fingerprint="a" * 16, workload="tc:6", elapsed=10.0,
            q_mean=None, ops=10, fallbacks=0):
    ledger.record(
        {
            "run_id": new_run_id(),
            "ts": 1.0,
            "workload": {"label": workload, "spec": workload, "replayable": False},
            "program": {"repr": None, "normalized": workload,
                        "fingerprint": fingerprint},
            "engine": "naive",
            "outcome": {"status": "ok", "attempts": 1},
            "elapsed_ms": elapsed,
            "result": None,
            "spans": {"OP": {"calls": ops, "errors": 0, "rows_out": 0, "ms": 1.0}},
            "estimates": {"count": 1 if q_mean is not None else 0,
                          "q_mean": q_mean, "q_max": q_mean, "by_op": {}},
            "fallbacks": {"no_kernel": fallbacks} if fallbacks else {},
            "events": {"published": 0, "received": 0, "dropped": 0},
        }
    )


class TestVerdicts:
    def test_stable_history_is_clean(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(8):
            _record(ledger, elapsed=10.0)
        report = sentinel_report(ledger, window=4, min_runs=3)
        assert report.ok
        assert report.judged == 1
        assert report.fingerprints[0]["status"] == "ok"
        assert "no drift detected" in report.render()

    def test_latency_blowup_is_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(4):
            _record(ledger, elapsed=10.0)
        for _ in range(4):
            _record(ledger, elapsed=50.0)
        report = sentinel_report(ledger, window=4, min_runs=3)
        assert not report.ok
        signals = {f.signal for f in report.findings}
        assert "latency_p50" in signals
        assert report.fingerprints[0]["status"] == "drift"
        assert "DRIFT" in report.render()

    def test_sub_floor_latency_noise_is_suppressed(self, tmp_path):
        """A 3x blowup of 0.1ms is scheduler noise, not a regression."""
        ledger = RunLedger(tmp_path / "led")
        for _ in range(4):
            _record(ledger, elapsed=0.1)
        for _ in range(4):
            _record(ledger, elapsed=0.3)
        report = sentinel_report(ledger, window=4, min_runs=3)
        assert report.ok

    def test_qerror_regression_is_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(4):
            _record(ledger, q_mean=1.2)
        for _ in range(4):
            _record(ledger, q_mean=4.0)
        report = sentinel_report(ledger, window=4, min_runs=3)
        assert {f.signal for f in report.findings} == {"q_error"}

    def test_fallback_jump_is_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(4):
            _record(ledger, fallbacks=0)
        for _ in range(4):
            _record(ledger, fallbacks=5)
        report = sentinel_report(ledger, window=4, min_runs=3)
        assert {f.signal for f in report.findings} == {"fallback_rate"}
        (finding,) = report.findings
        assert finding.recent == 0.5

    def test_insufficient_history_never_pages(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(3):
            _record(ledger, elapsed=10.0)
        _record(ledger, elapsed=500.0)  # wild outlier, too little baseline
        report = sentinel_report(ledger, window=4, min_runs=3)
        assert report.ok
        assert report.judged == 0
        assert report.fingerprints[0]["status"] == "insufficient"

    def test_fingerprints_are_judged_independently(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(4):
            _record(ledger, fingerprint="a" * 16, elapsed=10.0)
        for _ in range(4):
            _record(ledger, fingerprint="a" * 16, elapsed=50.0)
        for _ in range(8):
            _record(ledger, fingerprint="b" * 16, workload="tc:8", elapsed=10.0)
        report = sentinel_report(ledger, window=4, min_runs=3)
        statuses = {f["fingerprint"]: f["status"] for f in report.fingerprints}
        assert statuses == {"a" * 16: "drift", "b" * 16: "ok"}
        assert all(f.fingerprint == "a" * 16 for f in report.findings)

    def test_report_serializes(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for _ in range(4):
            _record(ledger, elapsed=10.0)
        for _ in range(4):
            _record(ledger, elapsed=50.0)
        data = sentinel_report(ledger, window=4, min_runs=3).to_json()
        assert data["ok"] is False
        assert data["findings"][0]["signal"].startswith("latency")
        assert data["findings"][0]["baseline"] < data["findings"][0]["recent"]
