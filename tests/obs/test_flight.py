"""The flight recorder: postmortem bundles from the event-tail ring."""

import json

import pytest

from repro.core.errors import BudgetExceededError, ReproError
from repro.obs import FlightRecorder, flight_recorder, observation
from repro.obs.events import EventBus, event_stream
from repro.obs.flight import BUNDLE_FORMAT
from repro.runtime import Limits, run_hardened
from repro.runtime.workloads import parse_workload


def _killed_run(directory, tmp_path, deadline_s=None, max_total_rows=60):
    """Run tc under a budget that trips; returns the recorder."""
    _label, program, db = parse_workload("tc:6")
    limits = Limits(deadline_s=deadline_s, max_total_rows=max_total_rows)
    checkpoint = tmp_path / "flight.ckpt"
    with pytest.raises(BudgetExceededError):
        with flight_recorder(directory) as recorder:
            recorder.note_program(repr(program))
            run_hardened(program, db, limits=limits, checkpoint_path=checkpoint)
    return recorder


class TestBundle:
    def test_contextual_death_dumps_a_bundle(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        bundle = recorder.last_bundle
        assert bundle is not None and bundle.is_dir()
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["format"] == BUNDLE_FORMAT
        assert manifest["error"]["type"] == "BudgetExceededError"
        assert manifest["error"]["context"]["kind"] == "total_rows"
        assert "MANIFEST.json" in manifest["files"]
        assert "events.jsonl" in manifest["files"]

    def test_event_tail_replays_the_final_iterations(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        lines = (recorder.last_bundle / "events.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events, "tail must not be empty"
        # Strictly increasing seq, ending with the governor kill.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        kinds = [e["kind"] for e in events]
        assert "while_iteration" in kinds
        assert kinds[-1] == "governor_kill" or "governor_kill" in kinds
        # Iteration ticks in the tail replay the fixpoint's progress.
        ticks = [e for e in events if e["kind"] == "while_iteration"]
        iterations = [t["data"]["iteration"] for t in ticks]
        assert iterations == sorted(iterations)

    def test_checkpoint_pointer_names_the_resume_file(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        manifest = json.loads(
            (recorder.last_bundle / "MANIFEST.json").read_text()
        )
        assert manifest["checkpoint"] == str(tmp_path / "flight.ckpt")
        assert recorder.checkpoint_pointer() == str(tmp_path / "flight.ckpt")

    def test_noted_program_lands_in_plan_txt(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        plan = (recorder.last_bundle / "plan.txt").read_text()
        assert "while" in plan  # the tc fixpoint program

    def test_metrics_and_explain_ride_along_under_observation(self, tmp_path):
        _label, program, db = parse_workload("tc:6")
        with observation(trace=True, metrics=True):
            with pytest.raises(BudgetExceededError):
                with flight_recorder(tmp_path / "flight") as recorder:
                    run_hardened(
                        program, db, limits=Limits(max_total_rows=60)
                    )
        bundle = recorder.last_bundle
        metrics = json.loads((bundle / "metrics.json").read_text())
        assert "operations" in metrics and "counters" in metrics
        assert (bundle / "explain.txt").read_text().strip()

    def test_noted_stats_land_in_stats_json(self, tmp_path):
        from repro.obs.stats import analyze_database, validate_stats_data

        _label, program, db = parse_workload("tc:6")
        stats = analyze_database(db)
        limits = Limits(max_total_rows=60)
        with pytest.raises(BudgetExceededError):
            with flight_recorder(tmp_path / "flight") as recorder:
                recorder.note_stats(stats)
                run_hardened(program, db, limits=limits)
        data = json.loads((recorder.last_bundle / "stats.json").read_text())
        assert validate_stats_data(data) == []
        manifest = json.loads((recorder.last_bundle / "MANIFEST.json").read_text())
        assert manifest["stats"]["fingerprint"] == stats.fingerprint
        assert manifest["stats"]["tables"] == 1
        assert "stats.json" in manifest["files"]

    def test_live_estimation_scope_contributes_stats(self, tmp_path):
        from repro.obs.estimator import estimation
        from repro.obs.stats import analyze_database

        _label, program, db = parse_workload("tc:6")
        stats = analyze_database(db)
        limits = Limits(max_total_rows=60)
        with pytest.raises(BudgetExceededError):
            # The estimation scope wraps the recorder so it is still live
            # when the dying run's bundle is written.
            with estimation(stats):
                with flight_recorder(tmp_path / "flight") as recorder:
                    run_hardened(program, db, limits=limits)
        # Nothing was noted, but the estimator's snapshot rode along.
        assert (recorder.last_bundle / "stats.json").exists()
        manifest = json.loads((recorder.last_bundle / "MANIFEST.json").read_text())
        assert manifest["stats"]["fingerprint"] == stats.fingerprint

    def test_bundle_without_stats_omits_the_file(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        assert not (recorder.last_bundle / "stats.json").exists()
        manifest = json.loads((recorder.last_bundle / "MANIFEST.json").read_text())
        assert "stats" not in manifest
        assert "stats.json" not in manifest["files"]

    def test_clean_exit_writes_nothing(self, tmp_path):
        directory = tmp_path / "flight"
        _label, program, db = parse_workload("tc:4")
        with flight_recorder(directory) as recorder:
            run_hardened(program, db)
        assert recorder.last_bundle is None
        assert not directory.exists()

    def test_non_contextual_errors_write_nothing(self, tmp_path):
        directory = tmp_path / "flight"
        with pytest.raises(RuntimeError):
            with flight_recorder(directory) as recorder:
                raise RuntimeError("not part of the taxonomy")
        assert recorder.last_bundle is None
        assert not directory.exists()

    def test_bundle_names_never_collide(self, tmp_path):
        first = _killed_run(tmp_path / "flight", tmp_path)
        second = _killed_run(tmp_path / "flight", tmp_path)
        assert first.last_bundle != second.last_bundle
        assert first.last_bundle.parent == second.last_bundle.parent

    def test_ring_stats_in_manifest(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        events = json.loads(
            (recorder.last_bundle / "MANIFEST.json").read_text()
        )["events"]
        assert events["retained"] >= 1
        assert events["received"] >= events["retained"]
        assert events["first_seq"] <= events["last_seq"]


class TestRecorderWiring:
    def test_dump_without_directory_raises(self):
        bus = EventBus()
        recorder = FlightRecorder(bus)
        bus.publish("span_start", op="A")
        with pytest.raises(ReproError, match="no dump directory"):
            recorder.dump()

    def test_manual_dump_without_error(self, tmp_path):
        bus = EventBus()
        recorder = FlightRecorder(bus, directory=tmp_path / "flight")
        bus.publish("span_start", op="A")
        bundle = recorder.dump()
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert "error" not in manifest
        assert manifest["events"]["retained"] == 1

    def test_recorder_joins_an_active_stream(self, tmp_path):
        # An outer event_stream (e.g. a progress ticker) and the
        # recorder share one bus: the ring sees the same events.
        with event_stream() as bus:
            with flight_recorder(tmp_path / "flight") as recorder:
                assert recorder.bus is bus
                bus.publish("span_start", op="A")
                assert len(recorder.ring) == 1
            # Exiting detaches the ring from the shared bus.
            bus.publish("span_start", op="B")
            assert len(recorder.ring) == 1

    def test_recorder_uses_the_given_bus(self, tmp_path):
        bus = EventBus()
        with flight_recorder(tmp_path / "flight", bus=bus) as recorder:
            assert recorder.bus is bus
            bus.publish("span_start", op="A")
        assert recorder.ring.received == 1

    def test_capacity_limits_the_tail(self, tmp_path):
        bus = EventBus()
        with flight_recorder(tmp_path / "f", capacity=4, bus=bus) as recorder:
            for index in range(20):
                bus.publish("span_start", op=f"OP{index}")
            assert len(recorder.ring) == 4
            assert recorder.ring.dropped == 16


class TestSupervisorStamp:
    def test_noted_history_lands_in_the_manifest(self, tmp_path):
        history = {
            "outcome": "failed",
            "attempts": [
                {"attempt": 1, "decision": "retry", "backoff_s": 0.01},
                {"attempt": 2, "decision": "fail"},
            ],
        }
        with event_stream():
            with flight_recorder(tmp_path / "flight") as recorder:
                recorder.note_supervisor(history)
                bundle = recorder.dump()
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["supervisor"] == history

    def test_manifest_without_history_omits_the_block(self, tmp_path):
        recorder = _killed_run(tmp_path / "flight", tmp_path)
        manifest = json.loads(
            (recorder.last_bundle / "MANIFEST.json").read_text()
        )
        assert "supervisor" not in manifest
