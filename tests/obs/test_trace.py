"""Tracer unit tests: nesting, exception safety, thread isolation."""

import threading

import pytest

from repro.obs import NULL_SPAN, OBS, Tracer, observation
from repro.obs.trace import Span


class TestSpanNesting:
    def test_with_blocks_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf"):
                    pass
        assert tracer.roots == (outer,)
        assert [c.name for c in outer.children] == ["inner"]
        assert [c.name for c in inner.children] == ["leaf"]

    def test_siblings_stay_ordered(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        assert [c.name for c in root.children] == ["a", "b", "c"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_durations_are_monotone(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.duration >= inner.duration >= 0.0

    def test_attributes_and_walk(self):
        tracer = Tracer()
        with tracer.span("root", kind="test") as root:
            root.set(extra=1)
            with tracer.span("child"):
                pass
        assert root.attributes == {"kind": "test", "extra": 1}
        assert [s.name for s in root.walk()] == ["root", "child"]

    def test_to_dict_is_jsonable(self):
        import json

        tracer = Tracer()
        with tracer.span("root", items=("a", "b"), obj=object()) as root:
            pass
        encoded = json.dumps(root.to_dict())
        assert '"root"' in encoded

    def test_current_tracks_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("open") as span:
            assert tracer.current() is span
        assert tracer.current() is None

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.roots == ()


class TestExceptionSafety:
    def test_error_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (root,) = tracer.roots
        assert root.error == "ValueError('nope')"
        assert root.end >= root.start

    def test_stack_recovers_after_nested_raise(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with tracer.span("failing"):
                    raise RuntimeError("x")
            with tracer.span("after"):
                pass
        assert [c.name for c in outer.children] == ["failing", "after"]
        assert outer.error is None
        assert tracer.current() is None

    def test_next_root_opens_cleanly_after_raise(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failed"):
                raise RuntimeError
        with tracer.span("clean"):
            pass
        assert [r.name for r in tracer.roots] == ["failed", "clean"]


class TestThreadIsolation:
    def test_threads_build_separate_trees(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label: str) -> None:
            with tracer.span(f"root-{label}"):
                barrier.wait(timeout=5)  # both threads hold a span open
                with tracer.span(f"child-{label}"):
                    pass

        threads = [threading.Thread(target=work, args=(l,)) for l in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = {r.name: r for r in tracer.roots}
        assert set(roots) == {"root-a", "root-b"}
        for label in ("a", "b"):
            root = roots[f"root-{label}"]
            assert [c.name for c in root.children] == [f"child-{label}"]
            assert all(c.thread_id == root.thread_id for c in root.children)

    def test_observed_interpreter_runs_in_threads(self):
        from repro.algebra.programs import parse_program
        from repro.core import database
        from repro.data import figure4_top

        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with observation() as obs:
            threads = [
                threading.Thread(target=program.run, args=(database(figure4_top()),))
                for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(obs.spans) == 3
        for root in obs.spans:
            assert root.name == "program"
            # each thread's tree is self-contained
            assert {s.thread_id for s in root.walk()} == {root.thread_id}
        assert obs.metrics.op("GROUP").calls == 3


class TestNullSpan:
    def test_null_span_is_inert_singleton(self):
        with NULL_SPAN as sp:
            assert sp is NULL_SPAN
            assert sp.set(anything=1) is NULL_SPAN

    def test_span_helper_returns_null_when_inactive(self):
        from repro.obs import span

        assert not OBS.active
        assert span("anything", x=1) is NULL_SPAN


class TestObservationScope:
    def test_scope_installs_and_restores(self):
        assert not OBS.active
        with observation() as obs:
            assert OBS.active
            assert OBS.tracer is obs.tracer
            assert OBS.metrics is obs.metrics
        assert not OBS.active
        assert OBS.tracer is None
        assert OBS.metrics is None

    def test_scopes_nest_and_shadow(self):
        with observation() as outer:
            with outer.tracer.span("outer-span"):
                pass
            with observation() as inner:
                with inner.tracer.span("inner-span"):
                    pass
            assert OBS.tracer is outer.tracer
        assert [r.name for r in outer.spans] == ["outer-span"]
        assert [r.name for r in inner.spans] == ["inner-span"]

    def test_trace_only_and_metrics_only(self):
        with observation(metrics=False) as obs:
            assert OBS.metrics is None
            assert obs.metrics is None
        with observation(trace=False) as obs:
            assert OBS.tracer is None
            assert obs.spans == ()

    def test_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with observation():
                raise RuntimeError
        assert not OBS.active
