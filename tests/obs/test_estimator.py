"""Cardinality estimation: scope discipline, formulas, EXPLAIN wiring."""

import pytest

from repro.algebra.programs import parse_program
from repro.core import attr_symbol, data_symbol, database, make_table
from repro.data import figure4_top, sales_info1, sales_info2
from repro.obs import observation
from repro.obs.cost import analyze_records
from repro.obs.estimator import (
    EST,
    QERROR_BUCKETS,
    CardinalityEstimator,
    EstimateAccuracy,
    estimation,
    qerror,
)
from repro.obs.stats import analyze_database
from repro.runtime.workloads import parse_workload


class TestScope:
    def test_estimation_is_off_by_default(self):
        assert EST.active is False
        assert EST.estimator is None

    def test_scope_installs_and_restores(self):
        with estimation(analyze_database(sales_info1())) as estimator:
            assert EST.active is True
            assert EST.estimator is estimator
        assert EST.active is False
        assert EST.estimator is None

    def test_scopes_nest(self):
        with estimation() as outer:
            with estimation() as inner:
                assert EST.estimator is inner
            assert EST.estimator is outer
        assert EST.active is False

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with estimation():
                raise RuntimeError("boom")
        assert EST.active is False

    def test_estimation_never_changes_results(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        plain = program.run(sales_info1())
        with estimation(analyze_database(sales_info1())):
            estimated = program.run(sales_info1())
        assert estimated == plain


class TestQError:
    def test_perfect_is_one(self):
        assert qerror(9, 9) == 1.0
        assert qerror(0, 0) == 1.0  # both clamped to one row

    def test_symmetric(self):
        assert qerror(10, 5) == qerror(5, 10) == 2.0

    def test_buckets_accumulate(self):
        accuracy = EstimateAccuracy()
        accuracy.record("OP", 10, 10, "stats")  # q=1.0 -> first bucket
        accuracy.record("OP", 30, 10, "shape")  # q=3.0 -> the 4.0 bucket
        record = accuracy.ops["OP"]
        assert record.count == 2
        assert record.hist[0] == 1
        assert record.hist[QERROR_BUCKETS.index(4.0)] == 1
        assert record.max == 3.0
        assert record.worst == (3.0, 30, 10)
        assert record.sources == {"stats": 1, "shape": 1}

    def test_snapshot_percentiles(self):
        accuracy = EstimateAccuracy()
        for act in (10, 10, 10, 40):
            accuracy.record("OP", 10, act, "stats")
        snap = accuracy.snapshot()["OP"]
        assert snap["p50"] == 1.0
        assert snap["max"] == 4.0
        assert snap["count"] == 4


class TestFormulas:
    """The measured restructuring formulas are exact on the paper's figures."""

    def _predict(self, op, db, arguments, table_index=0):
        stats = analyze_database(db)
        estimator = CardinalityEstimator(stats)
        tables = (db.tables[table_index],)
        return estimator.predict(op, tables, arguments)

    def test_group_adds_one_header_per_by_attr(self):
        # Figure 4: 8x3 -> 9x9.
        rows, source = self._predict(
            "GROUP",
            database(figure4_top()),
            {"by": {attr_symbol("Region")}, "on": {attr_symbol("Sold")}},
        )
        assert (rows, source) == (9, "stats")

    def test_merge_unfolds_non_null_cells(self):
        # Figure 5: 4x5 -> 12x3 (16 spread cells, 4 of them null).
        rows, source = self._predict(
            "MERGE",
            sales_info2(),
            {"on": {attr_symbol("Sold")}, "by": {attr_symbol("Region")}},
        )
        assert (rows, source) == (12, "stats")

    def test_split_adds_one_header_per_part(self):
        # 8 rows over 4 regions -> 4 parts of (2 data + 1 header) rows.
        rows, source = self._predict(
            "SPLIT", database(figure4_top()), {"on": {attr_symbol("Region")}}
        )
        assert (rows, source) == (12, "stats")

    def test_dedup_is_exact(self):
        table = make_table("T", ["A"], [["x"], ["x"], ["y"]])
        rows, source = self._predict("DEDUP", database(table), {})
        assert (rows, source) == (2, "stats")

    def test_selectconst_uses_frequency_sketch(self):
        rows, source = self._predict(
            "SELECTCONST",
            database(figure4_top()),
            {"attr": attr_symbol("Part"), "value": data_symbol("nuts")},
        )
        assert (rows, source) == (3, "stats")  # exact sketch count

    def test_selectconst_complete_histogram_miss_is_zero(self):
        rows, _source = self._predict(
            "SELECTCONST",
            database(figure4_top()),
            {"attr": attr_symbol("Part"), "value": data_symbol("widgets")},
        )
        assert rows == 0

    def test_unmatched_table_falls_back_to_shape(self):
        stats = analyze_database(sales_info1())
        estimator = CardinalityEstimator(stats)
        other = make_table("Elsewhere", ["A"], [["x"], ["y"]])
        _rows, source = estimator.predict("DEDUP", (other,), {})
        assert source == "shape"

    def test_no_stats_means_shape(self):
        estimator = CardinalityEstimator(None)
        _rows, source = estimator.predict("DEDUP", (figure4_top(),), {})
        assert source == "shape"


class TestExplainWiring:
    def test_est_rows_stamped_from_stats(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        db = sales_info1()
        with estimation(analyze_database(db)), observation() as obs:
            program.run(db)
        spans = [
            s
            for root in obs.spans
            for s in root.walk()
            if s.attributes.get("est_rows") is not None
        ]
        assert spans, "no span carried est_rows"
        assert spans[0].attributes["est_rows"] == 9
        assert spans[0].attributes["est_source"] == "stats"
        assert "est_rows=9 (stats)" in obs.explain()

    def test_analyze_records_prefer_stamped_estimates(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        db = sales_info1()
        with estimation(analyze_database(db)), observation() as obs:
            program.run(db)
        record = next(r for r in analyze_records(obs) if r["op"] == "GROUP")
        assert record["est_rows"] == 9
        assert record["act_rows"] == 9
        assert record["est_source"] == "stats"
        assert record["q_error"] == 1.0

    def test_analyze_records_without_estimation_use_model(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        with observation() as obs:
            program.run(sales_info1())
        record = next(r for r in analyze_records(obs) if r["op"] == "GROUP")
        assert record["est_source"] == "model"

    def test_while_prediction_stamped(self):
        _label, program, db = parse_workload("tc:4")
        with estimation(analyze_database(db)) as estimator, observation() as obs:
            program.run(db)
        stamped = [
            s
            for root in obs.spans
            for s in root.walk()
            if s.attributes.get("est_iterations") is not None
        ]
        assert stamped, "the while span carries est_iterations"
        assert "WHILE" in estimator.accuracy.ops

    def test_accuracy_scored_for_every_dispatch(self):
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        with estimation(analyze_database(sales_info1())) as estimator:
            program.run(sales_info1())
        assert estimator.accuracy.count == 3
        assert set(estimator.accuracy.ops) == {"GROUP", "CLEANUP", "PURGE"}


class TestEvents:
    def test_op_estimate_emitted_when_bus_live(self):
        from repro.obs.events import event_stream

        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        db = sales_info1()
        with event_stream() as bus:
            ring = bus.ring(64)
            with estimation(analyze_database(db)):
                program.run(db)
        estimates = [e for e in ring.tail() if e.kind == "op_estimate"]
        assert len(estimates) == 1
        data = estimates[0].data
        assert data["op"] == "GROUP"
        assert data["est_rows"] == 9
        assert data["act_rows"] == 9
        assert data["q_error"] == 1.0
        assert data["source"] == "stats"
