"""Tracer, MetricsRegistry and EventBus under thread pools: no lost records."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import EventBus, MetricsRegistry, Tracer, observation

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""

WORKERS = 8
RUNS = 24


class TestConcurrentObservation:
    def test_no_lost_spans_across_threads(self):
        with observation() as obs:
            with ThreadPoolExecutor(max_workers=WORKERS) as pool:
                futures = [
                    pool.submit(parse_program(PIVOT).run, sales_info1())
                    for _ in range(RUNS)
                ]
                results = [f.result() for f in futures]
        assert len(results) == RUNS
        # One root span tree per run, each with its full statement chain.
        assert len(obs.spans) == RUNS
        for root in obs.spans:
            assert root.name == "program"
            assert [s.name for s in root.children] == ["statement"] * 3

    def test_no_corrupted_counters_across_threads(self):
        with observation() as obs:
            with ThreadPoolExecutor(max_workers=WORKERS) as pool:
                list(
                    pool.map(
                        lambda _: parse_program(PIVOT).run(sales_info1()),
                        range(RUNS),
                    )
                )
        metrics = obs.metrics
        assert metrics.op("GROUP").calls == RUNS
        assert metrics.op("CLEANUP").calls == RUNS
        assert metrics.op("PURGE").calls == RUNS
        assert metrics.counter("statements") == 3 * RUNS
        assert metrics.counter("programs") == RUNS

    def test_span_trees_do_not_interleave(self):
        """Each thread's tree only contains spans from its own thread."""
        with observation() as obs:
            with ThreadPoolExecutor(max_workers=WORKERS) as pool:
                list(
                    pool.map(
                        lambda _: parse_program(PIVOT).run(sales_info1()),
                        range(RUNS),
                    )
                )
        for root in obs.spans:
            thread_ids = {span.thread_id for span in root.walk()}
            assert thread_ids == {root.thread_id}


class TestRegistryPrimitives:
    def test_counter_increments_are_exact_under_contention(self):
        registry = MetricsRegistry()
        increments_per_worker = 1_000

        def hammer(_):
            for _ in range(increments_per_worker):
                registry.count("hits")
                registry.record_op("OP", 0.000001, rows_in=1, rows_out=2)

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(hammer, range(WORKERS)))
        total = WORKERS * increments_per_worker
        assert registry.counter("hits") == total
        record = registry.op("OP")
        assert record.calls == total
        assert record.rows_in == total
        assert record.rows_out == 2 * total

    def test_tracer_roots_are_complete_under_contention(self):
        tracer = Tracer()
        spans_per_worker = 200

        def open_close(worker):
            for index in range(spans_per_worker):
                with tracer.span(f"w{worker}", n=index):
                    pass

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(open_close, range(WORKERS)))
        assert len(tracer.roots) == WORKERS * spans_per_worker
        names = {root.name for root in tracer.roots}
        assert names == {f"w{w}" for w in range(WORKERS)}


class TestEventBusPrimitives:
    def test_publish_is_exact_under_contention(self):
        bus = EventBus()
        ring = bus.ring(capacity=100_000)
        events_per_worker = 2_000

        def hammer(worker):
            for index in range(events_per_worker):
                bus.publish("span_start", op=f"w{worker}", n=index)

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(hammer, range(WORKERS)))
        total = WORKERS * events_per_worker
        assert bus.published == total
        assert ring.received == total and ring.dropped == 0
        # Sequence numbers: a gap-free permutation of 1..total.
        seqs = sorted(event.seq for event in ring.tail())
        assert seqs == list(range(1, total + 1))

    def test_bounded_ring_never_exceeds_capacity_under_contention(self):
        bus = EventBus()
        ring = bus.ring(capacity=64)
        events_per_worker = 1_000

        def hammer(_):
            for _ in range(events_per_worker):
                bus.publish("span_start", op="X")

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(hammer, range(WORKERS)))
        total = WORKERS * events_per_worker
        assert len(ring) == 64
        assert ring.received == total
        assert ring.dropped == total - 64
        # The retained tail is the *newest* contiguous window.
        assert [e.seq for e in ring.tail()] == list(range(total - 63, total + 1))

    def test_subscribers_attach_and_detach_during_publishing(self):
        """Satellite: hammer publish while rings/callbacks churn."""
        bus = EventBus()
        stop = threading.Event()
        publisher_errors: list[Exception] = []

        def publish_loop(worker):
            count = 0
            try:
                while not stop.is_set():
                    bus.publish("span_start", op=f"w{worker}", n=count)
                    count += 1
            except Exception as err:  # pragma: no cover - the failure itself
                publisher_errors.append(err)
            return count

        def churn_loop(_):
            cycles = 0
            seen: list[int] = []
            while not stop.is_set():
                ring = bus.ring(capacity=16)
                callback = bus.attach(lambda e: seen.append(e.seq))
                tail = ring.tail()
                if tail:
                    # Snapshot is internally ordered even mid-publish.
                    seqs = [e.seq for e in tail]
                    assert seqs == sorted(seqs)
                assert bus.detach(ring) is True
                assert bus.detach(callback) is True
                cycles += 1
            return cycles

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            publishers = [pool.submit(publish_loop, w) for w in range(4)]
            churners = [pool.submit(churn_loop, w) for w in range(4)]
            import time

            time.sleep(0.3)
            stop.set()
            published = sum(f.result() for f in publishers)
            cycles = sum(f.result() for f in churners)
        assert not publisher_errors
        assert published > 0 and cycles > 0
        assert bus.published == published
        # All churned subscribers were detached; nothing leaked.
        assert bus.subscribers == 0

    def test_metrics_and_bus_contended_together(self):
        """The two hubs share no locks; hammer both at once."""
        registry = MetricsRegistry()
        bus = EventBus()
        ring = bus.ring(capacity=50_000)
        rounds = 1_000

        def hammer(worker):
            for index in range(rounds):
                registry.record_op("OP", 0.000001, rows_in=1, rows_out=1)
                bus.publish("span_finish", op="OP", ok=True, n=index)
                registry.count("events")

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(hammer, range(WORKERS)))
        total = WORKERS * rounds
        assert registry.op("OP").calls == total
        assert registry.counter("events") == total
        assert bus.published == total
        assert ring.received == total
