"""Tracer and MetricsRegistry under thread pools: no lost records."""

from concurrent.futures import ThreadPoolExecutor

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import MetricsRegistry, Tracer, observation

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""

WORKERS = 8
RUNS = 24


class TestConcurrentObservation:
    def test_no_lost_spans_across_threads(self):
        with observation() as obs:
            with ThreadPoolExecutor(max_workers=WORKERS) as pool:
                futures = [
                    pool.submit(parse_program(PIVOT).run, sales_info1())
                    for _ in range(RUNS)
                ]
                results = [f.result() for f in futures]
        assert len(results) == RUNS
        # One root span tree per run, each with its full statement chain.
        assert len(obs.spans) == RUNS
        for root in obs.spans:
            assert root.name == "program"
            assert [s.name for s in root.children] == ["statement"] * 3

    def test_no_corrupted_counters_across_threads(self):
        with observation() as obs:
            with ThreadPoolExecutor(max_workers=WORKERS) as pool:
                list(
                    pool.map(
                        lambda _: parse_program(PIVOT).run(sales_info1()),
                        range(RUNS),
                    )
                )
        metrics = obs.metrics
        assert metrics.op("GROUP").calls == RUNS
        assert metrics.op("CLEANUP").calls == RUNS
        assert metrics.op("PURGE").calls == RUNS
        assert metrics.counter("statements") == 3 * RUNS
        assert metrics.counter("programs") == RUNS

    def test_span_trees_do_not_interleave(self):
        """Each thread's tree only contains spans from its own thread."""
        with observation() as obs:
            with ThreadPoolExecutor(max_workers=WORKERS) as pool:
                list(
                    pool.map(
                        lambda _: parse_program(PIVOT).run(sales_info1()),
                        range(RUNS),
                    )
                )
        for root in obs.spans:
            thread_ids = {span.thread_id for span in root.walk()}
            assert thread_ids == {root.thread_id}


class TestRegistryPrimitives:
    def test_counter_increments_are_exact_under_contention(self):
        registry = MetricsRegistry()
        increments_per_worker = 1_000

        def hammer(_):
            for _ in range(increments_per_worker):
                registry.count("hits")
                registry.record_op("OP", 0.000001, rows_in=1, rows_out=2)

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(hammer, range(WORKERS)))
        total = WORKERS * increments_per_worker
        assert registry.counter("hits") == total
        record = registry.op("OP")
        assert record.calls == total
        assert record.rows_in == total
        assert record.rows_out == 2 * total

    def test_tracer_roots_are_complete_under_contention(self):
        tracer = Tracer()
        spans_per_worker = 200

        def open_close(worker):
            for index in range(spans_per_worker):
                with tracer.span(f"w{worker}", n=index):
                    pass

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            list(pool.map(open_close, range(WORKERS)))
        assert len(tracer.roots) == WORKERS * spans_per_worker
        names = {root.name for root in tracer.roots}
        assert names == {f"w{w}" for w in range(WORKERS)}
