"""The profiler: hotspots, histograms, per-span peak memory."""

import tracemalloc

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import Span, Tracer, profile
from repro.obs.profile import HISTOGRAM_EDGES_MS, Profile, _self_seconds

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


def run_pivot():
    return parse_program(PIVOT).run(sales_info1())


class TestProfileScope:
    def test_profile_collects_spans_and_metrics(self):
        with profile() as prof:
            run_pivot()
        assert len(prof.observation.spans) == 1
        assert prof.observation.metrics.op("GROUP").calls == 1

    def test_profile_manages_tracemalloc_lifecycle(self):
        assert not tracemalloc.is_tracing()
        with profile() as prof:
            assert tracemalloc.is_tracing()
            run_pivot()
        assert not tracemalloc.is_tracing()
        del prof

    def test_profile_leaves_foreign_tracemalloc_running(self):
        tracemalloc.start()
        try:
            with profile():
                run_pivot()
            assert tracemalloc.is_tracing()  # we did not start it, we must not stop it
        finally:
            tracemalloc.stop()

    def test_spans_carry_peak_memory(self):
        with profile() as prof:
            run_pivot()
        spans = [s for root in prof.observation.spans for s in root.walk()]
        assert all("mem_peak_kb" in s.attributes for s in spans)
        assert any(s.attributes["mem_peak_kb"] > 0 for s in spans)

    def test_memory_off_leaves_spans_clean(self):
        with profile(memory=False) as prof:
            run_pivot()
        spans = [s for root in prof.observation.spans for s in root.walk()]
        assert not any("mem_peak_kb" in s.attributes for s in spans)


class TestAggregation:
    def synthetic_profile(self):
        """A hand-built span tree with known durations (ms: 10, 3, 2)."""
        tracer = Tracer()
        root = Span("program")
        root.start, root.end = 0.0, 0.010
        child_a = Span("GROUP")
        child_a.start, child_a.end = 0.001, 0.004
        child_b = Span("MERGE")
        child_b.start, child_b.end = 0.004, 0.006
        root.children = [child_a, child_b]
        tracer._roots.append(root)

        class Obs:
            spans = (root,)
            metrics = None

        return Profile(Obs())

    def test_self_time_subtracts_children(self):
        prof = self.synthetic_profile()
        root = prof.observation.spans[0]
        assert _self_seconds(root) == 0.010 - 0.003 - 0.002

    def test_hotspots_rank_by_self_time(self):
        spots = self.synthetic_profile().hotspots()
        assert [s.name for s in spots] == ["program", "GROUP", "MERGE"]
        assert spots[0].self_ms == 5.0
        assert spots[0].total_ms == 10.0

    def test_hotspots_k_limits_the_list(self):
        assert len(self.synthetic_profile().hotspots(k=1)) == 1

    def test_histogram_buckets_by_duration(self):
        histogram = self.synthetic_profile().histogram()
        assert sum(histogram["GROUP"]) == 1
        assert len(histogram["GROUP"]) == len(HISTOGRAM_EDGES_MS) + 1
        # 3ms lands in the ≤3.0 bucket
        assert histogram["GROUP"][HISTOGRAM_EDGES_MS.index(3.0)] == 1

    def test_total_ms_sums_roots(self):
        assert self.synthetic_profile().total_ms() == 10.0


class TestReport:
    def test_report_names_hotspots_and_histogram(self):
        with profile() as prof:
            run_pivot()
        text = prof.report()
        assert "by self time" in text
        assert "GROUP" in text
        assert "wall-time histogram" in text
        assert "total traced wall time" in text
        assert "peak_mem=" in text

    def test_empty_profile_reports_nothing(self):
        with profile() as prof:
            pass
        assert prof.report() == "(nothing profiled)"

    def test_to_json_round_trips(self):
        import json

        with profile() as prof:
            run_pivot()
        data = json.loads(json.dumps(prof.to_json()))
        assert data["total_ms"] > 0
        names = {spot["name"] for spot in data["hotspots"]}
        assert {"program", "statement", "GROUP"} <= names
        assert data["histogram_edges_ms"] == list(HISTOGRAM_EDGES_MS)
