"""The run ledger: durable append-only journal + bus-fed recorder."""

import json
import threading

import pytest

from repro.core.errors import BudgetExceededError, LedgerError
from repro.obs.events import event_stream
from repro.obs.ledger import (
    LEDGER,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunRecorder,
    database_digest,
    ledger_scope,
    new_run_id,
)
from repro.runtime import Limits, run_hardened
from repro.runtime.workloads import parse_workload


def _manifest(run_id=None, workload="tc:4", elapsed=1.0, outcome="ok"):
    """A minimal hand-built manifest (recorder-shaped, small)."""
    return {
        "run_id": run_id or new_run_id(),
        "ts": 1.0,
        "workload": {"label": workload, "spec": workload, "replayable": True},
        "program": {"repr": None, "normalized": workload, "fingerprint": "f" * 16},
        "engine": "naive",
        "outcome": {"status": outcome, "attempts": 1},
        "elapsed_ms": elapsed,
        "result": {"sha256": "0" * 64, "tables": 1, "rows": 1},
        "spans": {"DEDUP": {"calls": 2, "errors": 0, "rows_out": 4, "ms": 0.5}},
        "estimates": {"count": 0, "q_mean": None, "q_max": None, "by_op": {}},
        "fallbacks": {},
        "events": {"published": 2, "received": 2, "dropped": 0},
    }


class TestLedgerBasics:
    def test_record_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id = ledger.record(_manifest())
        assert len(ledger) == 1
        manifest = ledger.get(run_id)
        assert manifest["run_id"] == run_id
        assert manifest["v"] == LEDGER_SCHEMA_VERSION
        rows = ledger.runs()
        assert rows[0]["run_id"] == run_id
        assert rows[0]["outcome"] == "ok"
        assert rows[0]["ops"] == 2

    def test_reopen_recovers_every_record(self, tmp_path):
        directory = tmp_path / "led"
        ledger = RunLedger(directory)
        ids = [ledger.record(_manifest()) for _ in range(5)]
        reopened = RunLedger(directory)
        assert [r["run_id"] for r in reopened.runs()] == ids
        assert reopened.warnings == []

    def test_index_is_a_disposable_cache(self, tmp_path):
        directory = tmp_path / "led"
        ledger = RunLedger(directory)
        run_id = ledger.record(_manifest())
        (directory / "index.json").unlink()
        reopened = RunLedger(directory)
        assert reopened.get(run_id)["run_id"] == run_id
        assert (directory / "index.json").exists()

    def test_filters_and_limit(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.record(_manifest(workload="tc:4"))
        ledger.record(_manifest(workload="tc:6", outcome="killed"))
        last = ledger.record(_manifest(workload="tc:6"))
        assert len(ledger.runs(workload="tc:6")) == 2
        assert len(ledger.runs(outcome="killed")) == 1
        assert [r["run_id"] for r in ledger.runs(limit=1)] == [last]

    def test_missing_run_is_a_typed_error(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        with pytest.raises(LedgerError, match="no run"):
            ledger.get("r-never")

    def test_manifest_without_run_id_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        with pytest.raises(LedgerError, match="run_id"):
            ledger.record({"workload": {}})

    def test_aggregates_group_by_fingerprint(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for elapsed in (1.0, 2.0, 3.0):
            ledger.record(_manifest(elapsed=elapsed))
        ledger.record(_manifest(outcome="killed"))
        (aggregate,) = ledger.aggregates()
        assert aggregate["runs"] == 4
        assert aggregate["outcomes"] == {"ok": 3, "killed": 1}
        assert aggregate["latency_ms"]["max"] == 3.0


class TestRotation:
    def test_segments_rotate_at_the_record_threshold(self, tmp_path):
        directory = tmp_path / "led"
        ledger = RunLedger(directory, max_segment_records=3)
        for _ in range(8):
            ledger.record(_manifest())
        segments = sorted(p.name for p in directory.glob("segment-*.jsonl"))
        assert segments == [
            "segment-000001.jsonl",
            "segment-000002.jsonl",
            "segment-000003.jsonl",
        ]
        # Every record is still reachable across the rotation boundary.
        assert len(RunLedger(directory, max_segment_records=3)) == 8

    def test_byte_threshold_rotates_too(self, tmp_path):
        directory = tmp_path / "led"
        ledger = RunLedger(directory, max_segment_bytes=600)
        for _ in range(4):
            ledger.record(_manifest())
        assert len(list(directory.glob("segment-*.jsonl"))) > 1
        assert len(RunLedger(directory, max_segment_bytes=600)) == 4

    def test_concurrent_appends_during_rotation_lose_nothing(self, tmp_path):
        """Eight threads race across many rotation boundaries."""
        directory = tmp_path / "led"
        ledger = RunLedger(directory, max_segment_records=5)
        per_thread = 20
        errors = []

        def append(worker):
            try:
                for i in range(per_thread):
                    ledger.record(_manifest(run_id=f"r-w{worker}-{i:03d}"))
            except Exception as err:  # pragma: no cover - the assertion
                errors.append(err)

        threads = [threading.Thread(target=append, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        expected = {f"r-w{w}-{i:03d}" for w in range(8) for i in range(per_thread)}
        assert {r["run_id"] for r in ledger.runs()} == expected
        # A fresh open (pure recovery scan) sees the same set: no record
        # was lost to a torn rotation.
        reopened = RunLedger(directory, max_segment_records=5)
        assert {r["run_id"] for r in reopened.runs()} == expected
        assert all(
            json.loads(line)
            for p in directory.glob("segment-*.jsonl")
            for line in p.read_text().splitlines()
        )


class TestDurability:
    def test_torn_final_line_is_skipped_with_a_warning(self, tmp_path):
        directory = tmp_path / "led"
        ledger = RunLedger(directory)
        keep = ledger.record(_manifest())
        ledger.record(_manifest())
        (segment,) = directory.glob("segment-*.jsonl")
        text = segment.read_text()
        lines = text.splitlines(keepends=True)
        # Tear the final record mid-write: drop its trailing half.
        segment.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        with pytest.warns(UserWarning, match="torn final line"):
            recovered = RunLedger(directory)
        assert [r["run_id"] for r in recovered.runs()] == [keep]
        assert any("torn final line" in w for w in recovered.warnings)
        # The ledger stays appendable after recovery.
        appended = recovered.record(_manifest())
        assert [r["run_id"] for r in recovered.runs()] == [keep, appended]

    def test_header_schema_mismatch_is_rejected(self, tmp_path):
        directory = tmp_path / "led"
        RunLedger(directory).record(_manifest())
        header = directory / "LEDGER.json"
        header.write_text(json.dumps({"format": 999, "created": 0}))
        with pytest.raises(LedgerError, match="schema version 999"):
            RunLedger(directory)

    def test_record_schema_mismatch_is_rejected(self, tmp_path):
        directory = tmp_path / "led"
        ledger = RunLedger(directory)
        ledger.record(_manifest())
        (segment,) = directory.glob("segment-*.jsonl")
        foreign = dict(_manifest(run_id="r-foreign"))
        foreign["v"] = LEDGER_SCHEMA_VERSION + 1
        with segment.open("a") as handle:
            handle.write(json.dumps(foreign) + "\n")
        with pytest.raises(LedgerError, match="schema version"):
            RunLedger(directory)


class TestRecorder:
    def _record_run(self, ledger, spec="tc:4", limits=None, **finish_kwargs):
        _label, program, db = parse_workload(spec)
        error = None
        result = None
        with event_stream() as bus:
            recorder = RunRecorder(bus, ledger)
            try:
                result = run_hardened(program, db, limits=limits)
            except BudgetExceededError as err:
                error = err
            manifest = recorder.finish(
                workload=spec,
                program=program,
                result_db=result,
                error=error,
                replay_spec=spec,
                **finish_kwargs,
            )
        return manifest

    def test_manifest_folds_the_event_tail(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        manifest = self._record_run(ledger)
        assert manifest["outcome"]["status"] == "ok"
        assert manifest["workload"]["replayable"] is True
        assert manifest["while_iterations"] > 0
        assert manifest["spans"]  # per-op rollups
        assert manifest["op_sequence"]  # ordered dispatch trace
        assert manifest["result"]["sha256"]
        assert manifest["result"]["data"] is not None
        assert manifest["events"]["dropped"] == 0
        assert len(manifest["program"]["fingerprint"]) == 16
        # The ledger holds it, and the digest matches a recomputation.
        stored = ledger.get(manifest["run_id"])
        _label, program, db = parse_workload("tc:4")
        digest, _tables, _rows, _data = database_digest(program.run(db))
        assert stored["result"]["sha256"] == digest

    def test_killed_run_records_the_kill(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        manifest = self._record_run(
            ledger, spec="tc:6", limits=Limits(max_total_rows=40)
        )
        assert manifest["outcome"]["status"] == "killed"
        assert manifest["outcome"]["error_type"] == "BudgetExceededError"
        assert manifest["result"] is None
        assert manifest["workload"]["replayable"] is False
        assert ledger.runs()[-1]["outcome"] == "killed"

    def test_result_bytes_cap_keeps_digest_only(self, tmp_path):
        ledger = RunLedger(tmp_path / "led", result_bytes_cap=64)
        manifest = self._record_run(ledger)
        assert manifest["result"]["sha256"]
        assert manifest["result"]["data"] is None
        assert manifest["result"]["bytes"] > 64

    def test_recorder_ring_drops_are_visible(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        _label, program, db = parse_workload("tc:6")
        with event_stream() as bus:
            recorder = RunRecorder(bus, ledger, capacity=8)
            result = run_hardened(program, db)
            manifest = recorder.finish(
                workload="tc:6", program=program, result_db=result,
                replay_spec="tc:6",
            )
        assert manifest["events"]["dropped"] > 0
        assert ledger.runs()[-1]["dropped_events"] == manifest["events"]["dropped"]


class TestSingleton:
    def test_disabled_by_default(self):
        assert LEDGER.active is False
        assert LEDGER.ledger is None

    def test_scope_installs_and_restores(self, tmp_path):
        with ledger_scope(tmp_path / "led") as ledger:
            assert LEDGER.active is True
            assert LEDGER.ledger is ledger
            with ledger_scope(tmp_path / "led2") as inner:
                assert LEDGER.ledger is inner
            assert LEDGER.ledger is ledger
        assert LEDGER.active is False
        assert LEDGER.ledger is None

    def test_run_ids_are_unique_and_sortable(self):
        ids = [new_run_id() for _ in range(50)]
        assert len(set(ids)) == 50
        assert ids == sorted(ids)


class TestRecordKinds:
    """``run_start`` / ``orphan`` / ``breaker`` records beside the runs."""

    def _start(self, run_id, checkpoint=None):
        return {
            "run_id": run_id,
            "ts": 1.0,
            "workload": "tc:4",
            "spec": "tc:4",
            "engine": "naive",
            "fingerprint": "f" * 16,
            "checkpoint": checkpoint,
            "limits": None,
        }

    def test_start_without_outcome_is_an_open_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id = new_run_id()
        ledger.record_start(self._start(run_id))
        assert [r["run_id"] for r in ledger.open_runs()] == [run_id]
        assert len(ledger) == 0  # starts are not completed runs

    def test_closing_manifest_closes_the_open_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id = new_run_id()
        ledger.record_start(self._start(run_id))
        ledger.record(_manifest(run_id=run_id))
        assert ledger.open_runs() == []
        assert ledger.get(run_id)["run_id"] == run_id

    def test_orphan_stamp_closes_the_open_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id = new_run_id()
        ledger.record_start(self._start(run_id))
        ledger.record_orphan(
            {"run_id": run_id, "ts": 2.0, "workload": "tc:4", "reason": "no checkpoint"}
        )
        assert ledger.open_runs() == []
        assert [o["reason"] for o in ledger.orphans()] == ["no checkpoint"]

    def test_kinds_survive_a_reopen(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        open_id, closed_id = new_run_id(), new_run_id()
        ledger.record_start(self._start(open_id))
        ledger.record_start(self._start(closed_id))
        ledger.record(_manifest(run_id=closed_id))
        ledger.record_breaker(
            {"fingerprint": "f" * 16, "state": "open", "failures": 3,
             "opened_ts": 1.0, "updated_ts": 1.0}
        )
        reopened = RunLedger(tmp_path / "led")
        assert [r["run_id"] for r in reopened.open_runs()] == [open_id]
        assert reopened.breaker_states()["f" * 16]["state"] == "open"
        assert len(reopened) == 1
        assert reopened.warnings == []

    def test_latest_breaker_record_wins(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for state, failures in (("open", 3), ("half_open", 3), ("closed", 0)):
            ledger.record_breaker(
                {"fingerprint": "a" * 16, "state": state, "failures": failures,
                 "opened_ts": None, "updated_ts": 1.0}
            )
        assert ledger.breaker_states()["a" * 16]["state"] == "closed"
        assert RunLedger(tmp_path / "led").breaker_states()["a" * 16]["failures"] == 0

    def test_get_ignores_non_run_kinds(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id = new_run_id()
        ledger.record_start(self._start(run_id))
        with pytest.raises(LedgerError):
            ledger.get(run_id)  # a start is not a completed run

    def test_unknown_kind_is_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        with pytest.raises(LedgerError):
            ledger.record({"kind": "mystery", "run_id": new_run_id()})

    def test_breaker_record_requires_a_fingerprint(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        with pytest.raises(LedgerError):
            ledger.record_breaker({"state": "open"})

    def test_recorder_stamps_the_supervision_history(self, tmp_path):
        """RunRecorder.finish(supervisor=...) lands the block in the
        manifest, journaled and readable after a reopen."""
        ledger = RunLedger(tmp_path / "led")
        program, db = parse_workload("tc:4")[1:]
        with event_stream() as bus:
            recorder = RunRecorder(bus, ledger)
            result = run_hardened(program, db)
            history = {"outcome": "ok", "attempts": [{"attempt": 1}]}
            recorder.finish(
                workload="tc:4",
                engine="naive",
                result_db=result,
                replay_spec="tc:4",
                supervisor=history,
            )
        reopened = RunLedger(tmp_path / "led")
        assert reopened.get(recorder.run_id)["supervisor"] == history
