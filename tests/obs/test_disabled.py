"""Disabled-observability guarantees: strict no-op, identical results.

The acceptance bar: with no observation scope active, every instrumented
call site must fall through after one attribute check — no spans, no
metrics, no behavioural difference.
"""

import pytest

from repro.algebra.programs import parse_program
from repro.algebra.programs.registry import OPERATIONS
from repro.core import database, make_table
from repro.data import figure4_bottom, figure4_top, sales_info1
from repro.obs import NULL_SPAN, OBS, observation, span


class TestDisabledState:
    def test_observation_is_off_by_default(self):
        assert OBS.active is False
        assert OBS.tracer is None
        assert OBS.metrics is None

    def test_span_helper_is_free_when_disabled(self):
        # The no-op path hands back one shared singleton: nothing is
        # allocated, nothing is recorded.
        assert span("op") is NULL_SPAN
        assert span("op", rows=10) is NULL_SPAN

    def test_registry_invoke_records_nothing_when_disabled(self):
        spec = OPERATIONS["GROUP"]
        result = spec.invoke(
            (figure4_top(),), {"by": {"Region"}, "on": {"Sold"}}, None
        )
        assert result == (figure4_bottom(),)
        assert OBS.tracer is None and OBS.metrics is None

    def test_program_results_identical_with_and_without_observation(self):
        text = """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
        """
        plain = parse_program(text).run(sales_info1())
        with observation():
            observed = parse_program(text).run(sales_info1())
        assert observed == plain

    def test_errors_propagate_unchanged_when_observed(self):
        from repro.core import UndefinedOperationError

        program = parse_program("T <- GROUP by {Missing} on {Sold} (Sales)")
        with pytest.raises(UndefinedOperationError):
            program.run(database(figure4_top()))
        with observation() as obs:
            with pytest.raises(UndefinedOperationError):
                program.run(database(figure4_top()))
        # the failing spans still closed and surfaced the error
        assert any(s.error for root in obs.spans for s in root.walk())

    def test_scope_exit_returns_to_noop(self):
        with observation():
            assert OBS.active
        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["x"]])
        (out,) = spec.invoke((table,), {}, None)
        assert out.height == 1
        assert OBS.active is False


class TestZeroOverheadSmoke:
    def test_disabled_dispatch_stays_on_fast_path(self):
        """The disabled invoke is the raw invoke behind one flag check."""
        import repro.algebra.programs.registry as registry_module

        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["y"]])
        calls = []
        original = registry_module.OpSpec._invoke_observed
        try:
            registry_module.OpSpec._invoke_observed = (
                lambda self, *a: calls.append(self.name) or original(self, *a)
            )
            spec.invoke((table,), {}, None)
            assert calls == []  # observed path never entered while disabled
            with observation():
                spec.invoke((table,), {}, None)
            assert calls == ["DEDUP"]  # and is entered exactly when active
        finally:
            registry_module.OpSpec._invoke_observed = original

    def test_disabled_dispatch_skips_the_evented_path(self):
        """The event bus is gated identically: one EVT.active check."""
        import repro.algebra.programs.registry as registry_module
        from repro.obs.events import event_stream

        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["y"]])
        calls = []
        original = registry_module.OpSpec._invoke_evented
        try:
            registry_module.OpSpec._invoke_evented = (
                lambda self, *a: calls.append(self.name) or original(self, *a)
            )
            spec.invoke((table,), {}, None)
            assert calls == []  # no active bus: evented path never entered
            with event_stream():
                spec.invoke((table,), {}, None)
            assert calls == ["DEDUP"]
        finally:
            registry_module.OpSpec._invoke_evented = original

    def test_disabled_dispatch_skips_the_estimated_path(self):
        """Estimation is gated identically: one EST.active check."""
        import repro.algebra.programs.registry as registry_module
        from repro.obs.estimator import estimation

        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["y"]])
        calls = []
        original = registry_module.OpSpec._invoke_estimated
        try:
            registry_module.OpSpec._invoke_estimated = (
                lambda self, *a: calls.append(self.name) or original(self, *a)
            )
            spec.invoke((table,), {}, None)
            assert calls == []  # no scope: estimated path never entered
            with estimation():
                spec.invoke((table,), {}, None)
            assert calls == ["DEDUP"]
        finally:
            registry_module.OpSpec._invoke_estimated = original

    def test_disabled_run_allocates_nothing_in_obs_modules(self):
        """tracemalloc audit: the off switch means *zero* obs allocations.

        Runs the pivot pipeline with observation disabled and asserts
        that not a single object was allocated by any ``repro.obs``
        module — no Span, no OpMetrics, no attribute dicts.  (The
        engine itself allocates plenty; the filter scopes the check to
        the obs package's source files.)
        """
        import os
        import tracemalloc

        import repro.obs

        obs_dir = os.path.dirname(repro.obs.__file__)
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        db = sales_info1()
        program.run(db)  # warm caches outside the measurement
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            program.run(db)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_filter = tracemalloc.Filter(True, os.path.join(obs_dir, "*"))
        stats = after.filter_traces([obs_filter]).compare_to(
            before.filter_traces([obs_filter]), "filename"
        )
        leaked = [(s.traceback, s.size_diff) for s in stats if s.size_diff > 0]
        assert leaked == []

    def test_bridge_call_sites_skip_kwargs_when_disabled(self):
        """The bridge/compiler guards must not even build span kwargs."""
        from repro.data import figure4_top
        from repro.olap import relation_table_to_cube

        calls = []
        import repro.obs.runtime as runtime_module

        original = runtime_module.span
        try:
            runtime_module.span = lambda *a, **k: calls.append(a) or NULL_SPAN
            # olap.bridge binds `span` at import time under its own name,
            # so patch that binding too.
            import repro.olap.bridge as bridge_module

            bridge_original = bridge_module._span
            bridge_module._span = runtime_module.span
            try:
                relation_table_to_cube(figure4_top(), ["Part", "Region"], "Sold")
            finally:
                bridge_module._span = bridge_original
        finally:
            runtime_module.span = original
        assert calls == []  # the OBS.active guard short-circuited the call

    def test_disabled_overhead_is_bounded(self):
        """Timing smoke: the guarded path is within noise of the raw call.

        Deliberately loose (3x) so CI timing jitter cannot flake it; the
        real guarantee is the dispatch test above.
        """
        import timeit

        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["y"]])
        args: dict = {}
        raw = timeit.timeit(lambda: spec._invoke_raw((table,), args, None), number=2000)
        guarded = timeit.timeit(lambda: spec.invoke((table,), args, None), number=2000)
        assert guarded < raw * 3 + 0.05
