"""Exporters: Chrome-trace golden schema, JSON-lines structure."""

import json

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import (
    chrome_trace,
    jsonl_records,
    observation,
    write_chrome_trace,
    write_jsonl,
)

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""

#: The golden schema every exported Chrome-trace event must satisfy:
#: required keys with their types, and the legal phase values.  This is
#: the contract ``chrome://tracing``/Perfetto loading depends on.
EVENT_REQUIRED = {
    "ph": str,
    "pid": int,
    "tid": int,
    "name": str,
    "args": dict,
}
COMPLETE_EVENT_REQUIRED = {
    **EVENT_REQUIRED,
    "cat": str,
    "ts": (int, float),
    "dur": (int, float),
}
LEGAL_PHASES = {"X", "M"}


def observed_pivot():
    with observation() as obs:
        parse_program(PIVOT).run(sales_info1())
    return obs


class TestChromeTraceGoldenSchema:
    def test_top_level_shape(self):
        trace = chrome_trace(observed_pivot())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        assert isinstance(trace["traceEvents"], list)

    def test_every_event_satisfies_the_schema(self):
        trace = chrome_trace(observed_pivot())
        for event in trace["traceEvents"]:
            assert event["ph"] in LEGAL_PHASES
            required = (
                COMPLETE_EVENT_REQUIRED if event["ph"] == "X" else EVENT_REQUIRED
            )
            for key, types in required.items():
                assert key in event, f"{event['ph']} event missing {key}"
                assert isinstance(event[key], types), (key, event[key])

    def test_complete_events_cover_every_span(self):
        obs = observed_pivot()
        span_names = [s.name for root in obs.spans for s in root.walk()]
        events = [e for e in chrome_trace(obs)["traceEvents"] if e["ph"] == "X"]
        assert sorted(e["name"] for e in events) == sorted(span_names)

    def test_timestamps_start_at_zero_and_durations_are_positive(self):
        events = [
            e for e in chrome_trace(observed_pivot())["traceEvents"] if e["ph"] == "X"
        ]
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["dur"] > 0 for e in events)

    def test_metadata_event_names_the_process(self):
        trace = chrome_trace(observed_pivot(), process_name="bench")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"] == {"name": "bench"}

    def test_written_file_is_valid_json(self, tmp_path):
        path = write_chrome_trace(observed_pivot(), tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["traceEvents"]

    def test_timestamps_are_microseconds(self):
        """``ts``/``dur`` are µs: each X event matches its span's wall time."""
        obs = observed_pivot()
        durations = sorted(
            span.duration * 1e6 for root in obs.spans for span in root.walk()
        )
        events = sorted(
            e["dur"]
            for e in chrome_trace(obs)["traceEvents"]
            if e["ph"] == "X"
        )
        assert len(events) == len(durations)
        for exported, wall_us in zip(events, durations):
            # Exported value is the µs duration rounded (clamped at 0.1µs).
            assert exported == max(0.1, round(wall_us, 3))
        # Relative ts values span the run: earliest is zero, the rest
        # stay within the root span's µs extent.
        root_extent = max(durations)
        ts = [
            e["ts"] for e in chrome_trace(obs)["traceEvents"] if e["ph"] == "X"
        ]
        assert min(ts) == 0.0
        assert max(ts) <= root_extent

    def test_pid_and_tid_land_on_tracks(self):
        obs = observed_pivot()
        events = chrome_trace(obs)["traceEvents"]
        assert {e["pid"] for e in events} == {0}
        span_tids = {span.thread_id for root in obs.spans for span in root.walk()}
        x_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert x_tids == span_tids

    def test_golden_round_trip(self, tmp_path):
        """The file on disk deserializes back to the in-memory trace."""
        obs = observed_pivot()
        path = write_chrome_trace(obs, tmp_path / "trace.json")
        assert json.loads(path.read_text()) == chrome_trace(obs)


class TestJsonLines:
    def test_records_are_spans_then_metrics(self):
        records = list(jsonl_records(observed_pivot()))
        assert records[-1]["type"] == "metrics"
        spans = records[:-1]
        assert all(record["type"] == "span" for record in spans)
        assert [r["name"] for r in spans if r["depth"] == 0] == ["program"]

    def test_parent_ids_reconstruct_the_tree(self):
        records = [r for r in jsonl_records(observed_pivot()) if r["type"] == "span"]
        by_id = {r["span_id"]: r for r in records}
        for record in records:
            if record["parent_id"] is None:
                assert record["depth"] == 0
            else:
                assert by_id[record["parent_id"]]["depth"] == record["depth"] - 1

    def test_operation_spans_carry_shapes_for_the_cost_model(self):
        records = [r for r in jsonl_records(observed_pivot()) if r["type"] == "span"]
        group = next(r for r in records if r["name"] == "GROUP")
        assert group["attributes"]["shapes_in"] == [[8, 3]]
        assert group["attributes"]["rows_out"] == 9

    def test_written_file_is_one_json_object_per_line(self, tmp_path):
        path = write_jsonl(observed_pivot(), tmp_path / "log.jsonl")
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert len(parsed) >= 7  # program + 3 statements + 3 ops + metrics
        assert parsed[-1]["type"] == "metrics"
        assert parsed[-1]["operations"]["GROUP"]["calls"] == 1

    def test_error_spans_are_flagged(self):
        from repro.core import UndefinedOperationError, database
        from repro.data import figure4_top

        with observation() as obs:
            try:
                parse_program("T <- GROUP by {Missing} on {Sold} (Sales)").run(
                    database(figure4_top())
                )
            except UndefinedOperationError:
                pass
        records = list(jsonl_records(obs))
        assert any("error" in record for record in records if record["type"] == "span")
