"""Prometheus text export and its format linter."""

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import lint_prometheus_text, observation, prometheus_text
from repro.obs.metrics import HIST_BUCKETS_S, MetricsRegistry

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


def _observed_metrics():
    with observation(trace=False) as obs:
        parse_program(PIVOT).run(sales_info1())
    return obs.metrics


class TestExporter:
    def test_counter_families_carry_op_labels(self):
        text = prometheus_text(_observed_metrics())
        assert "# TYPE repro_op_calls_total counter" in text
        assert 'repro_op_calls_total{op="GROUP"} 1' in text
        assert 'repro_op_rows_in_total{op="GROUP"}' in text
        assert 'repro_op_errors_total{op="GROUP"} 0' in text

    def test_histogram_is_cumulative_with_inf_terminator(self):
        text = prometheus_text(_observed_metrics())
        assert "# TYPE repro_op_duration_seconds histogram" in text
        group = [
            line
            for line in text.splitlines()
            if line.startswith("repro_op_duration_seconds_bucket")
            and 'op="GROUP"' in line
        ]
        # One bucket per fixed bound, plus +Inf.
        assert len(group) == len(HIST_BUCKETS_S) + 1
        assert 'le="+Inf"' in group[-1]
        values = [float(line.rsplit(" ", 1)[1]) for line in group]
        assert values == sorted(values)
        assert values[-1] == 1  # one GROUP call observed
        assert 'repro_op_duration_seconds_count{op="GROUP"} 1' in text

    def test_free_counters_exported(self):
        text = prometheus_text(_observed_metrics())
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{counter="statements"} 3' in text

    def test_namespace_is_configurable(self):
        text = prometheus_text(MetricsRegistry(), namespace="acme")
        assert "# TYPE acme_op_calls_total counter" in text
        assert "repro_" not in text

    def test_label_values_are_escaped(self):
        metrics = MetricsRegistry()
        metrics.record_op('Odd"Op\\Name', seconds=0.001, rows_in=1, rows_out=1)
        text = prometheus_text(metrics)
        assert '{op="Odd\\"Op\\\\Name"}' in text
        assert lint_prometheus_text(text) == []

    def test_empty_registry_still_lints_clean(self):
        assert lint_prometheus_text(prometheus_text(MetricsRegistry())) == []

    def test_real_export_lints_clean(self):
        assert lint_prometheus_text(prometheus_text(_observed_metrics())) == []


class TestEstimatorFamilies:
    def _accuracy_and_stats(self):
        from repro.obs.estimator import EstimateAccuracy, estimation
        from repro.obs.stats import analyze_database

        accuracy = EstimateAccuracy()
        db = sales_info1()
        stats = analyze_database(db)
        with observation(trace=False) as obs:
            with estimation(stats, accuracy=accuracy):
                parse_program(PIVOT).run(db)
        return obs.metrics, accuracy, stats

    def test_qerror_histogram_is_cumulative_per_op(self):
        metrics, accuracy, stats = self._accuracy_and_stats()
        text = prometheus_text(metrics, accuracy=accuracy, stats=stats)
        assert "# TYPE repro_estimator_qerror histogram" in text
        assert 'repro_estimator_qerror_bucket{op="GROUP",le="+Inf"} 1' in text
        assert 'repro_estimator_qerror_count{op="GROUP"} 1' in text
        assert "# TYPE repro_estimator_worst_qerror gauge" in text
        assert 'repro_estimator_estimates_total{source="stats"}' in text

    def test_stats_gauges_exported(self):
        metrics, accuracy, stats = self._accuracy_and_stats()
        text = prometheus_text(metrics, accuracy=accuracy, stats=stats)
        assert "# TYPE repro_stats_age_seconds gauge" in text
        assert "repro_stats_tables 1" in text
        assert "repro_stats_rows 8" in text

    def test_estimator_families_lint_clean(self):
        metrics, accuracy, stats = self._accuracy_and_stats()
        text = prometheus_text(metrics, accuracy=accuracy, stats=stats)
        assert lint_prometheus_text(text) == []

    def test_plain_export_unchanged_without_optins(self):
        metrics, _accuracy, _stats = self._accuracy_and_stats()
        text = prometheus_text(metrics)
        assert "estimator" not in text
        assert "stats_age" not in text


class TestLinter:
    def test_bad_metric_name(self):
        payload = "# TYPE 9bad counter\n9bad 1\n"
        errors = lint_prometheus_text(payload)
        assert any("bad metric name" in e for e in errors)

    def test_sample_without_type_declaration(self):
        errors = lint_prometheus_text("repro_undeclared_total 5\n")
        assert any("no TYPE declaration" in e for e in errors)

    def test_unparseable_sample_value(self):
        payload = "# TYPE x counter\nx notanumber\n"
        errors = lint_prometheus_text(payload)
        assert any("bad sample value" in e for e in errors)

    def test_bad_label_pair(self):
        payload = '# TYPE x counter\nx{9bad="v"} 1\n'
        errors = lint_prometheus_text(payload)
        assert any("bad label pair" in e for e in errors)

    def test_histogram_missing_inf_bucket(self):
        payload = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 2\n'
            "h_sum 0.05\n"
            "h_count 2\n"
        )
        errors = lint_prometheus_text(payload)
        assert any("missing +Inf" in e for e in errors)

    def test_histogram_not_cumulative(self):
        payload = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="0.5"} 2\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        errors = lint_prometheus_text(payload)
        assert any("not cumulative" in e for e in errors)

    def test_histogram_inf_disagrees_with_count(self):
        payload = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_count 7\n"
        )
        errors = lint_prometheus_text(payload)
        assert any("!= _count" in e for e in errors)

    def test_clean_hand_written_payload(self):
        payload = (
            "# HELP x Things.\n"
            "# TYPE x counter\n"
            'x{label="a,b"} 1\n'
            "\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 0.3\n"
            "h_count 2\n"
        )
        assert lint_prometheus_text(payload) == []


class TestSupervisorFamilies:
    def _supervised(self):
        from repro.runtime import FaultPlan, FaultRule
        from repro.runtime.policy import BreakerPolicy, RetryPolicy
        from repro.runtime.supervisor import Supervisor
        from repro.runtime.workloads import transitive_closure_workload

        program, db = transitive_closure_workload(5)
        supervisor = Supervisor(
            RetryPolicy(max_attempts=2, base_backoff_s=0.001, jitter=0.0),
            breaker_policy=BreakerPolicy(failure_threshold=1, cooldown_s=3600.0),
            sleep=lambda s: None,
        )
        supervisor.submit(
            program, db, workload="tc:5",
            faults=FaultPlan([FaultRule(op="DIFFERENCE", kind="raise")]),
        )
        supervisor.submit(
            program, db, workload="tc:5",
            faults=FaultPlan(
                [FaultRule(op="*", kind="raise", occurrence=n) for n in (1, 2)]
            ),
        )
        return supervisor

    def test_retry_breaker_and_recovery_families(self):
        supervisor = self._supervised()
        text = prometheus_text(_observed_metrics(), supervisor=supervisor)
        assert "# TYPE repro_retry_attempts_total counter" in text
        # one retry from the one-shot fault run, one from the poison
        # run's first attempt (its second attempt exhausts the budget)
        assert 'repro_retry_attempts_total{decision="retry"} 2' in text
        assert "# TYPE repro_retry_backoff_seconds_total counter" in text
        assert "repro_retry_exhausted_total 1" in text
        assert "# TYPE repro_breaker_transitions_total counter" in text
        assert (
            'repro_breaker_transitions_total{from_state="closed",to_state="open"} 1'
            in text
        )
        assert "# TYPE repro_breaker_open gauge" in text
        fingerprint = supervisor.last_run.fingerprint
        assert f'repro_breaker_open{{fingerprint="{fingerprint}"}} 1' in text
        assert "# TYPE repro_recovery_runs_total counter" in text

    def test_supervisor_families_lint_clean(self):
        text = prometheus_text(_observed_metrics(), supervisor=self._supervised())
        assert lint_prometheus_text(text) == []

    def test_plain_export_has_no_supervisor_families(self):
        text = prometheus_text(_observed_metrics())
        assert "repro_retry_attempts_total" not in text
        assert "repro_breaker_open" not in text
