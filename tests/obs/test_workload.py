"""Workload fingerprinting and the stats-audit report."""

import json

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs.estimator import estimation
from repro.obs.events import event_stream
from repro.obs.stats import STATS_SCHEMA_VERSION, analyze_database
from repro.obs.workload import (
    WorkloadLog,
    fingerprint_program,
    normalize_program,
    stats_audit,
)


class TestFingerprint:
    def test_constants_normalize_away(self):
        # Different SELECTCONST constants, same workload shape.
        nuts = parse_program("T <- SELECTCONST attr Part value nuts (Sales)")
        bolts = parse_program("T <- SELECTCONST attr Part value bolts (Sales)")
        assert fingerprint_program(nuts) == fingerprint_program(bolts)
        assert "?" in normalize_program(nuts)

    def test_structure_still_distinguishes(self):
        a = parse_program("T <- SELECTCONST attr Part value nuts (Sales)")
        b = parse_program("T <- SELECTCONST attr Region value nuts (Sales)")
        assert fingerprint_program(a) != fingerprint_program(b)

    def test_while_bodies_fingerprint(self):
        program = parse_program(
            """
            while Delta do
                Delta <- DIFFERENCE (Delta, Delta)
            end
            """
        )
        normalized = normalize_program(program)
        assert normalized.startswith("while")
        assert "DIFFERENCE" in normalized
        assert len(fingerprint_program(program)) == 16

    def test_attribute_params_are_kept(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        normalized = normalize_program(program)
        assert "Region" in normalized and "Sold" in normalized


class TestWorkloadLog:
    def test_track_aggregates_bus_events(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        db = sales_info1()
        with event_stream() as bus:
            log = WorkloadLog(bus)
            with estimation(analyze_database(db)):
                for _ in range(2):
                    with log.track(program):
                        program.run(db)
        snap = log.snapshot()
        (record,) = snap["fingerprints"]
        assert record["calls"] == 2
        assert record["ops"] == 2
        assert record["rows_out"] == 18
        assert record["estimates"] == 2
        assert record["q_error"]["max"] == 1.0
        assert record["latency_ms"]["p50"] >= 0
        assert log.dispatched == {"GROUP": 2}

    def test_untracked_events_are_counted_not_attributed(self):
        program = parse_program("G <- GROUP by {Region} on {Sold} (Sales)")
        with event_stream() as bus:
            log = WorkloadLog(bus)
            program.run(sales_info1())  # outside any track()
        assert log.records == {}
        assert log.ignored > 0
        assert log.dispatched == {"GROUP": 1}

    def test_track_records_errors(self):
        from repro.core.errors import ReproError

        program = parse_program("T <- GROUP by {Missing} on {Sold} (Sales)")
        with event_stream() as bus:
            log = WorkloadLog(bus)
            try:
                with log.track(program):
                    program.run(sales_info1())
            except ReproError:
                pass
        (record,) = log.snapshot()["fingerprints"]
        assert record["errors"] >= 1


class TestStatsAudit:
    def test_report_shape_and_coverage(self):
        report = stats_audit(seeds=8, tc_size=4)
        assert report["version"] == 1
        assert report["stats_schema_version"] == STATS_SCHEMA_VERSION
        assert report["engine"] == "vector"
        assert report["corpus"]["cases"] > 8
        assert report["overall"]["estimates"] > 0
        assert report["overall"]["p50"] >= 1.0
        # Machine readable end to end.
        json.dumps(report)
        coverage = report["coverage"]
        assert set(coverage["dispatched_ops"]) <= set(coverage["estimated_ops"])

    def test_default_corpus_covers_every_dispatched_op(self):
        # The acceptance bar: with the default seed budget, every op kind
        # the corpus dispatches gets a scored estimate.
        report = stats_audit()
        assert report["coverage"]["complete"], report["coverage"]["missing"]
        assert report["coverage"]["missing"] == []
        # The corpus is rich enough to exercise the bulk of the algebra
        # plus the WHILE pseudo-op.
        assert len(report["coverage"]["dispatched_ops"]) >= 15
        assert "WHILE" in report["ops"]

    def test_per_op_records_have_percentiles_and_sources(self):
        report = stats_audit(seeds=4, tc_size=4)
        for record in report["ops"].values():
            assert record["count"] >= 1
            assert record["p50"] >= 1.0
            assert record["p95"] >= record["p50"]
            assert record["max"] >= record["p95"]
            assert set(record["sources"]) >= {"stats", "shape"}

    def test_naive_engine_audit_runs(self):
        report = stats_audit(seeds=2, tc_size=4, engine="naive")
        assert report["engine"] == "naive"
        assert report["overall"]["estimates"] > 0
