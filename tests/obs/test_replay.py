"""Deterministic replay: identical runs verify, injected drift is caught."""

import json

import pytest

from repro.core.errors import LedgerError
from repro.obs.events import event_stream
from repro.obs.ledger import RunLedger, RunRecorder
from repro.obs.replay import (
    bundle_run_pointer,
    replay_from_ledger,
    replay_run,
    resolve_runnable,
)
from repro.runtime import run_hardened
from repro.runtime.faults import FaultPlan, FaultRule
from repro.runtime.workloads import parse_workload


def _ledgered_run(tmp_path, spec="tc:4", engine="naive"):
    """Execute one clean ledgered run; returns (ledger, run_id)."""
    ledger = RunLedger(tmp_path / "led")
    _label, program, db = parse_workload(spec)
    with event_stream() as bus:
        recorder = RunRecorder(bus, ledger)
        result = run_hardened(program, db, engine=engine)
        recorder.finish(
            workload=spec, program=program, engine=engine,
            result_db=result, replay_spec=spec,
        )
    return ledger, recorder.run_id


class TestCleanReplay:
    def test_byte_identical_replay_reports_ok(self, tmp_path):
        ledger, run_id = _ledgered_run(tmp_path)
        report = replay_from_ledger(ledger, run_id)
        assert report.ok
        assert report.divergences == []
        assert report.replayed_sha == report.recorded_sha
        data = report.to_json()
        assert data["ok"] is True
        assert "identical" in report.render()

    def test_replay_works_across_a_reopen(self, tmp_path):
        """The on-disk record alone suffices — no shared process state."""
        _ledger, run_id = _ledgered_run(tmp_path)
        reopened = RunLedger(tmp_path / "led")
        assert replay_from_ledger(reopened, run_id).ok

    def test_vector_recording_replays_on_vector(self, tmp_path):
        ledger, run_id = _ledgered_run(tmp_path, engine="vector")
        report = replay_from_ledger(ledger, run_id)
        assert report.engine == "vector"
        assert report.ok


class TestDivergence:
    def test_injected_fault_diverges(self, tmp_path):
        """The divergence golden: a seeded fault must trip the detector."""
        ledger, run_id = _ledgered_run(tmp_path)
        faults = FaultPlan([FaultRule(op="*", kind="corrupt")], seed=7)
        report = replay_from_ledger(ledger, run_id, faults=faults)
        assert not report.ok
        kinds = {d.kind for d in report.divergences}
        assert "replay_error" in kinds
        assert "DIVERGED" in report.render()

    def test_result_mismatch_names_the_first_cell(self, tmp_path):
        ledger, run_id = _ledgered_run(tmp_path)
        manifest = json.loads(json.dumps(ledger.get(run_id)))  # deep copy
        # Corrupt one recorded cell and its digest: the structural diff
        # must name the exact table/cell, not just "digests differ".
        manifest["result"]["sha256"] = "0" * 64
        manifest["result"]["data"][0][0][0] = ["v", "tampered"]
        report = replay_run(manifest)
        kinds = [d.kind for d in report.divergences]
        assert "result_digest" in kinds
        assert "cell" in kinds
        cell = next(d for d in report.divergences if d.kind == "cell")
        assert "[0,0]" in cell.detail

    def test_op_sequence_drift_is_reported(self, tmp_path):
        ledger, run_id = _ledgered_run(tmp_path)
        manifest = json.loads(json.dumps(ledger.get(run_id)))
        manifest["op_sequence"][0][1] += 99
        report = replay_run(manifest)
        (divergence,) = [d for d in report.divergences if d.kind == "op_sequence"]
        assert "dispatch #0" in divergence.detail

    def test_program_drift_is_reported(self, tmp_path):
        ledger, run_id = _ledgered_run(tmp_path)
        manifest = json.loads(json.dumps(ledger.get(run_id)))
        manifest["program"]["fingerprint"] = "deadbeefdeadbeef"
        report = replay_run(manifest)
        assert any(d.kind == "program_drift" for d in report.divergences)


class TestNonReplayable:
    def test_run_without_spec_raises_typed_error(self):
        with pytest.raises(LedgerError, match="without a replayable"):
            replay_run({"run_id": "r-x", "workload": {"label": "olap"}})

    def test_unknown_spec_raises_typed_error(self):
        assert resolve_runnable("tc:4")
        with pytest.raises(LedgerError, match="not a workload or bundled example"):
            resolve_runnable("no-such-workload")


class TestBundlePointer:
    def test_pointer_round_trips(self, tmp_path):
        bundle = tmp_path / "postmortem-0001"
        bundle.mkdir()
        (bundle / "MANIFEST.json").write_text(
            json.dumps({"format": 1, "run": {"id": "r-abc", "ledger": "led"}})
        )
        assert bundle_run_pointer(bundle) == ("r-abc", "led")

    def test_bundle_without_pointer_raises(self, tmp_path):
        bundle = tmp_path / "postmortem-0002"
        bundle.mkdir()
        (bundle / "MANIFEST.json").write_text(json.dumps({"format": 1}))
        with pytest.raises(LedgerError, match="no run pointer"):
            bundle_run_pointer(bundle)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read"):
            bundle_run_pointer(tmp_path / "nowhere")
