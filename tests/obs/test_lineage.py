"""Cell-level provenance: tagging semantics, witnesses, replay, audit.

The contract under test: a lineage scope tags input cells with stable
ids, every operation family threads the ids to its output cells, a
witness query names exactly the input cells/rows an output cell was
built from, and re-running the program on just the witness rows
regenerates the cell — the executable form of the paper's claim that TA
transformations are constructive.
"""

import pytest

from repro.algebra import cleanup, product, rename, setnew, tuplenew
from repro.algebra.programs import parse_program
from repro.core import (
    NULL,
    FreshValueSource,
    Name,
    Null,
    TaggedValue,
    Value,
    database,
    make_table,
)
from repro.data import figure4_top, sales_info1
from repro.obs import OBS, observation
from repro.obs.lineage import (
    CellRef,
    Lineage,
    audit_run,
    count_prov_cells,
    derived_from,
    graph_to_dot,
    lineage,
    provenance,
    provenance_graph,
    table_origins,
    with_prov,
)


REF = frozenset({CellRef(0, 1, 1)})
REF2 = frozenset({CellRef(0, 2, 2)})


class TestTaggedCopies:
    """Provenance copies must be invisible to the algebra's semantics."""

    def test_plain_symbols_carry_no_provenance(self):
        assert Name("A").prov is None
        assert Value(3).prov is None
        assert NULL.prov is None
        assert provenance(Value(3)) == frozenset()

    def test_name_copy_equals_and_hashes_like_original(self):
        tagged = with_prov(Name("A"), REF)
        assert tagged == Name("A") and hash(tagged) == hash(Name("A"))
        assert tagged.prov == REF and tagged.is_name

    def test_value_copy_equals_and_hashes_like_original(self):
        tagged = with_prov(Value(50), REF)
        assert tagged == Value(50) and hash(tagged) == hash(Value(50))
        assert tagged.sort_key() == Value(50).sort_key()

    def test_tagged_value_copy_stays_a_tagged_value(self):
        tagged = with_prov(TaggedValue(5), REF)
        assert isinstance(tagged, TaggedValue)
        assert tagged == TaggedValue(5) and tagged != Value(5)

    def test_null_copy_is_null_without_breaking_the_singleton(self):
        tagged = with_prov(NULL, REF)
        assert tagged.is_null and tagged == NULL and hash(tagged) == hash(NULL)
        assert tagged is not NULL
        assert Null() is NULL  # the singleton is untouched

    def test_derived_from_returns_symbol_unchanged_without_parent_prov(self):
        plain = Value(7)
        assert derived_from(plain, [Value(1), Name("A")]) is plain

    def test_derived_from_unions_parent_provenance(self):
        parent_a = with_prov(Value(1), REF)
        parent_b = with_prov(Value(2), REF2)
        derived = derived_from(Value(7), [parent_a, parent_b])
        assert derived == Value(7)
        assert derived.prov == REF | REF2

    def test_derived_from_skips_copy_when_already_superset(self):
        symbol = with_prov(Value(7), REF | REF2)
        assert derived_from(symbol, [with_prov(Value(1), REF)]) is symbol


class TestTagging:
    def test_tag_table_assigns_one_ref_per_cell(self):
        lin = Lineage()
        tagged = lin.tag_table(figure4_top())
        assert tagged == figure4_top()  # equality is unchanged
        assert tagged.entry(1, 2).prov == frozenset({CellRef(0, 1, 2)})
        assert count_prov_cells([tagged]) == tagged.nrows * tagged.ncols

    def test_tag_database_labels_name_collisions(self):
        t = make_table("T", ["A"], [["x"]])
        u = make_table("T", ["A"], [["y"]])
        lin = Lineage()
        lin.tag_database(database(t, u))
        assert {lin.label(0), lin.label(1)} == {"T#0", "T#1"}

    def test_describe_ref_renders_source_cell(self):
        lin = Lineage()
        lin.tag_table(figure4_top())
        assert lin.describe_ref(CellRef(0, 0, 1)) == "Sales[0,1]=Part"

    def test_scope_installs_and_restores(self):
        assert OBS.lineage is None
        with lineage() as outer:
            assert OBS.lineage is outer
            with lineage() as inner:
                assert OBS.lineage is inner
            assert OBS.lineage is outer
        assert OBS.lineage is None


class TestOperationThreading:
    """The union points: rename, product, clean-up merges, tagging."""

    def test_rename_header_derives_from_replaced_cell(self):
        with lineage() as lin:
            tagged = lin.tag_table(figure4_top())
            renamed = rename(tagged, "Sold", "Qty")
        j = list(renamed.row(0)).index(Name("Qty"))
        assert CellRef(0, 0, j) in renamed.entry(0, j).prov

    def test_product_row_attribute_accumulates_both_rows(self):
        left = make_table("L", ["A"], [["x"]])
        right = make_table("R", ["B"], [["y"]])
        with lineage() as lin:
            out = product(lin.tag_table(left), lin.tag_table(right))
        prov = out.entry(1, 0).prov
        # join ancestry: the combined row attribute cites both argument rows
        assert CellRef(0, 1, 1) in prov and CellRef(1, 1, 1) in prov

    def test_cleanup_merged_cell_unions_the_group(self):
        table = make_table(
            "T", ["A", "B"], [["x", 1], ["x", None], ["x", 1]]
        )
        with lineage() as lin:
            tagged = lin.tag_table(table)
            cleaned = cleanup(tagged, by={"A"}, on={NULL})
        assert cleaned.height == 1
        prov = cleaned.entry(1, 2).prov
        # the surviving B-cell derives from all three grouped rows' B-cells
        assert {CellRef(0, 1, 2), CellRef(0, 2, 2), CellRef(0, 3, 2)} <= prov

    def test_tuplenew_tags_derive_from_their_rows(self):
        with lineage() as lin:
            tagged = lin.tag_table(figure4_top())
            out = tuplenew(tagged, "Id", source=FreshValueSource())
        tag_col = out.ncols - 1
        for i in out.data_row_indices():
            assert CellRef(0, i, 1) in out.entry(i, tag_col).prov

    def test_setnew_tags_derive_from_their_subsets(self):
        table = make_table("T", ["A"], [["x"], ["y"]])
        with lineage() as lin:
            out = setnew(lin.tag_table(table), "Id", source=FreshValueSource())
        tag_col = out.ncols - 1
        # the {row1, row2} subset's tag cites both rows' cells
        pair_rows = [
            i
            for i in out.data_row_indices()
            if {CellRef(0, 1, 1), CellRef(0, 2, 1)} <= out.entry(i, tag_col).prov
        ]
        assert len(pair_rows) == 2  # both listed rows of the last subset

    def test_copy_operations_preserve_provenance(self):
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Flipped <- TRANSPOSE (Grouped)
            """
        )
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        flipped = out.tables_named(Name("Flipped"))[0]
        assert count_prov_cells([flipped]) > 0
        assert table_origins([flipped]) <= table_origins(list(lin.sources))


class TestWitnessAndReplay:
    def test_figure4_group_data_cell_witness(self):
        """Golden: the pivoted 50 under (nuts, east) comes from Sales[1,3]."""
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        grouped = out.tables[0]
        witness = lin.witness(grouped, 2, 2)
        assert witness.origins == (CellRef(0, 1, 3),)
        assert witness.rows == ((0, (1,)),)
        check = lin.replay_check(program.run, witness)
        assert check.regenerated and check.matches >= 1

    def test_figure4_group_header_cell_closes_over_its_column(self):
        """A pivoted column attribute's witness is the row that spawned it."""
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        grouped = out.tables[0]
        witness = lin.witness(grouped, 0, 2)  # the first pivoted 'Sold'
        assert (0, (1,)) in witness.rows
        assert lin.replay_check(program.run, witness).regenerated

    def test_constant_cell_is_vacuously_constructive(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        witness = lin.witness(out.tables[0], 1, 1)  # a padding ⊥
        assert witness.origins == ()
        check = lin.replay_check(program.run, witness)
        assert check.regenerated and check.matches == 0

    def test_restrict_keeps_headers_and_witness_rows_only(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
            witness = lin.witness(out.tables[0], 2, 2)
            restricted = lin.restrict(witness)
        table = restricted.tables[0]
        assert table.height == 1
        assert table.entry(1, 1).prov == frozenset({CellRef(0, 1, 1)})

    def test_while_fixpoint_multi_hop_witness_cites_the_chain(self):
        """TC(1,4) must cite edges (1,2), (2,3), (3,4) — provenance
        accumulated across while-loop iterations via the product hook."""
        from repro.obs.examples import EXAMPLES

        db, run = EXAMPLES["fo-while"].setup()
        with lineage() as lin:
            tagged = lin.tag_database(db)
            out = run(tagged)
        tc = out.tables_named(Name("TC"))[0]
        hops = {
            (str(tc.entry(i, 1)), str(tc.entry(i, 2))): i
            for i in tc.data_row_indices()
        }
        witness = lin.witness(tc, hops[("1", "4")], 1)
        assert witness.rows == ((0, (1, 2, 3)),)  # E rows: the whole chain
        check = lin.replay_check(run, witness)
        assert check.regenerated

    def test_while_fixpoint_one_hop_witness_stays_minimal(self):
        from repro.obs.examples import EXAMPLES

        db, run = EXAMPLES["fo-while"].setup()
        with lineage() as lin:
            tagged = lin.tag_database(db)
            out = run(tagged)
        tc = out.tables_named(Name("TC"))[0]
        hops = {
            (str(tc.entry(i, 1)), str(tc.entry(i, 2))): i
            for i in tc.data_row_indices()
        }
        witness = lin.witness(tc, hops[("1", "2")], 1)
        assert witness.rows == ((0, (1,)),)  # just edge (1,2)
        assert lin.replay_check(run, witness).regenerated


class TestAudit:
    @pytest.mark.parametrize(
        "name",
        ["fig4-group", "fig5-merge", "pivot", "schemasql", "good", "fo-while"],
    )
    def test_every_bundled_example_is_fully_constructive(self, name):
        from repro.obs.examples import EXAMPLES

        db, run = EXAMPLES[name].setup()
        result = audit_run(run, db, name=name)
        assert result.ok, result.failures
        assert result.queried == result.regenerated
        assert result.replays <= result.queried - result.constants

    def test_schemalog_example_is_fully_constructive(self):
        # largest audit — kept out of the parametrize so a failure names it
        from repro.obs.examples import EXAMPLES

        db, run = EXAMPLES["schemalog"].setup()
        result = audit_run(run, db, name="schemalog")
        assert result.ok, result.failures


class TestObservabilityIntegration:
    def test_registry_spans_carry_prov_cell_counts(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with observation() as obs, lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            program.run(tagged)
        spans = [s for root in obs.spans for s in root.walk() if s.name == "GROUP"]
        assert spans and spans[0].attributes["prov_cells_in"] > 0
        assert spans[0].attributes["prov_cells_out"] > 0
        statement = [s for root in obs.spans for s in root.walk() if s.name == "statement"]
        assert statement[0].attributes["prov_cells"] > 0

    def test_while_spans_record_the_provenance_frontier(self):
        from repro.obs.examples import EXAMPLES

        db, run = EXAMPLES["fo-while"].setup()
        with observation() as obs, lineage() as lin:
            run(lin.tag_database(db))
        whiles = [s for root in obs.spans for s in root.walk() if s.name == "while"]
        frontier = whiles[0].attributes["prov_frontier"]
        assert len(frontier) >= 2
        assert frontier == sorted(frontier)  # origins only accumulate

    def test_explain_renders_prov_attributes(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with observation() as obs, lineage() as lin:
            program.run(lin.tag_database(database(figure4_top())))
        text = obs.explain(timings=False)
        assert "prov_cells" in text


class TestProvenanceGraph:
    def test_graph_links_inputs_to_outputs(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        graph = provenance_graph(lin, out, name="fig4")
        assert graph["inputs"] and graph["outputs"] and graph["edges"]
        ids = {node["id"] for node in graph["inputs"]} | {
            node["id"] for node in graph["outputs"]
        }
        for edge in graph["edges"]:
            assert edge["from"] in ids and edge["to"] in ids

    def test_dot_rendering_is_a_digraph(self):
        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        dot = graph_to_dot(provenance_graph(lin, out, name="fig4"))
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert "->" in dot

    def test_writers_round_trip(self, tmp_path):
        import json

        from repro.obs.export import write_provenance_dot, write_provenance_json

        program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
        with lineage() as lin:
            tagged = lin.tag_database(database(figure4_top()))
            out = program.run(tagged)
        graph = provenance_graph(lin, out, name="fig4")
        dot = write_provenance_dot([graph, graph], tmp_path / "p.dot")
        assert "subgraph" in dot.read_text()
        data = json.loads(
            write_provenance_json(graph, tmp_path / "p.json").read_text()
        )
        assert data["name"] == "fig4"


class TestDisabledPath:
    def test_lineage_is_off_by_default(self):
        assert OBS.lineage is None

    def test_results_identical_with_and_without_lineage(self):
        text = """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
        """
        plain = parse_program(text).run(sales_info1())
        with lineage() as lin:
            tagged = lin.tag_database(sales_info1())
            traced = parse_program(text).run(tagged)
        assert traced == plain

    def test_disabled_run_allocates_nothing_in_obs_modules(self):
        """tracemalloc audit: with lineage off, no obs-module allocations.

        Same discipline as the observability audit — the provenance hooks
        must be a single ``OBS.lineage is None`` check on the disabled
        path, allocating nothing from any ``repro.obs`` source file.
        """
        import os
        import tracemalloc

        import repro.obs
        import repro.obs.lineage  # ensure the module under audit is loaded

        obs_dir = os.path.dirname(repro.obs.__file__)
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        db = sales_info1()
        program.run(db)  # warm caches outside the measurement
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            program.run(db)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_filter = tracemalloc.Filter(True, os.path.join(obs_dir, "*"))
        stats = after.filter_traces([obs_filter]).compare_to(
            before.filter_traces([obs_filter]), "filename"
        )
        leaked = [(s.traceback, s.size_diff) for s in stats if s.size_diff > 0]
        assert leaked == []

    def test_product_and_cleanup_take_the_raw_branch_when_disabled(self):
        left = make_table("L", ["A"], [["x"]])
        right = make_table("R", ["B"], [["y"]])
        out = product(left, right)
        assert out.entry(1, 0).prov is None
        table = make_table("T", ["A", "B"], [["x", 1], ["x", None]])
        cleaned = cleanup(table, by={"A"}, on={NULL})
        assert cleaned.entry(1, 2).prov is None
