"""Unit tests for the federation extension of the tabular model."""

import pytest

from repro.core import N, Name, SchemaError, Table, V, database, make_table
from repro.federation import (
    TabularFederation,
    federation_facts,
    parse_federated,
    qualified_name,
    run_federated,
    split_qualified,
)
from repro.schemalog import evaluate, parse_schemalog


@pytest.fixture
def federation() -> TabularFederation:
    return TabularFederation(
        {
            "montreal": database(
                make_table("sales", ["part", "sold"], [("nuts", 50), ("bolts", 70)])
            ),
            "brussels": database(
                make_table("sales", ["part", "sold"], [("nuts", 60)]),
                make_table("staff", ["name"], [("marc",)]),
            ),
        }
    )


class TestModel:
    def test_member_lookup(self, federation):
        assert len(federation.member("brussels")) == 2
        with pytest.raises(SchemaError):
            federation.member("paris")

    def test_names_sorted(self, federation):
        assert federation.names() == ("brussels", "montreal")

    def test_member_name_validation(self):
        with pytest.raises(SchemaError):
            TabularFederation({"a::b": database()})
        with pytest.raises(SchemaError):
            TabularFederation({"": database()})

    def test_with_member(self, federation):
        extended = federation.with_member("paris", database())
        assert "paris" in extended and "paris" not in federation

    def test_qualified_names(self):
        assert qualified_name("db", N("t")) == N("db::t")
        assert split_qualified(N("db::t")) == ("db", N("t"))
        assert split_qualified(N("plain")) is None

    def test_flatten_unflatten_round_trip(self, federation):
        assert TabularFederation.unflatten(federation.flatten()) == federation

    def test_flatten_separates_same_named_tables(self, federation):
        flat = federation.flatten()
        assert len(flat.tables_named(N("montreal::sales"))) == 1
        assert len(flat.tables_named(N("brussels::sales"))) == 1

    def test_unflatten_rejects_unqualified(self):
        with pytest.raises(SchemaError):
            TabularFederation.unflatten(database(make_table("plain", ["A"], [(1,)])))


class TestPrograms:
    def test_cross_member_union(self, federation):
        program = parse_federated(
            "All <- CLASSICALUNION (montreal__sales, brussels__sales)"
        )
        out = run_federated(program, federation)
        result = out.member("result").table("All")
        assert result.height == 3

    def test_qualified_target_lands_in_member(self, federation):
        program = parse_federated("montreal__copy <- DEDUP (montreal__sales)")
        out = run_federated(program, federation)
        assert out.member("montreal").table("copy").height == 2

    def test_members_untouched_otherwise(self, federation):
        program = parse_federated("Out <- DEDUP (brussels__staff)")
        out = run_federated(program, federation)
        assert out.member("brussels").table("staff").height == 1

    def test_double_underscore_is_the_surface_for_qualification(self, federation):
        program = parse_federated("X <- TRANSPOSE (brussels__staff)")
        out = run_federated(program, federation)
        assert out.member("result").table("X").width == 1

    def test_while_over_federated_names(self, federation):
        program = parse_federated(
            """
            Work <- DEDUP (montreal__sales)
            while Work do
                Work <- DIFFERENCE (Work, Work)
            end
            """
        )
        out = run_federated(program, federation)
        assert out.member("result").table("Work").height == 0


class TestSchemaLogSubsumption:
    def test_federated_facts_use_qualified_relations(self, federation):
        facts = federation_facts(federation)
        rels = {str(r) for r in facts.relations()}
        assert rels == {"montreal::sales", "brussels::sales", "brussels::staff"}

    def test_higher_order_rule_spans_the_federation(self, federation):
        facts = federation_facts(federation)
        program = parse_schemalog("all[T: A -> V] :- R[T: A -> V].")
        out = evaluate(program, facts)
        copied = [f for f in out if f[0] == N("all")]
        assert len(copied) == len(facts)
