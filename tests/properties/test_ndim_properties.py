"""Property-based tests for the n-dimensional tabular generalization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import N, V
from repro.ndim import NDTable, cube_to_ndtable, ndtable_to_cube
from repro.olap import Cube


@st.composite
def nd_tables(draw, max_arity=3, max_extent=3):
    arity = draw(st.integers(1, max_arity))
    shape = tuple(draw(st.integers(1, max_extent)) for _ in range(arity))
    cells = {(0,) * arity: N("T")}
    n_cells = draw(st.integers(0, 6))
    for _ in range(n_cells):
        position = tuple(draw(st.integers(0, s - 1)) for s in shape)
        cells[position] = V(draw(st.integers(0, 5)))
    cells[(0,) * arity] = N("T")  # keep the name a name
    return NDTable(shape, cells)


@st.composite
def cubes(draw, max_dims=3):
    # arity >= 2: one-dimensional cubes have no faithful NDTable embedding
    # (attribute and data positions coincide) and the bridge rejects them
    n_dims = draw(st.integers(2, max_dims))
    dims = tuple(f"D{k}" for k in range(n_dims))
    coords = {
        d: [V(f"{d}c{i}") for i in range(draw(st.integers(1, 3)))] for d in dims
    }
    cells = {}
    for _ in range(draw(st.integers(0, 5))):
        key = tuple(draw(st.sampled_from(coords[d])) for d in dims)
        cells[key] = V(draw(st.integers(1, 99)))
    return Cube(dims, coords, cells, "M")


class TestPermutationLaws:
    @given(nd_tables())
    @settings(max_examples=60, deadline=None)
    def test_identity_permutation(self, t):
        assert t.permute_axes(tuple(range(t.arity))) == t

    @given(nd_tables())
    @settings(max_examples=60, deadline=None)
    def test_reversal_is_involution(self, t):
        order = tuple(reversed(range(t.arity)))
        assert t.permute_axes(order).permute_axes(order) == t

    @given(nd_tables())
    @settings(max_examples=60, deadline=None)
    def test_permutation_preserves_name_and_data_count(self, t):
        order = tuple(reversed(range(t.arity)))
        flipped = t.permute_axes(order)
        assert flipped.name == t.name
        assert len(flipped.data()) == len(t.data())


class TestTwoDimensionalEmbedding:
    @given(nd_tables(max_arity=2))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_table(self, t):
        if t.arity != 2:
            return
        assert NDTable.from_table(t.to_table()) == t

    @given(nd_tables(max_arity=2))
    @settings(max_examples=60, deadline=None)
    def test_permute_is_transpose(self, t):
        if t.arity != 2:
            return
        assert t.permute_axes((1, 0)).to_table() == t.to_table().transpose()


class TestCubeBridge:
    @given(cubes())
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, cube):
        nd = cube_to_ndtable(cube)
        back = ndtable_to_cube(nd, cube.dims)
        assert back == cube

    @given(cubes())
    @settings(max_examples=60, deadline=None)
    def test_shape_matches_coordinates(self, cube):
        nd = cube_to_ndtable(cube)
        assert nd.shape == tuple(len(cube.coords[d]) + 1 for d in cube.dims)
