"""Property-based tests of tabular algebra invariants.

The central properties come straight from the paper:

* the transformation conditions — every operation is *generic* (commutes
  with permutations of values) and invariant under row/column permutations;
* the inverse laws between GROUP/MERGE and SPLIT/COLLAPSE;
* the Figure 3 shape laws for the traditional operations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    cleanup,
    collapse_compact,
    deduplicate,
    difference,
    group,
    group_compact,
    intersection,
    merge_compact,
    product,
    project,
    purge,
    rename,
    select,
    split,
    transpose,
    union,
)
from repro.core import NULL, Name, Symbol, Table, Value
from tabular_strategies import VALUE_POOL, relation_tables, tables


def permute_values(table: Table, mapping: dict[Symbol, Symbol]) -> Table:
    """Apply a value permutation (identity on names and ⊥)."""
    return table.map_entries(lambda s: mapping.get(s, s))


@st.composite
def value_permutations(draw):
    values = [Value(v) for v in VALUE_POOL]
    shuffled = draw(st.permutations(values))
    return dict(zip(values, shuffled))


def shuffle_rows_cols(table: Table) -> Table:
    """A deterministic non-trivial data row/column permutation."""
    rows = [0] + list(reversed(range(1, table.nrows)))
    cols = [0] + list(reversed(range(1, table.ncols)))
    return table.subtable(rows, cols)


class TestGenericity:
    """Condition (i): operations never distinguish individual values."""

    @given(tables(), value_permutations())
    @settings(max_examples=50)
    def test_transpose_generic(self, t, perm):
        assert transpose(permute_values(t, perm)) == permute_values(transpose(t), perm)

    @given(tables(), tables(), value_permutations())
    @settings(max_examples=50)
    def test_union_generic(self, a, b, perm):
        assert union(permute_values(a, perm), permute_values(b, perm)) == permute_values(
            union(a, b), perm
        )

    @given(tables(), tables(), value_permutations())
    @settings(max_examples=50)
    def test_difference_generic(self, a, b, perm):
        assert difference(
            permute_values(a, perm), permute_values(b, perm)
        ) == permute_values(difference(a, b), perm)

    @given(tables(), value_permutations())
    @settings(max_examples=50)
    def test_project_generic(self, t, perm):
        attrs = frozenset([Name("A"), Name("B")])
        assert project(permute_values(t, perm), attrs) == permute_values(
            project(t, attrs), perm
        )

    @given(tables(), value_permutations())
    @settings(max_examples=50)
    def test_select_generic(self, t, perm):
        assert select(permute_values(t, perm), "A", "B") == permute_values(
            select(t, "A", "B"), perm
        )

    @given(relation_tables(), value_permutations())
    @settings(max_examples=50)
    def test_group_generic(self, t, perm):
        assert group(permute_values(t, perm), by="G", on="X") == permute_values(
            group(t, by="G", on="X"), perm
        )

    @given(tables(), value_permutations())
    @settings(max_examples=50)
    def test_cleanup_generic(self, t, perm):
        before = cleanup(permute_values(t, perm), by="A", on=[None])
        after = permute_values(cleanup(t, by="A", on=[None]), perm)
        assert before == after


class TestPermutationInvariance:
    """Condition (ii): row/column order never changes an operation's meaning."""

    @given(relation_tables())
    @settings(max_examples=50)
    def test_group_invariant_up_to_equivalence(self, t):
        assert group(shuffle_rows_cols(t), by="G", on="X").equivalent(
            group(t, by="G", on="X")
        )

    @given(tables())
    @settings(max_examples=50)
    def test_dedup_invariant(self, t):
        assert deduplicate(shuffle_rows_cols(t)).equivalent(deduplicate(t))

    @given(tables(), tables())
    @settings(max_examples=50)
    def test_difference_invariant(self, a, b):
        assert difference(shuffle_rows_cols(a), shuffle_rows_cols(b)).equivalent(
            difference(a, b)
        )


class TestShapeLaws:
    """The Figure 3 diagrammatic laws."""

    @given(tables(), tables())
    def test_union_shape(self, a, b):
        u = union(a, b)
        assert u.width == a.width + b.width
        assert u.height == a.height + b.height

    @given(tables(), tables())
    def test_product_shape(self, a, b):
        p = product(a, b)
        assert p.width == a.width + b.width
        assert p.height == a.height * b.height

    @given(tables(), tables())
    def test_difference_keeps_scheme(self, a, b):
        assert difference(a, b).column_attributes == a.column_attributes

    @given(tables(), tables())
    def test_difference_monotone(self, a, b):
        assert difference(a, b).height <= a.height

    @given(tables(), tables())
    def test_intersection_bounded(self, a, b):
        assert intersection(a, b).height <= a.height


class TestInverseLaws:
    @given(relation_tables(columns=("K", "G", "X"), min_height=1, max_height=5))
    @settings(max_examples=60, deadline=None)
    def test_group_merge_round_trip(self, t):
        # (height ≥ 1: grouping an empty table leaves no ℬ-columns, so the
        # inverse MERGE is undefined — the paper's operations are partial)
        grouped = group(t, by="G", on="X")
        back = merge_compact(grouped, on="X", by="G")
        # content is preserved up to duplicate rows (MERGE re-emits one row
        # per block, so duplicated inputs come back as duplicates)
        assert deduplicate(back).equivalent(deduplicate(t))

    @given(relation_tables(columns=("K", "G", "X"), max_height=5))
    @settings(max_examples=60, deadline=None)
    def test_split_collapse_round_trip(self, t):
        if t.height == 0:
            return  # split of an empty table yields no tables to collapse
        parts = split(t, on="G")
        back = collapse_compact(parts, by="G")
        assert deduplicate(back).equivalent(deduplicate(t))

    @given(relation_tables(columns=("K", "G", "X"), min_height=1, max_height=4))
    @settings(max_examples=40, deadline=None)
    def test_pivot_round_trip(self, t):
        pivot = group_compact(t, by="G", on="X")
        back = merge_compact(pivot, on="X", by="G")
        assert deduplicate(back).equivalent(deduplicate(t))


class TestRedundancyLaws:
    @given(tables())
    @settings(max_examples=60)
    def test_cleanup_idempotent(self, t):
        once = cleanup(t, by="A", on=[None])
        assert cleanup(once, by="A", on=[None]) == once

    @given(tables())
    @settings(max_examples=60)
    def test_cleanup_never_grows(self, t):
        assert cleanup(t, by="A", on=[None]).height <= t.height

    @given(tables())
    @settings(max_examples=60)
    def test_purge_is_transpose_dual(self, t):
        direct = purge(t, on="A", by="B")
        via_dual = transpose(cleanup(transpose(t), by="B", on="A"))
        assert direct == via_dual

    @given(tables())
    @settings(max_examples=60)
    def test_dedup_idempotent(self, t):
        once = deduplicate(t)
        assert deduplicate(once) == once


class TestRenameLaws:
    @given(tables())
    def test_rename_round_trip(self, t):
        # renaming A→Z and back is the identity when Z is absent
        if Name("Z") in t.column_attributes:
            return
        assert rename(rename(t, "A", "Z"), "Z", "A") == t
