"""Property-based tests for the hardened runtime.

Two families:

* **Atomicity** — for arbitrary injection points (op × occurrence ×
  seed) into a fixed pipeline, a fault either doesn't fire or surfaces
  as a typed :class:`~repro.core.errors.ReproError` subclass, and a
  clean re-run afterwards still reproduces the reference result exactly
  (no partial mutation survives, the governor state is restored).
* **Serialization** — checkpoint encoding round-trips arbitrary
  databases from the shared strategies bit for bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.programs import parse_program
from repro.core.errors import ReproError
from repro.data import sales_info1
from repro.runtime import GOV, FaultPlan, FaultRule, governed
from repro.runtime.checkpoint import database_from_data, database_to_data
from tabular_strategies import databases

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""

PIVOT_OPS = ["GROUP", "CLEANUP", "PURGE", "*"]


class TestFaultAtomicity:
    @settings(max_examples=40, deadline=None)
    @given(
        op=st.sampled_from(PIVOT_OPS),
        kind=st.sampled_from(["raise", "corrupt"]),
        occurrence=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_any_fault_is_typed_and_leaves_no_partial_mutation(
        self, op, kind, occurrence, seed
    ):
        program = parse_program(PIVOT)
        db = sales_info1()
        reference = program.run(db)
        plan = FaultPlan([FaultRule(op=op, kind=kind, occurrence=occurrence)], seed=seed)
        raised = None
        try:
            with governed(faults=plan):
                faulted = program.run(db)
        except Exception as err:  # noqa: BLE001 — the property under test
            raised = err
        if plan.fired:
            # a fired fault must surface as a typed ReproError, never
            # succeed silently and never escape as a bare exception
            assert isinstance(raised, ReproError), repr(raised)
        else:
            assert raised is None
            assert faulted == reference
        # the governor scope is restored even on the error path
        assert GOV.active is False and GOV.faults is None
        # and nothing the fault touched leaks into a clean re-run
        assert program.run(db) == reference

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_corrupt_faults_replay_deterministically(self, seed):
        program = parse_program(PIVOT)
        db = sales_info1()

        def one_run():
            plan = FaultPlan([FaultRule(op="GROUP", kind="corrupt")], seed=seed)
            try:
                with governed(faults=plan):
                    program.run(db)
            except ReproError as err:
                return str(err)
            return None

        assert one_run() == one_run()


class TestCheckpointSerialization:
    @settings(max_examples=50, deadline=None)
    @given(db=databases())
    def test_database_encoding_round_trips(self, db):
        assert database_from_data(database_to_data(db)) == db
