"""Property-based tests for the theory layers.

* canonical representation round trips on random databases;
* isomorphism is an equivalence relation respecting value permutation;
* randomly generated SchemaLog_d rules agree between native evaluation
  and tabular algebra compilation (a randomized Theorem 4.5).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.canonical import decode, encode, validate_rep
from repro.core import NULL, N, Name, TabularDatabase, V, Value, database
from repro.relational import table_to_relation
from repro.schemalog import (
    DERIVED,
    Builtin,
    Const,
    Rule,
    SchemaAtom,
    SchemaLogDatabase,
    SchemaLogProgram,
    Var,
    compile_to_ta,
    evaluate,
)
from repro.transform import apply_symbol_map, are_isomorphic
from tabular_strategies import tables


@st.composite
def nondegenerate_databases(draw):
    count = draw(st.integers(1, 2))
    out = []
    for index in range(count):
        out.append(
            draw(tables(min_width=1, max_width=3, min_height=1, max_height=3,
                        name=f"T{index}"))
        )
    return TabularDatabase(out)


class TestCanonicalProperties:
    @given(nondegenerate_databases())
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, db):
        rep = encode(db)
        validate_rep(rep)
        assert decode(rep).equivalent(db)

    @given(nondegenerate_databases())
    @settings(max_examples=25, deadline=None)
    def test_encode_is_generic_in_shape(self, db):
        # encoding sizes depend only on the shape, not on the symbols
        rep = encode(db)
        cells = sum(t.height * t.width for t in db.tables)
        occurrences = sum(1 + t.height + t.width + t.height * t.width for t in db.tables)
        assert rep.table(N("Data")).height == cells
        assert rep.table(N("Map")).height == occurrences


class TestIsomorphismProperties:
    @given(tables(max_width=3, max_height=3))
    @settings(max_examples=30, deadline=None)
    def test_value_permutation_yields_isomorph(self, t):
        db = database(t)
        values = sorted(
            (s for s in db.symbols() if isinstance(s, Value)),
            key=lambda s: s.sort_key(),
        )
        if len(values) > 6:
            return
        rotated = dict(zip(values, values[1:] + values[:1]))
        assert are_isomorphic(db, apply_symbol_map(db, rotated))

    @given(tables(max_width=3, max_height=3))
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, t):
        db = database(t)
        if len([s for s in db.symbols() if isinstance(s, Value)]) > 8:
            return
        assert are_isomorphic(db, db)


# -- randomized Theorem 4.5 -------------------------------------------------

ATTRS = [N("a"), N("b")]
RELS = [N("r"), N("s")]
VALUES = [V("u"), V("v"), V(1)]


@st.composite
def fact_stores(draw):
    n = draw(st.integers(1, 6))
    facts = []
    for index in range(n):
        facts.append(
            (
                draw(st.sampled_from(RELS)),
                V(f"t{draw(st.integers(0, 2))}"),
                draw(st.sampled_from(ATTRS)),
                draw(st.sampled_from(VALUES)),
            )
        )
    return SchemaLogDatabase(facts)


@st.composite
def safe_rules(draw):
    """A random safe, compilable rule with 1–2 body atoms."""
    variables = [Var("T"), Var("X"), Var("A")]

    def term(pool):
        return draw(st.sampled_from(pool))

    body = []
    n_atoms = draw(st.integers(1, 2))
    for _ in range(n_atoms):
        body.append(
            SchemaAtom(
                term([Const(RELS[0]), Const(RELS[1]), Var("R")]),
                term([Var("T"), Const(V("t0"))]),
                term([Const(ATTRS[0]), Var("A")]),
                term([Var("X"), Const(VALUES[0])]),
            )
        )
    bound = set()
    for atom in body:
        bound |= atom.variables()
    head_terms = []
    for position, fallback in zip(
        ("rel", "tid", "attr", "val"),
        (Const(N("out")), Const(V("t9")), Const(ATTRS[0]), Const(VALUES[1])),
    ):
        candidates = [fallback] + [Var(v.name) for v in bound]
        head_terms.append(draw(st.sampled_from(candidates)))
    head = SchemaAtom(*head_terms)
    maybe_builtin = draw(st.booleans())
    if maybe_builtin and Var("X") in bound:
        body.append(Builtin(draw(st.sampled_from(["=", "!="])), Var("X"), Const(VALUES[0])))
    return Rule(head, tuple(body))


class TestRandomizedTheorem45:
    @given(safe_rules(), fact_stores())
    @settings(max_examples=25, deadline=None)
    def test_native_and_compiled_agree(self, rule, facts):
        program = SchemaLogProgram((rule,))
        native = evaluate(program, facts)
        out = compile_to_ta(program).run(database(facts.facts_table()))
        derived = table_to_relation(out.tables_named(DERIVED)[0]).with_name("Facts")
        simulated = SchemaLogDatabase.from_facts_relation(derived)
        assert simulated == native

    @given(safe_rules(), fact_stores(), st.sampled_from(RELS), st.sampled_from(ATTRS))
    @settings(max_examples=20, deadline=None)
    def test_negation_agrees(self, rule, facts, neg_rel, neg_attr):
        from repro.schemalog import NegatedAtom

        if isinstance(rule.head.rel, Var):
            return  # variable heads are not stratifiable alongside negation
        # extend the random rule with a negated atom over a fixed relation
        extended = Rule(
            rule.head,
            rule.body
            + (
                NegatedAtom(
                    SchemaAtom(
                        Const(neg_rel), Var("T2"), Const(neg_attr), Var("X2")
                    )
                ),
            ),
        )
        program = SchemaLogProgram((extended,))
        native = evaluate(program, facts)
        out = compile_to_ta(program).run(database(facts.facts_table()))
        derived = table_to_relation(out.tables_named(DERIVED)[0]).with_name("Facts")
        simulated = SchemaLogDatabase.from_facts_relation(derived)
        assert simulated == native
