"""Hypothesis strategies for tabular model objects."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import NULL, Name, Symbol, Table, TabularDatabase, Value

ATTRIBUTE_NAMES = ["A", "B", "C", "G", "X"]
VALUE_POOL = ["u", "v", "w", 1, 2, 3]


def symbols(allow_names: bool = True) -> st.SearchStrategy[Symbol]:
    """Arbitrary symbols: nulls, values, and optionally names."""
    options = [st.just(NULL), st.sampled_from([Value(v) for v in VALUE_POOL])]
    if allow_names:
        options.append(st.sampled_from([Name(n) for n in ATTRIBUTE_NAMES]))
    return st.one_of(*options)


def attributes() -> st.SearchStrategy[Symbol]:
    """Attribute-position symbols: names or ⊥ (occasionally values)."""
    return st.one_of(
        st.sampled_from([Name(n) for n in ATTRIBUTE_NAMES]),
        st.just(NULL),
        st.sampled_from([Value(v) for v in VALUE_POOL[:2]]),
    )


@st.composite
def tables(
    draw,
    min_width: int = 0,
    max_width: int = 4,
    min_height: int = 0,
    max_height: int = 5,
    name: str = "R",
) -> Table:
    """Random tables over a small symbol pool (shrinks well)."""
    width = draw(st.integers(min_width, max_width))
    height = draw(st.integers(min_height, max_height))
    header = [Name(name)] + [draw(attributes()) for _ in range(width)]
    grid = [header]
    for _ in range(height):
        row_attr = draw(st.one_of(st.just(NULL), st.sampled_from([Name(n) for n in ATTRIBUTE_NAMES])))
        grid.append([row_attr] + [draw(symbols()) for _ in range(width)])
    return Table(grid)


@st.composite
def relation_tables(
    draw,
    columns: tuple[str, ...] = ("G", "X"),
    min_height: int = 0,
    max_height: int = 5,
    name: str = "R",
) -> Table:
    """Relation-style tables (⊥ row attributes, distinct named columns)."""
    height = draw(st.integers(min_height, max_height))
    header = [Name(name)] + [Name(c) for c in columns]
    grid = [header]
    for _ in range(height):
        grid.append([NULL] + [draw(st.sampled_from([Value(v) for v in VALUE_POOL]))
                              for _ in columns])
    return Table(grid)


@st.composite
def databases(draw, max_tables: int = 3) -> TabularDatabase:
    """Random small databases (names may repeat)."""
    count = draw(st.integers(0, max_tables))
    names = ["R", "S"]
    tabs = [draw(tables(name=draw(st.sampled_from(names)))) for _ in range(count)]
    return TabularDatabase(tabs)
