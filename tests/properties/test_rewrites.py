"""Property-based tests of the optimizer's rewrite rules.

Three properties over seeded corpus programs (the rewrite-targeting
family, whose motifs are shaped like each rule's redex, plus the shared
fuzz corpus):

* **commutes with evaluation** — for every rule R, running
  ``R(program)`` equals running ``program``: same final database, same
  serialized bytes, or the same error type;
* **idempotence** — applying a rule to its own output is a no-op:
  ``R(R(p)) = R(p)`` statement-for-statement;
* **confluence of the shipped set** — the full pipeline is its own
  fixpoint: optimizing an optimized program changes nothing.

Programs come from seeds rather than a from-scratch statement strategy:
the corpus generators already produce redex-dense programs over
adversarial databases (⊥, repeated attributes, names-in-data), and a
seed shrinks better than a composite program object.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.data.programs import (
    MAX_WHILE_ITERATIONS,
    random_case,
    random_rewrite_case,
)
from repro.engine.optimizer import RULE_ORDER, optimize_program
from repro.obs.stats import analyze_database
from repro.runtime.checkpoint import database_to_data

SEEDS = st.integers(min_value=0, max_value=50_000)

RULE_STRATEGY = st.sampled_from(RULE_ORDER)


def _outcome(program, db):
    try:
        result = program.run(db, max_while_iterations=MAX_WHILE_ITERATIONS)
    except ReproError as err:
        return type(err).__name__, None
    return "ok", json.dumps(database_to_data(result), sort_keys=True)


def _statements_repr(program):
    return [repr(s) for s in program.statements]


class TestRulesCommuteWithEvaluation:
    @settings(max_examples=60, deadline=None)
    @given(seed=SEEDS, rule=RULE_STRATEGY)
    def test_single_rule_on_rewrite_family(self, seed, rule):
        program, db = random_rewrite_case(seed)
        stats = analyze_database(db)
        optimized = optimize_program(
            program, stats, rules=[rule], cache=None
        ).program
        assert _outcome(program, db) == _outcome(optimized, db)

    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS, rule=RULE_STRATEGY)
    def test_single_rule_without_stats(self, seed, rule):
        # No stats: join-reorder must refuse, everything else is
        # stats-independent; either way evaluation is unchanged.
        program, db = random_rewrite_case(seed)
        optimized = optimize_program(program, rules=[rule], cache=None).program
        assert _outcome(program, db) == _outcome(optimized, db)

    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS)
    def test_full_pipeline_on_shared_corpus(self, seed):
        program, db = random_case(seed)
        stats = analyze_database(db)
        optimized = optimize_program(program, stats, cache=None).program
        assert _outcome(program, db) == _outcome(optimized, db)


class TestIdempotence:
    @settings(max_examples=60, deadline=None)
    @given(seed=SEEDS, rule=RULE_STRATEGY)
    def test_each_rule_is_idempotent(self, seed, rule):
        program, db = random_rewrite_case(seed)
        stats = analyze_database(db)
        once = optimize_program(program, stats, rules=[rule], cache=None)
        twice = optimize_program(once.program, stats, rules=[rule], cache=None)
        assert twice.applied == (), (
            f"{rule} re-applied on its own output: "
            f"{[r.detail for r in twice.applied]}"
        )
        assert _statements_repr(twice.program) == _statements_repr(once.program)


class TestConfluence:
    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS)
    def test_shipped_set_reaches_a_fixpoint(self, seed):
        program, db = random_rewrite_case(seed)
        stats = analyze_database(db)
        once = optimize_program(program, stats, cache=None)
        twice = optimize_program(once.program, stats, cache=None)
        assert _statements_repr(twice.program) == _statements_repr(once.program)
        # And the fixpoint still evaluates like the source program.
        assert _outcome(program, db) == _outcome(twice.program, db)
