"""Property-based tests for the core model (weak equality, tables)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NULL,
    Table,
    TabularDatabase,
    weakly_contained,
    weakly_equal,
)
from tabular_strategies import databases, symbols, tables

symbol_sets = st.frozensets(symbols(), max_size=4)


class TestWeakEqualityLaws:
    @given(symbol_sets)
    def test_reflexive(self, a):
        assert weakly_equal(a, a)

    @given(symbol_sets, symbol_sets)
    def test_symmetric(self, a, b):
        assert weakly_equal(a, b) == weakly_equal(b, a)

    @given(symbol_sets, symbol_sets, symbol_sets)
    def test_transitive(self, a, b, c):
        if weakly_equal(a, b) and weakly_equal(b, c):
            assert weakly_equal(a, c)

    @given(symbol_sets, symbol_sets)
    def test_antisymmetry_of_containment(self, a, b):
        if weakly_contained(a, b) and weakly_contained(b, a):
            assert weakly_equal(a, b)

    @given(symbol_sets)
    def test_null_is_neutral(self, a):
        assert weakly_equal(a, set(a) | {NULL})

    @given(symbol_sets, symbol_sets, symbol_sets)
    def test_union_congruence(self, a, b, c):
        if weakly_equal(a, b):
            assert weakly_equal(set(a) | set(c), set(b) | set(c))


class TestTableLaws:
    @given(tables())
    def test_transpose_involution(self, t):
        assert t.transpose().transpose() == t

    @given(tables())
    def test_transpose_swaps_dimensions(self, t):
        assert (t.transpose().width, t.transpose().height) == (t.height, t.width)

    @given(tables())
    def test_equivalence_reflexive(self, t):
        assert t.equivalent(t)

    @given(tables(max_width=3, max_height=3))
    @settings(max_examples=50)
    def test_equivalent_under_any_row_and_column_shuffle(self, t):
        rows = [0] + list(reversed(range(1, t.nrows)))
        cols = [0] + list(reversed(range(1, t.ncols)))
        shuffled = t.subtable(rows, cols)
        assert t.equivalent(shuffled)
        assert shuffled.equivalent(t)

    @given(tables())
    def test_symbols_cover_grid(self, t):
        for row in t.grid:
            for entry in row:
                assert entry in t.symbols()

    @given(tables())
    def test_row_entry_set_never_contains_foreign_entries(self, t):
        for i in t.data_row_indices():
            for a in set(t.column_attributes):
                assert t.row_entry_set(i, a) <= set(t.data_row(i))

    @given(tables(min_height=1, min_width=1))
    def test_every_row_subsumes_itself(self, t):
        for i in t.data_row_indices():
            assert t.row_subsumed_by(i, t, i)

    @given(tables())
    def test_sorted_canonically_is_equivalent_fixpoint(self, t):
        canon = t.sorted_canonically()
        assert canon.equivalent(t)
        assert canon.sorted_canonically() == canon


class TestDatabaseLaws:
    @given(databases())
    def test_order_independence(self, db):
        assert TabularDatabase(reversed(db.tables)) == db

    @given(databases(), databases())
    def test_union_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(databases())
    def test_replace_then_lookup(self, db):
        names = sorted(db.table_names(), key=lambda s: s.sort_key())
        if not names:
            return
        name = names[0]
        emptied = db.replace_named(name, [])
        assert emptied.tables_named(name) == ()

    @given(databases())
    def test_equivalence_reflexive(self, db):
        assert db.equivalent(db)
