"""Cross-validation: the tabular algebra against the relational algebra.

On relation-style tables the tabular operations must implement the
classical semantics (that is the content of Section 3's "adaptations" and
of the classical-union recipe).  These properties run both engines on
random relations and require identical results — two independent
implementations checking each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    classical_union,
    deduplicate,
    difference,
    intersection,
    natural_join,
    product,
    project,
    select,
    select_constant,
)
from repro.core import Value
from repro.relational import (
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    SelectConst,
    SelectEq,
    Union,
    relation_to_table,
    table_to_relation,
)

VALUES = ["u", "v", 1, 2]


@st.composite
def relations(draw, name="R", columns=("A", "B"), max_rows=5):
    n = draw(st.integers(0, max_rows))
    rows = [
        tuple(draw(st.sampled_from(VALUES)) for _ in columns) for _ in range(n)
    ]
    return Relation(name, columns, rows)


def tabular(relation: Relation):
    return relation_to_table(relation)


def back(table, schema):
    return table_to_relation(table, schema=schema)


class TestBinaryOperations:
    @given(relations(), relations(name="S"))
    @settings(max_examples=60, deadline=None)
    def test_classical_union(self, r, s):
        reference = Union(Rel("R"), Rel("S")).evaluate(
            RelationalDatabase([r, s])
        )
        result = back(classical_union(tabular(r), tabular(s)), reference.schema)
        assert result.tuples == reference.tuples

    @given(relations(), relations(name="S"))
    @settings(max_examples=60, deadline=None)
    def test_difference(self, r, s):
        reference = Difference(Rel("R"), Rel("S")).evaluate(
            RelationalDatabase([r, s])
        )
        result = back(difference(tabular(r), tabular(s)), reference.schema)
        assert result.tuples == reference.tuples

    @given(relations(), relations(name="S"))
    @settings(max_examples=60, deadline=None)
    def test_intersection(self, r, s):
        reference = Intersection(Rel("R"), Rel("S")).evaluate(
            RelationalDatabase([r, s])
        )
        result = back(intersection(tabular(r), tabular(s)), reference.schema)
        assert result.tuples == reference.tuples

    @given(relations(max_rows=4), relations(name="S", columns=("C", "D"), max_rows=4))
    @settings(max_examples=40, deadline=None)
    def test_product(self, r, s):
        reference = Product(Rel("R"), Rel("S")).evaluate(
            RelationalDatabase([r, s])
        )
        result = back(
            deduplicate(product(tabular(r), tabular(s))), reference.schema
        )
        assert result.tuples == reference.tuples

    @given(relations(columns=("A", "B")), relations(name="S", columns=("B", "C")))
    @settings(max_examples=40, deadline=None)
    def test_natural_join(self, r, s):
        reference = Join(Rel("R"), Rel("S")).evaluate(RelationalDatabase([r, s]))
        result = back(natural_join(tabular(r), tabular(s)), reference.schema)
        assert result.tuples == reference.tuples


class TestUnaryOperations:
    @given(relations())
    @settings(max_examples=60, deadline=None)
    def test_project(self, r):
        reference = Project(Rel("R"), ["B"]).evaluate(RelationalDatabase([r]))
        result = back(deduplicate(project(tabular(r), ["B"])), reference.schema)
        assert result.tuples == reference.tuples

    @given(relations())
    @settings(max_examples=60, deadline=None)
    def test_select_eq(self, r):
        reference = SelectEq(Rel("R"), "A", "B").evaluate(RelationalDatabase([r]))
        result = back(select(tabular(r), "A", "B"), reference.schema)
        assert result.tuples == reference.tuples

    @given(relations(), st.sampled_from(VALUES))
    @settings(max_examples=60, deadline=None)
    def test_select_const(self, r, constant):
        reference = SelectConst(Rel("R"), "A", constant).evaluate(
            RelationalDatabase([r])
        )
        result = back(select_constant(tabular(r), "A", constant), reference.schema)
        assert result.tuples == reference.tuples
