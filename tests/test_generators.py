"""Unit tests for the synthetic workload generators."""

import pytest

from repro.core import NULL, N, Name, Value
from repro.data import (
    random_database,
    random_table,
    synthetic_grouped_table,
    synthetic_sales_facts,
    synthetic_sales_table,
)


class TestSalesFacts:
    def test_deterministic(self):
        assert synthetic_sales_facts(5, 3, seed=7) == synthetic_sales_facts(5, 3, seed=7)

    def test_seed_changes_output(self):
        assert synthetic_sales_facts(5, 3, seed=1) != synthetic_sales_facts(5, 3, seed=2)

    def test_every_part_appears(self):
        facts = synthetic_sales_facts(10, 4, density=0.05, seed=3)
        assert len({p for (p, _r, _s) in facts}) == 10

    def test_density_validated(self):
        with pytest.raises(ValueError):
            synthetic_sales_facts(3, 3, density=1.5)

    def test_density_extremes(self):
        full = synthetic_sales_facts(4, 3, density=1.0, seed=0)
        assert len(full) == 12
        sparse = synthetic_sales_facts(4, 3, density=0.0, seed=0)
        assert len(sparse) == 4  # one guaranteed fact per part


class TestTables:
    def test_sales_table_shape(self):
        table = synthetic_sales_table(6, 4, seed=5)
        assert table.column_attributes == (N("Part"), N("Region"), N("Sold"))
        assert table.height >= 6

    def test_grouped_table_shape(self):
        table = synthetic_grouped_table(6, 4, seed=5)
        assert table.entry(1, 0) == N("Region")
        assert all(a == N("Sold") for a in table.column_attributes[1:])

    def test_grouped_matches_facts(self):
        facts = synthetic_sales_facts(6, 4, seed=5)
        table = synthetic_grouped_table(6, 4, seed=5)
        total_cells = sum(
            1
            for i in range(2, table.nrows)
            for j in range(2, table.ncols)
            if not table.entry(i, j).is_null
        )
        assert total_cells == len(facts)

    def test_random_table_is_valid(self):
        table = random_table(height=6, width=4, seed=11)
        assert table.nrows == 7 and table.ncols == 5
        assert table.name == N("T")

    def test_random_table_deterministic(self):
        assert random_table(4, 3, seed=2) == random_table(4, 3, seed=2)

    def test_random_database(self):
        db = random_database(5, seed=9)
        assert len(db) <= 5  # set semantics may deduplicate
        assert all(t.nrows >= 1 for t in db.tables)
