"""Unit tests for the FO + while + new interpreter."""

import pytest

from repro.core import (
    FreshValueSource,
    NonTerminationError,
    SchemaError,
    TaggedValue,
)
from repro.relational import (
    Assign,
    AssignNew,
    Difference,
    FWProgram,
    Join,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    RenameAttr,
    Union,
    WhileNotEmpty,
)


def graph(*edges):
    return RelationalDatabase([Relation("E", ["A", "B"], edges)])


def tc_program() -> FWProgram:
    """Transitive closure — the canonical while-program."""
    step = (
        Join(
            Rel("TC").rename("A", "X").rename("B", "Y"),
            Rel("E").rename("A", "Y").rename("B", "Z"),
        )
        .project("X", "Z")
        .rename("X", "A")
        .rename("Z", "B")
    )
    return FWProgram(
        [
            Assign("TC", Rel("E")),
            Assign("Delta", Rel("E")),
            WhileNotEmpty(
                "Delta",
                [
                    Assign("Step", step),
                    Assign("Delta", Difference(Rel("Step"), Rel("TC"))),
                    Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                ],
            ),
        ]
    )


class TestAssign:
    def test_binds_result(self):
        db = graph((1, 2))
        out = FWProgram([Assign("Copy", Rel("E"))]).run(db)
        assert out.relation("Copy").tuples == db.relation("E").tuples

    def test_rebinding_replaces(self):
        db = graph((1, 2))
        prog = FWProgram(
            [Assign("X", Rel("E")), Assign("X", Difference(Rel("E"), Rel("E")))]
        )
        assert len(prog.run(db).relation("X")) == 0


class TestAssignNew:
    def test_extends_with_fresh_ids(self):
        db = graph((1, 2), (2, 3))
        out = FWProgram([AssignNew("Tagged", Rel("E"), "Id")]).run(db)
        tagged = out.relation("Tagged")
        assert tagged.schema == ("A", "B", "Id")
        ids = [row[2] for row in tagged]
        assert len(set(ids)) == 2
        assert all(isinstance(i, TaggedValue) for i in ids)

    def test_ids_fresh_wrt_database(self):
        db = RelationalDatabase([Relation("E", ["A", "B"], [(TaggedValue(9), 1)])])
        out = FWProgram([AssignNew("T", Rel("E"), "Id")]).run(db)
        new_id = next(iter(out.relation("T")))[2]
        assert new_id.payload > 9

    def test_id_attribute_collision(self):
        db = graph((1, 2))
        with pytest.raises(SchemaError):
            FWProgram([AssignNew("T", Rel("E"), "A")]).run(db)


class TestWhile:
    def test_transitive_closure_chain(self):
        out = tc_program().run(graph((1, 2), (2, 3), (3, 4)))
        tuples = {tuple(s.payload for s in row) for row in out.relation("TC")}
        assert tuples == {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}

    def test_transitive_closure_cycle(self):
        out = tc_program().run(graph((1, 2), (2, 1)))
        tuples = {tuple(s.payload for s in row) for row in out.relation("TC")}
        assert tuples == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_empty_graph(self):
        out = tc_program().run(graph())
        assert len(out.relation("TC")) == 0

    def test_iteration_budget(self):
        infinite = FWProgram(
            [Assign("X", Rel("E")), WhileNotEmpty("X", [Assign("X", Rel("X"))])]
        )
        with pytest.raises(NonTerminationError):
            infinite.run(graph((1, 2)), max_while_iterations=10)

    def test_condition_on_absent_relation_is_false(self):
        prog = FWProgram([WhileNotEmpty("Nope", [Assign("X", Rel("E"))])])
        out = prog.run(graph((1, 2)))
        assert out.get("X") is None


class TestProgram:
    def test_concatenation(self):
        p = FWProgram([Assign("X", Rel("E"))]) + FWProgram([Assign("Y", Rel("X"))])
        assert len(p) == 2

    def test_rejects_non_statements(self):
        with pytest.raises(Exception):
            FWProgram(["bogus"])  # type: ignore[list-item]

    def test_determinism_up_to_fresh_choice(self):
        db = graph((1, 2))
        prog = FWProgram([AssignNew("T", Rel("E"), "Id")])
        a = prog.run(db, fresh=FreshValueSource(100))
        b = prog.run(db, fresh=FreshValueSource(200))
        assert len(a.relation("T")) == len(b.relation("T"))
        assert a.relation("T") != b.relation("T")  # different id choices
