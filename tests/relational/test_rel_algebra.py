"""Unit tests for the classical relational algebra."""

import pytest

from repro.core import SchemaError, V
from repro.relational import (
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    RenameAttr,
    SelectConst,
    SelectEq,
    Union,
)


@pytest.fixture
def db():
    return RelationalDatabase(
        [
            Relation("R", ["A", "B"], [(1, 2), (3, 4)]),
            Relation("S", ["A", "B"], [(3, 4), (5, 6)]),
            Relation("T", ["C"], [(7,), (8,)]),
            Relation("E", ["A", "B"], [(1, 2), (2, 3)]),
        ]
    )


def rows(relation):
    return {tuple(s.payload for s in row) for row in relation.tuples}


class TestOperations:
    def test_union(self, db):
        assert rows(Union(Rel("R"), Rel("S")).evaluate(db)) == {(1, 2), (3, 4), (5, 6)}

    def test_union_incompatible(self, db):
        with pytest.raises(SchemaError):
            Union(Rel("R"), Rel("T")).evaluate(db)

    def test_difference(self, db):
        assert rows(Difference(Rel("R"), Rel("S")).evaluate(db)) == {(1, 2)}

    def test_intersection(self, db):
        assert rows(Intersection(Rel("R"), Rel("S")).evaluate(db)) == {(3, 4)}

    def test_product(self, db):
        result = Product(Rel("R"), Rel("T")).evaluate(db)
        assert result.schema == ("A", "B", "C")
        assert len(result) == 4

    def test_product_overlap_rejected(self, db):
        with pytest.raises(SchemaError):
            Product(Rel("R"), Rel("S")).evaluate(db)

    def test_project(self, db):
        result = Project(Rel("R"), ["B"]).evaluate(db)
        assert result.schema == ("B",)
        assert rows(result) == {(2,), (4,)}

    def test_project_dedups(self, db):
        wide = RelationalDatabase([Relation("W", ["A", "B"], [(1, 2), (1, 3)])])
        assert len(Project(Rel("W"), ["A"]).evaluate(wide)) == 1

    def test_project_unknown_attribute(self, db):
        with pytest.raises(SchemaError):
            Project(Rel("R"), ["Z"]).evaluate(db)

    def test_select_eq(self, db):
        eq = RelationalDatabase([Relation("W", ["A", "B"], [(1, 1), (1, 2)])])
        assert rows(SelectEq(Rel("W"), "A", "B").evaluate(eq)) == {(1, 1)}

    def test_select_const(self, db):
        assert rows(SelectConst(Rel("R"), "A", 3).evaluate(db)) == {(3, 4)}

    def test_rename(self, db):
        result = RenameAttr(Rel("R"), "A", "Z").evaluate(db)
        assert result.schema == ("Z", "B")

    def test_rename_collision_rejected(self, db):
        with pytest.raises(SchemaError):
            RenameAttr(Rel("R"), "A", "B").evaluate(db)

    def test_join(self, db):
        joined = Join(
            RenameAttr(RenameAttr(Rel("E"), "B", "Mid"), "A", "Src"),
            RenameAttr(RenameAttr(Rel("E"), "A", "Mid"), "B", "Dst"),
        ).evaluate(db)
        assert joined.schema == ("Src", "Mid", "Dst")
        assert rows(joined) == {(1, 2, 3)}

    def test_join_without_common_attributes_is_product(self, db):
        joined = Join(Rel("R"), Rel("T")).evaluate(db)
        assert len(joined) == 4

    def test_operator_sugar(self, db):
        expr = (Rel("R") | Rel("S")) - Rel("S")
        assert rows(expr.evaluate(db)) == {(1, 2)}
        expr2 = Rel("R").project("A").rename("A", "X")
        assert expr2.evaluate(db).schema == ("X",)

    def test_schema_static_matches_dynamic(self, db):
        exprs = [
            Union(Rel("R"), Rel("S")),
            Product(Rel("R"), Rel("T")),
            Project(Rel("R"), ["B"]),
            SelectEq(Rel("R"), "A", "B"),
            SelectConst(Rel("R"), "A", 1),
            RenameAttr(Rel("R"), "A", "Z"),
            Join(Rel("R"), Rel("S")),
        ]
        for expr in exprs:
            assert expr.schema(db) == expr.evaluate(db).schema
