"""Unit tests for relations and relational databases."""

import pytest

from repro.core import SchemaError, TaggedValue, V
from repro.relational import Relation, RelationalDatabase


class TestRelation:
    def test_set_semantics(self):
        r = Relation("R", ["A"], [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            Relation("R", ["A", "B"], [(1,)])

    def test_distinct_attributes_required(self):
        with pytest.raises(SchemaError):
            Relation("R", ["A", "A"])

    def test_contains(self):
        r = Relation("R", ["A", "B"], [(1, 2)])
        assert (V(1), V(2)) in r
        assert (1, 2) in r
        assert (2, 1) not in r

    def test_iteration_deterministic(self):
        r = Relation("R", ["A"], [(3,), (1,), (2,)])
        assert [row[0].payload for row in r] == [1, 2, 3]

    def test_attribute_index_and_column(self):
        r = Relation("R", ["A", "B"], [(1, 2), (3, 2)])
        assert r.attribute_index("B") == 1
        assert r.column("B") == frozenset([V(2)])
        with pytest.raises(SchemaError):
            r.attribute_index("Z")

    def test_with_name_and_tuples(self):
        r = Relation("R", ["A"], [(1,)])
        assert r.with_name("S").name == "S"
        assert len(r.with_tuples([(1,), (2,)])) == 2

    def test_symbols(self):
        r = Relation("R", ["A"], [(TaggedValue(3),)])
        assert TaggedValue(3) in r.symbols()

    def test_equality(self):
        assert Relation("R", ["A"], [(1,)]) == Relation("R", ["A"], [(1,)])
        assert Relation("R", ["A"], [(1,)]) != Relation("S", ["A"], [(1,)])


class TestRelationalDatabase:
    def test_lookup(self):
        db = RelationalDatabase([Relation("R", ["A"], [(1,)])])
        assert db.relation("R").arity == 1
        assert db.get("Z") is None
        with pytest.raises(SchemaError):
            db.relation("Z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationalDatabase([Relation("R", ["A"]), Relation("R", ["B"])])

    def test_set_replaces(self):
        db = RelationalDatabase([Relation("R", ["A"], [(1,)])])
        db2 = db.set(Relation("R", ["A"], [(2,)]))
        assert (2,) in db2.relation("R")
        assert (1,) in db.relation("R")  # original untouched

    def test_drop(self):
        db = RelationalDatabase([Relation("R", ["A"])])
        assert "R" not in db.drop("R")

    def test_names_sorted(self):
        db = RelationalDatabase([Relation("S", ["A"]), Relation("R", ["A"])])
        assert db.names() == ("R", "S")
