"""Unit tests for the FO+while+new setnew (power-set) statement."""

import pytest

from repro.core import LimitExceededError, SchemaError, TaggedValue, database
from repro.relational import (
    AssignSetNew,
    FWProgram,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    compile_program,
    relational_to_tabular,
    table_to_relation,
)


def base(n=2):
    return RelationalDatabase([Relation("R", ["A"], [(i,) for i in range(n)])])


class TestNative:
    def test_enumerates_all_nonempty_subsets(self):
        out = FWProgram([AssignSetNew("S", Rel("R"), "Tag")]).run(base(2))
        s = out.relation("S")
        assert s.schema == ("A", "Tag")
        # {0}, {1}, {0,1} -> 1 + 1 + 2 rows
        assert len(s) == 4
        tags = {row[1] for row in s.tuples}
        assert len(tags) == 3
        assert all(isinstance(t, TaggedValue) for t in tags)

    def test_subset_rows_share_their_tag(self):
        out = FWProgram([AssignSetNew("S", Rel("R"), "Tag")]).run(base(2))
        s = out.relation("S")
        by_tag = {}
        for (a, tag) in s.tuples:
            by_tag.setdefault(tag, set()).add(a)
        sizes = sorted(len(members) for members in by_tag.values())
        assert sizes == [1, 1, 2]

    def test_attribute_collision(self):
        with pytest.raises(SchemaError):
            FWProgram([AssignSetNew("S", Rel("R"), "A")]).run(base(1))

    def test_exponential_guard(self):
        with pytest.raises(LimitExceededError):
            FWProgram([AssignSetNew("S", Rel("R"), "Tag", limit=4)]).run(base(5))

    def test_empty_base_yields_empty(self):
        out = FWProgram([AssignSetNew("S", Rel("R"), "Tag")]).run(base(0))
        assert len(out.relation("S")) == 0


class TestCompiled:
    def test_compiled_setnew_matches_native_shape(self):
        program = FWProgram([AssignSetNew("S", Rel("R"), "Tag")])
        native = program.run(base(3)).relation("S")
        ta = compile_program(program, {"R": ("A",)})
        out = ta.run(relational_to_tabular(base(3)))
        simulated = table_to_relation(out.tables_named("S")[0], schema=("A", "Tag"))
        assert len(simulated) == len(native)
        native_sizes = sorted(
            len({a for (a, t) in native.tuples if t == tag})
            for tag in {t for (_a, t) in native.tuples}
        )
        simulated_sizes = sorted(
            len({a for (a, t) in simulated.tuples if t == tag})
            for tag in {t for (_a, t) in simulated.tuples}
        )
        assert simulated_sizes == native_sizes

    def test_schema_tracked(self):
        program = FWProgram(
            [
                AssignSetNew("S", Rel("R"), "Tag"),
                # downstream statement uses the tracked schema
                AssignSetNew("T", Project(Rel("S"), ["Tag"]), "Outer", limit=8),
            ]
        )
        out = program.run(base(1))
        assert out.relation("T").schema == ("Tag", "Outer")
