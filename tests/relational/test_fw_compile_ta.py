"""Theorem 4.1 tests: FO + while + new simulated within the tabular algebra.

Every test runs a program twice — natively over relations and compiled to
tabular algebra over the tabular embedding — and demands identical results
for the output relations (ignoring the compiler's ``__fw`` temporaries).
"""

import pytest

from repro.core import SchemaError
from repro.data import generators
from repro.relational import (
    Assign,
    AssignNew,
    Difference,
    FWProgram,
    Intersection,
    Join,
    Product,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    RenameAttr,
    SelectConst,
    SelectEq,
    TEMP_PREFIX,
    Union,
    WhileNotEmpty,
    compile_expression,
    compile_program,
    relational_to_tabular,
    table_to_relation,
)


def run_both(program: FWProgram, db: RelationalDatabase, schemas, outputs):
    """Run natively and via TA; return (native, simulated) per output name."""
    native = program.run(db)
    ta_program = compile_program(program, schemas)
    tabular_out = ta_program.run(relational_to_tabular(db))
    results = {}
    for name in outputs:
        native_rel = native.relation(name)
        tables = tabular_out.tables_named(name)
        assert len(tables) == 1, f"expected one table named {name}"
        simulated = table_to_relation(tables[0]).with_name(name)
        results[name] = (native_rel, simulated)
    return results


def assert_agree(program, db, schemas, outputs):
    for name, (native, simulated) in run_both(program, db, schemas, outputs).items():
        assert simulated.schema == native.schema, name
        assert simulated.tuples == native.tuples, name


GRAPH = RelationalDatabase(
    [Relation("E", ["A", "B"], [(1, 2), (2, 3), (3, 4), (4, 2)])]
)
SCHEMAS = {"E": ("A", "B")}


class TestExpressionCompilation:
    @pytest.mark.parametrize(
        "expr",
        [
            Rel("E"),
            Union(Rel("E"), Rel("E")),
            Difference(Rel("E"), SelectConst(Rel("E"), "A", 1)),
            Intersection(Rel("E"), Rel("E")),
            Project(Rel("E"), ["B"]),
            SelectEq(Rel("E"), "A", "B"),
            SelectConst(Rel("E"), "B", 2),
            RenameAttr(Rel("E"), "A", "Src"),
            Product(Rel("E"), RenameAttr(RenameAttr(Rel("E"), "A", "C"), "B", "D")),
            Join(
                RenameAttr(Rel("E"), "A", "Src"),
                RenameAttr(Rel("E"), "B", "Dst"),
            ),
        ],
        ids=[
            "ref",
            "union",
            "difference",
            "intersection",
            "project",
            "select-eq",
            "select-const",
            "rename",
            "product",
            "join",
        ],
    )
    def test_expression_agrees(self, expr):
        program = FWProgram([Assign("Out", expr)])
        assert_agree(program, GRAPH, SCHEMAS, ["Out"])

    def test_compile_expression_helper(self):
        program = compile_expression(Project(Rel("E"), ["A"]), SCHEMAS, "Out")
        out = program.run(relational_to_tabular(GRAPH))
        relation = table_to_relation(out.tables_named("Out")[0])
        assert relation.schema == ("A",)
        assert len(relation) == 4

    def test_union_with_duplicates_dedups(self):
        db = RelationalDatabase(
            [
                Relation("R", ["A"], [(1,), (2,)]),
                Relation("S", ["A"], [(2,), (3,)]),
            ]
        )
        program = FWProgram([Assign("Out", Union(Rel("R"), Rel("S")))])
        assert_agree(program, db, {"R": ("A",), "S": ("A",)}, ["Out"])


class TestProgramCompilation:
    def test_transitive_closure(self):
        step = (
            Join(
                Rel("TC").rename("A", "X").rename("B", "Y"),
                Rel("E").rename("A", "Y").rename("B", "Z"),
            )
            .project("X", "Z")
            .rename("X", "A")
            .rename("Z", "B")
        )
        program = FWProgram(
            [
                Assign("TC", Rel("E")),
                Assign("Delta", Rel("E")),
                WhileNotEmpty(
                    "Delta",
                    [
                        Assign("Step", step),
                        Assign("Delta", Difference(Rel("Step"), Rel("TC"))),
                        Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                    ],
                ),
            ]
        )
        assert_agree(program, GRAPH, SCHEMAS, ["TC"])

    def test_transitive_closure_on_random_graphs(self):
        import random

        rng = random.Random(7)
        for trial in range(3):
            n = 5 + trial
            edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(n + 2)}
            db = RelationalDatabase([Relation("E", ["A", "B"], edges)])
            step = (
                Join(
                    Rel("TC").rename("A", "X").rename("B", "Y"),
                    Rel("E").rename("A", "Y").rename("B", "Z"),
                )
                .project("X", "Z")
                .rename("X", "A")
                .rename("Z", "B")
            )
            program = FWProgram(
                [
                    Assign("TC", Rel("E")),
                    Assign("Delta", Rel("E")),
                    WhileNotEmpty(
                        "Delta",
                        [
                            Assign("Step", step),
                            Assign("Delta", Difference(Rel("Step"), Rel("TC"))),
                            Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                        ],
                    ),
                ]
            )
            assert_agree(program, db, SCHEMAS, ["TC"])

    def test_new_construct_sizes_agree(self):
        # Fresh ids differ between runs, so compare shapes, not values.
        program = FWProgram([AssignNew("Tagged", Rel("E"), "Id")])
        results = run_both(program, GRAPH, SCHEMAS, ["Tagged"])
        native, simulated = results["Tagged"]
        assert simulated.schema == native.schema
        assert len(simulated) == len(native)
        ids = {row[2] for row in simulated.tuples}
        assert len(ids) == len(simulated)

    def test_sequencing_and_rebinding(self):
        program = FWProgram(
            [
                Assign("X", Rel("E")),
                Assign("X", SelectConst(Rel("X"), "A", 2)),
                Assign("Out", Project(Rel("X"), ["B"])),
            ]
        )
        assert_agree(program, GRAPH, SCHEMAS, ["Out", "X"])

    def test_temp_tables_are_reserved_names(self):
        program = FWProgram([Assign("Out", Project(Rel("E"), ["A"]))])
        ta_program = compile_program(program, SCHEMAS)
        out = ta_program.run(relational_to_tabular(GRAPH))
        temp_names = [
            str(n) for n in out.table_names() if str(n).startswith(TEMP_PREFIX)
        ]
        assert temp_names  # intermediates exist and are clearly reserved

    def test_schema_unstable_while_rejected(self):
        # the body renames A away, so it cannot re-apply on the next pass
        unstable = FWProgram(
            [
                Assign("X", Rel("E")),
                WhileNotEmpty("X", [Assign("X", RenameAttr(Rel("X"), "A", "A2"))]),
            ]
        )
        with pytest.raises(SchemaError):
            compile_program(unstable, SCHEMAS)

    def test_schema_stable_shrinking_while_accepted(self):
        # projecting X onto A stabilizes after one pass and must compile
        stable = FWProgram(
            [
                Assign("X", Rel("E")),
                WhileNotEmpty(
                    "X",
                    [
                        Assign("X", Project(Rel("X"), ["A"])),
                        Assign("X", Difference(Rel("X"), Rel("X"))),
                    ],
                ),
            ]
        )
        assert_agree(stable, GRAPH, SCHEMAS, ["X"])

    def test_unknown_relation_rejected_at_compile_time(self):
        with pytest.raises(SchemaError):
            compile_program(FWProgram([Assign("X", Rel("Nope"))]), SCHEMAS)
