"""Unit tests for the tabular algebra program optimizer."""

import pytest

from repro.algebra.programs import (
    Assignment,
    Program,
    Star,
    While,
    assign,
    collapse_idempotent_pairs,
    eliminate_dead_statements,
    optimize,
    parse_program,
)
from repro.core import N, database, make_table
from repro.relational import (
    Assign,
    FWProgram,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    compile_program,
    relational_to_tabular,
)


def db():
    return database(make_table("R", ["A", "B"], [(1, 2), (1, 2), (3, 4)]))


class TestDeadStatementElimination:
    def test_drops_unused_temporaries(self):
        program = parse_program(
            """
            Tmp1 <- DEDUP (R)
            Tmp2 <- TRANSPOSE (R)
            Out  <- DEDUP (Tmp1)
            """
        )
        optimized = eliminate_dead_statements(program, ["Out"])
        assert len(optimized) == 2  # Tmp2 is dead

    def test_keeps_everything_reachable(self):
        program = parse_program(
            """
            Tmp <- DEDUP (R)
            Out <- TRANSPOSE (Tmp)
            """
        )
        assert len(eliminate_dead_statements(program, ["Out"])) == 2

    def test_results_unchanged(self):
        program = parse_program(
            """
            Tmp1 <- DEDUP (R)
            Dead <- TRANSPOSE (Tmp1)
            Out  <- PROJECT attrs {A} (Tmp1)
            """
        )
        optimized = eliminate_dead_statements(program, ["Out"])
        full = program.run(db()).tables_named("Out")
        lean = optimized.run(db()).tables_named("Out")
        assert full == lean

    def test_rebinding_kills_earlier_write(self):
        program = parse_program(
            """
            Out <- DEDUP (R)
            Out <- TRANSPOSE (R)
            """
        )
        optimized = eliminate_dead_statements(program, ["Out"])
        assert len(optimized) == 1

    def test_wildcards_block_elimination(self):
        program = Program(
            [
                assign("Dead", "DEDUP", "R"),
                Assignment(Star(0), "DEDUP", [Star(0)]),
                assign("Out", "DEDUP", "R"),
            ]
        )
        optimized = eliminate_dead_statements(program, ["Out"])
        assert len(optimized) == 3  # conservative: nothing removed

    def test_while_loops_kept_when_observed(self):
        program = parse_program(
            """
            Work <- DEDUP (R)
            while Work do
                Work <- DIFFERENCE (Work, R)
            end
            Out <- DEDUP (Work)
            """
        )
        optimized = eliminate_dead_statements(program, ["Out"])
        assert any(isinstance(s, While) for s in optimized.statements)


class TestChainCollapsing:
    def test_dedup_chain(self):
        program = parse_program(
            """
            T <- DEDUP (R)
            U <- DEDUP (T)
            """
        )
        collapsed = collapse_idempotent_pairs(program)
        second = collapsed.statements[1]
        assert isinstance(second, Assignment)
        assert str(second.args[0]) == "R"  # reads the original source

    def test_transpose_chain_becomes_copy(self):
        program = parse_program(
            """
            T <- TRANSPOSE (R)
            U <- TRANSPOSE (T)
            """
        )
        collapsed = collapse_idempotent_pairs(program)
        out = collapsed.run(db())
        assert out.tables_named("U")[0] == db().tables[0].with_name(N("U"))

    def test_self_referential_chain_untouched(self):
        program = parse_program(
            """
            T <- DEDUP (T)
            U <- DEDUP (T)
            """
        )
        collapsed = collapse_idempotent_pairs(program)
        assert str(collapsed.statements[1].args[0]) == "T"

    def test_collapse_inside_while(self):
        program = parse_program(
            """
            while W do
                T <- TRANSPOSE (W)
                U <- TRANSPOSE (T)
                W <- DIFFERENCE (W, U)
            end
            """
        )
        collapsed = collapse_idempotent_pairs(program)
        loop = collapsed.statements[0]
        assert isinstance(loop, While)


class TestOptimizePipeline:
    def test_compiled_program_shrinks_and_agrees(self):
        fw = FWProgram([Assign("Out", Project(Rel("E"), ["A"]))])
        compiled = compile_program(fw, {"E": ("A", "B")})
        optimized = optimize(compiled, ["Out"])
        assert len(optimized) <= len(compiled)
        reldb = RelationalDatabase([Relation("E", ["A", "B"], [(1, 2), (1, 3)])])
        tdb = relational_to_tabular(reldb)
        full = compiled.run(tdb).tables_named("Out")
        lean = optimized.run(tdb).tables_named("Out")
        assert full == lean

    def test_optimize_preserves_pivot_pipeline(self):
        from repro.data import sales_info1, sales_info2

        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Scratch <- TRANSPOSE (Grouped)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        optimized = optimize(program, ["Pivot"])
        assert len(optimized) == 3  # Scratch eliminated
        out = optimized.run(sales_info1())
        pivot = out.tables_named("Pivot")[0]
        assert pivot.equivalent(sales_info2().tables[0].with_name(pivot.name))
