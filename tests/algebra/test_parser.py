"""Unit tests for the textual tabular algebra syntax."""

import pytest

from repro.algebra.programs import (
    Assignment,
    Lit,
    Pair,
    ParamSet,
    Star,
    While,
    parse_program,
    parse_statement,
)
from repro.core import NULL, N, ParseError, V, database, make_table
from repro.data import sales_info1, sales_info2


class TestParsing:
    def test_simple_assignment(self):
        stmt = parse_statement("T <- TRANSPOSE (R)")
        assert isinstance(stmt, Assignment)
        assert stmt.spec.name == "TRANSPOSE"
        assert isinstance(stmt.target, Lit) and stmt.target.symbol == N("T")

    def test_keyword_parameters(self):
        stmt = parse_statement("T <- GROUP by {Region} on {Sold} (Sales)")
        assert isinstance(stmt, Assignment)
        assert set(stmt.params) == {"by", "on"}

    def test_bare_parameter_without_braces(self):
        stmt = parse_statement("T <- GROUP by Region on Sold (Sales)")
        assert isinstance(stmt, Assignment)

    def test_negative_list(self):
        stmt = parse_statement("T <- PROJECT attrs {A, B - B} (R)")
        assert isinstance(stmt, Assignment)
        param = stmt.params["attrs"]
        assert isinstance(param, ParamSet)
        assert len(param.negative) == 1

    def test_null_and_values(self):
        stmt = parse_statement("T <- CLEANUP by {Part} on {null} (R)")
        assert isinstance(stmt, Assignment)
        stmt2 = parse_statement("T <- SWITCH value 'east' (R)")
        assert isinstance(stmt2, Assignment)
        assert stmt2.params["value"].symbol == V("east")  # type: ignore[attr-defined]

    def test_numeric_value(self):
        stmt = parse_statement("T <- SELECTCONST attr A value 42 (R)")
        assert stmt.params["value"].symbol == V(42)  # type: ignore[attr-defined]

    def test_wildcards(self):
        stmt = parse_statement("*1 <- DEDUP (*1)")
        assert isinstance(stmt.target, Star) and stmt.target.index == 1

    def test_pair_parameter(self):
        stmt = parse_statement("T <- PROJECT attrs {(Region, any)} (R)")
        param = stmt.params["attrs"]
        assert isinstance(param, ParamSet)
        assert isinstance(param.positive[0], Pair)

    def test_while_block(self):
        program = parse_program(
            """
            while Work do
                Work <- DIFFERENCE (Work, Done)
            end
            """
        )
        assert len(program) == 1
        assert isinstance(program.statements[0], While)

    def test_nested_while(self):
        program = parse_program(
            """
            while A do
                while B do
                    B <- DIFFERENCE (B, A)
                end
                A <- DIFFERENCE (A, B)
            end
            """
        )
        outer = program.statements[0]
        assert isinstance(outer, While)
        assert isinstance(outer.body.statements[0], While)

    def test_comments_and_blank_lines(self):
        program = parse_program(
            """
            # build the pivot
            T <- GROUP by {Region} on {Sold} (Sales)  # trailing comment
            """
        )
        assert len(program) == 1

    def test_multiple_arguments(self):
        stmt = parse_statement("T <- UNION (R, S)")
        assert len(stmt.args) == 2  # type: ignore[union-attr]

    def test_case_insensitive_operation(self):
        assert parse_statement("T <- group by {G} on {X} (R)").spec.name == "GROUP"  # type: ignore[union-attr]


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "T <- NOSUCHOP (R)",
            "T <- GROUP by {Region} (Sales)",  # missing 'on'
            "T <- UNION (R",  # unclosed parens
            "while Work do T <- DEDUP (Work)",  # missing end
            "T <- GROUP by {} on {Sold} (Sales)",  # empty set
            "T GROUP (R)",  # missing arrow
            "T <- UNION ()",  # no arguments
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_program(text)

    def test_error_carries_location(self):
        try:
            parse_program("T <-\nNOSUCHOP (R)")
        except ParseError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestParsedExecution:
    def test_pivot_program(self):
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        out = program.run(sales_info1())
        pivot = out.tables_named("Pivot")[0]
        expected = sales_info2().tables[0].with_name(N("Pivot"))
        assert pivot.equivalent(expected)

    def test_while_program(self):
        program = parse_program(
            """
            while Work do
                Work <- DIFFERENCE (Work, Done)
            end
            """
        )
        db = database(
            make_table("Work", ["A"], [(1,), (2,)]),
            make_table("Done", ["A"], [(1,), (2,)]),
        )
        out = program.run(db)
        assert out.tables_named("Work")[0].height == 0

    def test_roundtrip_repr_parse(self):
        stmt = parse_statement("T <- GROUP by {Region} on {Sold} (Sales)")
        reparsed = parse_statement(repr(stmt).replace("<-", "<- "))
        assert repr(reparsed) == repr(stmt)
