"""Unit tests for TUPLENEW and SETNEW (Section 3.5)."""

import pytest

from repro.algebra import setnew, tuplenew
from repro.core import (
    NULL,
    FreshValueSource,
    LimitExceededError,
    N,
    TaggedValue,
    V,
    make_table,
)


class TestTupleNew:
    def test_adds_column_with_distinct_new_values(self):
        t = make_table("R", ["A"], [(1,), (2,), (3,)])
        out = tuplenew(t, "Id")
        assert out.column_attributes == (N("A"), N("Id"))
        tags = out.data_column(2)
        assert len(set(tags)) == 3
        assert all(isinstance(tag, TaggedValue) for tag in tags)

    def test_shared_source_never_repeats(self):
        source = FreshValueSource()
        t = make_table("R", ["A"], [(1,)])
        first = tuplenew(t, "Id", source)
        second = tuplenew(t, "Id", source)
        assert first.entry(1, 2) != second.entry(1, 2)

    def test_empty_table(self):
        t = make_table("R", ["A"], [])
        out = tuplenew(t, "Id")
        assert out.height == 0 and out.width == 2

    def test_original_untouched(self):
        t = make_table("R", ["A"], [(1,)])
        tuplenew(t, "Id")
        assert t.width == 1


class TestSetNew:
    def test_enumerates_all_nonempty_subsets(self):
        t = make_table("R", ["A"], [(1,), (2,)])
        out = setnew(t, "Set")
        # subsets {1}, {2}, {1,2} -> 1 + 1 + 2 listed rows
        assert out.height == 4
        tags = set(out.data_column(2))
        assert len(tags) == 3

    def test_subset_members_share_their_tag(self):
        t = make_table("R", ["A"], [(1,), (2,)])
        out = setnew(t, "Set")
        pair_rows = [i for i in out.data_row_indices()]
        # last two rows form the {1,2} subset and share a tag
        assert out.entry(pair_rows[-1], 2) == out.entry(pair_rows[-2], 2)
        assert out.entry(pair_rows[0], 2) != out.entry(pair_rows[1], 2)

    def test_exponential_guard(self):
        t = make_table("R", ["A"], [(i,) for i in range(17)])
        with pytest.raises(LimitExceededError):
            setnew(t, "Set")

    def test_guard_override(self):
        t = make_table("R", ["A"], [(i,) for i in range(5)])
        out = setnew(t, "Set", limit=5)
        # sum over non-empty subsets of their sizes: 5 * 2^4 = 80
        assert out.height == 80

    def test_header_extended(self):
        t = make_table("R", ["A"], [(1,)])
        assert setnew(t, "Set").column_attributes == (N("A"), N("Set"))

    def test_empty_table_yields_no_subsets(self):
        t = make_table("R", ["A"], [])
        assert setnew(t, "Set").height == 0
