"""Unit tests for GROUP, MERGE, SPLIT, COLLAPSE (Section 3.2)."""

import pytest

from repro.algebra import (
    collapse,
    collapse_compact,
    group,
    group_compact,
    merge,
    merge_compact,
    segment_blocks,
    split,
    union,
)
from repro.core import NULL, N, UndefinedOperationError, V, make_table
from repro.data import figure4_bottom, figure4_top, figure5_result, sales_info2, sales_info4


class TestGroup:
    def test_reproduces_figure4_exactly(self, sales_relation, sales_grouped):
        assert group(sales_relation, by="Region", on="Sold") == sales_grouped

    def test_block_structure(self):
        t = make_table("R", ["K", "G", "X", "Y"], [(1, "a", 10, 11), (2, "b", 20, 21)])
        out = group(t, by="G", on=["X", "Y"])
        # attrs: K then (X, Y) per data row
        assert out.column_attributes == (N("K"), N("X"), N("Y"), N("X"), N("Y"))
        # G header row repeats the value across its block
        assert out.row(1) == (N("G"), NULL, V("a"), V("a"), V("b"), V("b"))
        # data rows carry their block, ⊥ elsewhere
        assert out.row(2) == (NULL, V(1), V(10), V(11), NULL, NULL)
        assert out.row(3) == (NULL, V(2), NULL, NULL, V(20), V(21))

    def test_multiple_by_attributes_give_multiple_header_rows(self):
        t = make_table("R", ["G", "H", "X"], [("a", "p", 1)])
        out = group(t, by=["G", "H"], on="X")
        assert out.row_attributes[:2] == (N("G"), N("H"))

    def test_disjointness_required(self):
        with pytest.raises(UndefinedOperationError):
            group(figure4_top(), by="Sold", on="Sold")

    def test_missing_attributes_are_undefined(self):
        with pytest.raises(UndefinedOperationError):
            group(figure4_top(), by="Nope", on="Sold")
        with pytest.raises(UndefinedOperationError):
            group(figure4_top(), by="Region", on="Nope")

    def test_row_attributes_preserved(self):
        t = make_table("R", ["G", "X"], [("a", 1)], row_attrs=["tag"])
        out = group(t, by="G", on="X")
        assert out.row_attributes == (N("G"), N("tag"))

    def test_group_compact_reproduces_salesinfo2(self, sales_relation, sales_pivot):
        compact = group_compact(sales_relation, by="Region", on="Sold")
        assert compact.equivalent(sales_pivot)


class TestSegmentBlocks:
    def test_single_attribute_repeats_to_unit_blocks(self):
        t = figure4_bottom()
        on_cols = [j for j in t.data_col_indices() if t.entry(0, j) == N("Sold")]
        blocks = segment_blocks(t, on_cols)
        assert all(len(b) == 1 for b in blocks)
        assert len(blocks) == 8

    def test_relation_style_single_block(self):
        t = make_table("R", ["A", "B"], [(1, 2)])
        assert segment_blocks(t, [1, 2]) == [[1, 2]]

    def test_repeating_pattern(self):
        t = make_table("R", ["X", "Y", "X", "Y"], [(1, 2, 3, 4)])
        assert segment_blocks(t, [1, 2, 3, 4]) == [[1, 2], [3, 4]]

    def test_irregular_pattern_closes_on_repeat(self):
        t = make_table("R", ["X", "Y", "Y"], [(1, 2, 3)])
        assert segment_blocks(t, [1, 2, 3]) == [[1, 2], [3]]


class TestMerge:
    def test_reproduces_figure5_exactly(self, sales_pivot):
        assert merge(sales_pivot, on="Sold", by="Region") == figure5_result()

    def test_uneconomical_on_grouped_table(self, sales_grouped):
        out = merge(sales_grouped, on="Sold", by="Region")
        # 8 part rows x 8 blocks = 64 rows, "even more uneconomical"
        assert out.height == 64
        assert out.column_attributes == (N("Part"), N("Region"), N("Sold"))

    def test_merge_then_filter_recovers_relation(self, sales_pivot, sales_relation):
        assert merge_compact(sales_pivot, on="Sold", by="Region").equivalent(sales_relation)

    def test_defined_on_tables_not_from_grouping(self):
        t = make_table("R", ["A", "B"], [(1, 2)])
        out = merge(t, on=["A", "B"], by="G")
        # no G provider row: value is ⊥
        assert out.column_attributes == (N("G"), N("A"), N("B"))
        assert out.row(1) == (NULL, NULL, V(1), V(2))

    def test_provider_rows_not_emitted(self, sales_pivot):
        out = merge(sales_pivot, on="Sold", by="Region")
        assert N("Region") not in out.row_attributes

    def test_requires_on_columns(self):
        with pytest.raises(UndefinedOperationError):
            merge(make_table("R", ["A"], [(1,)]), on="Z", by="G")

    def test_conflicting_providers_take_first_nonnull(self):
        t = make_table(
            "R",
            ["X"],
            [("g1",), ("g2",), (5,)],
            row_attrs=["G", "G", None],
        )
        out = merge(t, on="X", by="G")
        assert out.row(1) == (NULL, V("g1"), V(5))


class TestSplit:
    def test_matches_salesinfo4(self, sales_relation):
        parts = split(sales_relation, on="Region")
        expected = sales_info4().tables
        assert len(parts) == len(expected) == 4
        for part in parts:
            assert any(part.equivalent(t) for t in expected)

    def test_header_row_repeats_value_across_width(self, sales_relation):
        part = split(sales_relation, on="Region")[0]
        header_row = part.row(1)
        assert header_row[0] == N("Region")
        assert header_row[1] == header_row[2] == V("east")

    def test_distinct_null_combination_forms_own_group(self):
        t = make_table("R", ["G", "X"], [("a", 1), (None, 2)])
        parts = split(t, on="G")
        assert len(parts) == 2

    def test_split_on_multiple_columns(self):
        t = make_table("R", ["G", "H", "X"], [("a", "p", 1), ("a", "q", 2)])
        parts = split(t, on=["G", "H"])
        assert len(parts) == 2
        assert parts[0].row_attributes[:2] == (N("G"), N("H"))

    def test_requires_matching_columns(self):
        with pytest.raises(UndefinedOperationError):
            split(make_table("R", ["A"], [(1,)]), on="Z")

    def test_result_name_override(self, sales_relation):
        parts = split(sales_relation, on="Region", name="Chunk")
        assert all(p.name == N("Chunk") for p in parts)


class TestCollapse:
    def test_collapse_compact_inverts_split(self, sales_relation):
        parts = split(sales_relation, on="Region")
        rebuilt = collapse_compact(parts, by="Region")
        assert rebuilt.equivalent(sales_relation)

    def test_collapse_is_uneconomical_union(self, sales_relation):
        parts = split(sales_relation, on="Region")
        collapsed = collapse(parts, by="Region")
        # tabular union concatenates the four merged schemes
        assert collapsed.width == 3 * len(parts)

    def test_single_table_collapse(self):
        t = make_table("R", ["Part", "Sold"], [("nuts", 50)]).append_rows(
            [(N("Region"), V("east"), V("east"))]
        )
        out = collapse([t], by="Region")
        assert out.column_attributes == (N("Region"), N("Part"), N("Sold"))
        assert out.row(1) == (NULL, V("east"), V("nuts"), V(50))

    def test_requires_tables(self):
        with pytest.raises(UndefinedOperationError):
            collapse([], by="Region")


class TestInverseLaws:
    def test_group_then_merge_recovers_relation(self, sales_relation):
        grouped = group(sales_relation, by="Region", on="Sold")
        back = merge_compact(grouped, on="Sold", by="Region")
        assert back.equivalent(sales_relation)

    def test_pivot_round_trip_via_compact_ops(self, sales_relation):
        pivot = group_compact(sales_relation, by="Region", on="Sold")
        back = merge_compact(pivot, on="Sold", by="Region")
        assert back.equivalent(sales_relation)
