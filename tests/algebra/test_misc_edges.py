"""Edge-case tests for derived joins, conversions, and op plumbing."""

import pytest

from repro.algebra import natural_join
from repro.algebra.opshelpers import as_attr_set, as_attr_symbol
from repro.algebra.programs import OPERATIONS
from repro.core import (
    NULL,
    EvaluationError,
    N,
    SchemaError,
    UndefinedOperationError,
    V,
    make_table,
)
from repro.relational import Relation, relation_to_table, table_to_relation


class TestNaturalJoin:
    def test_basic_join(self):
        r = make_table("R", ["A", "B"], [(1, "x"), (2, "y")])
        s = make_table("S", ["B", "C"], [("x", 10), ("x", 11)])
        out = natural_join(r, s)
        assert out.column_attributes == (N("A"), N("B"), N("C"))
        rows = {tuple(v.payload for v in out.data_row(i)) for i in out.data_row_indices()}
        assert rows == {(1, "x", 10), (1, "x", 11)}

    def test_no_shared_attributes_is_product(self):
        r = make_table("R", ["A"], [(1,), (2,)])
        s = make_table("S", ["B"], [(3,)])
        assert natural_join(r, s).height == 2

    def test_empty_join(self):
        r = make_table("R", ["A", "B"], [(1, "x")])
        s = make_table("S", ["B"], [("z",)])
        assert natural_join(r, s).height == 0

    def test_repeated_shared_attribute_rejected(self):
        r = make_table("R", ["B", "B"], [(1, 2)])
        s = make_table("S", ["B"], [(1,)])
        with pytest.raises(UndefinedOperationError):
            natural_join(r, s)

    def test_result_deduplicated(self):
        r = make_table("R", ["A", "B"], [(1, "x"), (1, "x")])
        s = make_table("S", ["B"], [("x",)])
        assert natural_join(r, s).height == 1

    def test_name_override(self):
        r = make_table("R", ["A"], [(1,)])
        assert natural_join(r, r, name="J").name == N("J")


class TestTableRelationConversion:
    def test_schema_reorder(self):
        table = relation_to_table(Relation("R", ["A", "B"], [(1, 2)]))
        reordered = table_to_relation(table, schema=("B", "A"))
        assert reordered.schema == ("B", "A")
        assert (V(2), V(1)) in reordered.tuples

    def test_schema_mismatch_rejected(self):
        table = relation_to_table(Relation("R", ["A", "B"], [(1, 2)]))
        with pytest.raises(SchemaError):
            table_to_relation(table, schema=("A", "Z"))
        with pytest.raises(SchemaError):
            table_to_relation(table, schema=("A",))

    def test_non_name_attributes_rejected(self):
        table = make_table("R", ["A"], [(1,)]).with_entry(0, 1, V("data"))
        with pytest.raises(SchemaError):
            table_to_relation(table)

    def test_row_attributes_rejected(self):
        table = make_table("R", ["A"], [(1,)], row_attrs=["tag"])
        with pytest.raises(SchemaError):
            table_to_relation(table)

    def test_anonymous_relation_not_embeddable(self):
        with pytest.raises(SchemaError):
            relation_to_table(Relation("", ["A"], [(1,)]))


class TestOpPlumbing:
    def test_as_attr_symbol_coercions(self):
        assert as_attr_symbol("A") == N("A")
        assert as_attr_symbol(None) is NULL
        assert as_attr_symbol(5) == V(5)
        assert as_attr_symbol(V("east")) == V("east")

    def test_as_attr_set_single_and_iterable(self):
        assert as_attr_set("A") == frozenset([N("A")])
        assert as_attr_set(["A", None]) == frozenset([N("A"), NULL])
        assert as_attr_set(()) == frozenset()
        assert as_attr_set(5) == frozenset([V(5)])

    def test_registry_arity_enforced_at_invoke(self):
        spec = OPERATIONS["UNION"]
        t = make_table("R", ["A"], [(1,)])
        with pytest.raises(EvaluationError):
            spec.invoke([t], {}, None)

    def test_every_registry_entry_is_well_formed(self):
        for name, spec in OPERATIONS.items():
            assert spec.name == name
            assert callable(spec.function)
            assert spec.arity >= 1
            for kind in spec.params.values():
                assert kind in ("single", "set", "entry")
