"""Unit tests for const_column and the empty (NOTHING) parameter."""

import pytest

from repro.algebra import const_column, project, purge
from repro.algebra.programs import (
    NOTHING,
    Assignment,
    Binding,
    Program,
    assign,
)
from repro.core import NULL, N, V, database, make_table


class TestConstColumn:
    def test_appends_constant(self):
        t = make_table("R", ["A"], [(1,), (2,)])
        out = const_column(t, "Tag", "x")
        assert out.column_attributes == (N("A"), N("Tag"))
        assert out.data_column(2) == (V("x"), V("x"))

    def test_null_constant(self):
        t = make_table("R", ["A"], [(1,)])
        out = const_column(t, "Tag", None)
        assert out.entry(1, 2) is NULL

    def test_name_constant(self):
        t = make_table("R", ["A"], [(1,)])
        out = const_column(t, "Tag", N("east"))
        assert out.entry(1, 2) == N("east")

    def test_empty_table(self):
        t = make_table("R", ["A"], [])
        assert const_column(t, "Tag", 1).width == 2

    def test_through_the_interpreter(self):
        db = database(make_table("R", ["A"], [(1,)]))
        program = Program([assign("T", "CONSTCOLUMN", "R", attr="Tag", value=V("c"))])
        out = program.run(db)
        assert out.tables_named("T")[0].entry(1, 2) == V("c")


class TestNothingParameter:
    def test_evaluates_to_empty(self):
        assert NOTHING.evaluate(Binding(), None) == frozenset()

    def test_projection_onto_nothing(self):
        db = database(make_table("R", ["A"], [(1,)], row_attrs=["x"]))
        program = Program([Assignment("T", "PROJECT", ["R"], {"attrs": ()})])
        out = program.run(db)
        result = out.tables_named("T")[0]
        assert result.width == 0
        assert result.row_attributes == (N("x"),)

    def test_empty_purge_key_groups_by_attribute(self):
        # purge with empty 𝒜 merges ⊥-disjoint same-name columns
        t = make_table("R", ["A", "A"], [(1, None), (None, 2)])
        out = purge(t, on="A", by=())
        assert out.width == 1

    def test_direct_ops_accept_empty_sets(self):
        t = make_table("R", ["A"], [(1,)])
        assert project(t, ()).width == 0
