"""Unit tests for CLEAN-UP and PURGE (Section 3.4)."""

from repro.algebra import cleanup, group, purge, union
from repro.core import NULL, N, V, make_table
from repro.data import figure4_bottom, sales_info2


class TestCleanup:
    def test_paper_example_groups_parts(self):
        # CLEAN-UP by Part on ⊥ applied to Figure 4 bottom groups the
        # information on nuts, screws and bolts into one row each.
        cleaned = cleanup(figure4_bottom(), by="Part", on=[None])
        # Region header row + one row per part
        assert cleaned.height == 4
        nuts_rows = [i for i in cleaned.data_row_indices() if cleaned.entry(i, 1) == V("nuts")]
        assert len(nuts_rows) == 1
        row = cleaned.row(nuts_rows[0])
        assert sorted(s.payload for s in row[2:] if not s.is_null) == [40, 50, 60]

    def test_keeps_duplicate_values_in_distinct_columns(self):
        # screws sold 50 in two regions; both occurrences must survive.
        cleaned = cleanup(figure4_bottom(), by="Part", on=[None])
        screws = next(
            i for i in cleaned.data_row_indices() if cleaned.entry(i, 1) == V("screws")
        )
        values = [s.payload for s in cleaned.row(screws)[2:] if not s.is_null]
        assert sorted(values) == [50, 50, 60]

    def test_rows_outside_on_set_untouched(self):
        cleaned = cleanup(figure4_bottom(), by="Part", on=[None])
        assert N("Region") in cleaned.row_attributes

    def test_incompatible_rows_not_merged(self):
        t = make_table("R", ["K", "X"], [(1, "a"), (1, "b")])
        assert cleanup(t, by="K", on=[None]) == t

    def test_duplicate_elimination(self):
        t = make_table("R", ["A", "B"], [(1, 2), (1, 2), (3, 4)])
        out = cleanup(t, by=["A", "B"], on=[None])
        assert out.height == 2

    def test_merge_takes_first_position(self):
        t = make_table("R", ["K", "X", "X"], [(1, "a", None), (2, "q", None), (1, None, "b")])
        out = cleanup(t, by="K", on=[None])
        assert out.height == 2
        assert out.row(1) == (NULL, V(1), V("a"), V("b"))

    def test_row_attribute_part_of_group_key(self):
        t = make_table("R", ["K", "X"], [(1, None), (1, 5)], row_attrs=["u", "v"])
        out = cleanup(t, by="K", on=["u", "v"])
        assert out.height == 2  # different row attributes never merge

    def test_null_key_rows_group_together(self):
        t = make_table("R", ["K", "X", "X"], [(None, 1, None), (None, None, 2)])
        out = cleanup(t, by="K", on=[None])
        assert out.height == 1


class TestPurge:
    def test_paper_example_yields_salesinfo2(self, sales_relation):
        grouped = group(sales_relation, by="Region", on="Sold")
        cleaned = cleanup(grouped, by="Part", on=[None])
        purged = purge(cleaned, on="Sold", by="Region")
        assert purged.equivalent(sales_info2().tables[0])

    def test_purge_is_dual_of_cleanup(self):
        t = make_table("R", ["X", "X"], [("k", "k"), (1, None), (None, 2)], row_attrs=["G", None, None])
        out = purge(t, on="X", by="G")
        assert out.width == 1
        assert out.column(1) == (N("X"), V("k"), V(1), V(2))

    def test_columns_outside_on_set_untouched(self):
        t = make_table("R", ["A", "X", "X"], [(0, 1, None)])
        out = purge(t, on="X", by=[])
        assert N("A") in out.column_attributes
        assert out.width == 2

    def test_classical_union_pipeline(self):
        left = make_table("R", ["A", "B"], [(1, 2)])
        right = make_table("S", ["A", "B"], [(1, 2), (3, 4)])
        combined = union(left, right)
        assert combined.width == 4
        purged = purge(combined, on=["A", "B"], by=[])
        assert purged.width == 2
        deduped = cleanup(purged, by=["A", "B"], on=[None])
        assert deduped.height == 2

    def test_incompatible_columns_survive(self):
        t = make_table("R", ["X", "X"], [(1, 2)])
        assert purge(t, on="X", by=[]) == t
