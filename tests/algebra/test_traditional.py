"""Unit tests for the traditional operations (Section 3.1 / Figure 3)."""

import pytest

from repro.algebra import (
    difference,
    intersection,
    product,
    project,
    rename,
    select,
    select_constant,
    union,
)
from repro.core import NULL, N, V, make_table


def r():
    return make_table("R", ["A", "B"], [(1, 2), (3, 4)])


def s():
    return make_table("S", ["A", "C"], [(1, 5)])


class TestUnion:
    def test_scheme_concatenates(self):
        u = union(r(), s())
        assert u.column_attributes == (N("A"), N("B"), N("A"), N("C"))

    def test_figure3_shape_laws(self):
        u = union(r(), s())
        assert u.width == r().width + s().width
        assert u.height == r().height + s().height

    def test_null_padding(self):
        u = union(r(), s())
        assert u.row(1) == (NULL, V(1), V(2), NULL, NULL)
        assert u.row(3) == (NULL, NULL, NULL, V(1), V(5))

    def test_always_defined_on_incompatible_schemes(self):
        u = union(r(), make_table("S", ["Z"], [(9,)]))
        assert u.height == 3

    def test_name_defaults_to_left_and_can_be_set(self):
        assert union(r(), s()).name == N("R")
        assert union(r(), s(), name="T").name == N("T")

    def test_row_attributes_preserved(self):
        left = make_table("R", ["A"], [(1,)], row_attrs=["x"])
        right = make_table("S", ["A"], [(2,)], row_attrs=["y"])
        u = union(left, right)
        assert u.row_attributes == (N("x"), N("y"))


class TestDifference:
    def test_removes_mutually_subsuming_rows(self):
        left = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        right = make_table("S", ["A", "B"], [(1, 2)])
        assert difference(left, right).data == ((V(3), V(4)),)

    def test_subsumption_is_attribute_based_not_positional(self):
        left = make_table("R", ["A", "B"], [(1, 2)])
        right = make_table("S", ["B", "A"], [(2, 1)])
        assert difference(left, right).height == 0

    def test_null_entries_ignored_in_matching(self):
        left = make_table("R", ["A", "B"], [(1, None)])
        right = make_table("S", ["A"], [(1,)])
        assert difference(left, right).height == 0

    def test_row_attribute_must_match(self):
        left = make_table("R", ["A"], [(1,)], row_attrs=["x"])
        right = make_table("S", ["A"], [(1,)])
        assert difference(left, right).height == 1

    def test_scheme_kept(self):
        assert difference(r(), s()).column_attributes == r().column_attributes

    def test_strict_subsumption_does_not_remove(self):
        # right row strictly subsumes left row but is not equal to it
        left = make_table("R", ["A", "B"], [(1, None)])
        right = make_table("S", ["A", "B"], [(1, 2)])
        assert difference(left, right).height == 1


class TestIntersection:
    def test_common_rows(self):
        left = make_table("R", ["A"], [(1,), (2,)])
        right = make_table("S", ["A"], [(2,), (3,)])
        assert intersection(left, right).data == ((V(2),),)


class TestProduct:
    def test_shape(self):
        p = product(r(), s())
        assert p.width == r().width + s().width
        assert p.height == r().height * s().height

    def test_row_contents(self):
        p = product(r(), s())
        assert p.row(1) == (NULL, V(1), V(2), V(1), V(5))

    def test_row_attribute_combination(self):
        left = make_table("R", ["A"], [(1,)], row_attrs=["x"])
        right = make_table("S", ["B"], [(2,)])
        assert product(left, right).row_attributes == (N("x"),)
        conflicting = make_table("S", ["B"], [(2,)], row_attrs=["y"])
        assert product(left, conflicting).row_attributes == (NULL,)
        same = make_table("S", ["B"], [(2,)], row_attrs=["x"])
        assert product(left, same).row_attributes == (N("x"),)


class TestRename:
    def test_renames_all_occurrences(self):
        t = make_table("R", ["A", "A", "B"], [(1, 2, 3)])
        out = rename(t, "A", "Z")
        assert out.column_attributes == (N("Z"), N("Z"), N("B"))

    def test_data_positions_untouched(self):
        t = make_table("R", ["A"], [(N("A"),)])
        assert rename(t, "A", "Z").entry(1, 1) == N("A")

    def test_rename_absent_attribute_is_noop(self):
        assert rename(r(), "Z", "Q") == r()


class TestProject:
    def test_keeps_requested_columns_and_row_attrs(self):
        t = make_table("R", ["A", "B"], [(1, 2)], row_attrs=["x"])
        out = project(t, ["B"])
        assert out.column_attributes == (N("B"),)
        assert out.row_attributes == (N("x"),)

    def test_keeps_all_copies_of_repeated_attribute(self):
        t = make_table("R", ["A", "A", "B"], [(1, 2, 3)])
        assert project(t, ["A"]).width == 2

    def test_project_to_nothing(self):
        assert project(r(), ["Z"]).width == 0

    def test_single_attr_shorthand(self):
        assert project(r(), "A").column_attributes == (N("A"),)


class TestSelect:
    def test_weak_equality_of_entry_sets(self):
        t = make_table("R", ["A", "B"], [(1, 1), (1, 2), (None, None)])
        out = select(t, "A", "B")
        # (1,1) matches; (⊥,⊥) matches weakly; (1,2) does not
        assert out.height == 2

    def test_repeated_attributes_compare_as_sets(self):
        t = make_table("R", ["A", "A", "B"], [(1, 2, 1)])
        assert select(t, "A", "B").height == 0
        t2 = make_table("R", ["A", "A", "B", "B"], [(1, 2, 2, 1)])
        assert select(t2, "A", "B").height == 1


class TestSelectConstant:
    def test_matches_value(self):
        t = make_table("R", ["A"], [("x",), ("y",)])
        assert select_constant(t, "A", "x").height == 1

    def test_null_constant_selects_all_null_rows(self):
        t = make_table("R", ["A", "A"], [(None, None), (1, None)])
        out = select_constant(t, "A", None)
        assert out.height == 1
        assert out.row(1)[1] is NULL

    def test_extra_values_disqualify(self):
        t = make_table("R", ["A", "A"], [("x", "y")])
        assert select_constant(t, "A", "x").height == 0

    def test_null_alongside_value_still_matches(self):
        t = make_table("R", ["A", "A"], [("x", None)])
        assert select_constant(t, "A", "x").height == 1
