"""Unit tests for the program layer: parameters, statements, interpreter."""

import pytest

from repro.algebra.programs import (
    ANY,
    Assignment,
    Binding,
    Interpreter,
    Lit,
    Pair,
    ParamSet,
    Program,
    Star,
    While,
    assign,
)
from repro.core import (
    NULL,
    EvaluationError,
    N,
    NonTerminationError,
    TaggedValue,
    UndefinedOperationError,
    V,
    database,
    make_table,
)
from repro.data import sales_info1, sales_info2, sales_info4


class TestParameters:
    def test_literal_name(self):
        assert Lit("A").evaluate(Binding(), None) == frozenset([N("A")])

    def test_literal_null_and_value(self):
        assert Lit(None).evaluate(Binding(), None) == frozenset([NULL])
        assert Lit(V("east")).evaluate(Binding(), None) == frozenset([V("east")])

    def test_star_requires_binding(self):
        with pytest.raises(EvaluationError):
            Star(1).evaluate(Binding(), None)
        binding = Binding().extended(1, N("R"))
        assert Star(1).evaluate(binding, None) == frozenset([N("R")])

    def test_binding_conflict(self):
        binding = Binding().extended(0, N("R"))
        with pytest.raises(EvaluationError):
            binding.extended(0, N("S"))

    def test_param_set_positive_minus_negative(self):
        param = ParamSet([Lit("A"), Lit("B")], [Lit("B")])
        assert param.evaluate(Binding(), None) == frozenset([N("A")])

    def test_param_set_requires_positives(self):
        with pytest.raises(EvaluationError):
            ParamSet([])

    def test_evaluate_single_enforces_singleton(self):
        param = ParamSet([Lit("A"), Lit("B")])
        with pytest.raises(UndefinedOperationError):
            param.evaluate_single(Binding(), None)

    def test_pair_selects_entries(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)], row_attrs=["x", "y"])
        param = Pair(Lit("x"), Lit("B"))
        assert param.evaluate(Binding(), t) == frozenset([V(2)])

    def test_pair_with_any(self):
        t = make_table("R", ["A", "B"], [(1, 2)])
        param = Pair(ANY, ANY)
        assert param.evaluate(Binding(), t) == frozenset([V(1), V(2)])

    def test_pair_needs_table(self):
        with pytest.raises(EvaluationError):
            Pair(ANY, ANY).evaluate(Binding(), None)

    def test_wildcard_collection(self):
        param = ParamSet([Star(1), Pair(Star(2), Lit("A"))])
        assert param.wildcards() == frozenset([1, 2])


class TestAssignment:
    def test_unknown_operation(self):
        with pytest.raises(EvaluationError):
            Assignment("T", "FROBNICATE", ["R"])

    def test_wrong_arity(self):
        with pytest.raises(EvaluationError):
            Assignment("T", "UNION", ["R"])

    def test_unknown_parameter(self):
        with pytest.raises(EvaluationError):
            Assignment("T", "GROUP", ["R"], {"by": "A", "on": "B", "zap": "C"})

    def test_missing_parameter(self):
        with pytest.raises(EvaluationError):
            Assignment("T", "GROUP", ["R"], {"by": "A"})

    def test_runs_once_per_matching_table(self):
        db = sales_info4()  # four tables named Sales
        program = Program([assign("Flipped", "TRANSPOSE", "Sales")])
        out = program.run(db)
        assert len(out.tables_named("Flipped")) == 4

    def test_binary_all_pairs(self):
        db = database(
            make_table("R", ["A"], [(1,)]),
            make_table("R", ["A"], [(2,)]),
            make_table("S", ["B"], [(3,)]),
        )
        out = Program([assign("T", "PRODUCT", "R", "S")]).run(db)
        assert len(out.tables_named("T")) == 2

    def test_assignment_replaces_target(self):
        db = database(make_table("T", ["Old"], [(0,)]), make_table("R", ["A"], [(1,)]))
        out = Program([assign("T", "TRANSPOSE", "R")]).run(db)
        assert len(out.tables_named("T")) == 1
        assert N("Old") not in out.tables_named("T")[0].symbols()

    def test_no_match_empties_target(self):
        db = database(make_table("T", ["Old"], [(0,)]))
        out = Program([assign("T", "TRANSPOSE", "Missing")]).run(db)
        assert out.tables_named("T") == ()

    def test_wildcard_argument_binds_target(self):
        db = database(make_table("R", ["A"], [(1,)]), make_table("S", ["B"], [(2,)]))
        out = Program([Assignment(Star(0), "DEDUP", [Star(0)])]).run(db)
        # every table deduplicated in place
        assert out.table_names() == db.table_names()

    def test_aggregate_collapse_consumes_all_tables(self):
        db = sales_info4()
        out = Program(
            [Assignment("Flat", "COLLAPSECOMPACT", ["Sales"], {"by": "Region"})]
        ).run(db)
        flat = out.tables_named("Flat")
        assert len(flat) == 1
        assert flat[0].height == 8

    def test_tagging_through_interpreter_is_globally_fresh(self):
        db = database(make_table("R", ["A"], [(1,)]))
        program = Program(
            [
                assign("T1", "TUPLENEW", "R", attr="Id"),
                assign("T2", "TUPLENEW", "R", attr="Id"),
            ]
        )
        out = program.run(db)
        tag1 = out.tables_named("T1")[0].entry(1, 2)
        tag2 = out.tables_named("T2")[0].entry(1, 2)
        assert isinstance(tag1, TaggedValue) and tag1 != tag2

    def test_interpreter_advances_past_existing_tags(self):
        t = make_table("R", ["A"], [(1,)]).with_entry(1, 1, TaggedValue(7))
        out = Program([assign("T", "TUPLENEW", "R", attr="Id")]).run(database(t))
        tag = out.tables_named("T")[0].entry(1, 2)
        assert tag.payload > 7

    def test_pair_parameter_against_argument_table(self):
        # Project onto the attributes listed *as data* in a config row.
        t = make_table("R", ["A", "B"], [(1, 2)], row_attrs=[None])
        stmt = Assignment("T", "PROJECT", ["R"], {"attrs": Pair(ANY, Lit("A"))})
        out = Program([stmt]).run(database(t))
        # entries under column A: value 1 -> no column is named Value(1)
        assert out.tables_named("T")[0].width == 0


class TestWhile:
    def test_terminates_when_empty(self):
        work = make_table("Work", ["A"], [(1,), (2,)])
        drain = make_table("Drain", ["A"], [(1,), (2,)])
        loop = While("Work", [assign("Work", "DIFFERENCE", "Work", "Drain")])
        out = Program([loop]).run(database(work, drain))
        assert out.tables_named("Work")[0].height == 0

    def test_nontermination_guard(self):
        work = make_table("Work", ["A"], [(1,)])
        loop = While("Work", [assign("Work", "DEDUP", "Work")])
        with pytest.raises(NonTerminationError):
            Program([loop]).run(database(work), max_while_iterations=25)

    def test_condition_on_absent_name_is_false(self):
        loop = While("Nothing", [assign("T", "TRANSPOSE", "Nothing")])
        out = Program([loop]).run(database())
        assert out.is_empty()

    def test_headerless_table_counts_as_empty(self):
        empty = make_table("Work", ["A"], [])
        loop = While("Work", [assign("Work", "DEDUP", "Work")])
        out = Program([loop]).run(database(empty))
        assert out.tables_named("Work")[0] == empty


class TestProgram:
    def test_sequencing(self, sales_relation):
        program = Program(
            [
                assign("G", "GROUP", "Sales", by="Region", on="Sold"),
                assign("C", "CLEANUP", "G", by="Part", on=[None]),
                assign("P", "PURGE", "C", on="Sold", by="Region"),
            ]
        )
        out = program.run(sales_info1())
        pivot = out.tables_named("P")[0]
        assert pivot.equivalent(sales_info2().tables[0].with_name(N("P")))

    def test_concatenation(self):
        p1 = Program([assign("T", "DEDUP", "R")])
        p2 = Program([assign("U", "DEDUP", "T")])
        assert len(p1 + p2) == 2

    def test_rejects_non_statements(self):
        with pytest.raises(EvaluationError):
            Program(["nope"])  # type: ignore[list-item]

    def test_repr_is_informative(self):
        stmt = assign("T", "GROUP", "Sales", by="Region", on="Sold")
        assert "GROUP" in repr(stmt) and "Sales" in repr(stmt)
