"""Tests for dual (row/column-interchanged) forms of the operations.

Section 3.3: "For each of the operations defined in the tabular algebra,
it is now possible to express … a dual operation obtained by interchanging
the roles of rows and columns."  These tests exercise the dual combinator
over the restructuring and redundancy operations — the less-travelled
half of the algebra.
"""

from repro.algebra import (
    cleanup,
    dual,
    group,
    merge,
    project,
    purge,
    rename,
    select_constant,
    transpose,
)
from repro.core import NULL, N, V, Table, make_table


def column_table() -> Table:
    """A 'column-major relation': attributes head the rows."""
    return make_table("R", ["A", "B", "C"], [(1, 2, 3), (4, 5, 6)]).transpose()


class TestDualTraditional:
    def test_dual_project_picks_rows(self):
        t = column_table()
        out = dual(project)(t, ["A", "C"])
        assert out.row_attributes == (N("A"), N("C"))
        assert out.height == 2

    def test_dual_rename_renames_row_attributes(self):
        t = column_table()
        out = dual(rename)(t, "A", "Z")
        assert out.row_attributes == (N("Z"), N("B"), N("C"))

    def test_dual_select_constant_filters_columns(self):
        t = make_table("R", ["A", "A"], [("x", "y")], row_attrs=["k"])
        out = dual(select_constant)(t, "k", "x")
        assert out.width == 1
        assert out.entry(1, 1) == V("x")


class TestDualRestructuring:
    def test_dual_group_conjugates(self):
        # the dual of GROUP equals TRANSPOSE ∘ GROUP ∘ TRANSPOSE by
        # construction; verify it runs and produces the conjugated shape
        base = make_table(
            "R", ["G", "X"], [("a", 1), ("b", 2)]
        )
        flipped = base.transpose()
        out = dual(group)(flipped, by="G", on="X")
        assert out == transpose(group(base, by="G", on="X"))

    def test_dual_merge_conjugates(self):
        base = make_table("R", ["G", "X"], [("a", 1), ("b", 2)])
        grouped = group(base, by="G", on="X")
        out = dual(merge)(grouped.transpose(), on="X", by="G")
        assert out == transpose(merge(grouped, on="X", by="G"))


class TestDualRedundancy:
    def test_dual_cleanup_is_purge(self):
        t = make_table(
            "R", ["X", "X"], [("k", "k"), (1, None), (None, 2)], row_attrs=["G", None, None]
        )
        via_dual = dual(cleanup)(t, by="G", on="X")
        via_purge = purge(t, on="X", by="G")
        assert via_dual == via_purge

    def test_dual_purge_is_cleanup(self):
        t = make_table("R", ["K", "X", "X"], [(1, "a", None), (1, None, "b")])
        via_dual = dual(purge)(t, on=[None], by="K")
        via_cleanup = cleanup(t, by="K", on=[None])
        assert via_dual == via_cleanup
