"""Unit tests for TRANSPOSE, SWITCH, and the dual combinator (Section 3.3)."""

from repro.algebra import dual, project, select, select_constant, switch, transpose
from repro.core import NULL, N, V, make_table


class TestTranspose:
    def test_swaps_attributes(self):
        t = make_table("R", ["A", "B"], [(1, 2)], row_attrs=["x"])
        out = transpose(t)
        assert out.column_attributes == (N("x"),)
        assert out.row_attributes == (N("A"), N("B"))

    def test_involution(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        assert transpose(transpose(t)) == t

    def test_name_override(self):
        assert transpose(make_table("R", ["A"], [(1,)]), name="T").name == N("T")


class TestSwitch:
    def test_unique_occurrence_becomes_table_name(self):
        t = make_table("R", ["A", "B"], [(1, "v"), (2, 3)])
        out = switch(t, "v")
        assert out.name == V("v")
        # The switched entry's row and column become the attribute row/column.
        assert out.entry(0, 0) == V("v")
        assert N("R") in out.symbols()

    def test_switch_preserves_cell_multiset(self):
        t = make_table("R", ["A", "B"], [(1, "v"), (2, 3)])
        out = switch(t, "v")
        assert sorted(s.sort_key() for row in out.grid for s in row) == sorted(
            s.sort_key() for row in t.grid for s in row
        )

    def test_non_unique_occurrence_only_renames(self):
        t = make_table("R", ["A", "B"], [("v", "v")])
        assert switch(t, "v") == t
        assert switch(t, "v", name="T") == t.with_name(N("T"))

    def test_absent_value_only_renames(self):
        t = make_table("R", ["A"], [(1,)])
        assert switch(t, "zzz") == t

    def test_switch_on_table_name_is_identity(self):
        t = make_table("R", ["A"], [(1,)])
        assert switch(t, N("R")) == t

    def test_switch_is_self_inverse_for_unique_entries(self):
        t = make_table("R", ["A", "B"], [(1, "v"), (2, 3)])
        out = switch(switch(t, "v"), N("R"))
        assert out == t


class TestDual:
    def test_dual_project_selects_rows(self):
        t = make_table("R", ["A"], [(1,), (2,)], row_attrs=["keep", "drop"])
        out = dual(project)(t, ["keep"])
        assert out.row_attributes == (N("keep"),)
        assert out.column_attributes == (N("A"),)

    def test_dual_select_constant_filters_columns(self):
        t = make_table("R", ["A", "B"], [("x", "y")], row_attrs=["tag"])
        out = dual(select_constant)(t, "tag", "x")
        assert out.column_attributes == (N("A"),)

    def test_dual_of_dual_is_original(self):
        t = make_table("R", ["A", "B"], [(1, 1), (1, 2)])
        assert dual(dual(select))(t, "A", "B") == select(t, "A", "B")

    def test_dual_name_override(self):
        t = make_table("R", ["A"], [(1,)], row_attrs=["k"])
        assert dual(project)(t, ["k"], name="T").name == N("T")

    def test_constant_selection_derivable_via_switch(self):
        # The paper: SWITCH + SELECT express constant selection.  Verify the
        # direct select_constant against a transposition-based derivation on
        # a table where the constant occurs uniquely per row.
        t = make_table("R", ["A", "B"], [("x", 1), ("y", 2)])
        direct = select_constant(t, "A", "x")
        assert direct.height == 1
        assert direct.row(1)[1] == V("x")
