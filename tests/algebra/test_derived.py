"""Unit tests for the derived operations (Sections 3.2/3.4 compositions)."""

from repro.algebra import (
    classical_union,
    collapse_compact,
    deduplicate,
    deduplicate_columns,
    drop_all_null_rows,
    group_compact,
    merge_compact,
    split,
    union,
)
from repro.core import NULL, N, V, make_table
from repro.data import figure4_top, figure5_result, sales_info2


class TestClassicalUnion:
    def test_section_34_recipe(self):
        left = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        right = make_table("S", ["A", "B"], [(3, 4), (5, 6)])
        out = classical_union(left, right)
        assert out.column_attributes == (N("A"), N("B"))
        assert out.height == 3
        rows = {tuple(v.payload for v in out.data_row(i)) for i in out.data_row_indices()}
        assert rows == {(1, 2), (3, 4), (5, 6)}

    def test_idempotent(self):
        t = make_table("R", ["A"], [(1,)])
        assert classical_union(t, t).data == t.data

    def test_name_override(self):
        t = make_table("R", ["A"], [(1,)])
        assert classical_union(t, t, name="U").name == N("U")


class TestDeduplicate:
    def test_removes_duplicate_rows(self):
        t = make_table("R", ["A"], [(1,), (1,), (2,)])
        assert deduplicate(t).height == 2

    def test_respects_row_attributes(self):
        t = make_table("R", ["A"], [(1,), (1,)], row_attrs=["x", "y"])
        assert deduplicate(t).height == 2

    def test_removes_duplicate_columns(self):
        t = make_table("R", ["A", "A", "B"], [(1, 1, 2)])
        out = deduplicate_columns(t)
        assert out.column_attributes == (N("A"), N("B"))

    def test_merges_null_disjoint_columns(self):
        t = make_table("R", ["A", "A"], [(1, None), (None, 2)])
        out = deduplicate_columns(t)
        assert out.width == 1
        assert out.data_column(1) == (V(1), V(2))

    def test_keeps_conflicting_columns(self):
        t = make_table("R", ["A", "A"], [(1, 2)])
        assert deduplicate_columns(t).width == 2


class TestDropAllNullRows:
    def test_figure5_to_figure4(self):
        out = drop_all_null_rows(figure5_result(), "Sold")
        assert out.equivalent(figure4_top())

    def test_keeps_rows_with_any_value(self):
        t = make_table("R", ["A", "A"], [(None, None), (1, None)])
        assert drop_all_null_rows(t, "A").height == 1

    def test_noop_without_null_rows(self):
        t = make_table("R", ["A"], [(1,)])
        assert drop_all_null_rows(t, "A") == t


class TestCompactPipelines:
    def test_group_compact_and_back(self, sales_relation, sales_pivot):
        pivot = group_compact(sales_relation, by="Region", on="Sold")
        assert pivot.equivalent(sales_pivot)
        assert merge_compact(pivot, on="Sold", by="Region").equivalent(sales_relation)

    def test_collapse_compact_inverts_split(self, sales_relation):
        parts = split(sales_relation, on="Region")
        assert collapse_compact(parts, by="Region").equivalent(sales_relation)

    def test_group_compact_with_multiple_rest_attributes(self):
        t = make_table(
            "T",
            ["K1", "K2", "G", "X"],
            [("a", "b", "g1", 1), ("a", "b", "g2", 2), ("c", "d", "g1", 3)],
        )
        out = group_compact(t, by="G", on="X")
        # two distinct (K1, K2) groups + the G header row
        assert out.height == 3
        assert out.column_attributes == (N("K1"), N("K2"), N("X"), N("X"))

    def test_merge_compact_multi_name(self):
        t = make_table("R", ["G", "X", "Y"], [("g", 1, 2)])
        grouped = group_compact(t, by="G", on=["X", "Y"])
        back = merge_compact(grouped, on=["X", "Y"], by="G")
        assert back.equivalent(t)
