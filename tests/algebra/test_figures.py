"""Integration tests: every Figure 1–5 artifact and the paper's claim that
the representations SalesInfo2–SalesInfo4 restructure into one another."""

from repro.algebra import (
    collapse_compact,
    group,
    group_compact,
    merge,
    merge_compact,
    split,
    transpose,
    union,
)
from repro.core import NULL, N, V, render_table
from repro.data import (
    BASE_FACTS,
    GRAND_TOTAL,
    PART_TOTALS,
    REGION_TOTALS,
    figure4_bottom,
    figure4_top,
    figure5_result,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)


class TestFigure1Databases:
    def test_salesinfo1_is_relational(self):
        db = sales_info1()
        sales = db.table("Sales")
        assert sales.column_attributes == (N("Part"), N("Region"), N("Sold"))
        assert sales.height == len(BASE_FACTS)
        assert all(a is NULL for a in sales.row_attributes)

    def test_salesinfo1_summary_needs_separate_relations(self):
        db = sales_info1(with_summary=True)
        assert len(db) == 4
        assert db.table("GrandTotal").entry(1, 1) == V(GRAND_TOTAL)
        totals = db.table("TotalPartSales")
        assert {
            (totals.entry(i, 1).payload, totals.entry(i, 2).payload)
            for i in totals.data_row_indices()
        } == set(PART_TOTALS.items())

    def test_salesinfo2_width_is_instance_dependent(self):
        bold = sales_info2().tables[0]
        full = sales_info2(with_summary=True).tables[0]
        assert bold.width == 5 and full.width == 6
        assert bold.column_attributes.count(N("Sold")) == 4

    def test_salesinfo2_absorbs_summary_in_table(self):
        full = sales_info2(with_summary=True).tables[0]
        total_rows = [i for i in full.data_row_indices() if full.entry(i, 0) == N("Total")]
        assert len(total_rows) == 1
        row = full.row(total_rows[0])
        assert row[-1] == V(GRAND_TOTAL)
        assert [s.payload for s in row[2:-1]] == [
            REGION_TOTALS[r] for r in ("east", "west", "north", "south")
        ]

    def test_salesinfo3_attributes_are_data(self):
        sales = sales_info3().tables[0]
        assert sales.column_attributes == (V("nuts"), V("screws"), V("bolts"))
        assert sales.row_attributes == (V("east"), V("west"), V("north"), V("south"))

    def test_salesinfo3_totals(self):
        full = sales_info3(with_summary=True).tables[0]
        assert full.entry(full.nrows - 1, full.ncols - 1) == V(GRAND_TOTAL)

    def test_salesinfo4_one_table_per_region(self):
        db = sales_info4()
        assert len(db.tables_named("Sales")) == 4
        east = next(
            t for t in db.tables_named("Sales") if V("east") in t.symbols()
        )
        assert east.row(1) == (N("Region"), V("east"), V("east"))

    def test_salesinfo4_summary_adds_total_region_table(self):
        db = sales_info4(with_summary=True)
        assert len(db.tables_named("Sales")) == 5
        total = next(
            t for t in db.tables_named("Sales") if t.entry(1, 1) == N("Total")
        )
        assert total.entry(total.nrows - 1, 2) == V(GRAND_TOTAL)


class TestFigure4And5:
    def test_group_statement_exact(self):
        assert group(figure4_top(), by="Region", on="Sold") == figure4_bottom()

    def test_merge_statement_exact(self):
        pivot = sales_info2().tables[0]
        assert merge(pivot, on="Sold", by="Region") == figure5_result()

    def test_figure4_bottom_is_uneconomical_salesinfo2(self):
        # The grouped table holds the same facts as SalesInfo2's Sales.
        back = merge_compact(figure4_bottom(), on="Sold", by="Region")
        assert back.equivalent(figure4_top())


class TestRestructurabilityClaim:
    """'It is possible to restructure the data from any of the
    representations SalesInfo2–SalesInfo4 to any other.'"""

    def relation(self):
        return figure4_top()

    def test_info2_to_relation_and_back(self):
        pivot = sales_info2().tables[0]
        assert merge_compact(pivot, on="Sold", by="Region").equivalent(self.relation())
        assert group_compact(self.relation(), by="Region", on="Sold").equivalent(pivot)

    def test_info4_to_relation_and_back(self):
        tables = sales_info4().tables
        rebuilt = collapse_compact(tables, by="Region")
        assert rebuilt.equivalent(self.relation())
        parts = split(self.relation(), on="Region")
        assert all(any(p.equivalent(t) for t in tables) for p in parts)

    def test_info2_to_info4_via_relation(self):
        pivot = sales_info2().tables[0]
        relation = merge_compact(pivot, on="Sold", by="Region")
        parts = split(relation, on="Region")
        expected = sales_info4().tables
        assert len(parts) == len(expected)
        assert all(any(p.equivalent(t) for t in expected) for p in parts)

    def test_info4_to_info2_via_relation(self):
        relation = collapse_compact(sales_info4().tables, by="Region")
        pivot = group_compact(relation, by="Region", on="Sold")
        assert pivot.equivalent(sales_info2().tables[0])

    def test_info3_to_relation(self):
        # SalesInfo3's Sales is the pivot with *data* attributes: transpose
        # so parts head the rows, then recover (region, part, sold) facts.
        sales = sales_info3().tables[0]
        facts = set()
        for i in sales.data_row_indices():
            region = sales.entry(i, 0).payload
            for j in sales.data_col_indices():
                part = sales.entry(0, j).payload
                entry = sales.entry(i, j)
                if not entry.is_null:
                    facts.add((part, region, entry.payload))
        assert facts == set(BASE_FACTS)

    def test_relation_to_info3_shape(self):
        # Pivot with parts as columns, regions as rows, via group + transpose.
        pivot = group_compact(self.relation(), by="Part", on="Sold")
        flipped = transpose(pivot)
        # Part header values appear as a data row in the pivot; after the
        # transpose they are a data column — SalesInfo3's column attributes
        # hold exactly these part values.
        si3 = sales_info3().tables[0]
        assert set(si3.column_attributes) == {V("nuts"), V("screws"), V("bolts")}
        assert {V(p) for p in ("nuts", "screws", "bolts")} <= set(flipped.symbols())


class TestRenderedFigures:
    def test_figure4_top_render_matches_paper_rows(self):
        text = render_table(figure4_top())
        assert "'nuts'" in text and "'east'" in text and "50" in text

    def test_salesinfo2_render_shows_repeated_sold(self):
        text = render_table(sales_info2().tables[0])
        assert text.splitlines()[1].count("Sold") == 4
