"""Runtime edge cases of the statement interpreter.

The paper: "In each computation, a parameter representing a single column
attribute should have a singleton set as interpretation, otherwise the
effect of the statement is undefined."  These tests pin that behaviour
and other runtime subtleties (pair parameters, wildcard sharing, name
collisions between results of one statement).
"""

import pytest

from repro.algebra.programs import (
    ANY,
    Assignment,
    Lit,
    Pair,
    ParamSet,
    Program,
    Star,
    assign,
    parse_program,
)
from repro.core import (
    NULL,
    N,
    UndefinedOperationError,
    V,
    database,
    make_table,
)


class TestSingletonRule:
    def test_rename_with_two_interpretations_is_undefined(self):
        db = database(make_table("R", ["A"], [(1,)]))
        stmt = Assignment(
            "T", "RENAME", ["R"], {"old": ParamSet([Lit("A"), Lit("B")]), "new": "Z"}
        )
        with pytest.raises(UndefinedOperationError):
            Program([stmt]).run(db)

    def test_pair_with_multiple_entries_is_undefined_for_single_params(self):
        db = database(make_table("R", ["A", "A"], [("x", "y")]))
        stmt = Assignment(
            "T", "SWITCH", ["R"], {"value": Pair(ANY, Lit("A"))}
        )
        with pytest.raises(UndefinedOperationError):
            Program([stmt]).run(db)

    def test_pair_with_one_entry_works_for_single_params(self):
        db = database(make_table("R", ["A", "B"], [("x", 1)]))
        stmt = Assignment("T", "SWITCH", ["R"], {"value": Pair(ANY, Lit("A"))})
        out = Program([stmt]).run(db)
        # the switch fired: the old table name R moved into the grid (the
        # assignment then renames the switched table's name slot to T)
        result = out.tables_named("T")[0]
        assert result.entry(1, 1) == N("R")


class TestDataDependentParameters:
    def test_pair_selects_per_table(self):
        # same statement, two tables: the pair parameter evaluates against
        # each table under consideration separately
        t1 = make_table("R", ["K", "A"], [("x", 1)])
        t2 = make_table("R", ["K", "B"], [("y", 2)])
        stmt = Assignment("T", "SELECTCONST", ["R"], {"attr": "K", "value": Pair(ANY, Lit("K"))})
        out = Program([stmt]).run(database(t1, t2))
        results = out.tables_named("T")
        assert len(results) == 2
        assert all(t.height == 1 for t in results)


class TestWildcardSharing:
    def test_same_wildcard_in_two_argument_positions(self):
        db = database(
            make_table("R", ["A"], [(1,)]), make_table("S", ["A"], [(2,)])
        )
        # *1 PRODUCT *1: only same-name pairs, so R x R and S x S
        stmt = Assignment("T", "PRODUCT", [Star(1), Star(1)])
        out = Program([stmt]).run(db)
        result = out.tables_named("T")
        assert len(result) == 2
        assert {t.entry(1, 1) for t in result} == {V(1), V(2)}

    def test_wildcard_target_writes_back(self):
        db = database(
            make_table("R", ["A"], [(1,), (1,)]),
            make_table("S", ["B"], [(2,), (2,)]),
        )
        out = Program([Assignment(Star(0), "DEDUP", [Star(0)])]).run(db)
        assert all(t.height == 1 for t in out.tables)


class TestResultCollisions:
    def test_multiple_results_under_one_target_coexist(self):
        db = database(
            make_table("R", ["A"], [(1,)]), make_table("R", ["A"], [(2,)])
        )
        out = Program([assign("T", "TRANSPOSE", "R")]).run(db)
        assert len(out.tables_named("T")) == 2

    def test_identical_results_collapse(self):
        db = database(
            make_table("R", ["A"], [(1,)]), make_table("R", ["A"], [(1,), (1,)])
        )
        out = Program([assign("T", "DEDUP", "R")]).run(db)
        # both dedups yield the same table -> set semantics keep one
        assert len(out.tables_named("T")) == 1

    def test_split_results_all_carry_target_name(self):
        db = database(make_table("R", ["G", "X"], [("a", 1), ("b", 2)]))
        out = Program([assign("T", "SPLIT", "R", on="G")]).run(db)
        parts = out.tables_named("T")
        assert len(parts) == 2


class TestParsedEndToEnd:
    def test_constant_selection_program(self):
        db = database(make_table("R", ["A"], [("x",), ("y",)]))
        program = parse_program("T <- SELECTCONST attr A value 'x' (R)")
        out = program.run(db)
        assert out.tables_named("T")[0].height == 1

    def test_negative_parameter_set(self):
        db = database(make_table("R", ["A", "B", "C"], [(1, 2, 3)]))
        program = parse_program("T <- PROJECT attrs {A, B, C - B} (R)")
        out = program.run(db)
        assert set(out.tables_named("T")[0].column_attributes) == {N("A"), N("C")}
