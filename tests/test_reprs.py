"""Smoke tests for reprs and display strings across the library.

Reprs are part of the debugging surface of a production library; these
tests pin that every major object prints something informative (and that
printing never raises).
"""

from repro.algebra.programs import assign, parse_program
from repro.core import N, V, database, make_table
from repro.data import sales_info1
from repro.federation import TabularFederation
from repro.good import GoodEdge, GoodNode, ObjectGraph, Pattern, PatternNode
from repro.ndim import NDTable
from repro.olap import Cube
from repro.relational import Join, Project, Rel, Relation, RelationalDatabase
from repro.schemalog import SchemaLogDatabase, parse_rule, parse_schemalog
from repro.schemasql import parse_schemasql


class TestReprs:
    def test_core(self):
        table = make_table("R", ["A"], [(1,)])
        assert "R" in repr(table) and "2x2" in repr(table)
        db = database(table)
        assert "1 tables" in repr(db)
        assert "R" in str(db)

    def test_relational(self):
        relation = Relation("R", ["A", "B"], [(1, 2)])
        assert "R(A, B)" in repr(relation)
        reldb = RelationalDatabase([relation])
        assert "R/2(1)" in repr(reldb)
        expr = Project(Join(Rel("R"), Rel("S")), ["A"])
        assert "⋈" in repr(expr) and "π" in repr(expr)

    def test_programs(self):
        program = parse_program(
            """
            T <- GROUP by {Region} on {Sold} (Sales)
            while T do
                T <- DIFFERENCE (T, T)
            end
            """
        )
        text = repr(program)
        assert "GROUP" in text and "while" in text
        statement = assign("T", "PROJECT", "R", attrs=["A", "B"])
        assert "PROJECT" in repr(statement)

    def test_schemalog(self):
        rule = parse_rule("out[T: a -> X] :- in[T: a -> X], X != 'v', not z[U: a -> X].")
        text = str(rule)
        assert ":-" in text and "not z[" in text and "!=" in text
        db = SchemaLogDatabase([(N("r"), V(1), N("a"), V(2))])
        assert "1 facts" in repr(db)

    def test_schemasql(self):
        query = parse_schemasql("SELECT T.part AS p INTO out FROM east T")
        assert query.into == "out"  # dataclass repr exists implicitly
        assert "ColumnRef" in repr(query.select[0].expression)

    def test_good(self):
        graph = ObjectGraph(
            [GoodNode.make("a", "N", 1), GoodNode.make("b", "N")],
            [GoodEdge.make("a", "e", "b")],
        )
        assert "2 nodes" in repr(graph)
        assert "-e->" in str(GoodEdge.make("a", "e", "b"))
        assert str(GoodNode.make("a", "N", 1)).endswith("=1")
        assert "1 vars" in repr(Pattern([PatternNode.make("X", "N")]))

    def test_olap_ndim_federation(self):
        cube = Cube.from_facts([("a", "x", 1)], ["D1", "D2"], measure="M")
        assert "shape 1x1" in repr(cube)
        nd = NDTable((2, 2), {(0, 0): N("T")})
        assert "2x2" in repr(nd)
        federation = TabularFederation({"db": sales_info1()})
        assert "db(1)" in repr(federation)
