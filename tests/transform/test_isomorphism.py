"""Unit tests for database isomorphisms and automorphisms."""

import pytest

from repro.core import (
    LimitExceededError,
    N,
    V,
    database,
    make_table,
)
from repro.transform import (
    apply_symbol_map,
    are_isomorphic,
    automorphisms,
    find_isomorphism,
    movable_values,
)


def db_of(*rows, columns=("A",), name="R"):
    return database(make_table(name, list(columns), rows))


class TestIsomorphism:
    def test_identical_databases(self):
        assert are_isomorphic(db_of(("x",)), db_of(("x",)))

    def test_value_renaming(self):
        mapping = find_isomorphism(db_of(("x",)), db_of(("y",)))
        assert mapping == {V("x"): V("y")}

    def test_names_are_fixed(self):
        # Table names and attributes must match exactly.
        assert not are_isomorphic(db_of(("x",)), db_of(("x",), name="S"))
        assert not are_isomorphic(db_of(("x",)), db_of(("x",), columns=("B",)))

    def test_names_in_data_positions_are_fixed(self):
        left = database(make_table("R", ["A"], [(N("Tag"),)]))
        right = database(make_table("R", ["A"], [(N("Other"),)]))
        assert not are_isomorphic(left, right)

    def test_multiplicities_matter(self):
        left = db_of(("x",), ("y",))
        right = db_of(("x",), ("x",))
        assert not are_isomorphic(left, right)

    def test_row_order_immaterial(self):
        assert are_isomorphic(db_of(("x",), ("y",)), db_of(("y",), ("x",)))

    def test_structure_must_be_respected(self):
        left = database(make_table("R", ["A", "B"], [("x", "x")]))
        right = database(make_table("R", ["A", "B"], [("x", "y")]))
        assert not are_isomorphic(left, right)

    def test_fixed_symbols_pin_values(self):
        left, right = db_of(("x",)), db_of(("y",))
        assert are_isomorphic(left, right)
        assert not are_isomorphic(left, right, fixed={V("x")})

    def test_partial_assignment(self):
        left = db_of(("x",), ("y",))
        right = db_of(("p",), ("q",))
        forced = find_isomorphism(left, right, partial={V("x"): V("q")})
        assert forced == {V("x"): V("q"), V("y"): V("p")}

    def test_partial_assignment_unsatisfiable(self):
        left = database(make_table("R", ["A", "B"], [("x", "y")]))
        right = database(make_table("R", ["A", "B"], [("p", "q")]))
        assert find_isomorphism(left, right, partial={V("x"): V("q")}) is None

    def test_search_limit(self):
        rows = [(f"v{i}",) for i in range(13)]
        with pytest.raises(LimitExceededError):
            are_isomorphic(db_of(*rows), db_of(*rows))

    def test_cross_table_consistency(self):
        left = database(
            make_table("R", ["A"], [("x",)]), make_table("S", ["B"], [("x",)])
        )
        right_consistent = database(
            make_table("R", ["A"], [("z",)]), make_table("S", ["B"], [("z",)])
        )
        right_inconsistent = database(
            make_table("R", ["A"], [("z",)]), make_table("S", ["B"], [("w",)])
        )
        assert are_isomorphic(left, right_consistent)
        assert not are_isomorphic(left, right_inconsistent)


class TestAutomorphisms:
    def test_identity_always_present(self):
        auts = automorphisms(db_of(("x",)))
        assert len(auts) == 1
        assert auts[0] == {V("x"): V("x")}

    def test_interchangeable_values(self):
        auts = automorphisms(db_of(("x",), ("y",)))
        assert len(auts) == 2  # identity and the swap

    def test_structure_breaks_symmetry(self):
        db = database(make_table("R", ["A", "B"], [("x", "y")]))
        auts = automorphisms(db)
        assert len(auts) == 1  # x and y are not interchangeable across columns

    def test_fixed_reduces_group(self):
        db = db_of(("x",), ("y",))
        assert len(automorphisms(db, fixed={V("x")})) == 1


class TestApplySymbolMap:
    def test_application(self):
        db = db_of(("x",))
        out = apply_symbol_map(db, {V("x"): V("z")})
        assert out == db_of(("z",))

    def test_movable_values_excludes_names_and_null(self):
        db = database(make_table("R", ["A"], [(None,), ("x",)]))
        assert movable_values(db, frozenset()) == [V("x")]
