"""Unit tests for the transformation-condition checkers and Theorem 4.4."""

import pytest

from repro.algebra import group_compact, project, transpose, tuplenew, union
from repro.core import (
    NULL,
    FreshValueSource,
    N,
    TabularDatabase,
    V,
    Value,
    database,
    make_table,
)
from repro.transform import (
    check_transformation,
    normal_form,
    normal_form_agrees,
    sample_value_permutations,
    shuffle_database,
    symbols_grow,
)


def sales_db():
    return database(
        make_table(
            "Sales",
            ["Part", "Region", "Sold"],
            [("n", "e", 1), ("b", "e", 2), ("n", "w", 3)],
        )
    )


def pivot(db: TabularDatabase) -> TabularDatabase:
    return database(group_compact(db.table("Sales"), by="Region", on="Sold"))


def flip(db: TabularDatabase) -> TabularDatabase:
    return TabularDatabase([transpose(t) for t in db.tables])


class TestConditionCheckers:
    def test_pivot_is_a_transformation(self):
        report = check_transformation(pivot, sales_db(), samples=2)
        assert report.ok, report.failures

    def test_transpose_is_a_transformation(self):
        report = check_transformation(flip, sales_db(), samples=2)
        assert report.ok, report.failures

    def test_tagging_passes_determinacy(self):
        def tag(db):
            return database(tuplenew(db.table("Sales"), "Id", FreshValueSource()))

        report = check_transformation(tag, sales_db(), samples=2)
        assert report.determinate and report.generic, report.failures

    def test_non_generic_function_detected(self):
        def branded(db):
            # branches on an individual value at a fixed position —
            # violates genericity (a value permutation moves 'n' away
            # from that position, but the value set itself is unchanged)
            t = db.table("Sales")
            if t.entry(1, 1) == V("n"):
                return database(t.with_name(N("HasNuts")))
            return database(t)

        report = check_transformation(branded, sales_db(), samples=4)
        assert not (report.generic and report.permutation_invariant)

    def test_order_sensitive_function_detected(self):
        def first_row_only(db):
            t = db.table("Sales")
            return database(t.subtable([0, 1], range(t.ncols)))

        report = check_transformation(first_row_only, sales_db(), samples=4)
        assert not report.permutation_invariant

    def test_non_determinate_function_detected(self):
        state = {"called": 0}

        def flaky(db):
            state["called"] += 1
            t = db.table("Sales")
            if state["called"] > 1:
                return database(t.with_entry(1, 1, V("mutated")))
            return database(t)

        report = check_transformation(flaky, sales_db(), samples=1)
        assert not report.determinate

    def test_non_constructive_function_detected(self):
        def collapse_symmetry(db):
            # x and y are interchangeable in the input, but the output
            # keeps only x — no automorphism extension can exist.
            return database(make_table("Out", ["A"], [("x",)]))

        symmetric = database(make_table("R", ["A"], [("x",), ("y",)]))
        report = check_transformation(collapse_symmetry, symmetric, samples=1)
        assert not report.constructive

    def test_symbol_growth_check(self):
        def dropper(db):
            return database(project(db.table("Sales"), ["Part"]))

        report = check_transformation(
            dropper, sales_db(), samples=1, check_growth=True
        )
        assert not report.symbols_grow
        # keeping the input restores growth
        def keeper(db):
            return db.add(project(db.table("Sales"), ["Part"], name="P"))

        report2 = check_transformation(keeper, sales_db(), samples=1, check_growth=True)
        assert report2.symbols_grow


class TestHelpers:
    def test_sample_value_permutations_are_permutations(self):
        db = sales_db()
        for perm in sample_value_permutations(db, 3):
            assert sorted(perm.keys(), key=lambda s: s.sort_key()) == sorted(
                perm.values(), key=lambda s: s.sort_key()
            )

    def test_shuffle_database_is_equivalent(self):
        db = sales_db()
        assert shuffle_database(db, seed=3).equivalent(db)

    def test_symbols_grow(self):
        small = database(make_table("R", ["A"], [(1,)]))
        large = small.add(make_table("S", ["B"], [(2,)]))
        assert symbols_grow(small, large)
        assert not symbols_grow(large, small)


class TestNormalForm:
    def test_normal_form_agrees_for_pivot(self):
        assert normal_form_agrees(pivot, sales_db())

    def test_normal_form_agrees_for_transpose(self):
        assert normal_form_agrees(flip, sales_db())

    def test_normal_form_agrees_for_union_program(self):
        def merge_two(db):
            r, s = db.table("R"), db.table("S")
            return database(union(r, s, name="T"))

        db = database(
            make_table("R", ["A"], [("x",)]), make_table("S", ["A"], [("y",)])
        )
        assert normal_form_agrees(merge_two, db)

    def test_normal_form_output_matches_direct_content(self):
        db = sales_db()
        direct = pivot(db)
        via = normal_form(pivot)(db)
        assert via.equivalent(direct)
