"""Tests for the cube ↔ n-dimensional table bridges."""

import pytest

from repro.core import NULL, N, SchemaError, V
from repro.data import BASE_FACTS
from repro.ndim import NDTable, cube_to_ndtable, ndtable_to_cube
from repro.olap import Cube


@pytest.fixture
def cube2() -> Cube:
    return Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")


@pytest.fixture
def cube3() -> Cube:
    facts = [
        ("nuts", "east", "Q1", 10),
        ("nuts", "west", "Q2", 20),
        ("bolts", "east", "Q2", 30),
    ]
    return Cube.from_facts(facts, ["Part", "Region", "Quarter"], measure="Sold")


class TestCubeToNDTable:
    def test_shape_and_name(self, cube2):
        nd = cube_to_ndtable(cube2)
        assert nd.shape == (4, 5)  # 3 parts + 1, 4 regions + 1
        assert nd.name == N("Sold")

    def test_hyperplanes_hold_coordinates(self, cube2):
        nd = cube_to_ndtable(cube2)
        assert nd.attributes(0) == cube2.coords["Part"]
        assert nd.attributes(1) == cube2.coords["Region"]

    def test_cells_transfer(self, cube2):
        nd = cube_to_ndtable(cube2)
        assert nd[(1, 1)] == V(50)  # nuts/east
        assert nd[(2, 1)] is NULL  # screws/east inapplicable

    def test_three_dimensional(self, cube3):
        nd = cube_to_ndtable(cube3)
        assert nd.arity == 3
        assert nd[(1, 1, 1)] == V(10)

    def test_2d_case_matches_matrix_table(self, cube2):
        from repro.olap import cube_to_matrix_table

        nd = cube_to_ndtable(cube2)
        as_table = nd.to_table()
        matrix = cube_to_matrix_table(cube2, "Part", "Region", "Sold")
        # same grid contents apart from the name cell convention
        assert as_table.column_attributes == matrix.column_attributes
        assert as_table.data == matrix.data


class TestNDTableToCube:
    def test_round_trip(self, cube3):
        nd = cube_to_ndtable(cube3)
        back = ndtable_to_cube(nd, cube3.dims)
        assert back == cube3

    def test_default_dimension_names(self, cube2):
        back = ndtable_to_cube(cube_to_ndtable(cube2))
        assert back.dims == ("D0", "D1")
        assert len(back.cells) == len(cube2.cells)

    def test_dimension_count_checked(self, cube2):
        with pytest.raises(SchemaError):
            ndtable_to_cube(cube_to_ndtable(cube2), ("OnlyOne",))

    def test_one_dimensional_degeneracy_rejected(self):
        from repro.core import V

        flat = Cube(("D",), {"D": [V("a")]}, {(V("a"),): 1}, "M")
        with pytest.raises(SchemaError):
            cube_to_ndtable(flat)
        with pytest.raises(SchemaError):
            ndtable_to_cube(NDTable((3,), {(0,): V("m")}))

    def test_duplicate_hyperplane_entries_rejected(self):
        nd = NDTable((3, 2), {(0, 0): N("M"), (1, 0): V("x"), (2, 0): V("x")})
        with pytest.raises(SchemaError):
            ndtable_to_cube(nd)

    def test_slice_commutes_with_cube_slice(self, cube3):
        nd = cube_to_ndtable(cube3)
        sliced_nd = nd.slice_axis(2, 1)  # Quarter = Q1
        sliced_cube = ndtable_to_cube(sliced_nd, ("Part", "Region"))
        direct = cube3.slice("Quarter", "Q1")
        assert sliced_cube.cells == direct.cells