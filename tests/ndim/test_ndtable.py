"""Unit tests for the n-dimensional tabular generalization."""

import pytest

from repro.core import NULL, N, SchemaError, V, make_table
from repro.data import BASE_FACTS, sales_info2
from repro.ndim import NDTable


def cube3() -> NDTable:
    """A 3-d sales table: part x region x quarter, with attribute
    hyperplanes carrying the coordinate labels."""
    parts = ["nuts", "bolts"]
    regions = ["east", "west"]
    quarters = ["Q1", "Q2"]
    cells = {(0, 0, 0): N("Sales")}
    for i, p in enumerate(parts, start=1):
        cells[(i, 0, 0)] = V(p)
    for j, r in enumerate(regions, start=1):
        cells[(0, j, 0)] = V(r)
    for k, q in enumerate(quarters, start=1):
        cells[(0, 0, k)] = V(q)
    value = 10
    for i in range(1, 3):
        for j in range(1, 3):
            for k in range(1, 3):
                cells[(i, j, k)] = V(value)
                value += 1
    return NDTable((3, 3, 3), cells)


class TestShape:
    def test_name_and_attributes(self):
        t = cube3()
        assert t.arity == 3
        assert t.name == N("Sales")
        assert t.attributes(0) == (V("nuts"), V("bolts"))
        assert t.attributes(1) == (V("east"), V("west"))
        assert t.attributes(2) == (V("Q1"), V("Q2"))

    def test_default_null(self):
        t = NDTable((2, 2), {(0, 0): N("R")})
        assert t[(1, 1)] is NULL

    def test_validation(self):
        with pytest.raises(SchemaError):
            NDTable(())
        with pytest.raises(SchemaError):
            NDTable((0, 2))
        with pytest.raises(SchemaError):
            NDTable((2, 2), {(2, 0): 1})
        with pytest.raises(SchemaError):
            NDTable((2, 2), {(0,): 1})

    def test_data_positions(self):
        t = cube3()
        assert len(list(t.data_positions())) == 8
        assert len(t.data()) == 8

    def test_position_bounds_checked(self):
        with pytest.raises(SchemaError):
            cube3()[(3, 0, 0)]


class TestOperations:
    def test_permute_axes_generalizes_transpose(self):
        t = cube3()
        flipped = t.permute_axes((1, 0, 2))
        assert flipped.attributes(0) == t.attributes(1)
        assert flipped[(2, 1, 1)] == t[(1, 2, 1)]
        assert flipped.permute_axes((1, 0, 2)) == t

    def test_permute_validation(self):
        with pytest.raises(SchemaError):
            cube3().permute_axes((0, 0, 1))

    def test_slice_axis(self):
        t = cube3()
        q1 = t.slice_axis(2, 1)
        assert q1.arity == 2
        assert q1.name == N("Sales")
        assert q1.attributes(0) == t.attributes(0)
        assert q1[(1, 1)] == t[(1, 1, 1)]

    def test_slice_validation(self):
        with pytest.raises(SchemaError):
            cube3().slice_axis(2, 0)  # the hyperplane is not sliceable
        with pytest.raises(SchemaError):
            NDTable((2,), {(0,): N("R")}).slice_axis(0, 1)

    def test_subtable(self):
        t = cube3()
        sub = t.subtable([[0, 1], [0, 2], [0, 1, 2]])
        assert sub.shape == (2, 2, 3)
        assert sub[(1, 1, 1)] == t[(1, 2, 1)]

    def test_subtable_validation(self):
        with pytest.raises(SchemaError):
            cube3().subtable([[0], [0]])


class TestConversions:
    def test_two_dimensional_round_trip(self):
        table = sales_info2().tables[0]
        nd = NDTable.from_table(table)
        assert nd.arity == 2
        assert nd.to_table() == table

    def test_to_table_requires_arity_two(self):
        with pytest.raises(SchemaError):
            cube3().to_table()

    def test_three_d_as_tabular_database(self):
        # "a tabular database can be thought of as a three-dimensional table"
        slices = cube3().slices_to_tables(2)
        assert len(slices) == 2
        for table in slices:
            assert table.name == N("Sales")
            assert table.width == 2 and table.height == 2

    def test_slices_preserve_entries(self):
        t = cube3()
        q2 = t.slices_to_tables(2)[1]
        assert q2.entry(1, 1) == t[(1, 1, 2)]

    def test_equality_and_hash(self):
        assert cube3() == cube3()
        assert hash(cube3()) == hash(cube3())
        assert cube3() != cube3().permute_axes((1, 0, 2))
