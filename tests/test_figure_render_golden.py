"""Golden tests: the rendered figures, pinned character for character.

These protect the figure-regeneration story end to end: if any layer
(data, symbols, renderer) drifts, the printed table stops matching the
recorded form of the paper's figures.
"""

from repro.core import render_table
from repro.data import figure4_top, sales_info2, sales_info3

FIGURE4_TOP = """\
+-------+----------+---------+------+
| Sales | Part     | Region  | Sold |
+-------+----------+---------+------+
| ⊥     | 'nuts'   | 'east'  | 50   |
| ⊥     | 'nuts'   | 'west'  | 60   |
| ⊥     | 'nuts'   | 'south' | 40   |
| ⊥     | 'screws' | 'west'  | 50   |
| ⊥     | 'screws' | 'north' | 60   |
| ⊥     | 'screws' | 'south' | 50   |
| ⊥     | 'bolts'  | 'east'  | 70   |
| ⊥     | 'bolts'  | 'north' | 40   |
+-------+----------+---------+------+"""

SALESINFO2_BOLD = """\
+--------+----------+--------+--------+---------+---------+
| Sales  | Part     | Sold   | Sold   | Sold    | Sold    |
+--------+----------+--------+--------+---------+---------+
| Region | ⊥        | 'east' | 'west' | 'north' | 'south' |
| ⊥      | 'nuts'   | 50     | 60     | ⊥       | 40      |
| ⊥      | 'screws' | ⊥      | 50     | 60      | 50      |
| ⊥      | 'bolts'  | 70     | ⊥      | 40      | ⊥       |
+--------+----------+--------+--------+---------+---------+"""

SALESINFO3_BOLD = """\
+---------+--------+----------+---------+
| Sales   | 'nuts' | 'screws' | 'bolts' |
+---------+--------+----------+---------+
| 'east'  | 50     | ⊥        | 70      |
| 'west'  | 60     | 50       | ⊥       |
| 'north' | ⊥      | 60       | 40      |
| 'south' | 40     | 50       | ⊥       |
+---------+--------+----------+---------+"""


def test_figure4_top_golden():
    assert render_table(figure4_top()) == FIGURE4_TOP


def test_salesinfo2_golden():
    assert render_table(sales_info2().tables[0]) == SALESINFO2_BOLD


def test_salesinfo3_golden():
    assert render_table(sales_info3().tables[0]) == SALESINFO3_BOLD
