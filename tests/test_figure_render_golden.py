"""Golden tests: the rendered figures, pinned character for character.

These protect the figure-regeneration story end to end: if any layer
(data, symbols, algebra, renderer) drifts, the printed table stops
matching the recorded form of the paper's figures.

Every figure is produced by *running a TA program* — the Figure 1
representations through an identity statement, Figure 4 through its
GROUP, Figure 5 through its MERGE — and the whole matrix is
parametrized over ``engine="naive"|"vector"``: both backends must
render the identical characters, pinning the vectorized kernels (and
their interning round-trip) to the paper's artifacts.
"""

import pytest

from repro.algebra.programs.statements import Program, assign
from repro.core import Name, TabularDatabase, render_database, render_table
from repro.data import figure4_top, sales_info1, sales_info2, sales_info3, sales_info4

#: An identity statement: renaming an attribute no header mentions
#: copies each ``Sales`` table onto itself, so even the "fixture"
#: figures pass through a full engine round-trip before rendering.
IDENTITY = [assign("Sales", "RENAME", "Sales", old="__never__", new="__never__")]

ENGINES = ["naive", "vector"]

FIGURE4_TOP = """\
+-------+----------+---------+------+
| Sales | Part     | Region  | Sold |
+-------+----------+---------+------+
| ⊥     | 'nuts'   | 'east'  | 50   |
| ⊥     | 'nuts'   | 'west'  | 60   |
| ⊥     | 'nuts'   | 'south' | 40   |
| ⊥     | 'screws' | 'west'  | 50   |
| ⊥     | 'screws' | 'north' | 60   |
| ⊥     | 'screws' | 'south' | 50   |
| ⊥     | 'bolts'  | 'east'  | 70   |
| ⊥     | 'bolts'  | 'north' | 40   |
+-------+----------+---------+------+"""

SALESINFO2_BOLD = """\
+--------+----------+--------+--------+---------+---------+
| Sales  | Part     | Sold   | Sold   | Sold    | Sold    |
+--------+----------+--------+--------+---------+---------+
| Region | ⊥        | 'east' | 'west' | 'north' | 'south' |
| ⊥      | 'nuts'   | 50     | 60     | ⊥       | 40      |
| ⊥      | 'screws' | ⊥      | 50     | 60      | 50      |
| ⊥      | 'bolts'  | 70     | ⊥      | 40      | ⊥       |
+--------+----------+--------+--------+---------+---------+"""

SALESINFO3_BOLD = """\
+---------+--------+----------+---------+
| Sales   | 'nuts' | 'screws' | 'bolts' |
+---------+--------+----------+---------+
| 'east'  | 50     | ⊥        | 70      |
| 'west'  | 60     | 50       | ⊥       |
| 'north' | ⊥      | 60       | 40      |
| 'south' | 40     | 50       | ⊥       |
+---------+--------+----------+---------+"""

SALESINFO4 = """\
+--------+---------+--------+
| Sales  | Part    | Sold   |
+--------+---------+--------+
| Region | 'east'  | 'east' |
| ⊥      | 'nuts'  | 50     |
| ⊥      | 'bolts' | 70     |
+--------+---------+--------+

+--------+----------+---------+
| Sales  | Part     | Sold    |
+--------+----------+---------+
| Region | 'north'  | 'north' |
| ⊥      | 'screws' | 60      |
| ⊥      | 'bolts'  | 40      |
+--------+----------+---------+

+--------+----------+---------+
| Sales  | Part     | Sold    |
+--------+----------+---------+
| Region | 'south'  | 'south' |
| ⊥      | 'nuts'   | 40      |
| ⊥      | 'screws' | 50      |
+--------+----------+---------+

+--------+----------+--------+
| Sales  | Part     | Sold   |
+--------+----------+--------+
| Region | 'west'   | 'west' |
| ⊥      | 'nuts'   | 60     |
| ⊥      | 'screws' | 50     |
+--------+----------+--------+"""

FIGURE4_BOTTOM = """\
+--------+----------+--------+--------+---------+--------+---------+---------+--------+---------+
| Sales  | Part     | Sold   | Sold   | Sold    | Sold   | Sold    | Sold    | Sold   | Sold    |
+--------+----------+--------+--------+---------+--------+---------+---------+--------+---------+
| Region | ⊥        | 'east' | 'west' | 'south' | 'west' | 'north' | 'south' | 'east' | 'north' |
| ⊥      | 'nuts'   | 50     | ⊥      | ⊥       | ⊥      | ⊥       | ⊥       | ⊥      | ⊥       |
| ⊥      | 'nuts'   | ⊥      | 60     | ⊥       | ⊥      | ⊥       | ⊥       | ⊥      | ⊥       |
| ⊥      | 'nuts'   | ⊥      | ⊥      | 40      | ⊥      | ⊥       | ⊥       | ⊥      | ⊥       |
| ⊥      | 'screws' | ⊥      | ⊥      | ⊥       | 50     | ⊥       | ⊥       | ⊥      | ⊥       |
| ⊥      | 'screws' | ⊥      | ⊥      | ⊥       | ⊥      | 60      | ⊥       | ⊥      | ⊥       |
| ⊥      | 'screws' | ⊥      | ⊥      | ⊥       | ⊥      | ⊥       | 50      | ⊥      | ⊥       |
| ⊥      | 'bolts'  | ⊥      | ⊥      | ⊥       | ⊥      | ⊥       | ⊥       | 70     | ⊥       |
| ⊥      | 'bolts'  | ⊥      | ⊥      | ⊥       | ⊥      | ⊥       | ⊥       | ⊥      | 40      |
+--------+----------+--------+--------+---------+--------+---------+---------+--------+---------+"""

FIGURE5 = """\
+-------+----------+---------+------+
| Sales | Part     | Region  | Sold |
+-------+----------+---------+------+
| ⊥     | 'nuts'   | 'east'  | 50   |
| ⊥     | 'nuts'   | 'west'  | 60   |
| ⊥     | 'nuts'   | 'north' | ⊥    |
| ⊥     | 'nuts'   | 'south' | 40   |
| ⊥     | 'screws' | 'east'  | ⊥    |
| ⊥     | 'screws' | 'west'  | 50   |
| ⊥     | 'screws' | 'north' | 60   |
| ⊥     | 'screws' | 'south' | 50   |
| ⊥     | 'bolts'  | 'east'  | 70   |
| ⊥     | 'bolts'  | 'west'  | ⊥    |
| ⊥     | 'bolts'  | 'north' | 40   |
| ⊥     | 'bolts'  | 'south' | ⊥    |
+-------+----------+---------+------+"""

#: (id, database builder, program statements, golden).  One ``Sales``
#: output table expected unless the golden is a multi-table database
#: rendering (SalesInfo4).
CASES = [
    ("figure1-salesinfo1-figure4-top", sales_info1, IDENTITY, FIGURE4_TOP),
    ("figure1-salesinfo2", sales_info2, IDENTITY, SALESINFO2_BOLD),
    ("figure1-salesinfo3", sales_info3, IDENTITY, SALESINFO3_BOLD),
    (
        "figure4-bottom-group",
        lambda: TabularDatabase([figure4_top()]),
        [assign("Sales", "GROUP", "Sales", by="Region", on="Sold")],
        FIGURE4_BOTTOM,
    ),
    (
        "figure5-merge",
        sales_info2,
        [assign("Sales", "MERGE", "Sales", on="Sold", by="Region")],
        FIGURE5,
    ),
]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "build_db,statements,golden",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_figure_renders_golden(build_db, statements, golden, engine):
    out = Program(statements).run(build_db(), engine=engine)
    tables = out.tables_named(Name("Sales"))
    assert len(tables) == 1
    assert render_table(tables[0]) == golden


@pytest.mark.parametrize("engine", ENGINES)
def test_figure1_salesinfo4_renders_golden(engine):
    out = Program(IDENTITY).run(sales_info4(), engine=engine)
    assert render_database(out) == SALESINFO4
