"""Unit tests for the canonical representation (Lemmas 4.2/4.3)."""

import pytest

from repro.canonical import (
    COL,
    DATA,
    ENTRY,
    ID,
    MAP,
    ROW,
    TBL,
    VAL,
    decode,
    encode,
    validate_rep,
)
from repro.core import (
    NULL,
    FreshValueSource,
    N,
    SchemaError,
    TaggedValue,
    Table,
    V,
    database,
    make_table,
)
from repro.data import sales_info1, sales_info2, sales_info3, sales_info4


class TestEncode:
    def test_produces_the_rep_scheme(self):
        rep = encode(sales_info1())
        data = rep.table(DATA)
        mapping = rep.table(MAP)
        assert data.column_attributes == (TBL, ROW, COL, VAL)
        assert mapping.column_attributes == (ID, ENTRY)

    def test_fixed_width_despite_variable_width_input(self):
        # SalesInfo2 has width 5; its representation still has width-4 Data.
        rep = encode(sales_info2())
        assert rep.table(DATA).width == 4
        assert rep.table(MAP).width == 2

    def test_one_data_tuple_per_grid_position(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        rep = encode(database(t))
        assert rep.table(DATA).height == 4  # 2 rows x 2 cols

    def test_map_covers_every_occurrence(self):
        t = make_table("R", ["A"], [(1,)])
        rep = encode(database(t))
        # occurrences: table, 1 row, 1 column, 1 entry
        assert rep.table(MAP).height == 4

    def test_identifiers_are_fresh_tagged_values(self):
        t = make_table("R", ["A"], [(TaggedValue(5),)])
        rep = encode(database(t))
        ids = {rep.table(MAP).entry(i, 1) for i in rep.table(MAP).data_row_indices()}
        assert all(isinstance(i, TaggedValue) for i in ids)
        assert TaggedValue(5) not in ids  # advanced past existing tags

    def test_identifier_choice_is_immaterial(self):
        db = sales_info1()
        rep1 = encode(db, FreshValueSource(100))
        rep2 = encode(db, FreshValueSource(5000))
        assert rep1 != rep2
        assert decode(rep1).equivalent(decode(rep2))

    def test_validate_accepts_encodings(self):
        for db in (sales_info1(), sales_info2(), sales_info3(), sales_info4()):
            validate_rep(encode(db))


class TestDecode:
    @pytest.mark.parametrize(
        "factory", [sales_info1, sales_info2, sales_info3, sales_info4]
    )
    def test_round_trip_all_figure1_databases(self, factory):
        db = factory()
        assert decode(encode(db)).equivalent(db)

    @pytest.mark.parametrize(
        "factory", [sales_info1, sales_info2, sales_info3, sales_info4]
    )
    def test_round_trip_with_summaries(self, factory):
        db = factory(with_summary=True)
        assert decode(encode(db)).equivalent(db)

    def test_same_name_tables_survive(self):
        db = sales_info4()
        back = decode(encode(db))
        assert len(back.tables_named("Sales")) == 4

    def test_preserves_nulls_names_and_values_in_any_position(self):
        wild = Table(
            [
                [N("R"), V("colval"), NULL],
                [V("rowval"), N("namedata"), V(7)],
                [NULL, NULL, V(8)],
            ]
        )
        db = database(wild)
        assert decode(encode(db)).equivalent(db)

    def test_rejects_missing_relations(self):
        with pytest.raises(SchemaError):
            decode(database(make_table("Data", ["Tbl", "Row", "Col", "Val"], [])))

    def test_rejects_fd_violation_in_map(self):
        rep = database(
            make_table("Data", ["Tbl", "Row", "Col", "Val"], []),
            make_table("Map", ["Id", "Entry"], [(1, "a"), (1, "b")]),
        )
        with pytest.raises(SchemaError):
            decode(rep)

    def test_rejects_fd_violation_in_data(self):
        rep = database(
            make_table(
                "Data",
                ["Tbl", "Row", "Col", "Val"],
                [(0, 1, 2, 3), (0, 1, 2, 4)],
            ),
            make_table(
                "Map", ["Id", "Entry"], [(0, "R"), (1, None), (2, "A"), (3, "x"), (4, "y")]
            ),
        )
        with pytest.raises(SchemaError):
            decode(rep)

    def test_rejects_dangling_identifier(self):
        rep = database(
            make_table("Data", ["Tbl", "Row", "Col", "Val"], [(0, 1, 2, 99)]),
            make_table("Map", ["Id", "Entry"], [(0, "R"), (1, None), (2, "A")]),
        )
        with pytest.raises(SchemaError):
            decode(rep)

    def test_rejects_non_rectangular_table(self):
        # two rows, two cols, but only 3 of the 4 positions present
        rep = database(
            make_table(
                "Data",
                ["Tbl", "Row", "Col", "Val"],
                [(0, 1, 2, 10), (0, 1, 3, 11), (0, 4, 2, 12)],
            ),
            make_table(
                "Map",
                ["Id", "Entry"],
                [(0, "R"), (1, None), (2, "A"), (3, "B"), (4, None), (10, "x"), (11, "y"), (12, "z")],
            ),
        )
        with pytest.raises(SchemaError):
            decode(rep)

    def test_decode_of_handwritten_rep(self):
        # Map entries are placed verbatim, so names must be Name symbols.
        rep = database(
            make_table("Data", ["Tbl", "Row", "Col", "Val"], [(0, 1, 2, 3)]),
            make_table(
                "Map", ["Id", "Entry"], [(0, N("T")), (1, None), (2, N("A")), (3, "x")]
            ),
        )
        out = decode(rep)
        expected = make_table("T", ["A"], [("x",)])
        assert out.tables[0].equivalent(expected)


class TestDegenerateTables:
    def test_zero_data_tables_lose_shape_by_design(self):
        # A name-only table yields no Data tuples; decode cannot see it.
        db = database(Table([[N("R")]]))
        rep = encode(db)
        assert rep.table(DATA).height == 0
        assert decode(rep).is_empty()
