"""Shared fixtures: the paper's running example in its various forms."""

from __future__ import annotations

import pytest

from repro.core import Table, TabularDatabase, make_table
from repro.data import (
    figure4_bottom,
    figure4_top,
    figure5_result,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)


@pytest.fixture
def sales_relation() -> Table:
    """Figure 4 top: the relation-style Sales table."""
    return figure4_top()


@pytest.fixture
def sales_grouped() -> Table:
    """Figure 4 bottom: the printed result of GROUP by Region on Sold."""
    return figure4_bottom()


@pytest.fixture
def sales_pivot() -> Table:
    """The bold Sales table of SalesInfo2 (one Sold column per region)."""
    return sales_info2().tables[0]


@pytest.fixture
def sales_merged() -> Table:
    """Figure 5: the printed result of MERGE on Sold by Region."""
    return figure5_result()


@pytest.fixture
def salesinfo_databases() -> dict[str, TabularDatabase]:
    """All four Figure 1 databases, bold parts."""
    return {
        "SalesInfo1": sales_info1(),
        "SalesInfo2": sales_info2(),
        "SalesInfo3": sales_info3(),
        "SalesInfo4": sales_info4(),
    }


@pytest.fixture
def tiny_relation() -> Table:
    """A small relation-style table for quick structural tests."""
    return make_table("R", ["A", "B"], [(1, "x"), (2, "y"), (3, "x")])
