"""Integration tests: every example script runs and verifies itself.

The examples print their own checks ("matches: True", "agrees: True" …);
running them with captured stdout and asserting no failure markers turns
the examples into end-to-end tests of the public API.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(script), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), f"{script.name} produced no output"
    lowered = output.lower()
    for marker in ("false", "error", "traceback", "failed"):
        assert marker not in lowered, f"{script.name} printed {marker!r}:\n{output}"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "sales_restructuring", "olap_report"} <= names
    assert len(EXAMPLES) >= 3
