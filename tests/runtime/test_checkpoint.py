"""Checkpoint/resume: serialization round trips, resume determinism."""

import json

import pytest

from repro.core import NULL, Name, TabularDatabase, TaggedValue, Value, make_table
from repro.core.errors import (
    BudgetExceededError,
    CheckpointError,
    FaultInjectedError,
)
from repro.runtime import (
    Checkpoint,
    FaultPlan,
    FaultRule,
    Limits,
    load_checkpoint,
    program_fingerprint,
    run_hardened,
    save_checkpoint,
)
from repro.runtime.workloads import transitive_closure_workload


class TestSerialization:
    def test_symbol_round_trip(self):
        from repro.runtime.checkpoint import symbol_from_data, symbol_to_data

        for symbol in (NULL, Name("Sales"), TaggedValue(7), Value("x"), Value(3)):
            assert symbol_from_data(symbol_to_data(symbol)) == symbol

    def test_non_json_payload_is_rejected(self):
        from repro.runtime.checkpoint import symbol_to_data

        with pytest.raises(CheckpointError):
            symbol_to_data(Value(object()))

    def test_malformed_symbol_encoding_is_rejected(self):
        from repro.runtime.checkpoint import symbol_from_data

        with pytest.raises(CheckpointError):
            symbol_from_data(["?"])
        with pytest.raises(CheckpointError):
            symbol_from_data([])

    def test_database_round_trip(self):
        from repro.runtime.checkpoint import database_from_data, database_to_data

        db = TabularDatabase(
            [
                make_table("R", ["A", "B"], [(1, "x"), (2, NULL)]),
                make_table("S", ["C"], [(TaggedValue(4),)]),
            ]
        )
        assert database_from_data(database_to_data(db)) == db


class TestCheckpointFiles:
    def _checkpoint(self, db):
        return Checkpoint(
            statement_index=1,
            iterations=2,
            next_tag=9,
            db=db,
            fingerprint="abc123",
            body_index=3,
        )

    def test_save_load_round_trip(self, tmp_path):
        db = TabularDatabase([make_table("R", ["A"], [("x",)])])
        path = tmp_path / "ck.json"
        save_checkpoint(path, self._checkpoint(db))
        loaded = load_checkpoint(path)
        assert loaded.statement_index == 1
        assert loaded.body_index == 3
        assert loaded.iterations == 2
        assert loaded.next_tag == 9
        assert loaded.db == db
        assert loaded.done is False

    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        db = TabularDatabase([make_table("R", ["A"], [("x",)])])
        path = tmp_path / "ck.json"
        save_checkpoint(path, self._checkpoint(db))
        program, _db = transitive_closure_workload(4)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, program)
        assert "different program" in str(excinfo.value)

    def test_bad_format_is_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        path.write_text("not json at all {")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.json")

    def test_fingerprint_is_stable_per_program(self):
        a1, _ = transitive_closure_workload(5)
        a2, _ = transitive_closure_workload(5)
        b, _ = transitive_closure_workload(6)
        assert program_fingerprint(a1) == program_fingerprint(a2)
        # same program text => same fingerprint; the input db is not part
        # of the program, so tc:5 and tc:6 share one compiled program
        assert program_fingerprint(a1) == program_fingerprint(b)


class TestCrashAtomicity:
    """``save_checkpoint`` is temp-file + fsync + ``os.replace``: a crash
    at any instant leaves either the previous complete checkpoint or the
    new complete checkpoint — never a torn file at the real path."""

    def _checkpoint(self, rows):
        db = TabularDatabase([make_table("R", ["A"], rows)])
        return Checkpoint(
            statement_index=1,
            iterations=len(rows),
            next_tag=0,
            db=db,
            fingerprint="abc123",
        )

    def test_save_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(path, self._checkpoint([("x",)]))
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_crash_before_rename_preserves_the_previous_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(path, self._checkpoint([("x",)]))
        # a process that died after writing the temp file but before the
        # rename leaves garbage beside the checkpoint, not inside it
        (tmp_path / "ck.json.tmp").write_text('{"format": 1, "torn')
        loaded = load_checkpoint(path)
        assert loaded.iterations == 1

    def test_torn_checkpoint_is_a_typed_error(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(path, self._checkpoint([("x",), ("y",)]))
        payload = path.read_text()
        for cut in (1, len(payload) // 2, len(payload) - 2):
            path.write_text(payload[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_failed_write_surfaces_as_checkpoint_error(self, tmp_path):
        target = tmp_path / "not-a-directory" / "ck.json"
        with pytest.raises(CheckpointError):
            save_checkpoint(target, self._checkpoint([("x",)]))

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(path, self._checkpoint([("x",)]))
        save_checkpoint(path, self._checkpoint([("x",), ("y",)]))
        assert load_checkpoint(path).iterations == 2


class TestRunHardened:
    def test_matches_vanilla_run(self):
        program, db = transitive_closure_workload(6)
        assert run_hardened(program, db) == program.run(db)

    def test_rejects_non_programs(self):
        with pytest.raises(CheckpointError):
            run_hardened(object(), TabularDatabase())

    def test_resume_requires_checkpoint_path(self):
        program, db = transitive_closure_workload(4)
        with pytest.raises(CheckpointError):
            run_hardened(program, db, resume=True)

    def test_fault_kill_then_resume_is_identical(self, tmp_path):
        """Deterministic kill mid-fixpoint, resume to the identical result."""
        program, db = transitive_closure_workload(6)
        clean = program.run(db)
        path = tmp_path / "ck.json"
        plan = FaultPlan([FaultRule(op="DIFFERENCE", kind="raise", occurrence=2)])
        with pytest.raises(FaultInjectedError):
            run_hardened(program, db, faults=plan, checkpoint_path=path)
        saved = load_checkpoint(path, program)
        assert not saved.done
        resumed = run_hardened(program, db, checkpoint_path=path, resume=True)
        assert resumed == clean
        assert load_checkpoint(path, program).done

    def test_deadline_kill_then_resume_is_identical(self, tmp_path):
        """The acceptance scenario: a 50ms deadline kills the fixpoint
        mid-run; resuming from the checkpoint yields a database identical
        to the uninterrupted run."""
        program, db = transitive_closure_workload(10)
        clean = program.run(db)
        path = tmp_path / "ck.json"
        killed = False
        try:
            result = run_hardened(
                program, db, limits=Limits(deadline_s=0.05), checkpoint_path=path
            )
        except BudgetExceededError as err:
            killed = True
            assert err.kind == "deadline"
            result = run_hardened(program, db, checkpoint_path=path, resume=True)
        assert killed, "tc:10 should outlive a 50ms deadline"
        assert result == clean

    def test_repeated_deadline_resumes_make_progress(self, tmp_path):
        """Even re-applying the same 50ms deadline on every resume
        converges: per-body-statement checkpoints keep the stride small."""
        program, db = transitive_closure_workload(8)
        clean = program.run(db)
        path = tmp_path / "ck.json"
        result = None
        for attempt in range(100):
            try:
                result = run_hardened(
                    program,
                    db,
                    limits=Limits(deadline_s=0.05),
                    checkpoint_path=path,
                    resume=attempt > 0,
                )
                break
            except BudgetExceededError:
                continue
        assert result is not None, "no resume attempt ever finished"
        assert result == clean

    def test_resume_after_done_returns_final_database(self, tmp_path):
        program, db = transitive_closure_workload(5)
        path = tmp_path / "ck.json"
        final = run_hardened(program, db, checkpoint_path=path)
        again = run_hardened(program, db, checkpoint_path=path, resume=True)
        assert again == final

    def test_fresh_tags_survive_kill_and_resume(self, tmp_path):
        """New-value invention is deterministic across a kill/resume."""
        from repro.relational import (
            Assign,
            AssignNew,
            FWProgram,
            Rel,
            Relation,
            RelationalDatabase,
            compile_program,
            relational_to_tabular,
        )

        fw = FWProgram(
            [
                Assign("Copy", Rel("E")),
                AssignNew("Tagged", Rel("E"), "Id"),
                Assign("Again", Rel("Tagged")),
            ]
        )
        program = compile_program(fw, {"E": ("Src", "Dst")})
        db = relational_to_tabular(
            RelationalDatabase([Relation("E", ["Src", "Dst"], [(1, 2), (2, 3)])])
        )
        clean = program.run(db)
        path = tmp_path / "ck.json"
        # kill after TUPLENEW already committed its minted tags
        plan = FaultPlan([FaultRule(op="DEDUP", kind="raise", occurrence=2)])
        with pytest.raises(FaultInjectedError):
            run_hardened(program, db, faults=plan, checkpoint_path=path)
        resumed = run_hardened(program, db, checkpoint_path=path, resume=True)
        assert resumed == clean
