"""Fault injection: deterministic rules, typed surfacing, atomicity."""

import pytest

from repro.algebra.programs import parse_program
from repro.core import SchemaError, make_table
from repro.core.errors import (
    BudgetExceededError,
    EvaluationError,
    FaultInjectedError,
)
from repro.data import sales_info1
from repro.runtime import FAULT_KINDS, FaultPlan, FaultRule, Limits, governed

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


class TestFaultRule:
    def test_kinds_are_validated(self):
        with pytest.raises(EvaluationError):
            FaultRule(op="GROUP", kind="explode")

    def test_occurrence_is_one_based(self):
        with pytest.raises(EvaluationError):
            FaultRule(op="GROUP", kind="raise", occurrence=0)

    def test_op_is_uppercased(self):
        assert FaultRule(op="group", kind="raise").op == "GROUP"

    def test_known_kinds(self):
        assert FAULT_KINDS == ("raise", "delay", "corrupt")


class TestFaultPlan:
    def test_probe_mode_counts_dispatches(self):
        plan = FaultPlan()
        with governed(faults=plan):
            parse_program(PIVOT).run(sales_info1())
        assert plan.dispatch_counts() == {"GROUP": 1, "CLEANUP": 1, "PURGE": 1}
        assert plan.fired == []

    def test_raise_fires_at_the_named_occurrence(self):
        plan = FaultPlan([FaultRule(op="CLEANUP", kind="raise")], seed=3)
        with governed(faults=plan):
            with pytest.raises(FaultInjectedError) as excinfo:
                parse_program(PIVOT).run(sales_info1())
        err = excinfo.value
        assert err.op == "CLEANUP"
        assert err.kind == "raise"
        assert err.occurrence == 1
        assert err.seed == 3
        assert plan.fired == [{"op": "CLEANUP", "kind": "raise", "occurrence": 1}]

    def test_wildcard_rule_hits_the_first_op(self):
        plan = FaultPlan([FaultRule(op="*", kind="raise")])
        with governed(faults=plan):
            with pytest.raises(FaultInjectedError) as excinfo:
                parse_program(PIVOT).run(sales_info1())
        assert excinfo.value.op == "GROUP"

    def test_later_occurrence_lets_earlier_dispatches_through(self):
        program = parse_program("A <- DEDUP (T)\nB <- DEDUP (A)\nC <- DEDUP (B)")
        from repro.core import database

        db = database(make_table("T", ["X"], [["u"], ["u"]]))
        plan = FaultPlan([FaultRule(op="DEDUP", kind="raise", occurrence=3)])
        with governed(faults=plan):
            with pytest.raises(FaultInjectedError) as excinfo:
                program.run(db)
        assert excinfo.value.occurrence == 3

    def test_corrupt_surfaces_as_schema_error(self):
        plan = FaultPlan([FaultRule(op="GROUP", kind="corrupt")], seed=11)
        with governed(faults=plan):
            with pytest.raises(SchemaError):
                parse_program(PIVOT).run(sales_info1())
        assert plan.fired[0]["kind"] == "corrupt"

    def test_delay_trips_a_governed_deadline(self):
        plan = FaultPlan([FaultRule(op="CLEANUP", kind="delay", delay_s=0.2)])
        with governed(Limits(deadline_s=0.05), faults=plan):
            with pytest.raises(BudgetExceededError) as excinfo:
                parse_program(PIVOT).run(sales_info1())
        err = excinfo.value
        assert err.kind == "deadline"
        assert err.op == "CLEANUP"

    def test_delay_without_deadline_is_harmless(self):
        plan = FaultPlan([FaultRule(op="GROUP", kind="delay", delay_s=0.01)])
        with governed(faults=plan):
            result = parse_program(PIVOT).run(sales_info1())
        plain = parse_program(PIVOT).run(sales_info1())
        assert result == plain

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultRule(op="GROUP", kind="corrupt")], seed=5)
        with governed(faults=plan):
            with pytest.raises(SchemaError) as first:
                parse_program(PIVOT).run(sales_info1())
        first_fired = list(plan.fired)
        plan.reset()
        assert plan.fired == [] and plan.dispatch_counts() == {}
        with governed(faults=plan):
            with pytest.raises(SchemaError) as second:
                parse_program(PIVOT).run(sales_info1())
        assert plan.fired == first_fired
        assert str(first.value) == str(second.value)  # same torn cell

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule(op="GROUP", kind="raise", occurrence=2),
                FaultRule(op="*", kind="delay", delay_s=0.25),
            ],
            seed=42,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.rules == plan.rules
        assert restored.seed == 42

    def test_from_json_rejects_malformed(self):
        with pytest.raises(EvaluationError):
            FaultPlan.from_json({"rules": "nope"})
        with pytest.raises(EvaluationError):
            FaultPlan.from_json({"rules": [{"op": "GROUP"}]})


class TestAtomicity:
    def test_failed_statement_leaves_no_partial_mutation(self):
        """A mid-program fault never leaks its statement's effects."""
        db = sales_info1()
        program = parse_program(PIVOT)
        reference = program.run(db)
        plan = FaultPlan([FaultRule(op="PURGE", kind="raise")])
        with governed(faults=plan):
            with pytest.raises(FaultInjectedError):
                program.run(db)
        # the input database object is immutable and a clean re-run
        # still reproduces the reference result exactly
        assert program.run(db) == reference

    def test_fresh_tags_roll_back_on_fault(self):
        """Snapshot-and-commit: tags minted by a failed statement are reused.

        A corrupt fault fires *after* TUPLENEW has already minted its
        fresh tags; the statement's failure must rewind the fresh-value
        source, so a clean re-run from the same interpreter mints the
        very same tags a pristine run would.
        """
        from repro.algebra.programs import Assignment
        from repro.algebra.programs.statements import Interpreter, Program
        from repro.core import database

        db = database(make_table("E", ["A"], [["x"], ["y"]]))
        program = Program([Assignment("T", "TUPLENEW", ["E"], {"attr": "Id"})])
        interp = Interpreter()
        interp.fresh.advance_past(db.symbols())
        base = interp.fresh.next_tag
        plan = FaultPlan([FaultRule(op="TUPLENEW", kind="corrupt")])
        with governed(faults=plan):
            with pytest.raises(SchemaError):
                interp.run(program, db)
        assert interp.fresh.next_tag == base  # minted tags were rolled back
        replay = interp.run(program, db)
        assert replay == program.run(db)  # same tags as a pristine run
