"""Regressions for the while-fixpoint hot path.

Two pins:

* the ``tc:N`` transitive-closure workload converges in exactly
  ``N - 1`` while iterations (the longest path in the seeded chain
  graph), identically on the naive and vectorized engines — a planner
  or kernel bug that perturbed the fixpoint would show up here first;
* checkpoint writes no longer re-encode unchanged tables: a
  while-fixpoint re-serializes its whole database after every body
  statement, and :func:`repro.runtime.checkpoint.table_to_data` must
  memoize per table object so only *replaced* tables pay encoding.
"""

import json

import pytest

from repro.obs import observation
from repro.runtime import checkpoint as ck
from repro.runtime import run_hardened
from repro.runtime.workloads import parse_workload


@pytest.mark.parametrize("nodes", [4, 6, 9])
@pytest.mark.parametrize("engine", ["naive", "vector"])
def test_tc_fixpoint_iteration_count_is_pinned(nodes, engine):
    _label, program, db = parse_workload(f"tc:{nodes}")
    with observation() as obs:
        program.run(db, engine=engine)
    counters = obs.metrics.snapshot()["counters"]
    assert counters["while_loops"] == 1
    assert counters["while_iterations"] == nodes - 1


@pytest.mark.parametrize("engine", ["naive", "vector"])
def test_tc_results_agree_between_engines(engine):
    _label, program, db = parse_workload("tc:7")
    assert program.run(db, engine=engine) == program.run(db)


def test_table_to_data_is_memoized_per_object():
    _label, _program, db = parse_workload("tc:5")
    table = db.tables[0]
    first = ck.table_to_data(table)
    assert ck.table_to_data(table) is first

    # An equal-but-distinct object encodes to equal data, fresh list.
    clone = type(table)(table.grid)
    other = ck.table_to_data(clone)
    assert other == first and other is not first


def test_checkpoint_writes_skip_reencoding_unchanged_tables(tmp_path, monkeypatch):
    """After warming the memo, serializing the same database again must
    not call symbol_to_data at all."""
    _label, _program, db = parse_workload("tc:5")
    first = ck.database_to_data(db)

    def boom(symbol):  # pragma: no cover - failure path
        raise AssertionError("unchanged table was re-encoded")

    monkeypatch.setattr(ck, "symbol_to_data", boom)
    assert ck.database_to_data(db) == first


def test_hardened_fixpoint_checkpoints_stay_consistent(tmp_path):
    """End to end: checkpointed hardened runs equal plain runs on both
    engines, and the final checkpoint round-trips the database."""
    _label, program, db = parse_workload("tc:6")
    expected = program.run(db)
    for engine in ("naive", "vector"):
        path = tmp_path / f"tc-{engine}.json"
        result = run_hardened(program, db, checkpoint_path=path, engine=engine)
        assert result == expected
        data = json.loads(path.read_text())
        assert data["done"] is True
        assert ck.database_from_data(data["database"]) == expected
