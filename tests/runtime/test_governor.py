"""Resource governor: budgets, deadlines, cancellation, unified loops."""

import time

import pytest

from repro.algebra.programs import parse_program
from repro.core import make_table
from repro.core.errors import (
    BudgetExceededError,
    CancelledError,
    ContextualError,
    LimitExceededError,
    NonTerminationError,
    ReproError,
)
from repro.data import sales_info1
from repro.runtime import GOV, IterationBudget, Limits, ResourceGovernor, governed

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


class TestGovernedScope:
    def test_disabled_by_default(self):
        assert GOV.active is False
        assert GOV.governor is None
        assert GOV.faults is None

    def test_scope_installs_and_restores(self):
        with governed(Limits()) as gov:
            assert GOV.active is True
            assert GOV.governor is gov
        assert GOV.active is False
        assert GOV.governor is None

    def test_scopes_nest(self):
        with governed(Limits()) as outer:
            with governed(Limits(deadline_s=99)) as inner:
                assert GOV.governor is inner
            assert GOV.governor is outer

    def test_restores_after_budget_kill(self):
        with pytest.raises(BudgetExceededError):
            with governed(Limits(max_total_rows=1)):
                parse_program(PIVOT).run(sales_info1())
        assert GOV.active is False

    def test_unlimited_scope_changes_nothing(self):
        plain = parse_program(PIVOT).run(sales_info1())
        with governed():
            governed_result = parse_program(PIVOT).run(sales_info1())
        assert governed_result == plain


class TestBudgets:
    def test_total_rows_budget_trips_with_context(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            with governed(Limits(max_total_rows=5)):
                parse_program(PIVOT).run(sales_info1())
        err = excinfo.value
        assert err.kind == "total_rows"
        assert err.limit == 5
        assert err.used > 5
        assert err.op  # the op that crossed the line is named
        assert "[" in str(err) and "kind=total_rows" in str(err)

    def test_per_op_row_budget(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            with governed(Limits(max_rows_per_op=2)):
                parse_program(PIVOT).run(sales_info1())
        assert excinfo.value.kind == "rows"

    def test_per_op_cell_budget(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            with governed(Limits(max_cells_per_op=3)):
                parse_program(PIVOT).run(sales_info1())
        assert excinfo.value.kind == "cells"

    def test_deadline_trips(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            with governed(Limits(deadline_s=0.0)):
                time.sleep(0.005)
                parse_program(PIVOT).run(sales_info1())
        err = excinfo.value
        assert err.kind == "deadline"
        assert err.elapsed >= 0.0

    def test_memory_budget_needs_tracing(self):
        import tracemalloc

        gov = ResourceGovernor(Limits(max_memory_bytes=1))
        gov.check()  # not tracing: the memory budget is dormant
        tracemalloc.start()
        try:
            with pytest.raises(BudgetExceededError) as excinfo:
                gov.check(op="GROUP")
            assert excinfo.value.kind == "memory"
            assert excinfo.value.op == "GROUP"
        finally:
            tracemalloc.stop()

    def test_governor_while_iteration_budget(self):
        gov = ResourceGovernor(Limits(max_while_iterations=3))
        gov.while_tick("Delta", 3)
        with pytest.raises(NonTerminationError) as excinfo:
            gov.while_tick("Delta", 4, statement=2)
        err = excinfo.value
        assert err.kind == "iterations"
        assert err.condition == "Delta"
        assert err.limit == 3
        assert err.statement == 2

    def test_snapshot_counts(self):
        with governed() as gov:
            parse_program(PIVOT).run(sales_info1())
        snap = gov.snapshot()
        assert snap["ops_dispatched"] == 3
        assert snap["rows_emitted"] > 0
        assert snap["cells_emitted"] >= snap["rows_emitted"]
        assert snap["cancelled"] is False


class TestCancellation:
    def test_cancel_stops_at_next_chokepoint(self):
        with governed() as gov:
            gov.cancel("operator hit ctrl-c")
            with pytest.raises(CancelledError) as excinfo:
                parse_program(PIVOT).run(sales_info1())
        assert "operator hit ctrl-c" in str(excinfo.value)
        assert excinfo.value.op is not None

    def test_cancel_stops_compilation(self):
        from repro.relational import Assign, FWProgram, Rel, compile_program

        fw = FWProgram([Assign("T", Rel("E"))])
        with governed() as gov:
            gov.cancel()
            with pytest.raises(CancelledError):
                compile_program(fw, {"E": ("Src", "Dst")})


class TestUnifiedIterationBudgets:
    def test_iteration_budget_remaining_compat(self):
        budget = IterationBudget(3, label="test-loop")
        assert budget.remaining == 3
        budget.tick("Delta")
        assert budget.remaining == 2

    def test_iteration_budget_exhaustion_is_structured(self):
        budget = IterationBudget(1)
        budget.tick("Delta")
        with pytest.raises(NonTerminationError) as excinfo:
            budget.tick("Delta")
        err = excinfo.value
        assert err.kind == "iterations"
        assert err.iteration == 2
        assert err.limit == 1

    def test_fw_while_routes_through_governor(self):
        """The FO+while interpreter's _Budget ticks the installed governor."""
        from repro.relational import (
            Assign,
            Difference,
            FWProgram,
            Rel,
            Relation,
            RelationalDatabase,
            Union,
            WhileNotEmpty,
        )

        # Delta never drains (Delta := Delta ∪ Delta \ ∅ stays put), so the
        # loop only stops when a budget trips; the *governor's* cap is
        # tighter than the interpreter's and must win.
        fw = FWProgram(
            [
                Assign("Delta", Rel("E")),
                WhileNotEmpty(
                    "Delta",
                    [Assign("Delta", Union(Rel("Delta"), Difference(Rel("Delta"), Rel("E"))))],
                ),
            ]
        )
        db = RelationalDatabase([Relation("E", ["A"], [(1,)])])
        with governed(Limits(max_while_iterations=4)):
            with pytest.raises(NonTerminationError) as excinfo:
                fw.run(db, max_while_iterations=1000)
        assert excinfo.value.kind == "iterations"
        assert excinfo.value.limit == 4

    def test_ta_while_non_termination_is_structured(self):
        program = parse_program(
            """
            T <- DEDUP (T)
            while T do
                T <- DEDUP (T)
            end
            """
        )
        db = make_table("T", ["A"], [["x"]])
        from repro.core import database

        with pytest.raises(NonTerminationError) as excinfo:
            program.run(database(db), max_while_iterations=5)
        err = excinfo.value
        assert err.kind == "iterations"
        assert err.limit == 5
        assert err.condition == "T"


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(BudgetExceededError, ContextualError)
        assert issubclass(ContextualError, ReproError)
        assert issubclass(CancelledError, ContextualError)
        assert issubclass(LimitExceededError, BudgetExceededError)
        assert issubclass(NonTerminationError, BudgetExceededError)

    def test_context_renders_and_reads_back(self):
        err = BudgetExceededError("over budget", kind="rows", limit=10, used=11)
        assert err.context == {"kind": "rows", "limit": 10, "used": 11}
        assert str(err) == "over budget [kind=rows, limit=10, used=11]"
        assert err.kind == "rows"
        with pytest.raises(AttributeError):
            err.nonexistent_field

    def test_none_context_fields_are_dropped(self):
        err = CancelledError("stopped", op=None, statement=3)
        assert err.context == {"statement": 3}
        assert str(err) == "stopped [statement=3]"

    def test_limit_exceeded_carries_context(self):
        err = LimitExceededError("too many", kind="rows", op="setnew", used=2, limit=1)
        assert isinstance(err, BudgetExceededError)
        assert err.op == "setnew"
        assert err.used == 2
