"""The chaos harness: the acceptance matrix must be all-green.

The ISSUE acceptance bar: a matrix of at least 20 injection points
(pipeline × op × fault kind), every one surfacing as a typed
``ReproError`` subclass with op context and no partial mutation.
The ``fo-while`` fixpoint alone has 7 injection ops × 3 kinds = 21
points; the full CI job widens this to every bundled example.
"""

from repro.runtime.chaos import (
    EXPECTED_ERRORS,
    render_chaos_report,
    run_chaos_matrix,
)


class TestChaosMatrix:
    def test_fixpoint_matrix_is_all_green_and_big_enough(self):
        report = run_chaos_matrix(["fo-while"], seed=0)
        assert len(report.points) >= 20
        assert report.ok, render_chaos_report(report)
        # every fault kind is represented and typed as promised
        kinds = {p.kind for p in report.points}
        assert kinds == set(EXPECTED_ERRORS)
        for point in report.points:
            assert point.error_type == EXPECTED_ERRORS[point.kind].__name__

    def test_report_renders_verdicts(self):
        report = run_chaos_matrix(["fig4-group"], kinds=["raise"], seed=1)
        text = render_chaos_report(report)
        assert "ok  " in text
        assert "FaultInjectedError" in text
        assert "seed=1" in text
        assert f"{len(report.points)}/{len(report.points)}" in text
