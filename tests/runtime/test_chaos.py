"""The chaos harness: the acceptance matrix must be all-green.

The ISSUE acceptance bar: a matrix of at least 20 injection points
(pipeline × op × fault kind), every one surfacing as a typed
``ReproError`` subclass with op context and no partial mutation.
The ``fo-while`` fixpoint alone has 7 injection ops × 3 kinds = 21
points; the full CI job widens this to every bundled example.
"""

from repro.runtime.chaos import (
    EXPECTED_ERRORS,
    render_chaos_report,
    render_supervisor_report,
    run_chaos_matrix,
    run_supervisor_matrix,
)


class TestChaosMatrix:
    def test_fixpoint_matrix_is_all_green_and_big_enough(self):
        report = run_chaos_matrix(["fo-while"], seed=0)
        assert len(report.points) >= 20
        assert report.ok, render_chaos_report(report)
        # every fault kind is represented and typed as promised
        kinds = {p.kind for p in report.points}
        assert kinds == set(EXPECTED_ERRORS)
        for point in report.points:
            assert point.error_type == EXPECTED_ERRORS[point.kind].__name__

    def test_report_renders_verdicts(self):
        report = run_chaos_matrix(["fig4-group"], kinds=["raise"], seed=1)
        text = render_chaos_report(report)
        assert "ok  " in text
        assert "FaultInjectedError" in text
        assert "seed=1" in text
        assert f"{len(report.points)}/{len(report.points)}" in text


class TestSupervisorMatrix:
    def test_every_policy_path_lands_on_its_documented_decision(self):
        """The ISSUE acceptance bar: every (error class × policy) cell
        ends in the documented decision — retried / resumed / degraded /
        failed / quarantined — and ok cells produce the byte-identical
        final database (failed cells produce no database at all)."""
        report = run_supervisor_matrix(seed=0)
        assert report.ok, render_supervisor_report(report)
        observed = {p.cell: p.observed for p in report.points}
        assert observed == {
            "raise/retry/naive": "retried",
            "raise/retry/vector": "retried",
            "raise/single/naive": "failed",
            "deadline/retry/naive": "resumed",
            "deadline/retry/vector": "resumed",
            "deadline/single/naive": "failed",
            "corrupt/retry/vector": "degraded",
            "corrupt/retry/naive": "failed",
            "nontermination/retry/naive": "failed",
            "poison/breaker/naive": "quarantined",
        }
        assert all(p.identical for p in report.points)

    def test_supervisor_report_renders_cells(self):
        report = run_supervisor_matrix(seed=0)
        text = render_supervisor_report(report)
        assert "quarantined" in text
        assert f"{len(report.points)}/{len(report.points)}" in text
