"""Disabled-governor guarantees: strict no-op, zero allocations.

Mirrors ``tests/obs/test_disabled.py``: with no governed scope active,
every runtime chokepoint must fall through after one attribute check —
no governor objects, no fault hooks, no behavioural difference.
"""

from repro.algebra.programs import parse_program
from repro.algebra.programs.registry import OPERATIONS
from repro.core import make_table
from repro.data import sales_info1
from repro.runtime import GOV, governed

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


class TestDisabledState:
    def test_governance_is_off_by_default(self):
        assert GOV.active is False
        assert GOV.governor is None
        assert GOV.faults is None

    def test_results_identical_with_and_without_governance(self):
        plain = parse_program(PIVOT).run(sales_info1())
        with governed():
            under_governor = parse_program(PIVOT).run(sales_info1())
        assert under_governor == plain

    def test_scope_exit_returns_to_noop(self):
        with governed():
            assert GOV.active
        assert GOV.active is False
        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["x"]])
        (out,) = spec.invoke((table,), {}, None)
        assert out.height == 1


class TestZeroOverhead:
    def test_disabled_dispatch_stays_on_fast_path(self):
        """The disabled invoke never enters the governed wrapper."""
        import repro.algebra.programs.registry as registry_module

        spec = OPERATIONS["DEDUP"]
        table = make_table("T", ["A"], [["x"], ["y"]])
        calls = []
        original = registry_module.OpSpec._invoke_governed
        try:
            registry_module.OpSpec._invoke_governed = (
                lambda self, *a: calls.append(self.name) or original(self, *a)
            )
            spec.invoke((table,), {}, None)
            assert calls == []  # governed path never entered while disabled
            with governed():
                spec.invoke((table,), {}, None)
            assert calls == ["DEDUP"]  # and is entered exactly when active
        finally:
            registry_module.OpSpec._invoke_governed = original

    def test_disabled_run_allocates_nothing_in_runtime_modules(self):
        """tracemalloc audit: the off switch means *zero* runtime allocations.

        Runs the pivot pipeline (statements, while-free) and the
        fo-while fixpoint (loops) with no governed scope and asserts not
        a single object was allocated by any ``repro.runtime`` module —
        no governor, no fault bookkeeping, no budget objects beyond the
        pre-existing ``_Budget`` the FO+while interpreter always made.
        """
        import os
        import tracemalloc

        import repro.runtime
        from repro.relational import (
            Assign,
            Difference,
            FWProgram,
            Join,
            Project,
            Rel,
            Relation,
            RelationalDatabase,
            RenameAttr,
            Union,
            WhileNotEmpty,
        )
        from repro.runtime.workloads import transitive_closure_workload

        runtime_dir = os.path.dirname(repro.runtime.__file__)
        program = parse_program(PIVOT)
        db = sales_info1()
        ta_program, ta_db = transitive_closure_workload(4)
        # an FO+while fixpoint too, so the shared IterationBudget ticks
        step = Project(
            Join(
                RenameAttr(Rel("TC"), "Dst", "Mid"),
                RenameAttr(Rel("E"), "Src", "Mid"),
            ),
            ["Src", "Dst"],
        )
        fw_program = FWProgram(
            [
                Assign("TC", Rel("E")),
                Assign("Delta", Rel("E")),
                WhileNotEmpty(
                    "Delta",
                    [
                        Assign("New", step),
                        Assign("Delta", Difference(Rel("New"), Rel("TC"))),
                        Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                    ],
                ),
            ]
        )
        fw_db = RelationalDatabase(
            [Relation("E", ["Src", "Dst"], [(i, i + 1) for i in range(1, 4)])]
        )
        program.run(db)  # warm caches outside the measurement
        ta_program.run(ta_db)
        fw_program.run(fw_db)
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            program.run(db)
            ta_program.run(ta_db)
            fw_program.run(fw_db)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        runtime_filter = tracemalloc.Filter(True, os.path.join(runtime_dir, "*"))
        stats = after.filter_traces([runtime_filter]).compare_to(
            before.filter_traces([runtime_filter]), "filename"
        )
        leaked = [(s.traceback, s.size_diff) for s in stats if s.size_diff > 0]
        assert leaked == []
