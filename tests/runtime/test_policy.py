"""Supervision policy: retry schedules, error taxonomy, circuit breaker."""

import pytest

from repro.core.errors import (
    BudgetExceededError,
    CancelledError,
    CheckpointError,
    FaultInjectedError,
    LimitExceededError,
    NonTerminationError,
    QuarantinedError,
    ReproError,
)
from repro.obs.ledger import RunLedger
from repro.runtime import Limits
from repro.runtime.policy import (
    BREAKER_STATES,
    DECISIONS,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
    classify_error,
    merge_attempt_limits,
)


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.degrade_engine and policy.shed_obs

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff_s": -0.1},
            {"max_backoff_s": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_fields_are_rejected(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.5, jitter=0.0
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        schedule_a = [a.backoff_s(n) for n in range(1, 6)]
        assert schedule_a == [b.backoff_s(n) for n in range(1, 6)]
        assert schedule_a != [c.backoff_s(n) for n in range(1, 6)]

    def test_jitter_stays_within_the_spread(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.1, max_backoff_s=10.0)
        for attempt in range(1, 20):
            base = min(0.1 * 2.0 ** (attempt - 1), 10.0)
            assert base * 0.9 <= policy.backoff_s(attempt) <= base * 1.1

    def test_zero_base_means_no_backoff(self):
        assert RetryPolicy(base_backoff_s=0.0).backoff_s(3) == 0.0

    def test_json_round_trip(self):
        policy = RetryPolicy(
            max_attempts=5, attempt_deadline_s=0.25, total_deadline_s=2.0, seed=3
        )
        assert RetryPolicy.from_json(policy.to_json()) == policy

    def test_unknown_json_fields_are_rejected(self):
        with pytest.raises(ReproError) as excinfo:
            RetryPolicy.from_json({"max_attempts": 2, "retries": 9})
        assert "retries" in str(excinfo.value)
        with pytest.raises(ReproError):
            RetryPolicy.from_json([1, 2])


class TestClassifyError:
    def test_decision_vocabulary(self):
        assert DECISIONS == ("retry", "resume", "degrade", "fail")

    @pytest.mark.parametrize(
        "error,engine,decision",
        [
            (FaultInjectedError("boom", op="DIFFERENCE"), "naive", "retry"),
            (FaultInjectedError("boom", op="DIFFERENCE"), "vector", "retry"),
            (BudgetExceededError("deadline", kind="deadline"), "naive", "resume"),
            (CancelledError("stop"), "naive", "resume"),
            # NonTermination/LimitExceeded are BudgetExceeded subclasses,
            # but they are rooted in the workload: terminal, not resumable.
            (NonTerminationError("while spun", kind="while_iterations"), "naive", "fail"),
            (LimitExceededError("too wide", kind="rows"), "vector", "fail"),
            (CheckpointError("torn"), "naive", "fail"),
            (QuarantinedError("open breaker"), "naive", "fail"),
            (ValueError("kernel bug"), "vector", "degrade"),
            (ReproError("usage"), "vector", "degrade"),
            (ValueError("usage"), "naive", "fail"),
            (ReproError("usage"), "naive", "fail"),
        ],
    )
    def test_taxonomy(self, error, engine, decision):
        assert classify_error(error, engine) == decision


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_states_vocabulary(self):
        assert BREAKER_STATES == ("closed", "open", "half_open")

    def test_unseen_fingerprint_admits_closed(self):
        breaker = CircuitBreaker()
        assert breaker.admit("fp") == "closed"
        assert breaker.state("fp") == "closed"

    def test_opens_at_the_failure_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3), clock=clock)
        breaker.record_failure("fp")
        breaker.record_failure("fp")
        assert breaker.admit("fp") == "closed"
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        with pytest.raises(QuarantinedError) as excinfo:
            breaker.admit("fp", workload="tc:8")
        assert excinfo.value.context["failures"] == 3
        assert excinfo.value.context["retry_after_s"] > 0
        assert breaker.transitions[("closed", "open")] == 1

    def test_success_resets_a_partial_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure("fp")
        breaker.record_success("fp")
        breaker.record_failure("fp")
        assert breaker.state("fp") == "closed"  # streak broken, never opened

    def test_cooldown_admits_one_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_s=30.0), clock=clock
        )
        breaker.record_failure("fp")
        with pytest.raises(QuarantinedError):
            breaker.admit("fp")
        clock.now += 31.0
        assert breaker.admit("fp") == "half_open"
        breaker.record_success("fp")
        assert breaker.state("fp") == "closed"

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_s=30.0), clock=clock
        )
        breaker.record_failure("fp")
        clock.now += 31.0
        assert breaker.admit("fp") == "half_open"
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        with pytest.raises(QuarantinedError):
            breaker.admit("fp")  # the new cool-down starts from the re-open
        clock.now += 31.0
        assert breaker.admit("fp") == "half_open"

    def test_state_survives_a_restart_through_the_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2), ledger=ledger, clock=clock
        )
        breaker.record_failure("fp")
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        # a fresh process: reopen the ledger, rebuild the breaker
        reborn = CircuitBreaker(
            BreakerPolicy(failure_threshold=2),
            ledger=RunLedger(tmp_path / "led"),
            clock=clock,
        )
        assert reborn.state("fp") == "open"
        with pytest.raises(QuarantinedError):
            reborn.admit("fp")

    def test_below_threshold_failures_survive_a_restart(self, tmp_path):
        """The cross-process poison workload: each process records one
        failure; the third process's breaker must see the accumulated
        streak and open."""
        for _ in range(2):
            breaker = CircuitBreaker(
                BreakerPolicy(failure_threshold=3),
                ledger=RunLedger(tmp_path / "led"),
            )
            breaker.record_failure("fp")
        final = CircuitBreaker(
            BreakerPolicy(failure_threshold=3), ledger=RunLedger(tmp_path / "led")
        )
        final.record_failure("fp")
        assert final.state("fp") == "open"

    def test_persisted_success_reset_does_not_resurrect(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2), ledger=ledger)
        breaker.record_failure("fp")
        breaker.record_success("fp")
        reborn = CircuitBreaker(
            BreakerPolicy(failure_threshold=2), ledger=RunLedger(tmp_path / "led")
        )
        reborn.record_failure("fp")
        assert reborn.state("fp") == "closed"  # 1 failure, not 2

    def test_breaker_policy_validation(self):
        with pytest.raises(ReproError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ReproError):
            BreakerPolicy(cooldown_s=-1.0)


class TestMergeAttemptLimits:
    def test_nothing_to_merge_returns_the_input(self):
        limits = Limits(deadline_s=1.0)
        policy = RetryPolicy()
        assert merge_attempt_limits(limits, policy, None) is limits

    def test_no_limits_no_deadlines_yields_defaults(self):
        merged = merge_attempt_limits(None, RetryPolicy(), None)
        assert isinstance(merged, Limits)

    def test_tightest_deadline_wins(self):
        limits = Limits(deadline_s=1.0, max_rows_per_op=100)
        policy = RetryPolicy(attempt_deadline_s=0.25)
        merged = merge_attempt_limits(limits, policy, 5.0)
        assert merged.deadline_s == 0.25
        assert merged.max_rows_per_op == 100  # other fields untouched

    def test_remaining_total_caps_the_attempt(self):
        merged = merge_attempt_limits(
            Limits(deadline_s=1.0), RetryPolicy(attempt_deadline_s=0.5), 0.1
        )
        assert merged.deadline_s == 0.1

    def test_policy_deadline_applies_without_caller_limits(self):
        merged = merge_attempt_limits(None, RetryPolicy(attempt_deadline_s=0.3), None)
        assert merged.deadline_s == 0.3
