"""The supervisor: retry loops, degradation, quarantine, crash recovery."""

import pytest

from repro.core.errors import (
    BudgetExceededError,
    FaultInjectedError,
    LedgerError,
    QuarantinedError,
    SchemaError,
    VerificationError,
)
from repro.obs.events import RingSubscriber, event_stream
from repro.obs.ledger import RunLedger, new_run_id
from repro.runtime import FaultPlan, FaultRule, Limits, run_hardened
from repro.runtime.policy import BreakerPolicy, RetryPolicy
from repro.runtime.supervisor import Supervisor, workload_fingerprint
from repro.runtime.workloads import transitive_closure_workload

NO_SLEEP = dict(sleep=lambda s: None)


def tc(nodes=6):
    program, db = transitive_closure_workload(nodes)
    return f"tc:{nodes}", program, db


def one_shot_fault(seed=0):
    """A DIFFERENCE raise that fires once; the retry converges past it."""
    return FaultPlan([FaultRule(op="DIFFERENCE", kind="raise")], seed=seed)


def poison_fault(attempts=10, seed=0):
    """Raises on every attempt's first dispatch: terminally poisonous."""
    return FaultPlan(
        [FaultRule(op="*", kind="raise", occurrence=n) for n in range(1, attempts + 1)],
        seed=seed,
    )


class TestSubmit:
    def test_clean_run_is_one_attempt(self):
        label, program, db = tc()
        run = Supervisor(**NO_SLEEP).submit(program, db, workload=label)
        assert run.ok and run.result == program.run(db)
        assert len(run.attempts) == 1
        assert run.attempts[0].decision is None
        assert not run.degraded and run.shed == ()

    def test_injected_fault_is_retried_to_success(self):
        label, program, db = tc()
        supervisor = Supervisor(RetryPolicy(max_attempts=3, jitter=0.0), **NO_SLEEP)
        run = supervisor.submit(program, db, workload=label, faults=one_shot_fault())
        assert run.ok and run.result == program.run(db)
        assert [a.decision for a in run.attempts] == ["retry", None]
        assert run.attempts[0].error_type == "FaultInjectedError"
        assert run.attempts[0].backoff_s > 0.0
        assert supervisor.stats.decisions == {"retry": 1}
        assert supervisor.stats.backoff_s_total > 0.0

    def test_exhausted_attempts_fail_with_no_partial_result(self):
        label, program, db = tc()
        supervisor = Supervisor(RetryPolicy(max_attempts=2), **NO_SLEEP)
        run = supervisor.submit(program, db, workload=label, faults=poison_fault())
        assert not run.ok and run.result is None
        assert isinstance(run.error, FaultInjectedError)
        assert [a.decision for a in run.attempts] == ["retry", "fail"]
        assert supervisor.stats.exhausted == 1

    def test_deadline_kill_resumes_from_checkpoint(self, tmp_path):
        label, program, db = tc(10)
        supervisor = Supervisor(RetryPolicy(max_attempts=300), **NO_SLEEP)
        run = supervisor.submit(
            program,
            db,
            workload=label,
            limits=Limits(deadline_s=0.05),
            checkpoint_path=tmp_path / "ck.json",
        )
        assert run.ok and run.result == program.run(db)
        assert len(run.attempts) > 1, "tc:10 should outlive a 50ms deadline"
        resumes = [a for a in run.attempts if a.decision == "resume"]
        assert resumes and all(a.backoff_s == 0.0 for a in resumes)
        assert run.attempts[-1].resumed

    def test_corrupt_kernel_degrades_vector_to_naive(self, tmp_path):
        label, program, db = tc()
        supervisor = Supervisor(RetryPolicy(max_attempts=3), **NO_SLEEP)
        plan = FaultPlan([FaultRule(op="DIFFERENCE", kind="corrupt")])
        run = supervisor.submit(
            program,
            db,
            workload=label,
            faults=plan,
            engine="vector",
            checkpoint_path=tmp_path / "ck.json",
            verify=True,
        )
        assert run.ok and run.degraded and run.engine == "naive"
        assert run.attempts[0].decision == "degrade"
        assert run.attempts[0].engine == "vector"
        # the degraded attempt restarts fresh: the vector checkpoint's
        # fingerprint covers the planned program, not the naive one
        assert not run.attempts[1].resumed
        assert supervisor.stats.degraded == {"engine": 1}

    def test_corrupt_kernel_on_naive_is_terminal(self):
        label, program, db = tc()
        supervisor = Supervisor(RetryPolicy(max_attempts=3), **NO_SLEEP)
        plan = FaultPlan([FaultRule(op="DIFFERENCE", kind="corrupt")])
        run = supervisor.submit(program, db, workload=label, faults=plan)
        assert not run.ok and isinstance(run.error, SchemaError)
        assert len(run.attempts) == 1

    def test_memory_kill_sheds_observability_layers(self, monkeypatch):
        label, program, db = tc()
        calls = []

        def fake_run_hardened(prog, database, **kwargs):
            from repro.obs.events import EVT

            calls.append(EVT.active)
            if len(calls) == 1:
                raise BudgetExceededError("oom", kind="memory")
            return run_hardened(prog, database)

        monkeypatch.setattr(
            "repro.runtime.supervisor.run_hardened", fake_run_hardened
        )
        supervisor = Supervisor(RetryPolicy(max_attempts=3), **NO_SLEEP)
        with event_stream():
            run = supervisor.submit(program, db, workload=label)
        assert run.ok
        assert run.shed == ("events", "observation", "estimation")
        assert calls == [True, False]  # the retry ran with events shed
        assert run.attempts[1].shed
        assert supervisor.stats.degraded == {"obs_shed": 1}
        from repro.obs.events import EVT

        assert EVT.active is False  # the shed scope restored the outer state

    def test_total_deadline_caps_the_whole_run(self):
        label, program, db = tc()
        now = [0.0]

        def clock():
            now[0] += 10.0
            return now[0]

        supervisor = Supervisor(
            RetryPolicy(max_attempts=50, total_deadline_s=5.0, jitter=0.0),
            sleep=lambda s: None,
            clock=clock,
        )
        run = supervisor.submit(program, db, workload=label, faults=poison_fault(60))
        assert not run.ok
        assert isinstance(run.error, (FaultInjectedError, BudgetExceededError))
        assert len(run.attempts) < 50

    def test_verify_stamps_the_comparison(self):
        label, program, db = tc()
        run = Supervisor(**NO_SLEEP).submit(program, db, workload=label, verify=True)
        assert run.ok and run.verified is True

    def test_verify_mismatch_is_terminal_with_no_result(self, monkeypatch):
        label, program, db = tc()

        def wrong_run_hardened(prog, database, **kwargs):
            from repro.core import TabularDatabase

            return TabularDatabase()

        monkeypatch.setattr(
            "repro.runtime.supervisor.run_hardened", wrong_run_hardened
        )
        supervisor = Supervisor(**NO_SLEEP)
        run = supervisor.submit(program, db, workload=label, verify=True)
        assert not run.ok and run.result is None
        assert run.verified is False
        assert isinstance(run.error, VerificationError)

    def test_supervision_events_are_emitted(self):
        label, program, db = tc()
        supervisor = Supervisor(RetryPolicy(max_attempts=3, jitter=0.0), **NO_SLEEP)
        with event_stream() as bus:
            ring = bus.ring(512)
            supervisor.submit(program, db, workload=label, faults=one_shot_fault())
            kinds = [e.kind for e in ring.tail()]
        assert "retry_scheduled" in kinds
        retry = next(e for e in ring.tail() if e.kind == "retry_scheduled")
        assert retry.data["decision"] == "retry"
        assert retry.data["attempt"] == 1


class TestQuarantine:
    def test_breaker_quarantines_a_poison_workload(self):
        label, program, db = tc()
        supervisor = Supervisor(
            RetryPolicy(max_attempts=1),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_s=3600.0),
            **NO_SLEEP,
        )
        for _ in range(2):
            run = supervisor.submit(program, db, workload=label, faults=poison_fault())
            assert not run.ok
        with pytest.raises(QuarantinedError) as excinfo:
            supervisor.submit(program, db, workload=label)
        assert excinfo.value.context["fingerprint"] == run.fingerprint
        assert supervisor.stats.quarantined == 1

    def test_fingerprint_falls_back_to_the_label(self):
        fp = workload_fingerprint(object(), "custom:workload")
        assert len(fp) == 16
        assert fp == workload_fingerprint(object(), "custom:workload")
        assert fp != workload_fingerprint(object(), "other")


class TestLedgerIntegration:
    def test_run_start_and_closing_manifest(self, tmp_path):
        label, program, db = tc()
        ledger = RunLedger(tmp_path / "led")
        supervisor = Supervisor(
            RetryPolicy(max_attempts=3, jitter=0.0), ledger=ledger, **NO_SLEEP
        )
        run = supervisor.submit(
            program, db, workload=label, spec=label, faults=one_shot_fault()
        )
        assert run.ok
        assert ledger.open_runs() == []  # the closing manifest pairs the start
        manifest = ledger.get(run.run_id)
        assert manifest["outcome"]["status"] == "ok"
        assert manifest["outcome"]["attempts"] == 2
        block = manifest["supervisor"]
        assert block["outcome"] == "ok"
        assert [a["decision"] for a in block["attempts"]] == ["retry", None]
        # and the whole thing survives a reopen
        reopened = RunLedger(tmp_path / "led")
        assert reopened.get(run.run_id)["supervisor"]["outcome"] == "ok"

    def test_failed_run_manifest_has_error_and_no_result(self, tmp_path):
        label, program, db = tc()
        ledger = RunLedger(tmp_path / "led")
        supervisor = Supervisor(RetryPolicy(max_attempts=1), ledger=ledger, **NO_SLEEP)
        run = supervisor.submit(program, db, workload=label, faults=poison_fault())
        manifest = ledger.get(run.run_id)
        assert manifest["outcome"]["status"] == "error"
        assert manifest["outcome"]["error_type"] == "FaultInjectedError"
        assert manifest["result"] is None


class TestRecover:
    def _crash(self, ledger, tmp_path, nodes=10, spec=True, checkpoint=True):
        """Simulate a process dying mid-run: a ``run_start`` with no
        closing record, plus (optionally) the checkpoint it left behind."""
        label, program, db = tc(nodes)
        run_id = new_run_id()
        path = tmp_path / f"{run_id}.json"
        if checkpoint:
            with pytest.raises(BudgetExceededError):
                run_hardened(
                    program, db, limits=Limits(deadline_s=0.05), checkpoint_path=path
                )
        ledger.record_start(
            {
                "run_id": run_id,
                "ts": 1.0,
                "workload": label,
                "spec": label if spec else None,
                "engine": "naive",
                "fingerprint": workload_fingerprint(program, label),
                "checkpoint": str(path) if checkpoint else None,
                "limits": None,
            }
        )
        return run_id, label, program, db, path

    def test_recover_needs_a_ledger(self):
        with pytest.raises(LedgerError):
            Supervisor(**NO_SLEEP).recover()

    def test_open_run_is_resumed_to_the_identical_database(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id, label, program, db, _ = self._crash(ledger, tmp_path)
        assert [r["run_id"] for r in ledger.open_runs()] == [run_id]
        supervisor = Supervisor(RetryPolicy(max_attempts=300), ledger=ledger, **NO_SLEEP)
        report = supervisor.recover(verify=True)
        assert report.ok and report.scanned == 1
        assert [r["run_id"] for r in report.resumed] == [run_id]
        assert ledger.open_runs() == []
        manifest = ledger.get(run_id)
        assert manifest["outcome"]["status"] == "ok"
        assert manifest["supervisor"]["recovered"] is True
        assert supervisor.stats.recovery == {"resumed": 1}
        assert supervisor.last_run.result == program.run(db)

    def test_run_without_checkpoint_is_orphaned(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id, *_ = self._crash(ledger, tmp_path, checkpoint=False)
        report = Supervisor(ledger=ledger, **NO_SLEEP).recover()
        assert report.ok  # orphaning is a definitive outcome, not a failure
        assert [o["run_id"] for o in report.orphaned] == [run_id]
        assert "no checkpoint" in report.orphaned[0]["reason"]
        assert ledger.open_runs() == []
        assert [o["run_id"] for o in ledger.orphans()] == [run_id]

    def test_missing_checkpoint_file_is_orphaned(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id, label, program, db, path = self._crash(ledger, tmp_path)
        path.unlink()
        report = Supervisor(ledger=ledger, **NO_SLEEP).recover()
        assert [o["run_id"] for o in report.orphaned] == [run_id]
        assert "is gone" in report.orphaned[0]["reason"]

    def test_torn_checkpoint_is_orphaned(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id, label, program, db, path = self._crash(ledger, tmp_path)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])  # torn mid-write
        report = Supervisor(ledger=ledger, **NO_SLEEP).recover()
        assert [o["run_id"] for o in report.orphaned] == [run_id]
        assert "unusable checkpoint" in report.orphaned[0]["reason"]

    def test_unreplayable_spec_is_orphaned(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id, *_ = self._crash(ledger, tmp_path, spec=False)
        report = Supervisor(ledger=ledger, **NO_SLEEP).recover()
        assert [o["run_id"] for o in report.orphaned] == [run_id]
        assert "unreplayable spec" in report.orphaned[0]["reason"]

    def test_recovery_is_idempotent(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        self._crash(ledger, tmp_path)
        supervisor = Supervisor(RetryPolicy(max_attempts=300), ledger=ledger, **NO_SLEEP)
        first = supervisor.recover()
        assert first.scanned == 1 and first.ok
        second = supervisor.recover()
        assert second.scanned == 0  # nothing left open

    def test_report_render_names_every_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        run_id, *_ = self._crash(ledger, tmp_path, checkpoint=False)
        report = Supervisor(ledger=ledger, **NO_SLEEP).recover()
        text = report.render()
        assert run_id in text and "orphaned" in text
