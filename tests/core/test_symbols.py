"""Unit tests for the symbol sorts and weak containment/equality."""

import pytest

from repro.core import (
    NULL,
    FreshValueSource,
    Name,
    Null,
    TaggedValue,
    Value,
    coerce_name,
    coerce_symbol,
    strip_null,
    weakly_contained,
    weakly_equal,
)


class TestSorts:
    def test_name_is_name(self):
        assert Name("Part").is_name
        assert not Name("Part").is_value
        assert not Name("Part").is_null

    def test_value_is_value(self):
        assert Value(50).is_value
        assert not Value(50).is_name

    def test_null_singleton(self):
        assert Null() is NULL
        assert NULL.is_null

    def test_name_requires_nonempty_string(self):
        with pytest.raises(ValueError):
            Name("")
        with pytest.raises(ValueError):
            Name(50)  # type: ignore[arg-type]

    def test_value_rejects_symbol_payload(self):
        with pytest.raises(TypeError):
            Value(Name("A"))

    def test_value_rejects_unhashable_payload(self):
        with pytest.raises(TypeError):
            Value([1, 2])

    def test_name_and_value_with_same_text_differ(self):
        assert Name("east") != Value("east")
        assert hash(Name("east")) != hash(Value("east"))

    def test_tagged_value_distinct_from_plain_value(self):
        assert TaggedValue(3) != Value(3)
        assert Value(3) != TaggedValue(3)

    def test_tagged_value_equality(self):
        assert TaggedValue(3) == TaggedValue(3)
        assert TaggedValue(3) != TaggedValue(4)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Name("A").text = "B"
        with pytest.raises(AttributeError):
            Value(1).payload = 2

    def test_equal_values_have_equal_sort_keys(self):
        # bool/int/float cross-equality must agree with sort keys.
        assert Value(True) == Value(1)
        assert Value(True).sort_key() == Value(1).sort_key()
        assert Value(2) == Value(2.0)
        assert Value(2).sort_key() == Value(2.0).sort_key()

    def test_total_order_across_sorts(self):
        symbols = [Value("z"), Name("a"), NULL, Value(1), TaggedValue(0)]
        ordered = sorted(symbols, key=lambda s: s.sort_key())
        assert ordered[0] is NULL
        assert isinstance(ordered[1], Name)

    def test_str_rendering(self):
        assert str(NULL) == "⊥"
        assert str(Name("Part")) == "Part"
        assert str(Value("east")) == "'east'"
        assert str(Value(50)) == "50"
        assert str(TaggedValue(7)) == "@7"


class TestCoercion:
    def test_coerce_symbol(self):
        assert coerce_symbol(None) is NULL
        assert coerce_symbol("east") == Value("east")
        assert coerce_symbol(50) == Value(50)
        assert coerce_symbol(Name("Part")) == Name("Part")

    def test_coerce_name(self):
        assert coerce_name("Part") == Name("Part")
        assert coerce_name(Name("Part")) == Name("Part")
        with pytest.raises(TypeError):
            coerce_name(50)


class TestWeakEquality:
    def test_strip_null(self):
        assert strip_null([NULL, Value(1), NULL]) == frozenset([Value(1)])

    def test_weak_containment_ignores_null(self):
        assert weakly_contained([NULL], [Value(1)])
        assert weakly_contained([Value(1), NULL], [Value(1)])
        assert not weakly_contained([Value(2)], [Value(1)])

    def test_weak_equality(self):
        assert weakly_equal([NULL], [])
        assert weakly_equal([Value(1), NULL], [Value(1)])
        assert not weakly_equal([Value(1)], [Value(2)])

    def test_weak_equality_is_equivalence_on_examples(self):
        a = [Value(1), NULL]
        b = [NULL, Value(1), NULL]
        c = [Value(1)]
        assert weakly_equal(a, a)
        assert weakly_equal(a, b) and weakly_equal(b, a)
        assert weakly_equal(a, b) and weakly_equal(b, c) and weakly_equal(a, c)


class TestFreshValueSource:
    def test_fresh_values_are_distinct(self):
        source = FreshValueSource()
        a, b = source.fresh(), source.fresh()
        assert a != b

    def test_advance_past(self):
        source = FreshValueSource()
        source.advance_past([TaggedValue(10), Value(99), Name("A")])
        assert source.fresh() == TaggedValue(11)

    def test_advance_past_ignores_lower_tags(self):
        source = FreshValueSource(start=5)
        source.advance_past([TaggedValue(1)])
        assert source.next_tag == 5
