"""Unit tests for TabularDatabase: set semantics, lookup, replacement."""

import pytest

from repro.core import (
    NULL,
    N,
    Name,
    SchemaError,
    TabularDatabase,
    database,
    make_table,
)
from repro.data import sales_info4


def t(name, value):
    return make_table(name, ["A"], [(value,)])


class TestSetSemantics:
    def test_duplicate_tables_collapse(self):
        db = database(t("R", 1), t("R", 1))
        assert len(db) == 1

    def test_same_name_different_tables_coexist(self):
        db = database(t("R", 1), t("R", 2))
        assert len(db) == 2
        assert len(db.tables_named("R")) == 2

    def test_salesinfo4_has_four_sales_tables(self):
        db = sales_info4()
        assert len(db.tables_named("Sales")) == 4

    def test_canonical_order_independent_of_insertion(self):
        a, b = t("R", 1), t("S", 2)
        assert database(a, b) == database(b, a)
        assert hash(database(a, b)) == hash(database(b, a))

    def test_rejects_non_tables(self):
        with pytest.raises(SchemaError):
            TabularDatabase(["not a table"])  # type: ignore[list-item]


class TestLookup:
    def test_table_unique(self):
        db = database(t("R", 1), t("S", 2))
        assert db.table("R") == t("R", 1)

    def test_table_missing(self):
        with pytest.raises(SchemaError):
            database(t("R", 1)).table("Z")

    def test_table_ambiguous(self):
        db = database(t("R", 1), t("R", 2))
        with pytest.raises(SchemaError):
            db.table("R")

    def test_table_names_and_scheme(self):
        db = database(t("R", 1), t("S", 2))
        assert db.table_names() == frozenset([N("R"), N("S")])
        assert db.scheme() == frozenset([N("R"), N("S")])

    def test_scheme_excludes_non_name_table_names(self):
        unnamed = t("R", 1).with_name(NULL)
        db = database(unnamed)
        assert db.scheme() == frozenset()
        assert NULL in db.table_names()

    def test_symbols_union(self):
        db = database(t("R", 1), t("S", 2))
        symbols = db.symbols()
        assert N("R") in symbols and N("S") in symbols
        assert N("A") in symbols

    def test_names_filters_to_name_sort(self):
        db = database(t("R", 1))
        assert all(isinstance(n, Name) for n in db.names())


class TestConstruction:
    def test_add_remove(self):
        db = database(t("R", 1))
        db2 = db.add(t("S", 2))
        assert len(db2) == 2 and len(db) == 1
        assert db2.remove(t("S", 2)) == db

    def test_without_name(self):
        db = database(t("R", 1), t("R", 2), t("S", 3))
        assert db.without_name("R").table_names() == frozenset([N("S")])

    def test_replace_named(self):
        db = database(t("R", 1), t("R", 2))
        db2 = db.replace_named("R", [t("R", 9)])
        assert db2.tables_named("R") == (t("R", 9),)

    def test_union_operator(self):
        assert database(t("R", 1)) | database(t("S", 2)) == database(t("R", 1), t("S", 2))

    def test_is_empty(self):
        assert database().is_empty()
        assert not database(t("R", 1)).is_empty()


class TestEquivalence:
    def test_equivalent_up_to_row_permutation(self):
        a = make_table("R", ["A"], [(1,), (2,)])
        b = make_table("R", ["A"], [(2,), (1,)])
        assert database(a).equivalent(database(b))

    def test_not_equivalent_with_extra_table(self):
        a = make_table("R", ["A"], [(1,)])
        assert not database(a).equivalent(database(a, t("S", 2)))

    def test_equivalent_matches_tables_injectively(self):
        a1 = make_table("R", ["A"], [(1,)])
        a2 = make_table("R", ["A"], [(2,)])
        assert not database(a1, a2).equivalent(database(a1, a1.with_entry(1, 1, a1.entry(1, 1))))
