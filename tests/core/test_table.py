"""Unit tests for the Table matrix: regions, subtables, subsumption."""

import pytest

from repro.core import (
    NULL,
    N,
    SchemaError,
    Table,
    V,
    make_table,
)


def simple() -> Table:
    return make_table("R", ["A", "B"], [(1, 2), (3, 4)])


class TestShape:
    def test_regions(self):
        t = simple()
        assert t.name == N("R")
        assert t.column_attributes == (N("A"), N("B"))
        assert t.row_attributes == (NULL, NULL)
        assert t.data == ((V(1), V(2)), (V(3), V(4)))

    def test_width_height_follow_paper_convention(self):
        t = simple()
        # width n and height m of an (m+1) x (n+1) matrix
        assert (t.width, t.height) == (2, 2)
        assert (t.ncols, t.nrows) == (3, 3)

    def test_minimal_table_is_just_a_name(self):
        t = Table([[N("R")]])
        assert t.width == 0 and t.height == 0
        assert t.column_attributes == ()
        assert t.row_attributes == ()

    def test_rejects_empty_grid(self):
        with pytest.raises(SchemaError):
            Table([])

    def test_rejects_ragged_grid(self):
        with pytest.raises(SchemaError):
            Table([[N("R"), N("A")], [NULL]])

    def test_rejects_non_symbols(self):
        with pytest.raises(SchemaError):
            Table([[N("R"), "A"]])  # type: ignore[list-item]

    def test_rows_and_columns(self):
        t = simple()
        assert t.row(1) == (NULL, V(1), V(2))
        assert t.column(1) == (N("A"), V(1), V(3))
        assert t.data_row(2) == (V(3), V(4))
        assert t.data_column(2) == (V(2), V(4))

    def test_symbols(self):
        assert V(4) in simple().symbols()
        assert N("R") in simple().symbols()


class TestSubtable:
    def test_subtable_selects_rows_and_columns(self):
        t = simple()
        sub = t.subtable([0, 2], [0, 2])
        assert sub.grid == ((N("R"), N("B")), (NULL, V(4)))

    def test_subtable_allows_repetition_and_reorder(self):
        t = simple()
        sub = t.subtable([0, 1, 1], [0, 2, 1])
        assert sub.nrows == 3 and sub.ncols == 3
        assert sub.entry(1, 1) == V(2)
        assert sub.entry(2, 2) == V(1)

    def test_subtable_out_of_range(self):
        with pytest.raises(SchemaError):
            simple().subtable([0, 9], [0])


class TestAttributeAccess:
    def test_columns_named_with_repeats(self):
        t = make_table("R", ["A", "A", "B"], [(1, 2, 3)])
        assert t.columns_named(N("A")) == [1, 2]
        assert t.columns_named(N("B")) == [3]
        assert t.columns_named(N("Z")) == []

    def test_row_entry_set_is_a_set(self):
        t = make_table("R", ["A", "A"], [(1, 1)])
        assert t.row_entry_set(1, N("A")) == frozenset([V(1)])

    def test_row_entry_set_for_absent_attribute_is_empty(self):
        assert simple().row_entry_set(1, N("Z")) == frozenset()

    def test_rows_named(self):
        t = make_table("R", ["A"], [(1,), (2,)], row_attrs=["T", None])
        assert t.rows_named(N("T")) == [1]
        assert t.rows_named(NULL) == [2]


class TestSubsumption:
    def test_row_subsumed_by_with_null_padding(self):
        narrow = make_table("R", ["A", "B"], [(1, None)])
        wide = make_table("S", ["A", "B"], [(1, 2)])
        assert narrow.row_subsumed_by(1, wide, 1)
        assert not wide.row_subsumed_by(1, narrow, 1)

    def test_mutual_subsumption_across_column_orders(self):
        left = make_table("R", ["A", "B"], [(1, 2)])
        right = make_table("S", ["B", "A"], [(2, 1)])
        assert left.rows_subsume_each_other(1, right, 1)

    def test_subsumption_distinguishes_attributes(self):
        left = make_table("R", ["A"], [(1,)])
        right = make_table("S", ["B"], [(1,)])
        assert not left.row_subsumed_by(1, right, 1)

    def test_column_subsumption_is_the_dual(self):
        left = make_table("R", ["A"], [(1,), (None,)], row_attrs=["x", "y"])
        right = make_table("S", ["A"], [(1,), (2,)], row_attrs=["x", "y"])
        assert left.column_subsumed_by(1, right, 1)
        assert not right.column_subsumed_by(1, left, 1)


class TestDerivedTables:
    def test_transpose_swaps_regions(self):
        t = simple()
        tt = t.transpose()
        assert tt.column_attributes == t.row_attributes
        assert tt.row_attributes == t.column_attributes
        assert tt.name == t.name

    def test_transpose_is_involution(self):
        t = simple()
        assert t.transpose().transpose() == t

    def test_with_name(self):
        assert simple().with_name(N("S")).name == N("S")

    def test_with_entry(self):
        t = simple().with_entry(1, 1, V(99))
        assert t.entry(1, 1) == V(99)
        assert simple().entry(1, 1) == V(1)  # original untouched

    def test_with_entry_out_of_range(self):
        with pytest.raises(SchemaError):
            simple().with_entry(9, 0, NULL)

    def test_append_and_drop_rows(self):
        t = simple().append_rows([(NULL, V(5), V(6))])
        assert t.height == 3
        assert t.drop_rows([3]) == simple()

    def test_drop_attribute_row_forbidden(self):
        with pytest.raises(SchemaError):
            simple().drop_rows([0])

    def test_append_and_drop_columns(self):
        t = simple().append_columns([(N("C"), V(7), V(8))])
        assert t.width == 3
        assert t.drop_columns([3]) == simple()

    def test_append_column_wrong_length(self):
        with pytest.raises(SchemaError):
            simple().append_columns([(N("C"), V(7))])

    def test_map_entries(self):
        t = simple().map_entries(lambda s: V(0) if s == V(1) else s)
        assert t.entry(1, 1) == V(0)


class TestEqualityAndEquivalence:
    def test_structural_equality(self):
        assert simple() == simple()
        assert hash(simple()) == hash(simple())

    def test_equivalent_under_row_permutation(self):
        a = make_table("R", ["A"], [(1,), (2,)])
        b = make_table("R", ["A"], [(2,), (1,)])
        assert a != b
        assert a.equivalent(b)

    def test_equivalent_under_column_permutation(self):
        a = make_table("R", ["A", "B"], [(1, 2)])
        b = make_table("R", ["B", "A"], [(2, 1)])
        assert a.equivalent(b)

    def test_not_equivalent_when_data_differs(self):
        a = make_table("R", ["A"], [(1,)])
        b = make_table("R", ["A"], [(2,)])
        assert not a.equivalent(b)

    def test_not_equivalent_when_name_differs(self):
        a = make_table("R", ["A"], [(1,)])
        assert not a.equivalent(a.with_name(N("S")))

    def test_equivalent_with_repeated_attributes_needs_backtracking(self):
        # Same attribute on both columns; only one of the two matchings works.
        a = make_table("R", ["A", "A"], [(1, 2), (3, 4)])
        b = make_table("R", ["A", "A"], [(2, 1), (4, 3)])
        assert a.equivalent(b)

    def test_not_equivalent_when_rows_entangled(self):
        a = make_table("R", ["A", "A"], [(1, 2), (3, 4)])
        b = make_table("R", ["A", "A"], [(1, 4), (3, 2)])
        assert not a.equivalent(b)

    def test_sorted_canonically_is_stable(self):
        a = make_table("R", ["B", "A"], [(2, 1), (4, 3)])
        assert a.sorted_canonically() == a.sorted_canonically().sorted_canonically()
