"""Unit tests for CSV/Markdown table serialization."""

import pytest

from hypothesis import given, settings

from repro.core import (
    NULL,
    N,
    SchemaError,
    Table,
    TaggedValue,
    V,
    make_table,
    table_from_csv,
    table_to_csv,
    table_to_markdown,
)

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "properties"))
from tabular_strategies import tables  # noqa: E402


class TestCsvRoundTrip:
    def test_simple(self):
        t = make_table("Sales", ["Part", "Sold"], [("nuts", 50)])
        assert table_from_csv(table_to_csv(t)) == t

    def test_all_symbol_kinds(self):
        t = Table(
            [
                [N("R"), N("A"), NULL],
                [V("plain"), V(3), V(2.5)],
                [TaggedValue(7), V("#tricky"), V("42")],
            ]
        )
        assert table_from_csv(table_to_csv(t)) == t

    def test_null_everywhere(self):
        t = make_table("R", [None, None], [(None, None)])
        assert table_from_csv(table_to_csv(t)) == t

    def test_strings_looking_like_numbers_survive(self):
        t = make_table("R", ["A"], [("007",)])
        back = table_from_csv(table_to_csv(t))
        assert back.entry(1, 1) == V("007")
        assert back.entry(1, 1) != V(7)

    def test_commas_and_quotes_survive(self):
        t = make_table("R", ["A"], [('a,"b",c',)])
        assert table_from_csv(table_to_csv(t)) == t

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            table_from_csv("")

    def test_unserializable_payload_rejected(self):
        t = make_table("R", ["A"], [(("tu", "ple"),)])
        with pytest.raises(SchemaError):
            table_to_csv(t)

    @given(tables(max_width=3, max_height=3))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, t):
        assert table_from_csv(table_to_csv(t)) == t


class TestMarkdown:
    def test_shape(self):
        t = make_table("Sales", ["Part"], [("nuts",)])
        md = table_to_markdown(t)
        lines = md.splitlines()
        assert lines[0].startswith("| Sales")
        assert set(lines[1].replace("|", "").split()) == {"---"}
        assert "'nuts'" in lines[2]

    def test_null_renders(self):
        t = make_table("R", ["A"], [(None,)])
        assert "⊥" in table_to_markdown(t)
