"""Unit tests for the builders and the ASCII renderer."""

import pytest

from repro.core import (
    NULL,
    N,
    SchemaError,
    V,
    attr_symbol,
    data_symbol,
    grid_table,
    make_table,
    relation_table,
    render_database,
    render_table,
)


class TestCoercionConventions:
    def test_attr_position_strings_become_names(self):
        assert attr_symbol("Part") == N("Part")
        assert attr_symbol(None) is NULL
        assert attr_symbol(50) == V(50)
        assert attr_symbol(V("east")) == V("east")

    def test_data_position_strings_become_values(self):
        assert data_symbol("east") == V("east")
        assert data_symbol(None) is NULL
        assert data_symbol(N("Total")) == N("Total")


class TestMakeTable:
    def test_basic(self):
        t = make_table("Sales", ["Part", "Sold"], [("nuts", 50)])
        assert t.name == N("Sales")
        assert t.column_attributes == (N("Part"), N("Sold"))
        assert t.data == ((V("nuts"), V(50)),)
        assert t.row_attributes == (NULL,)

    def test_row_attrs(self):
        t = make_table("R", ["A"], [(1,), (2,)], row_attrs=["Total", None])
        assert t.row_attributes == (N("Total"), NULL)

    def test_row_attr_count_mismatch(self):
        with pytest.raises(SchemaError):
            make_table("R", ["A"], [(1,)], row_attrs=["x", "y"])

    def test_row_arity_mismatch(self):
        with pytest.raises(SchemaError):
            make_table("R", ["A", "B"], [(1,)])

    def test_relation_table_equals_make_table(self):
        assert relation_table("R", ["A"], [(1,)]) == make_table("R", ["A"], [(1,)])


class TestGridTable:
    def test_positional_coercion(self):
        t = grid_table([["R", "A"], ["rattr", "data"]])
        assert t.name == N("R")
        assert t.column_attributes == (N("A"),)
        assert t.row_attributes == (N("rattr"),)
        assert t.entry(1, 1) == V("data")

    def test_names_override_in_data_positions(self):
        t = grid_table([["R", "A"], [None, "Region"]], names=["Region"])
        assert t.entry(1, 1) == N("Region")

    def test_values_in_attribute_positions(self):
        # SalesInfo3 style: data as attributes
        t = grid_table([["Sales", V("nuts")], [V("east"), 50]])
        assert t.column_attributes == (V("nuts"),)
        assert t.row_attributes == (V("east"),)


class TestRender:
    def test_render_contains_every_cell(self):
        t = make_table("Sales", ["Part", "Sold"], [("nuts", 50)])
        text = render_table(t)
        for fragment in ("Sales", "Part", "Sold", "'nuts'", "50", "⊥"):
            assert fragment in text

    def test_render_box_shape(self):
        t = make_table("R", ["A"], [(1,)])
        lines = render_table(t).splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines align

    def test_render_title(self):
        text = render_table(make_table("R", ["A"], [(1,)]), title="caption")
        assert text.splitlines()[0] == "caption"

    def test_render_database(self):
        from repro.core import database

        db = database(make_table("R", ["A"], [(1,)]), make_table("S", ["B"], [(2,)]))
        text = render_database(db, title="Demo")
        assert "=== Demo ===" in text
        assert text.count("+--") >= 2

    def test_render_empty_database(self):
        from repro.core import database

        assert "empty" in render_database(database())

    def test_str_of_table_renders(self):
        t = make_table("R", ["A"], [(1,)])
        assert "R" in str(t)

    def test_renderer_is_deterministic(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        assert render_table(t) == render_table(t)
