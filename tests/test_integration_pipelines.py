"""Cross-layer integration: pipelines spanning several subsystems.

Each test is a miniature application: data flows through three or more
layers (SchemaLog → relations → cubes → tables; graphs → encodings →
textual TA programs; compilers → optimizer → interpreter), ending in a
checkable artifact.  These are the tests that catch interface drift
between subsystems.
"""

import pytest

from repro.algebra.programs import optimize, parse_program
from repro.core import N, V, database, make_table
from repro.data import BASE_FACTS, sales_info2
from repro.good import (
    GoodEdge,
    GoodNode,
    ObjectGraph,
    decode_graph,
    encode_graph,
)
from repro.olap import Cube, grouped_with_totals, relation_table_to_cube
from repro.relational import (
    Relation,
    RelationalDatabase,
    relation_to_table,
    table_to_relation,
)
from repro.schemalog import SchemaLogDatabase, evaluate, parse_schemalog
from repro.schemasql import evaluate_query, parse_schemasql


class TestFederationToOlap:
    """Heterogeneous offices -> SchemaLog unification -> cube -> summaries."""

    def test_full_pipeline_reproduces_salesinfo2(self):
        # 1. four per-region offices (region encoded in the relation name)
        per_region: dict[str, list[tuple[str, int]]] = {}
        for part, region, sold in BASE_FACTS:
            per_region.setdefault(region, []).append((part, sold))
        offices = RelationalDatabase(
            [
                Relation(region, ["part", "sold"], rows)
                for region, rows in per_region.items()
            ]
        )
        facts = SchemaLogDatabase.from_relational(offices)

        # 2. unify with SchemaLog rules (region becomes data)
        rules = []
        for region in per_region:
            rules.append(f"sales[T: part -> P] :- {region}[T: part -> P].")
            rules.append(f"sales[T: sold -> S] :- {region}[T: sold -> S].")
            rules.append(
                f"sales[T: region -> '{region}'] :- {region}[T: part -> P]."
            )
        unified = evaluate(parse_schemalog("\n".join(rules)), facts)

        # 3. materialize, read into a cube
        sales_table = unified.to_tabular().table("sales")
        relation = table_to_relation(
            sales_table, schema=("part", "region", "sold")
        )
        cube = Cube.from_facts(
            [(row[0], row[1], row[2]) for row in relation],
            ["Part", "Region"],
            measure="Sold",
        )

        # 4. the summary-extended SalesInfo2, from data that started life
        #    scattered across four schemas
        summary = grouped_with_totals(cube, "Part", "Region", "Sales")
        expected = sales_info2(with_summary=True).tables[0]
        assert summary.equivalent(expected)


class TestSchemaSqlToCube:
    def test_query_result_feeds_the_cube_layer(self):
        facts = SchemaLogDatabase.from_relational(
            RelationalDatabase(
                [
                    Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
                    Relation("west", ["part", "sold"], [("nuts", 60)]),
                ]
            )
        )
        query = parse_schemasql(
            "SELECT T.part AS part, R AS region, T.sold AS sold "
            "INTO sales FROM -> R, R T"
        )
        relation = evaluate_query(query, facts)
        table = relation_to_table(relation)
        cube = relation_table_to_cube(table, ["part", "region"], "sold")
        assert cube.total() == V(180)
        assert cube[("nuts", N("east"))] == V(50)


class TestTextualProgramOnEncodedGraph:
    def test_hand_written_ta_program_queries_the_encoding(self):
        graph = ObjectGraph(
            [
                GoodNode.make("p1", "Person", "ann"),
                GoodNode.make("p2", "Person", "bob"),
                GoodNode.make("h", "House"),
            ],
            [GoodEdge.make("p1", "lives", "h"), GoodEdge.make("p2", "lives", "h")],
        )
        encoded = encode_graph(graph)
        # textual TA over the encoding: who lives anywhere?
        program = parse_program(
            """
            Residents <- SELECTCONST attr Lab value lives (Edges)
            Residents <- PROJECT attrs {Src} (Residents)
            Residents <- DEDUP (Residents)
            """
        )
        out = program.run(encoded)
        residents = out.tables_named("Residents")[0]
        assert residents.height == 2
        # the untouched encoding still decodes
        assert decode_graph(out) == graph

    def test_selectconst_on_name_valued_entries(self):
        # 'lives' in the Lab column is a Name; the parser reads bare
        # identifiers in value position as names — verified above; here the
        # quoted form must NOT match (it would be a Value)
        graph = ObjectGraph(
            [GoodNode.make("a", "N"), GoodNode.make("b", "N")],
            [GoodEdge.make("a", "e", "b")],
        )
        program = parse_program(
            "Hit <- SELECTCONST attr Lab value 'e' (Edges)"
        )
        out = program.run(encode_graph(graph))
        assert out.tables_named("Hit")[0].height == 0


class TestCompileOptimizeRun:
    def test_optimized_schemalog_compilation_agrees(self):
        facts = SchemaLogDatabase.from_relational(
            RelationalDatabase(
                [Relation("east", ["part"], [("nuts",), ("bolts",)])]
            )
        )
        program = parse_schemalog("all[T: A -> V] :- R[T: A -> V].")
        from repro.schemalog import DERIVED, compile_to_ta

        compiled = compile_to_ta(program)
        lean = optimize(compiled, [DERIVED])
        db = database(facts.facts_table())
        assert compiled.run(db).tables_named(DERIVED) == lean.run(db).tables_named(
            DERIVED
        )

    def test_pivot_program_through_all_layers(self):
        base = make_table("Sales", ["Part", "Region", "Sold"], BASE_FACTS)
        program = parse_program(
            """
            Scratch <- TRANSPOSE (Sales)
            Pivot   <- GROUPCOMPACT by {Region} on {Sold} (Sales)
            """
        )
        lean = optimize(program, ["Pivot"])
        assert len(lean) == 1
        out = lean.run(database(base))
        pivot = out.tables_named("Pivot")[0]
        assert pivot.equivalent(sales_info2().tables[0].with_name(pivot.name))
