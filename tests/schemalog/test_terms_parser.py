"""Unit tests for SchemaLog_d terms, rules, and the parser."""

import pytest

from repro.core import Name, ParseError, V
from repro.schemalog import (
    Builtin,
    Const,
    Rule,
    SchemaAtom,
    Var,
    parse_rule,
    parse_schemalog,
)


class TestTerms:
    def test_atom_variables(self):
        atom = SchemaAtom(Var("R"), Var("T"), Const(Name("a")), Const(V(1)))
        assert atom.variables() == frozenset([Var("R"), Var("T")])

    def test_builtin_operator_validated(self):
        with pytest.raises(ValueError):
            Builtin("~", Var("X"), Var("Y"))

    def test_rule_safety_head(self):
        head = SchemaAtom(Const(Name("r")), Var("T"), Const(Name("a")), Var("X"))
        with pytest.raises(ValueError):
            Rule(head, ())

    def test_rule_safety_builtin(self):
        head = SchemaAtom(Const(Name("r")), Const(V(1)), Const(Name("a")), Const(V(2)))
        body_atom = SchemaAtom(Const(Name("e")), Var("T"), Const(Name("a")), Var("X"))
        with pytest.raises(ValueError):
            Rule(head, (body_atom, Builtin("=", Var("Z"), Var("X"))))

    def test_ground_fact_allowed(self):
        head = SchemaAtom(Const(Name("r")), Const(V(1)), Const(Name("a")), Const(V(2)))
        assert Rule(head, ()).is_fact


class TestParser:
    def test_simple_rule(self):
        rule = parse_rule("out[T: a -> X] :- in[T: a -> X].")
        assert isinstance(rule.head, SchemaAtom)
        assert rule.head.rel == Const(Name("out"))
        assert rule.head.tid == Var("T")
        assert len(rule.body) == 1

    def test_variable_over_relation_names(self):
        rule = parse_rule("all[T: A -> V] :- R[T: A -> V].")
        body = rule.body[0]
        assert isinstance(body, SchemaAtom)
        assert body.rel == Var("R")  # the higher-order feature

    def test_constants(self):
        rule = parse_rule("r[T: region -> 'east'] :- e[T: part -> P].")
        assert rule.head.value == Const(V("east"))
        rule2 = parse_rule("r[T: n -> 42] :- e[T: n -> 42].")
        assert rule2.head.value == Const(V(42))

    def test_fact(self):
        rule = parse_rule("r[t1: a -> 'v'].")
        assert rule.is_fact
        assert rule.head.tid == Const(Name("t1"))

    def test_builtins(self):
        rule = parse_rule("r[T: a -> X] :- e[T: a -> X], X != 'zero', X = X.")
        ops = [a.op for a in rule.body if isinstance(a, Builtin)]
        assert ops == ["!=", "="]

    def test_order_comparison_parses(self):
        rule = parse_rule("big[T: v -> X] :- e[T: v -> X], X > 10.")
        assert any(isinstance(a, Builtin) and a.op == ">" for a in rule.body)

    def test_comments_and_program(self):
        program = parse_schemalog(
            """
            % copy everything
            all[T: A -> V] :- R[T: A -> V].
            # and a fact
            r[t: a -> 1].
            """
        )
        assert len(program) == 2
        assert len(program.facts()) == 1
        assert len(program.proper_rules()) == 1

    @pytest.mark.parametrize(
        "text",
        [
            "r[T: a -> X] :- e[T: a -> X]",  # missing period
            "X = Y :- e[T: a -> X].",  # builtin head
            "r[T: a X] :- e[T: a -> X].",  # missing arrow
            "r[T: a -> X] :- .",  # empty body after :-
            "r[T: a -> X].",  # unsafe fact with variables
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_schemalog(text)

    def test_str_round_trip(self):
        rule = parse_rule("out[T: a -> X] :- in[T: a -> X], X != 'v'.")
        assert parse_rule(str(rule)) == rule
