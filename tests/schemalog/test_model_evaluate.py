"""Unit tests for the SchemaLog_d data model and evaluator."""

import pytest

from repro.core import EvaluationError, N, Name, V, database, make_table
from repro.relational import Relation, RelationalDatabase
from repro.schemalog import (
    SchemaLogDatabase,
    derive_once,
    evaluate,
    parse_schemalog,
)


@pytest.fixture
def region_db() -> SchemaLogDatabase:
    return SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
                Relation("west", ["part", "sold"], [("nuts", 60)]),
            ]
        )
    )


class TestModel:
    def test_from_relational_fact_count(self, region_db):
        # 3 tuples x 2 attributes
        assert len(region_db) == 6

    def test_tids_distinguish_tuples(self, region_db):
        east_tids = {f[1] for f in region_db if f[0] == N("east")}
        assert len(east_tids) == 2

    def test_from_table_skips_nulls(self):
        t = make_table("R", ["A", "B"], [(1, None)])
        db = SchemaLogDatabase.from_table(t)
        assert len(db) == 1

    def test_from_tabular(self, region_db):
        tdb = database(
            make_table("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
            make_table("west", ["part", "sold"], [("nuts", 60)]),
        )
        flattened = SchemaLogDatabase.from_tabular(tdb)
        # tid assignment order may differ between the converters (tables
        # keep row order; relations iterate sorted), so compare content.
        assert flattened.to_tabular().equivalent(region_db.to_tabular())
        assert len(flattened) == len(region_db)

    def test_to_tabular_variable_width(self):
        db = SchemaLogDatabase(
            [
                (N("r"), V("t1"), N("a"), V(1)),
                (N("r"), V("t2"), N("b"), V(2)),
            ]
        )
        table = db.to_tabular().tables[0]
        assert set(table.column_attributes) == {N("a"), N("b")}
        # each tuple misses one attribute -> ⊥ appears
        nulls = sum(1 for row in table.data for s in row if s.is_null)
        assert nulls == 2

    def test_facts_relation_round_trip(self, region_db):
        relation = region_db.facts_relation()
        assert relation.schema == ("Rel", "Tid", "Attr", "Val")
        assert SchemaLogDatabase.from_facts_relation(relation) == region_db

    def test_set_semantics(self):
        db = SchemaLogDatabase([(N("r"), V(1), N("a"), V(2))] * 3)
        assert len(db) == 1

    def test_union_and_add(self):
        a = SchemaLogDatabase([(N("r"), V(1), N("a"), V(2))])
        b = a.add([(N("r"), V(1), N("b"), V(3))])
        assert len(a | b) == 2

    def test_contains(self):
        db = SchemaLogDatabase([(N("r"), V(1), N("a"), V(2))])
        assert (N("r"), V(1), N("a"), V(2)) in db


class TestEvaluate:
    def test_restructuring_rules(self, region_db):
        program = parse_schemalog(
            """
            sales[T: part -> P]        :- east[T: part -> P].
            sales[T: region -> 'east'] :- east[T: part -> P].
            sales[T: part -> P]        :- west[T: part -> P].
            sales[T: region -> 'west'] :- west[T: part -> P].
            """
        )
        out = evaluate(program, region_db)
        sales = [f for f in out if f[0] == N("sales")]
        assert len(sales) == 6
        # input facts are retained (least model contains the EDB)
        assert region_db.facts <= out.facts

    def test_higher_order_relation_variable(self, region_db):
        program = parse_schemalog("all[T: A -> X] :- R[T: A -> X].")
        out = evaluate(program, region_db)
        copied = [f for f in out if f[0] == N("all")]
        assert len(copied) == len(region_db)

    def test_attribute_variable(self, region_db):
        program = parse_schemalog("schema_of[T: A -> A] :- east[T: A -> X].")
        out = evaluate(program, region_db)
        attrs = {f[3] for f in out if f[0] == N("schema_of")}
        assert attrs == {N("part"), N("sold")}

    def test_recursion_reaches_fixpoint(self):
        edges = SchemaLogDatabase(
            [
                (N("e"), V("t1"), N("src"), V(1)),
                (N("e"), V("t1"), N("dst"), V(2)),
                (N("e"), V("t2"), N("src"), V(2)),
                (N("e"), V("t2"), N("dst"), V(3)),
            ]
        )
        program = parse_schemalog(
            """
            tc[T: src -> X] :- e[T: src -> X].
            tc[T: dst -> Y] :- e[T: dst -> Y].
            tc[U: src -> X] :- tc[T: src -> X], tc[T: dst -> Z],
                               e[U: src -> Z], tc2[U: u -> U].
            """
        )
        # (the recursive third rule needs tc2 facts; with none it is inert)
        out = evaluate(program, edges)
        assert len([f for f in out if f[0] == N("tc")]) == 4

    def test_ground_facts_in_program(self):
        program = parse_schemalog("r[t0: a -> 'v'].")
        out = evaluate(program, SchemaLogDatabase())
        assert (N("r"), N("t0"), N("a"), V("v")) in out

    def test_builtin_equality_and_inequality(self, region_db):
        program = parse_schemalog(
            """
            notnuts[T: part -> P] :- east[T: part -> P], P != 'nuts'.
            """
        )
        out = evaluate(program, region_db)
        kept = [f for f in out if f[0] == N("notnuts")]
        assert len(kept) == 1 and kept[0][3] == V("bolts")

    def test_builtin_order_comparison(self, region_db):
        program = parse_schemalog("big[T: sold -> X] :- east[T: sold -> X], X > 55.")
        out = evaluate(program, region_db)
        assert {f[3] for f in out if f[0] == N("big")} == {V(70)}

    def test_order_comparison_on_names_raises(self):
        db = SchemaLogDatabase([(N("r"), V(1), N("a"), N("nm"))])
        program = parse_schemalog("s[T: a -> X] :- r[T: a -> X], X > 3.")
        with pytest.raises(EvaluationError):
            evaluate(program, db)

    def test_derive_once_is_one_step(self, region_db):
        program = parse_schemalog("all[T: A -> X] :- R[T: A -> X].")
        once = derive_once(program, region_db)
        # one step copies the originals, but not yet the copies-of-copies
        assert len([f for f in once if f[0] == N("all")]) == len(region_db)
        # R ranges over 'all' as well, but re-deriving 'all' facts from
        # 'all' facts yields the same facts — fixpoint after one step.
        twice = derive_once(program, once)
        assert twice == once
