"""Theorem 4.5 tests: SchemaLog_d programs simulated in the tabular algebra.

Each test evaluates a program natively (bottom-up fixpoint over facts) and
through its tabular algebra compilation, and demands identical fact sets.
"""

import pytest

from repro.core import EvaluationError, N, V, database
from repro.relational import Relation, RelationalDatabase, table_to_relation
from repro.schemalog import (
    DERIVED,
    SchemaLogDatabase,
    SchemaLogProgram,
    compile_to_fw,
    compile_to_ta,
    evaluate,
    parse_schemalog,
    rule_to_expression,
)


def run_both(program, db: SchemaLogDatabase) -> tuple[SchemaLogDatabase, SchemaLogDatabase]:
    native = evaluate(program, db)
    ta_program = compile_to_ta(program)
    out = ta_program.run(database(db.facts_table()))
    tables = out.tables_named(DERIVED)
    assert len(tables) == 1
    derived = table_to_relation(tables[0]).with_name("Facts")
    return native, SchemaLogDatabase.from_facts_relation(derived)


def assert_agree(program, db):
    native, simulated = run_both(program, db)
    assert simulated == native


@pytest.fixture
def region_db() -> SchemaLogDatabase:
    return SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
                Relation("west", ["part", "sold"], [("nuts", 60), ("screws", 50)]),
            ]
        )
    )


class TestCompilation:
    def test_restructuring_program(self, region_db):
        program = parse_schemalog(
            """
            sales[T: part -> P]        :- east[T: part -> P].
            sales[T: sold -> S]        :- east[T: sold -> S].
            sales[T: region -> 'east'] :- east[T: part -> P].
            sales[T: part -> P]        :- west[T: part -> P].
            sales[T: sold -> S]        :- west[T: sold -> S].
            sales[T: region -> 'west'] :- west[T: part -> P].
            """
        )
        assert_agree(program, region_db)

    def test_higher_order_copy(self, region_db):
        assert_agree(parse_schemalog("all[T: A -> X] :- R[T: A -> X]."), region_db)

    def test_constant_selection(self, region_db):
        assert_agree(
            parse_schemalog("nuts[T: sold -> S] :- east[T: sold -> S], east[T: part -> 'nuts']."),
            region_db,
        )

    def test_repeated_variables(self, region_db):
        # same value under part in both regions
        program = parse_schemalog(
            "both[T: part -> P] :- east[T: part -> P], west[U: part -> P]."
        )
        assert_agree(program, region_db)

    def test_inequality_builtin(self, region_db):
        program = parse_schemalog(
            "other[T: part -> P] :- east[T: part -> P], P != 'nuts'."
        )
        assert_agree(program, region_db)

    def test_equality_builtin(self, region_db):
        program = parse_schemalog(
            "same[T: part -> P] :- east[T: part -> P], west[U: part -> Q], P = Q."
        )
        assert_agree(program, region_db)

    def test_head_constant_in_every_position(self, region_db):
        program = parse_schemalog(
            "mark[t0: flag -> 'yes'] :- east[T: part -> P]."
        )
        assert_agree(program, region_db)

    def test_duplicated_head_variable(self, region_db):
        # attribute variable used twice in the head (self-join duplication)
        program = parse_schemalog("schema_of[T: A -> A] :- east[T: A -> X].")
        assert_agree(program, region_db)

    def test_recursive_program(self):
        edges = SchemaLogDatabase(
            [
                (N("e"), V("t1"), N("src"), V(1)),
                (N("e"), V("t1"), N("dst"), V(2)),
                (N("e"), V("t2"), N("src"), V(2)),
                (N("e"), V("t2"), N("dst"), V(3)),
                (N("e"), V("t3"), N("src"), V(3)),
                (N("e"), V("t3"), N("dst"), V(4)),
            ]
        )
        # reachable pairs, stored on edge tids: reach[T] holds the pair
        program = parse_schemalog(
            """
            reach[T: src -> X] :- e[T: src -> X].
            reach[T: dst -> Y] :- e[T: dst -> Y].
            reach[U: src -> X] :- reach[T: src -> X], reach[T: dst -> Z],
                                  reach[U: src2 -> Z], e[U: dst -> Y].
            """
        )
        assert_agree(program, edges)

    def test_empty_program(self, region_db):
        assert_agree(SchemaLogProgram(()), region_db)

    def test_ground_facts_not_compilable(self):
        with pytest.raises(EvaluationError):
            compile_to_ta(parse_schemalog("r[t0: a -> 'v']."))

    def test_order_builtin_not_compilable(self):
        program = parse_schemalog("big[T: sold -> X] :- e[T: sold -> X], X > 5.")
        with pytest.raises(EvaluationError):
            compile_to_ta(program)

    def test_compile_to_fw_shape(self, region_db):
        program = parse_schemalog("all[T: A -> X] :- R[T: A -> X].")
        fw = compile_to_fw(program)
        assert len(fw) == 3  # Derived, Delta, while

    def test_rule_expression_schema(self, region_db):
        from repro.schemalog import FACTS_SCHEMA

        rule = parse_schemalog("all[T: A -> X] :- R[T: A -> X].").rules[0]
        expr = rule_to_expression(rule, source="Facts")
        reldb = RelationalDatabase([region_db.facts_relation()])
        assert expr.schema(reldb) == FACTS_SCHEMA
        assert expr.evaluate(reldb).schema == FACTS_SCHEMA
