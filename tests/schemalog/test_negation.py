"""Stratified negation in SchemaLog_d: evaluation and TA compilation."""

import pytest

from repro.core import EvaluationError, N, ParseError, V, database
from repro.relational import Relation, RelationalDatabase, table_to_relation
from repro.schemalog import (
    DERIVED,
    NegatedAtom,
    SchemaLogDatabase,
    compile_to_ta,
    evaluate,
    parse_schemalog,
    stratify,
)


@pytest.fixture
def db() -> SchemaLogDatabase:
    return SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part"], [("nuts",), ("bolts",)]),
                Relation("west", ["part"], [("nuts",), ("screws",)]),
            ]
        )
    )


def run_both(program, db):
    native = evaluate(program, db)
    out = compile_to_ta(program).run(database(db.facts_table()))
    derived = table_to_relation(out.tables_named(DERIVED)[0]).with_name("Facts")
    return native, SchemaLogDatabase.from_facts_relation(derived)


class TestParsing:
    def test_not_prefix(self):
        rule = parse_schemalog(
            "only[T: part -> P] :- east[T: part -> P], not west[U: part -> P]."
        ).rules[0]
        assert len(rule.negated_atoms()) == 1
        assert isinstance(rule.body[1], NegatedAtom)

    def test_negated_relation_must_be_constant(self):
        with pytest.raises(ParseError):
            parse_schemalog(
                "x[T: a -> P] :- east[T: a -> P], not R[U: a -> P]."
            )

    def test_local_negation_variables_are_existential(self):
        # variables local to the negated atom are fine (¬∃ semantics) …
        rule = parse_schemalog(
            "x[T: a -> P] :- east[T: a -> P], not west[U: b -> Q]."
        ).rules[0]
        assert len(rule.negated_atoms()) == 1

    def test_head_variable_bound_only_negatively_is_unsafe(self):
        # … but they cannot bind the head
        with pytest.raises(ParseError):
            parse_schemalog("x[T: a -> Q] :- east[T: a -> P], not west[U: b -> Q].")


class TestStratification:
    def test_positive_program_is_one_stratum(self):
        program = parse_schemalog(
            """
            a[T: x -> V] :- e[T: x -> V].
            b[T: x -> V] :- a[T: x -> V].
            """
        )
        assert len(stratify(program)) == 1

    def test_negation_splits_strata(self):
        program = parse_schemalog(
            """
            a[T: x -> V] :- e[T: x -> V].
            b[T: x -> V] :- e[T: x -> V], not a[T: x -> V].
            """
        )
        strata = stratify(program)
        assert len(strata) == 2
        assert str(strata[0][0].head.rel) == "a"

    def test_negative_cycle_rejected(self):
        program = parse_schemalog(
            """
            a[T: x -> V] :- e[T: x -> V], not b[T: x -> V].
            b[T: x -> V] :- e[T: x -> V], not a[T: x -> V].
            """
        )
        with pytest.raises(EvaluationError):
            stratify(program)

    def test_variable_head_with_negation_rejected(self):
        program = parse_schemalog(
            """
            copy[T: tgt -> R] :- e[T: tgt -> R].
            R[T: x -> V] :- e[T: x -> V], copy[U: tgt -> R].
            b[T: x -> V] :- e[T: x -> V], not a[T: x -> V].
            """
        )
        with pytest.raises(EvaluationError):
            stratify(program)


class TestEvaluation:
    def test_set_difference_by_negation(self, db):
        program = parse_schemalog(
            "only_east[T: part -> P] :- east[T: part -> P], not west[U: part -> P]."
        )
        out = evaluate(program, db)
        derived = {str(f[3]) for f in out if f[0] == N("only_east")}
        assert derived == {"'bolts'"}

    def test_two_strata_chain(self, db):
        program = parse_schemalog(
            """
            shared[T: part -> P]   :- east[T: part -> P], west[U: part -> P].
            east_only[T: part -> P] :- east[T: part -> P], not shared[U: part -> P].
            """
        )
        out = evaluate(program, db)
        assert {str(f[3]) for f in out if f[0] == N("east_only")} == {"'bolts'"}

    def test_negation_of_absent_relation(self, db):
        program = parse_schemalog(
            "all[T: part -> P] :- east[T: part -> P], not ghost[U: part -> P]."
        )
        out = evaluate(program, db)
        assert len([f for f in out if f[0] == N("all")]) == 2


class TestCompilation:
    def test_negation_compiles_and_agrees(self, db):
        program = parse_schemalog(
            "only_east[T: part -> P] :- east[T: part -> P], not west[U: part -> P]."
        )
        native, simulated = run_both(program, db)
        assert simulated == native

    def test_two_strata_compile_and_agree(self, db):
        program = parse_schemalog(
            """
            shared[T: part -> P]    :- east[T: part -> P], west[U: part -> P].
            east_only[T: part -> P] :- east[T: part -> P], not shared[U: part -> P].
            """
        )
        native, simulated = run_both(program, db)
        assert simulated == native

    def test_negation_with_constants_agrees(self, db):
        program = parse_schemalog(
            "other[T: part -> P] :- east[T: part -> P], not west[U: part -> 'nuts']."
        )
        native, simulated = run_both(program, db)
        assert simulated == native
