"""Final edge-path batch: bridge orientation, federation surface syntax,
interpreter fresh-value discipline across layers."""

import pytest

from repro.core import N, SchemaError, TaggedValue, V, database, make_table
from repro.data import BASE_FACTS
from repro.federation import TabularFederation, parse_federated, run_federated
from repro.olap import Cube, cube_to_grouped_table, cube_to_matrix_table


class TestBridgeOrientation:
    @pytest.fixture
    def reversed_cube(self):
        # dimensions declared in the opposite order to the bridges' call
        facts = [(r, p, s) for (p, r, s) in BASE_FACTS]
        return Cube.from_facts(facts, ["Region", "Part"], measure="Sold")

    def test_grouped_bridge_accepts_either_dim_order(self, reversed_cube):
        table = cube_to_grouped_table(reversed_cube, "Part", "Region", "Sales")
        assert table.column_attributes.count(N("Sold")) == 4

    def test_matrix_bridge_accepts_either_dim_order(self, reversed_cube):
        table = cube_to_matrix_table(reversed_cube, "Part", "Region", "Sales")
        assert table.row_attributes == reversed_cube.coords["Part"]
        assert table.entry(1, 1) == reversed_cube[(V("east"), V("nuts"))]

    def test_matrix_bridge_wrong_dims_rejected(self, reversed_cube):
        with pytest.raises(SchemaError):
            cube_to_matrix_table(reversed_cube, "Part", "Year")


class TestFederatedSurfaceSyntax:
    @pytest.fixture
    def federation(self):
        return TabularFederation(
            {"db1": database(make_table("my_table", ["A"], [(1,)]))}
        )

    def test_single_underscore_names_are_not_qualified(self, federation):
        # my_table has one underscore: stays a plain name — but then the
        # federated lookup must use db1__my_table for the member's table
        program = parse_federated("Out <- DEDUP (db1__my_table)")
        out = run_federated(program, federation)
        assert out.member("result").table("Out").height == 1

    def test_leading_double_underscore_not_rewritten(self, federation):
        program = parse_federated("__scratch <- DEDUP (db1__my_table)")
        out = run_federated(program, federation)
        # '__scratch' keeps its literal (unqualified) name -> result member
        assert out.member("result").table("__scratch").height == 1

    def test_unknown_member_simply_matches_nothing(self, federation):
        program = parse_federated("Out <- DEDUP (nosuch__table)")
        out = run_federated(program, federation)
        assert "result" not in out or not out.member("result").tables


class TestFreshValueDiscipline:
    def test_interpreter_tags_never_collide_across_statements(self):
        from repro.algebra.programs import parse_program

        db = database(make_table("R", ["A"], [(1,), (2,)]))
        program = parse_program(
            """
            T1 <- TUPLENEW attr Id (R)
            T2 <- TUPLENEW attr Id (T1)
            T3 <- SETNEW attr Set (R)
            """
        )
        out = program.run(db)
        tags = set()
        for name in ("T1", "T2", "T3"):
            for table in out.tables_named(name):
                for row in table.data:
                    for entry in row:
                        if isinstance(entry, TaggedValue):
                            tags.add(entry)
        # T1 contributes 2, T2 re-tags 2 more (plus carries T1's), T3 adds 3
        assert len(tags) == 2 + 2 + 3
