"""Edge paths of the engine runtime: lazy exports, bad engine names,
kernel-declined dispatch, metrics counting, and interner cache bounds."""

import pytest

import repro.engine as engine_pkg
from repro.core import NULL, Name, Table, TabularDatabase, Value
from repro.core.errors import EvaluationError
from repro.engine import run_program
from repro.engine.interning import IdTable, SymbolInterner
from repro.engine.runtime import VectorEngine
from repro.obs import observation


def _table(name="R"):
    return Table([[Name(name), Name("A")], [NULL, Value("x")], [NULL, Value("x")]])


def test_lazy_exports_reject_unknown_attributes():
    assert engine_pkg.ENGINES == ("naive", "vector")
    with pytest.raises(AttributeError):
        engine_pkg.no_such_symbol


def test_run_program_rejects_unknown_engine():
    from repro.algebra.programs.statements import Program, assign

    program = Program([assign("D", "DEDUP", "R")])
    db = TabularDatabase([_table()])
    with pytest.raises(EvaluationError, match="unknown engine"):
        run_program(program, db, engine="turbo")


def test_dispatch_counts_a_kernel_that_declines():
    backend = VectorEngine()
    backend.kernels = dict(backend.kernels)
    backend.kernels["DEDUP"] = lambda interner, tables, arguments: None
    assert backend.dispatch("DEDUP", [_table()], {}) is None
    assert backend.stats["fallback:DEDUP"] == 1


def test_dispatch_counts_vector_kernel_hits_metric():
    backend = VectorEngine()
    with observation(trace=False, metrics=True) as obs:
        assert backend.dispatch("DEDUP", [_table()], {}) is not None
    counters = obs.metrics.snapshot()["counters"]
    assert counters["vector_kernel_hits"] == 1


def test_interner_symbol_round_trip_and_intern_all():
    interner = SymbolInterner()
    ids = interner.intern_all([Value("x"), Name("A"), NULL])
    assert 0 in ids  # NULL is always id 0
    for i in ids:
        assert interner.intern(interner.symbol(i)) == i


def test_interner_cache_clears_at_capacity(monkeypatch):
    monkeypatch.setattr(SymbolInterner, "CACHE_CAP", 1)
    interner = SymbolInterner()
    a, b = _table("R"), _table("S")
    interner.intern_table(a)
    interner.intern_table(b)  # trips the cap-clear branch
    assert len(interner._cache) == 1
    assert interner.intern_table(b) is interner.intern_table(b)


def test_idtable_from_empty_rows_and_transpose():
    empty = IdTable(1, (2, 3), (), rows=())
    assert empty.height == 0 and empty.width == 2
    assert empty.rows == ()

    idt = IdTable(1, (2,), (0, 0), rows=((5,), (6,)))
    flipped = idt.transposed()
    assert flipped.height == idt.width and flipped.width == idt.height
    assert flipped.transposed().rows == idt.rows
