"""The optimizer differential fuzzer: naive ≡ vector ≡ optimized plan.

Every seeded program must produce byte-identical final databases (or
the identical typed error) on the naive interpreter, the vectorized
backend, and after rewriting by the cost-based optimizer with fresh
ANALYZE statistics installed — the rewrite-soundness contract of
docs/OPTIMIZER.md.  Two corpora share the ``REPRO_ENGINE_DIFF_BUDGET``
seed budget:

* the shared :func:`repro.data.programs.random_case` corpus (the same
  seeds the two-way backend fuzzer and ``repro stats-audit`` replay);
* the rewrite-targeting family
  :func:`repro.data.programs.random_rewrite_case`, whose motifs are
  shaped like each rule's redex — deep PRODUCT chains, renamed
  self-joins, dead projections, duplicate subexpressions, σ-over-∪ —
  so every shipped rewrite is exercised on adversarial databases.
"""

import os

import pytest

from diffgen import (
    check_case_optimized,
    describe_failure,
    gen_case,
    gen_rewrite_case,
)

BUDGET = max(30, int(os.environ.get("REPRO_ENGINE_DIFF_BUDGET", "200")))

#: (family, generator, seed offset, per-family share).  Offsets keep the
#: corpora in disjoint, stable seed spaces.  The rewrite family gets the
#: larger share: its programs are *built* from rule redexes, so a seed
#: there buys far more rewrite coverage than a shared-corpus seed.
FAMILIES = [
    ("shared-corpus", gen_case, 5_000_000, 0.4),
    ("rewrite-family", gen_rewrite_case, 0, 0.6),
]

CHUNKS = 10


def _family_seeds(share: float) -> int:
    return max(10, round(BUDGET * share))


@pytest.mark.parametrize("chunk", range(CHUNKS))
@pytest.mark.parametrize(
    "family,generator,offset,share", FAMILIES, ids=[f[0] for f in FAMILIES]
)
def test_optimized_programs_agree(family, generator, offset, share, chunk):
    total = _family_seeds(share)
    lo = chunk * total // CHUNKS
    hi = (chunk + 1) * total // CHUNKS
    for index in range(lo, hi):
        seed = offset + index
        program, db = generator(seed)
        message = check_case_optimized(program, db)
        if message is not None:
            pytest.fail(f"optimizer divergence ({family}, seed {seed}): {message}\n"
                        f"program:\n{program!r}")


def test_rewrite_family_hits_every_rule():
    """The targeted corpus actually triggers all six shipped rewrites."""
    from repro.engine.optimizer import RULE_ORDER, PlanCache, optimize_program
    from repro.obs.stats import analyze_database

    seen = set()
    cache = PlanCache()
    for seed in range(60):
        program, db = gen_rewrite_case(seed)
        stats = analyze_database(db)
        result = optimize_program(program, stats, cache=cache)
        seen.update(rewrite.rule for rewrite in result.applied)
        if seen == set(RULE_ORDER):
            break
    assert seen == set(RULE_ORDER), f"never triggered: {set(RULE_ORDER) - seen}"


def test_each_rule_is_individually_sound():
    """Every rule passes the three-way check when enabled alone."""
    from repro.engine.optimizer import RULE_ORDER

    for rule in RULE_ORDER:
        for seed in range(12):
            program, db = gen_rewrite_case(seed)
            message = check_case_optimized(program, db, rules=[rule])
            assert message is None, f"rule {rule}, seed {seed}: {message}"


def test_three_way_budget_covers_the_issue_floor():
    """Default budget keeps the corpus at or above the 200-program bar."""
    default = 200
    total = sum(max(10, round(default * share)) for _, _, _, share in FAMILIES)
    assert total >= 200
