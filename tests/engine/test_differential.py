"""The engine differential fuzzer: naive ≡ vector on random programs.

Every seeded random program must produce byte-identical final databases
(or the identical typed error) on the naive interpreter and the
vectorized backend.  The seed budget is ``REPRO_ENGINE_DIFF_BUDGET``
(default 200, raised in the CI ``engine-differential`` job); seeds are
split across straight-line, wildcard, and while-loop program families,
and any failure is shrunk to a minimal reproducing program before being
reported.
"""

import os

import pytest

from diffgen import check_case, describe_failure, gen_case

BUDGET = max(30, int(os.environ.get("REPRO_ENGINE_DIFF_BUDGET", "200")))

#: (family, seed offset, per-family share, gen_case feature flags).
#: Offsets keep the three corpora in disjoint, stable seed spaces —
#: Python's built-in ``hash`` is salted per process and must not be used
#: for seeding.  Shares sum to 1.
FAMILIES = [
    ("straightline", 0, 0.4, {"allow_while": False, "allow_wildcards": False}),
    ("wildcards", 1_000_000, 0.3, {"allow_while": False, "allow_wildcards": True}),
    ("while", 2_000_000, 0.3, {"allow_while": True, "allow_wildcards": True}),
]

#: Seeds are run in chunks so a divergence pins to a narrow seed range
#: without paying one pytest node per seed.
CHUNKS = 10


def _family_seeds(share: float) -> int:
    return max(10, round(BUDGET * share))


@pytest.mark.parametrize("chunk", range(CHUNKS))
@pytest.mark.parametrize(
    "family,offset,share,flags", FAMILIES, ids=[f[0] for f in FAMILIES]
)
def test_random_programs_agree(family, offset, share, flags, chunk):
    total = _family_seeds(share)
    lo = chunk * total // CHUNKS
    hi = (chunk + 1) * total // CHUNKS
    for index in range(lo, hi):
        seed = offset + index
        program, db = gen_case(seed, **flags)
        message = check_case(program, db)
        if message is not None:
            pytest.fail(describe_failure(seed, program, db, message))


def test_budget_covers_the_issue_floor():
    """The default corpus is at least the 200 programs the issue pins."""
    default = 200
    total = sum(max(10, round(default * share)) for _, _, share, _ in FAMILIES)
    assert total >= 200


def test_while_and_wildcard_programs_actually_occur():
    """The generator really emits the features the families claim."""
    from repro.algebra.programs.params import Star
    from repro.algebra.programs.statements import Assignment, While

    whiles = wildcards = 0
    for index in range(40):
        program, _db = gen_case(3_000_000 + index)
        for statement in program.statements:
            if isinstance(statement, While):
                whiles += 1
            if isinstance(statement, Assignment):
                stars = [a for a in statement.args if isinstance(a, Star)]
                wildcards += bool(stars)
    assert whiles > 0 and wildcards > 0


def test_shrinker_minimizes_a_synthetic_failure():
    """shrink_case converges on a local minimum for an injected bug.

    We cannot make the real backends disagree, so the 'failure' here is
    a case-insensitive check: a program whose *one* load-bearing
    statement is kept while every irrelevant statement and table is
    dropped, using a predicate that fails whenever the program still
    contains a PRODUCT statement.
    """
    from diffgen import shrink_case
    from repro.algebra.programs.statements import Assignment, Program

    program, db = gen_case(12345, allow_while=False, allow_wildcards=False)
    keeper = Assignment("Z", "PRODUCT", ["R", "R"])
    program = Program(list(program.statements) + [keeper])

    import diffgen

    original = diffgen.check_case
    try:
        diffgen.check_case = lambda p, d, m=0: (
            "injected"
            if any(
                isinstance(s, Assignment) and s.spec.name == "PRODUCT"
                for s in p.statements
            )
            else None
        )
        small_program, small_db = shrink_case(program, db)
    finally:
        diffgen.check_case = original

    assert len(small_program.statements) == 1
    assert small_program.statements[0].spec.name == "PRODUCT"
    assert len(small_db.tables) <= 1
