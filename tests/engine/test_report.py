"""Fallback attribution: every vector-engine decline names its reason."""

from diffgen import MAX_WHILE_ITERATIONS, gen_case

from repro.core.errors import ReproError
from repro.engine import FALLBACK_REASONS, fallback_report, report_text
from repro.engine.runtime import VectorEngine, engine_scope

#: Seeds per family, mirroring the differential corpus' seed spaces.
CORPUS = [
    (0, {"allow_while": False, "allow_wildcards": False}),
    (1_000_000, {"allow_while": False, "allow_wildcards": True}),
    (2_000_000, {"allow_while": True, "allow_wildcards": True}),
]
SEEDS_PER_FAMILY = 25


def _run_corpus() -> VectorEngine:
    """One shared backend accumulating stats over the fuzzer corpus."""
    backend = VectorEngine()
    for offset, flags in CORPUS:
        for index in range(SEEDS_PER_FAMILY):
            program, db = gen_case(offset + index, **flags)
            try:
                with engine_scope(backend):
                    program.run(db, max_while_iterations=MAX_WHILE_ITERATIONS)
            except ReproError:
                pass  # typed errors are legitimate corpus outcomes
    return backend


class TestCorpusAttribution:
    def test_every_fallback_on_the_fuzzer_corpus_is_attributed(self):
        """Acceptance: 100% of corpus fallbacks carry a named reason."""
        backend = _run_corpus()
        report = fallback_report(backend.stats)
        assert report["fallbacks"] > 0, "corpus must exercise fallbacks"
        assert report["kernel_calls"] > 0, "corpus must exercise kernels"
        assert report["attributed"] == report["fallbacks"]
        assert report["coverage"] == 1.0
        assert set(report["reasons"]) <= set(FALLBACK_REASONS)
        # Per-op attribution is complete too, not just in aggregate.
        for op, record in report["ops"].items():
            assert sum(record["reasons"].values()) == record["fallback"], op

    def test_corpus_exercises_multiple_reasons(self):
        report = fallback_report(_run_corpus().stats)
        assert "no_kernel" in report["reasons"]
        assert len(report["reasons"]) >= 2


class TestReportShape:
    STATS = {
        "kernel_calls": 7,
        "fallbacks": 3,
        "kernel:SELECT": 5,
        "kernel:PROJECT": 2,
        "fallback:GROUP": 2,
        "fallback:MERGE": 1,
        "reason:GROUP:no_kernel": 2,
        "reason:MERGE:lineage_active": 1,
    }

    def test_report_structure(self):
        report = fallback_report(self.STATS)
        assert report["kernel_calls"] == 7
        assert report["fallbacks"] == 3
        assert report["attributed"] == 3
        assert report["coverage"] == 1.0
        assert report["ops"]["GROUP"] == {
            "kernel": 0, "fallback": 2, "reasons": {"no_kernel": 2}
        }
        assert report["reasons"] == {"lineage_active": 1, "no_kernel": 2}

    def test_unattributed_fallback_lowers_coverage(self):
        stats = dict(self.STATS)
        stats["fallbacks"] = 4  # one decline never called note_fallback
        report = fallback_report(stats)
        assert report["attributed"] == 3
        assert report["coverage"] == 0.75

    def test_empty_stats_have_full_coverage(self):
        report = fallback_report({})
        assert report["fallbacks"] == 0
        assert report["coverage"] == 1.0
        assert report["ops"] == {} and report["reasons"] == {}

    def test_report_text_renders_the_table(self):
        text = report_text(fallback_report(self.STATS))
        assert "ENGINE REPORT" in text
        assert "dispatches: 10  kernel: 7  fallback: 3" in text
        assert "attributed: 3/3 (100%)" in text
        assert "no_kernel=2" in text
        assert "lineage_active" in text
