"""Differential-testing harness for the vectorized engine.

Three pieces, used by ``test_differential.py``:

* :func:`gen_case` — a seeded random (program, database) pair.  Programs
  draw from the full registered operation set (kernel-backed and
  fallback ops alike, so backend mixing is exercised), optionally with
  wildcard arguments/parameters and while loops; databases come from
  :func:`repro.data.generators.random_database` — adversarial tables
  where ⊥, repeated attributes, and names-in-data all occur.  A coarse
  size ledger keeps every generated program's intermediate tables small,
  so no resource governor is needed and both backends see *identical*
  executions (a governor row-cap would trip asymmetrically: the fused
  PRODUCTSELECT legitimately materializes fewer rows than the naive
  PRODUCT it replaces).
* :func:`check_case` — runs the program on both backends and returns a
  human-readable failure description, or ``None`` when the outcomes
  agree.  Agreement means: the same :class:`ReproError` type, or equal
  final databases *and* equal JSON serializations (byte-identical
  modulo the set order the database already canonicalizes).
* :func:`shrink_case` — greedy delta debugging over a failing case:
  drop top-level statements, unroll/trim while loops, drop tables, drop
  data rows — keeping every reduction that still fails — until a local
  minimum is reached.
"""

from __future__ import annotations

import json
import random

from repro.core import TabularDatabase, Table, render_database
from repro.core.errors import ReproError
from repro.data.generators import random_database
from repro.engine import run_program
from repro.algebra.programs.params import Star
from repro.algebra.programs.statements import Assignment, Program, Statement, While
from repro.runtime.checkpoint import database_to_data

MAX_WHILE_ITERATIONS = 12

ATTRS = ("A", "B", "C", "D")
VALUES = tuple(f"v{i}" for i in range(20))
NAMES = ("R", "S", "T", "U", "V")

#: Operations that never grow a table (rows and columns bounded by the
#: input) — the only ones allowed inside while-loop bodies, so loop
#: iteration cannot blow up the database.
_SAFE_OPS = (
    "SELECT",
    "SELECTCONST",
    "PROJECT",
    "RENAME",
    "TRANSPOSE",
    "CLEANUP",
    "PURGE",
    "DEDUP",
    "DEDUPCOLUMNS",
    "DROPNULLROWS",
    "DIFFERENCE",
    "INTERSECTION",
)

#: Fallback-only operations (no kernel): drawing these mixes naive and
#: vectorized statements inside one vector-engine run.
_FALLBACK_OPS = (
    "GROUP",
    "MERGE",
    "SWITCH",
    "SPLIT",
    "NATURALJOIN",
    "GROUPCOMPACT",
    "MERGECOMPACT",
    "TUPLENEW",
)


class _Sizes:
    """Coarse per-name (tables, rows, cols) upper bounds during generation."""

    def __init__(self, db: TabularDatabase):
        self.by_name: dict[str, tuple[int, int, int]] = {}
        for table in db.tables:
            name = str(table.name)
            count, rows, cols = self.by_name.get(name, (0, 0, 0))
            self.by_name[name] = (
                count + 1,
                max(rows, table.height),
                max(cols, table.width),
            )

    def get(self, name: object) -> tuple[int, int, int]:
        if isinstance(name, Star):
            out = (1, 1, 1)
            for bound in self.by_name.values():
                out = tuple(max(a, b) for a, b in zip(out, bound))
            return out
        return self.by_name.get(str(name), (1, 1, 1))

    def put(self, name: object, bound: tuple[int, int, int]) -> None:
        count = min(bound[0], 6)
        rows = min(bound[1], 400)
        cols = min(bound[2], 20)
        if isinstance(name, Star):
            for key in self.by_name:
                self.by_name[key] = (count, rows, cols)
        else:
            self.by_name[str(name)] = (count, rows, cols)


def _attr(rng: random.Random) -> object:
    return None if rng.random() < 0.08 else rng.choice(ATTRS)


def _attr_set(rng: random.Random) -> list:
    size = rng.randrange(0, 3)
    return [_attr(rng) for _ in range(size)]


def _value(rng: random.Random) -> object:
    return None if rng.random() < 0.1 else rng.choice(VALUES)


def _gen_params(rng: random.Random, op: str, star: Star | None) -> dict:
    def attr() -> object:
        if star is not None and rng.random() < 0.2:
            return star
        return _attr(rng)

    if op == "SELECT":
        return {"left": attr(), "right": attr()}
    if op == "SELECTCONST":
        return {"attr": attr(), "value": _value(rng)}
    if op == "PROJECT":
        return {"attrs": _attr_set(rng)}
    if op == "RENAME":
        return {"old": attr(), "new": attr()}
    if op in ("CLEANUP", "GROUP", "GROUPCOMPACT"):
        return {"by": _attr_set(rng), "on": _attr_set(rng)}
    if op in ("PURGE", "MERGE", "MERGECOMPACT"):
        return {"on": _attr_set(rng), "by": _attr_set(rng)}
    if op in ("DROPNULLROWS", "TUPLENEW"):
        return {"attr": attr()}
    if op == "CONSTCOLUMN":
        return {"attr": attr(), "value": _value(rng)}
    if op == "SWITCH":
        return {"value": _value(rng)}
    if op == "SPLIT":
        return {"on": _attr_set(rng)}
    return {}


def _arity(op: str) -> int:
    return 2 if op in ("UNION", "DIFFERENCE", "INTERSECTION", "PRODUCT",
                       "CLASSICALUNION", "NATURALJOIN") else 1


def _gen_statement(
    rng: random.Random, sizes: _Sizes, *, allow_wildcards: bool, safe_only: bool
) -> list[Statement]:
    """One generation step: usually one statement, sometimes a fusable
    PRODUCT+SELECT pair (so the planner's rewrite is differentially
    covered end to end)."""
    star = Star(1) if allow_wildcards and rng.random() < 0.25 else None

    pool: tuple[str, ...] = _SAFE_OPS
    if not safe_only:
        pool = pool + ("UNION", "PRODUCT", "CLASSICALUNION", "CONSTCOLUMN")
        pool = pool + tuple(rng.sample(_FALLBACK_OPS, 3))
    op = rng.choice(pool)

    args: list[object] = []
    for _ in range(_arity(op)):
        if star is not None and rng.random() < 0.6:
            args.append(star)
        else:
            args.append(rng.choice(NAMES[:4]))
    if star is not None and not any(isinstance(a, Star) for a in args):
        args[0] = star

    counts = [sizes.get(a) for a in args]
    target: object = rng.choice(NAMES)
    if star is not None and rng.random() < 0.3:
        target = star

    # Size guards: regenerate growing ops as a safe op when too big.
    if op in ("PRODUCT", "NATURALJOIN"):
        (n1, r1, c1), (n2, r2, c2) = counts
        if n1 * n2 > 4 or r1 * r2 > 200 or c1 + c2 > 14:
            op = "DIFFERENCE"
    if op in ("UNION", "CLASSICALUNION"):
        (n1, r1, c1), (n2, r2, c2) = counts
        if n1 * n2 > 4 or r1 + r2 > 300 or c1 + c2 > 16:
            op = "INTERSECTION"
    if op in ("GROUP", "GROUPCOMPACT", "MERGE", "MERGECOMPACT", "SWITCH"):
        _n, rows, cols = counts[0]
        if rows + cols > 14 or rows * max(cols, 1) > 200:
            op = "DEDUP"
    if op == "SPLIT":
        _n, rows, cols = counts[0]
        if counts[0][0] * max(rows, 1) > 12:
            op = "DEDUP"
    if op in ("CONSTCOLUMN", "TUPLENEW") and counts[0][2] > 16:
        op = "PROJECT"
    args = args[: _arity(op)]
    counts = counts[: _arity(op)]

    statements = [Assignment(target, op, args, _gen_params(rng, op, star))]

    # Update the ledger with a coarse upper bound of the result shape.
    (n1, r1, c1) = counts[0]
    if _arity(op) == 2:
        (n2, r2, c2) = counts[1]
        bound = (n1 * n2, r1 * r2 if op in ("PRODUCT", "NATURALJOIN") else r1 + r2,
                 c1 + c2)
    elif op in ("GROUP", "GROUPCOMPACT"):
        bound = (n1, 2 * r1 + 2, c1 + r1 + 2)
    elif op in ("MERGE", "MERGECOMPACT"):
        bound = (n1, r1 * max(c1, 1), c1 + 1)
    elif op == "SPLIT":
        bound = (n1 * max(r1, 1), r1, c1)
    elif op == "TRANSPOSE":
        bound = (n1, c1 + 1, r1 + 1)
    elif op == "SWITCH":
        bound = (n1, r1 + c1, r1 + c1)
    elif op in ("CONSTCOLUMN", "TUPLENEW"):
        bound = (n1, r1, c1 + 1)
    else:
        bound = (n1, r1, c1)
    sizes.put(target, bound)

    # Sometimes chase a PRODUCT with a same-target SELECT: exactly the
    # adjacent pair the planner fuses into PRODUCTSELECT.
    if op == "PRODUCT" and not isinstance(target, Star) and rng.random() < 0.7:
        statements.append(
            Assignment(
                target,
                "SELECT",
                [target],
                {"left": _attr(rng), "right": _attr(rng)},
            )
        )
    return statements


def _gen_while(rng: random.Random, sizes: _Sizes, allow_wildcards: bool) -> While:
    condition = rng.choice(NAMES[:4])
    body: list[Statement] = []
    for _ in range(rng.randrange(1, 3)):
        body.extend(
            _gen_statement(rng, sizes, allow_wildcards=allow_wildcards, safe_only=True)
        )
    if rng.random() < 0.7:
        # Guarantee termination: R \ R is always empty, so assigning it
        # to the condition name ends the loop after this iteration.
        body.append(Assignment(condition, "DIFFERENCE", [condition, condition]))
    else:
        body.append(
            Assignment(
                condition,
                "SELECTCONST",
                [condition],
                {"attr": _attr(rng), "value": _value(rng)},
            )
        )
    return While(condition, Program(body))


def gen_case(
    seed: int, *, allow_while: bool = True, allow_wildcards: bool = True
) -> tuple[Program, TabularDatabase]:
    """The seeded random (program, database) differential test case."""
    rng = random.Random(seed)
    db = random_database(
        n_tables=rng.randrange(2, 5),
        height=rng.randrange(2, 5),
        width=rng.randrange(1, 4),
        seed=rng.randrange(10**9),
    )
    sizes = _Sizes(db)
    statements: list[Statement] = []
    for _ in range(rng.randrange(3, 9)):
        if allow_while and rng.random() < 0.18:
            statements.append(_gen_while(rng, sizes, allow_wildcards))
        else:
            statements.extend(
                _gen_statement(
                    rng, sizes, allow_wildcards=allow_wildcards, safe_only=False
                )
            )
    return Program(statements), db


# ----------------------------------------------------------------------
# Execution and comparison
# ----------------------------------------------------------------------

def _outcome(thunk) -> tuple[str, TabularDatabase | None]:
    try:
        return "ok", thunk()
    except ReproError as err:
        return f"error:{type(err).__name__}", None


def check_case(
    program: Program,
    db: TabularDatabase,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
) -> str | None:
    """Run on both backends; a failure description, or None on agreement."""
    naive_kind, naive_db = _outcome(
        lambda: program.run(db, max_while_iterations=max_while_iterations)
    )
    vector_kind, vector_db = _outcome(
        lambda: run_program(
            program, db, engine="vector", max_while_iterations=max_while_iterations
        )
    )
    if naive_kind != vector_kind:
        return f"outcome mismatch: naive={naive_kind} vector={vector_kind}"
    if naive_db is None:
        return None
    if naive_db != vector_db:
        return "database mismatch"
    naive_data = json.dumps(database_to_data(naive_db), sort_keys=True)
    vector_data = json.dumps(database_to_data(vector_db), sort_keys=True)
    if naive_data != vector_data:
        return "serialization mismatch (equal databases, different bytes)"
    return None


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _without_row(table: Table, row: int) -> Table:
    grid = [r for i, r in enumerate(table.grid) if i != row]
    return Table(grid)


def shrink_case(
    program: Program,
    db: TabularDatabase,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
) -> tuple[Program, TabularDatabase]:
    """Greedy minimization: keep any reduction that still fails."""

    def fails(statements: list[Statement], database: TabularDatabase) -> bool:
        if not statements:
            return False
        return (
            check_case(Program(statements), database, max_while_iterations) is not None
        )

    statements = list(program.statements)
    changed = True
    while changed:
        changed = False
        for i in range(len(statements)):
            cand = statements[:i] + statements[i + 1 :]
            if fails(cand, db):
                statements = cand
                changed = True
                break
        if changed:
            continue
        for i, statement in enumerate(statements):
            if not isinstance(statement, While):
                continue
            unrolled = statements[:i] + list(statement.body.statements) + statements[i + 1 :]
            if fails(unrolled, db):
                statements = unrolled
                changed = True
                break
            body = list(statement.body.statements)
            for j in range(len(body)):
                trimmed = body[:j] + body[j + 1 :]
                if trimmed:
                    cand = (
                        statements[:i]
                        + [While(statement.condition, Program(trimmed))]
                        + statements[i + 1 :]
                    )
                    if fails(cand, db):
                        statements = cand
                        changed = True
                        break
            if changed:
                break
        if changed:
            continue
        for table in list(db.tables):
            cand_db = TabularDatabase(t for t in db.tables if t is not table)
            if fails(statements, cand_db):
                db = cand_db
                changed = True
                break
        if changed:
            continue
        for table in list(db.tables):
            for row in range(table.nrows - 1, 0, -1):
                shrunk = _without_row(table, row)
                cand_db = TabularDatabase(
                    shrunk if t is table else t for t in db.tables
                )
                if fails(statements, cand_db):
                    db = cand_db
                    changed = True
                    break
            if changed:
                break
    return Program(statements), db


def describe_failure(
    seed: int,
    program: Program,
    db: TabularDatabase,
    message: str,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
) -> str:
    """The assertion message: seed, verdict, and the shrunk repro."""
    small_program, small_db = shrink_case(program, db, max_while_iterations)
    small_message = check_case(small_program, small_db, max_while_iterations)
    return (
        f"backend divergence (seed {seed}): {message}\n"
        f"minimal program ({small_message}):\n{small_program!r}\n"
        f"minimal database:\n{render_database(small_db)}"
    )
