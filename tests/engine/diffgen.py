"""Differential-testing harness for the vectorized engine.

Three pieces, used by ``test_differential.py``:

* :func:`gen_case` — a seeded random (program, database) pair from the
  shared corpus generator :func:`repro.data.programs.random_case` (the
  ``repro stats-audit`` command replays the same seeds, so estimator
  audits and differential tests cover one corpus).  The generator's
  coarse size ledger keeps every intermediate table small, so no
  resource governor is needed and both backends see *identical*
  executions (a governor row-cap would trip asymmetrically: the fused
  PRODUCTSELECT legitimately materializes fewer rows than the naive
  PRODUCT it replaces).
* :func:`check_case` — runs the program on both backends and returns a
  human-readable failure description, or ``None`` when the outcomes
  agree.  Agreement means: the same :class:`ReproError` type, or equal
  final databases *and* equal JSON serializations (byte-identical
  modulo the set order the database already canonicalizes).
* :func:`check_case_optimized` — the three-way variant: naive,
  vectorized, and the cost-based optimizer's rewritten plan (with fresh
  ANALYZE stats installed, so join reordering is estimate-driven) must
  all agree byte-for-byte.  ``test_optimizer_differential.py`` runs it
  over both the shared corpus and the rewrite-targeting family
  :func:`repro.data.programs.random_rewrite_case`.
* :func:`shrink_case` — greedy delta debugging over a failing case:
  drop top-level statements, unroll/trim while loops, drop tables, drop
  data rows — keeping every reduction that still fails — until a local
  minimum is reached.
"""

from __future__ import annotations

import json

from repro.core import TabularDatabase, Table, render_database
from repro.core.errors import ReproError
from repro.data.programs import MAX_WHILE_ITERATIONS, random_case, random_rewrite_case
from repro.engine import run_program
from repro.algebra.programs.statements import Program, Statement, While
from repro.runtime.checkpoint import database_to_data

__all__ = [
    "MAX_WHILE_ITERATIONS",
    "gen_case",
    "gen_rewrite_case",
    "check_case",
    "check_case_optimized",
    "shrink_case",
    "describe_failure",
]

#: The corpus generator under its historical test-suite name.
gen_case = random_case

#: The rewrite-targeting family (one motif per optimizer rule).
gen_rewrite_case = random_rewrite_case


# ----------------------------------------------------------------------
# Execution and comparison
# ----------------------------------------------------------------------

def _outcome(thunk) -> tuple[str, TabularDatabase | None]:
    try:
        return "ok", thunk()
    except ReproError as err:
        return f"error:{type(err).__name__}", None


def check_case(
    program: Program,
    db: TabularDatabase,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
) -> str | None:
    """Run on both backends; a failure description, or None on agreement."""
    naive_kind, naive_db = _outcome(
        lambda: program.run(db, max_while_iterations=max_while_iterations)
    )
    vector_kind, vector_db = _outcome(
        lambda: run_program(
            program, db, engine="vector", max_while_iterations=max_while_iterations
        )
    )
    if naive_kind != vector_kind:
        return f"outcome mismatch: naive={naive_kind} vector={vector_kind}"
    if naive_db is None:
        return None
    if naive_db != vector_db:
        return "database mismatch"
    naive_data = json.dumps(database_to_data(naive_db), sort_keys=True)
    vector_data = json.dumps(database_to_data(vector_db), sort_keys=True)
    if naive_data != vector_data:
        return "serialization mismatch (equal databases, different bytes)"
    return None


def check_case_optimized(
    program: Program,
    db: TabularDatabase,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
    rules=None,
) -> str | None:
    """Three-way agreement: naive, vector, and the optimized plan.

    The program is pushed through the cost-based optimizer with a fresh
    ANALYZE snapshot of ``db`` (so join reordering is stats-driven, not
    just syntactic), and all three executions must produce the same
    typed error or byte-identical serialized databases.  ``rules``
    restricts the rewrite set (None = every shipped rule).
    """
    from repro.engine.optimizer import optimize_program
    from repro.obs.stats import analyze_database

    stats = analyze_database(db)
    optimized = optimize_program(program, stats, rules=rules).program

    outcomes = {
        "naive": _outcome(
            lambda: program.run(db, max_while_iterations=max_while_iterations)
        ),
        "vector": _outcome(
            lambda: run_program(
                program, db, engine="vector",
                max_while_iterations=max_while_iterations,
            )
        ),
        "optimized": _outcome(
            lambda: optimized.run(db, max_while_iterations=max_while_iterations)
        ),
    }
    kinds = {label: kind for label, (kind, _) in outcomes.items()}
    if len(set(kinds.values())) > 1:
        detail = " ".join(f"{label}={kind}" for label, kind in kinds.items())
        return f"outcome mismatch: {detail}"
    reference_label, (_, reference_db) = next(iter(outcomes.items()))
    if reference_db is None:
        return None
    reference = json.dumps(database_to_data(reference_db), sort_keys=True)
    for label, (_, result_db) in outcomes.items():
        if result_db != reference_db:
            return f"database mismatch: {label} != {reference_label}"
        if json.dumps(database_to_data(result_db), sort_keys=True) != reference:
            return (
                f"serialization mismatch: {label} != {reference_label} "
                "(equal databases, different bytes)"
            )
    return None


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _without_row(table: Table, row: int) -> Table:
    grid = [r for i, r in enumerate(table.grid) if i != row]
    return Table(grid)


def shrink_case(
    program: Program,
    db: TabularDatabase,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
) -> tuple[Program, TabularDatabase]:
    """Greedy minimization: keep any reduction that still fails."""

    def fails(statements: list[Statement], database: TabularDatabase) -> bool:
        if not statements:
            return False
        return (
            check_case(Program(statements), database, max_while_iterations) is not None
        )

    statements = list(program.statements)
    changed = True
    while changed:
        changed = False
        for i in range(len(statements)):
            cand = statements[:i] + statements[i + 1 :]
            if fails(cand, db):
                statements = cand
                changed = True
                break
        if changed:
            continue
        for i, statement in enumerate(statements):
            if not isinstance(statement, While):
                continue
            unrolled = statements[:i] + list(statement.body.statements) + statements[i + 1 :]
            if fails(unrolled, db):
                statements = unrolled
                changed = True
                break
            body = list(statement.body.statements)
            for j in range(len(body)):
                trimmed = body[:j] + body[j + 1 :]
                if trimmed:
                    cand = (
                        statements[:i]
                        + [While(statement.condition, Program(trimmed))]
                        + statements[i + 1 :]
                    )
                    if fails(cand, db):
                        statements = cand
                        changed = True
                        break
            if changed:
                break
        if changed:
            continue
        for table in list(db.tables):
            cand_db = TabularDatabase(t for t in db.tables if t is not table)
            if fails(statements, cand_db):
                db = cand_db
                changed = True
                break
        if changed:
            continue
        for table in list(db.tables):
            for row in range(table.nrows - 1, 0, -1):
                shrunk = _without_row(table, row)
                cand_db = TabularDatabase(
                    shrunk if t is table else t for t in db.tables
                )
                if fails(statements, cand_db):
                    db = cand_db
                    changed = True
                    break
            if changed:
                break
    return Program(statements), db


def describe_failure(
    seed: int,
    program: Program,
    db: TabularDatabase,
    message: str,
    max_while_iterations: int = MAX_WHILE_ITERATIONS,
) -> str:
    """The assertion message: seed, verdict, and the shrunk repro."""
    small_program, small_db = shrink_case(program, db, max_while_iterations)
    small_message = check_case(small_program, small_db, max_while_iterations)
    return (
        f"backend divergence (seed {seed}): {message}\n"
        f"minimal program ({small_message}):\n{small_program!r}\n"
        f"minimal database:\n{render_database(small_db)}"
    )
