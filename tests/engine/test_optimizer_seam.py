"""Differential coverage of the optimizer/engine seam.

``programs/optimize.py`` rewrites statements (idempotent-pair collapse,
dead-statement elimination); its outputs had never been fuzzed.  Here
every random program is optimized and the *optimized* program must
agree across backends — and the optimizer's rewrites must commute with
the engine switch: optimize-then-run equals run, on both engines.
"""

import pytest

from diffgen import check_case, describe_failure, gen_case

from repro.algebra.programs.optimize import optimize
from repro.algebra.programs.params import Lit
from repro.algebra.programs.statements import Assignment, Program, While
from repro.engine import run_program


def _literal_targets(program: Program) -> list:
    out = []
    for statement in program.statements:
        if isinstance(statement, Assignment) and isinstance(statement.target, Lit):
            out.append(statement.target.symbol)
        elif isinstance(statement, While):
            out.extend(_literal_targets(statement.body))
    return out


@pytest.mark.parametrize("chunk", range(4))
def test_optimized_programs_agree_across_backends(chunk):
    for index in range(chunk * 15, (chunk + 1) * 15):
        seed = 4_000_000 + index
        program, db = gen_case(seed)
        outputs = _literal_targets(program)
        optimized = optimize(program, outputs)
        message = check_case(optimized, db)
        if message is not None:
            pytest.fail(describe_failure(seed, optimized, db, message))


@pytest.mark.parametrize("chunk", range(2))
def test_optimize_commutes_with_the_engine_switch(chunk):
    for index in range(chunk * 10, (chunk + 1) * 10):
        seed = 5_000_000 + index
        program, db = gen_case(seed, allow_while=False, allow_wildcards=False)
        outputs = _literal_targets(program)
        optimized = optimize(program, outputs)
        try:
            expected = program.run(db, max_while_iterations=12)
        except Exception:
            continue  # the commutation contract covers clean runs only
        for engine in ("naive", "vector"):
            got = run_program(optimized, db, engine=engine, max_while_iterations=12)
            for name in outputs:
                assert got.tables_named(name) == expected.tables_named(name), (
                    f"seed {seed}: optimizer changed output {name} under {engine}"
                )
