"""Unit tests for the cost-based plan optimizer (docs/OPTIMIZER.md).

The differential fuzzer proves the rewrites sound in bulk; these tests
pin the *decisions*: which redexes each rule matches, which it must
refuse, how chains are costed and ordered, what the cache keys on, and
what ChainJoin/SelectUnion do in their fallback paths.
"""

import pytest

from repro.algebra.programs.params import Lit, Star
from repro.algebra.programs.statements import Assignment, Program, While, assign
from repro.core import EvaluationError, TabularDatabase, make_table
from repro.engine.optimizer import (
    PLAN_CACHE,
    RULE_ORDER,
    RULES,
    ChainJoin,
    OptimizerStats,
    PlanCache,
    SelectUnion,
    optimize_program,
)
from repro.obs.stats import analyze_database


def _db(*tables):
    return TabularDatabase(tables)


def _base(name, attr, values):
    return make_table(name, [attr], [[v] for v in values])


def _chain_db(rows=3):
    # A/D share attr X and B/C share attr Y, so σ_{X≈X};σ_{Y≈Y} rewards
    # the non-adjacent pairings (A,D) and (B,C) — a syntactic fold pays
    # for the full cross product before either filter applies.
    return _db(
        _base("A", "X", [f"a{i}" for i in range(rows)]),
        _base("B", "Y", [f"c{i}" for i in range(rows)]),
        _base("C", "Y", [f"c{i}" for i in range(rows)]),
        _base("D", "X", [f"a{i}" for i in range(rows)]),
    )


def _chain_program():
    return Program(
        [
            assign("T", "PRODUCT", "A", "B"),
            assign("T", "PRODUCT", "T", "C"),
            assign("T", "PRODUCT", "T", "D"),
            assign("T", "SELECT", "T", left="A0", right="D0"),
        ]
    )


def _same(program, optimized, db):
    assert program.run(db) == optimized.run(db)


class TestSelectPushdown:
    def test_pushes_through_rename_when_attrs_disjoint(self):
        program = Program(
            [
                assign("T", "RENAME", "R", old="A", new="B"),
                assign("T", "SELECT", "T", left="C", right="C"),
            ]
        )
        result = optimize_program(program, rules=["select-pushdown"], cache=None)
        assert [r.rule for r in result.applied] == ["select-pushdown"]
        first, second = result.program.statements
        assert first.spec.name == "SELECT"
        assert second.spec.name == "RENAME"
        # The swapped pair reads R and writes T at both steps.
        assert str(first.args[0]) == "R"
        assert str(second.args[0]) == "T"
        db = _db(make_table("R", ["C", "A"], [["x", "p"], ["y", "q"]]))
        _same(program, result.program, db)

    def test_refuses_rename_touching_selected_attr(self):
        program = Program(
            [
                assign("T", "RENAME", "R", old="A", new="B"),
                assign("T", "SELECT", "T", left="A", right="C"),
            ]
        )
        result = optimize_program(program, rules=["select-pushdown"], cache=None)
        assert result.applied == ()
        assert result.program is program

    def test_pushes_through_project_when_attrs_kept(self):
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A", "B"]),
                assign("T", "SELECT", "T", left="A", right="B"),
            ]
        )
        result = optimize_program(program, rules=["select-pushdown"], cache=None)
        assert len(result.applied) == 1
        assert result.program.statements[0].spec.name == "SELECT"
        db = _db(make_table("R", ["A", "B", "C"], [["x", "x", "1"], ["x", "y", "2"]]))
        _same(program, result.program, db)

    def test_refuses_project_dropping_selected_attr(self):
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A"]),
                assign("T", "SELECT", "T", left="A", right="B"),
            ]
        )
        result = optimize_program(program, rules=["select-pushdown"], cache=None)
        assert result.applied == ()


class TestPruneDeadProject:
    def test_removes_project_overwritten_before_read(self):
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A"]),
                assign("T", "RENAME", "S", old="A", new="B"),
            ]
        )
        result = optimize_program(program, rules=["prune-dead-project"], cache=None)
        assert len(result.applied) == 1
        assert "dead" in result.applied[0].detail
        assert len(result.program.statements) == 1
        assert result.program.statements[0].spec.name == "RENAME"

    def test_keeps_project_that_is_read(self):
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A"]),
                assign("U", "DEDUP", "T"),
                assign("T", "RENAME", "S", old="A", new="B"),
            ]
        )
        result = optimize_program(program, rules=["prune-dead-project"], cache=None)
        assert result.applied == ()

    def test_keeps_project_before_while(self):
        loop = While("T", Program([assign("T", "DIFFERENCE", "T", "T")]))
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A"]),
                loop,
                assign("T", "RENAME", "S", old="A", new="B"),
            ]
        )
        result = optimize_program(program, rules=["prune-dead-project"], cache=None)
        assert result.applied == ()

    def test_collapses_adjacent_projections(self):
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A", "B"]),
                assign("T", "PROJECT", "T", attrs=["B", "C"]),
            ]
        )
        result = optimize_program(program, rules=["prune-dead-project"], cache=None)
        assert len(result.applied) == 1
        (fused,) = result.program.statements
        assert fused.spec.name == "PROJECT"
        db = _db(make_table("R", ["A", "B", "C"], [["1", "2", "3"]]))
        _same(program, result.program, db)

    def test_collapses_disjoint_projections_to_nothing(self):
        program = Program(
            [
                assign("T", "PROJECT", "R", attrs=["A"]),
                assign("T", "PROJECT", "T", attrs=["B"]),
            ]
        )
        result = optimize_program(program, rules=["prune-dead-project"], cache=None)
        assert len(result.applied) == 1
        db = _db(make_table("R", ["A", "B"], [["1", "2"]]))
        _same(program, result.program, db)


class TestCse:
    def test_duplicate_select_becomes_identity_copy(self):
        program = Program(
            [
                assign("X", "SELECT", "R", left="A", right="B"),
                assign("Y", "SELECT", "R", left="A", right="B"),
            ]
        )
        result = optimize_program(program, rules=["cse"], cache=None)
        assert [r.rule for r in result.applied] == ["cse"]
        copy = result.program.statements[1]
        assert copy.spec.name == "RENAME"
        assert str(copy.args[0]) == "X"
        db = _db(make_table("R", ["A", "B"], [["x", "x"], ["x", "y"]]))
        _same(program, result.program, db)

    def test_blocked_when_source_overwritten_between(self):
        program = Program(
            [
                assign("X", "SELECT", "R", left="A", right="B"),
                assign("X", "DEDUP", "S"),
                assign("Y", "SELECT", "R", left="A", right="B"),
            ]
        )
        result = optimize_program(program, rules=["cse"], cache=None)
        assert result.applied == ()

    def test_blocked_when_argument_overwritten_between(self):
        program = Program(
            [
                assign("X", "SELECT", "R", left="A", right="B"),
                assign("R", "DEDUP", "S"),
                assign("Y", "SELECT", "R", left="A", right="B"),
            ]
        )
        result = optimize_program(program, rules=["cse"], cache=None)
        assert result.applied == ()

    def test_fresh_name_ops_are_not_cse_candidates(self):
        # TUPLENEW tags rows with *fresh* names: two runs differ.
        program = Program(
            [
                assign("X", "TUPLENEW", "R", attr="A"),
                assign("Y", "TUPLENEW", "R", attr="A"),
            ]
        )
        result = optimize_program(program, rules=["cse"], cache=None)
        assert result.applied == ()


class TestJoinReorder:
    def test_no_stats_keeps_syntactic_order(self):
        result = optimize_program(
            _chain_program(), None, rules=["join-reorder"], cache=None
        )
        (decision,) = result.decisions
        assert decision.outcome == "stats-missing"
        assert tuple(decision.order) == (0, 1, 2, 3)
        assert not any(isinstance(s, ChainJoin) for s in result.program.statements)

    def test_missing_leaf_stats_keeps_syntactic_order(self):
        db = _chain_db()
        partial = analyze_database(_db(*[t for t in db.tables if str(t.name) != "D"]))
        result = optimize_program(
            _chain_program(), partial, rules=["join-reorder"], cache=None
        )
        (decision,) = result.decisions
        assert decision.outcome == "stats-missing"
        assert "D" in decision.reason

    def test_stats_drive_a_nonsyntactic_order(self):
        db = _chain_db()
        stats = analyze_database(db)
        program = Program(
            [
                assign("T", "PRODUCT", "A", "B"),
                assign("T", "PRODUCT", "T", "C"),
                assign("T", "PRODUCT", "T", "D"),
                assign("T", "SELECT", "T", left="X", right="X"),
                assign("T", "SELECT", "T", left="Y", right="Y"),
            ]
        )
        result = optimize_program(program, stats, rules=["join-reorder"], cache=None)
        (decision,) = result.decisions
        assert decision.outcome == "reordered"
        assert tuple(decision.order) != (0, 1, 2, 3)
        assert decision.cost_chosen < decision.cost_syntactic
        (chain,) = result.program.statements
        assert isinstance(chain, ChainJoin)
        _same(program, result.program, db)

    def test_short_chains_are_not_matched(self):
        program = Program(
            [
                assign("T", "PRODUCT", "A", "B"),
                assign("T", "SELECT", "T", left="X", right="X"),
            ]
        )
        stats = analyze_database(_chain_db())
        result = optimize_program(program, stats, rules=["join-reorder"], cache=None)
        assert result.decisions == ()

    def test_greedy_ordering_beyond_dp_limit(self):
        names = [f"L{i}" for i in range(9)]
        tables = [_base(name, f"K{i}", ["u", "v"]) for i, name in enumerate(names)]
        # Make the *last* two leaves join selectively so a greedy start
        # pairing them beats the syntactic fold.
        tables[7] = _base("L7", "J", ["u", "v", "w"])
        tables[8] = _base("L8", "J", ["u", "v", "w"])
        db = _db(*tables)
        statements = [assign("T", "PRODUCT", names[0], names[1])]
        for name in names[2:]:
            statements.append(assign("T", "PRODUCT", "T", name))
        statements.append(assign("T", "SELECT", "T", left="J", right="J"))
        program = Program(statements)
        stats = analyze_database(db)
        result = optimize_program(program, stats, rules=["join-reorder"], cache=None)
        (decision,) = result.decisions
        assert "greedy" in decision.reason
        _same(program, result.program, db)

    def test_chain_inside_while_body_is_reordered(self):
        db = _chain_db()
        stats = analyze_database(db)
        body = list(_chain_program().statements) + [
            assign("T", "SELECT", "T", left="X", right="X"),
            assign("Flag", "DIFFERENCE", "Flag", "Flag"),
        ]
        program = Program([While("Flag", Program(body))])
        result = optimize_program(program, stats, cache=None)
        (loop,) = result.program.statements
        assert isinstance(loop, While)
        assert any(isinstance(s, ChainJoin) for s in loop.body.statements)
        run_db = _db(*db.tables, _base("Flag", "F", ["go"]))
        _same(program, result.program, run_db)


class TestChainJoin:
    def _optimized_chain(self):
        db = _chain_db()
        stats = analyze_database(db)
        program = Program(
            [
                assign("T", "PRODUCT", "A", "B"),
                assign("T", "PRODUCT", "T", "C"),
                assign("T", "PRODUCT", "T", "D"),
                assign("T", "SELECT", "T", left="X", right="X"),
                assign("T", "SELECT", "T", left="Y", right="Y"),
            ]
        )
        result = optimize_program(program, stats, rules=["join-reorder"], cache=None)
        (chain,) = result.program.statements
        return program, chain, db

    def test_stale_stats_fall_back_per_combination(self):
        program, chain, _db_planned = self._optimized_chain()
        # A grown table no longer matches the planning snapshot's shape.
        grown = _db(
            _base("A", "X", [f"a{i}" for i in range(7)]),
            *[t for t in _chain_db().tables if str(t.name) != "A"],
        )
        assert not chain._stats_fresh(
            [grown.tables_named(n)[0] for n in ("A", "B", "C", "D")]
        )
        _same(program, Program([chain]), grown)

    def test_lineage_scope_runs_source_statements(self):
        from repro.obs.lineage import lineage
        from repro.obs.runtime import observation

        program, chain, db = self._optimized_chain()
        with observation(), lineage():
            lineage_db = Program([chain]).run(db)
        assert lineage_db == program.run(db)

    def test_repr_names_order_and_conds(self):
        _program, chain, _db2 = self._optimized_chain()
        text = repr(chain)
        assert "CHAINJOIN" in text and "order [" in text and "conds [" in text

    def test_explain_span_carries_order_and_estimate(self):
        from repro.obs.estimator import estimation
        from repro.obs.runtime import observation

        program, chain, db = self._optimized_chain()
        stats = analyze_database(db)
        with observation() as obs, estimation(stats):
            Program([chain]).run(db)
        text = obs.explain()
        assert "CHAINJOIN" in text
        assert "rules=['join-reorder']" in text
        assert "est_rows" in text


class TestSelectUnion:
    def test_union_select_pair_is_fused(self):
        program = Program(
            [
                assign("T", "UNION", "R", "S"),
                assign("T", "SELECT", "T", left="A", right="B"),
            ]
        )
        result = optimize_program(
            program, rules=["select-pushdown-union"], cache=None
        )
        (fused,) = result.program.statements
        assert isinstance(fused, SelectUnion)
        db = _db(
            make_table("R", ["A", "B"], [["x", "x"], ["x", "y"]]),
            make_table("S", ["B", "C"], [["z", "1"]]),
        )
        _same(program, result.program, db)

    def test_empty_side_matches_naive_empty_semantics(self):
        program = Program(
            [
                assign("T", "UNION", "R", "Missing"),
                assign("T", "SELECT", "T", left="A", right="A"),
            ]
        )
        result = optimize_program(
            program, rules=["select-pushdown-union"], cache=None
        )
        db = _db(make_table("R", ["A"], [["x"]]))
        _same(program, result.program, db)

    def test_wildcard_union_is_not_fused(self):
        program = Program(
            [
                Assignment("T", "UNION", [Star(1), "S"]),
                assign("T", "SELECT", "T", left="A", right="B"),
            ]
        )
        result = optimize_program(
            program, rules=["select-pushdown-union"], cache=None
        )
        assert result.applied == ()


class TestPlanCacheAndDriver:
    def test_cache_hit_on_same_program_and_stats(self):
        cache = PlanCache()
        db = _chain_db()
        stats = analyze_database(db)
        first = optimize_program(_chain_program(), stats, cache=cache)
        second = optimize_program(_chain_program(), stats, cache=cache)
        assert not first.cache_hit and second.cache_hit
        assert cache.hits == 1 and cache.misses == 1
        assert second.program is first.program

    def test_reanalyze_invalidates_by_stats_fingerprint(self):
        cache = PlanCache()
        db = _chain_db()
        optimize_program(_chain_program(), analyze_database(db), cache=cache)
        grown = _db(
            _base("A", "X", [f"a{i}" for i in range(9)]),
            *[t for t in db.tables if str(t.name) != "A"],
        )
        result = optimize_program(
            _chain_program(), analyze_database(grown), cache=cache
        )
        assert not result.cache_hit
        assert len(cache) == 2

    def test_rule_subset_is_part_of_the_key(self):
        cache = PlanCache()
        program = _chain_program()
        optimize_program(program, cache=cache)
        result = optimize_program(program, rules=["cse"], cache=cache)
        assert not result.cache_hit

    def test_fifo_eviction_at_capacity(self):
        cache = PlanCache(capacity=2)
        for name in ("R", "S", "U"):
            optimize_program(
                Program([assign("T", "DEDUP", name)]), cache=cache
            )
        assert len(cache) == 2
        # The oldest plan (over R) was evicted: probing it misses.
        result = optimize_program(Program([assign("T", "DEDUP", "R")]), cache=cache)
        assert not result.cache_hit

    def test_unknown_rule_raises(self):
        with pytest.raises(EvaluationError, match="unknown rewrite rule"):
            optimize_program(_chain_program(), rules=["fuse-everything"])

    def test_disabled_rules_do_not_fire(self):
        program = Program(
            [
                assign("X", "SELECT", "R", left="A", right="B"),
                assign("Y", "SELECT", "R", left="A", right="B"),
            ]
        )
        result = optimize_program(program, rules=["join-reorder"], cache=None)
        assert result.applied == ()
        assert result.program is program

    def test_rule_registry_matches_order(self):
        assert set(RULE_ORDER) == set(RULES)
        for name, rule in RULES.items():
            assert rule.name == name
            assert rule.justification

    def test_plan_rewrite_events_are_emitted(self):
        from repro.obs.events import event_stream

        seen = []
        with event_stream() as bus:
            bus.attach(
                lambda e: seen.append(e.data["rule"])
                if e.kind == "plan_rewrite"
                else None
            )
            optimize_program(
                Program(
                    [
                        assign("T", "UNION", "R", "S"),
                        assign("T", "SELECT", "T", left="A", right="B"),
                    ]
                ),
                cache=None,
            )
        assert seen == ["select-pushdown-union"]

    def test_optimizer_stats_counters(self):
        stats = OptimizerStats()
        stats.record_cache(True)
        stats.record_cache(False)
        stats.record_rewrite("cse")
        stats.record_decision("reordered")
        snap = stats.snapshot()
        assert snap["cache"] == {"hit": 1, "miss": 1}
        assert snap["rewrites"] == {"cse": 1}
        assert snap["ordering"] == {"reordered": 1}
        stats.reset()
        assert stats.snapshot()["rewrites"] == {}

    def test_global_cache_is_the_default(self):
        PLAN_CACHE.clear()
        program = Program([assign("T", "DEDUP", "R")])
        optimize_program(program)
        assert optimize_program(program).cache_hit
        PLAN_CACHE.clear()

    def test_run_program_optimize_flag(self):
        from repro.engine import run_program

        db = _chain_db()
        expected = _chain_program().run(db)
        for engine in ("naive", "vector"):
            got = run_program(
                _chain_program(),
                db,
                engine=engine,
                optimize=True,
                stats=analyze_database(db),
            )
            assert got == expected

    def test_run_program_optimize_uses_estimation_scope_stats(self):
        from repro.engine import run_program
        from repro.obs.estimator import estimation

        db = _chain_db()
        expected = _chain_program().run(db)
        with estimation(analyze_database(db)):
            got = run_program(_chain_program(), db, optimize=True)
        assert got == expected

    def test_result_to_json_is_serializable(self):
        import json

        db = _chain_db()
        result = optimize_program(
            _chain_program(), analyze_database(db), cache=None
        )
        payload = json.loads(json.dumps(result.to_json()))
        assert payload["before"] and payload["after"]
        assert payload["rules"] == list(RULE_ORDER)
