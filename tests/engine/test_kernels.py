"""Kernel-level properties: interning round-trips, kernels ≡ naive ops.

Hypothesis drives structured random tables through each kernel and the
naive operation it replaces; grids must match cell for cell.  The
hash-dedup case is additionally checked against an independent
quadratic reference, and product/select pushdown against the explicit
post-filter composition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    cleanup,
    deduplicate,
    difference,
    product,
    product_select,
    select,
    select_constant,
    union,
)
from repro.core import NULL, Name, Table, Value
from repro.engine.interning import SymbolInterner
from repro.engine.kernels import KERNELS
from repro.engine.runtime import VectorEngine

ATTRS = [NULL, Name("A"), Name("B"), Name("C")]
ENTRIES = [NULL, Name("A"), Name("B"), Value("x"), Value("y"), Value("z"), Value(3)]


@st.composite
def tables(draw, max_height=5, max_width=4):
    """Adversarial tables: ⊥ and repeated attrs, names in data."""
    height = draw(st.integers(0, max_height))
    width = draw(st.integers(0, max_width))
    name = draw(st.sampled_from([Name("R"), Name("S")]))
    header = [name] + [draw(st.sampled_from(ATTRS)) for _ in range(width)]
    grid = [header]
    for _ in range(height):
        row_attr = draw(st.sampled_from(ATTRS))
        grid.append([row_attr] + [draw(st.sampled_from(ENTRIES)) for _ in range(width)])
    return Table(grid)


def _kernel(name, tables_in, arguments):
    return KERNELS[name](SymbolInterner(), tables_in, arguments)


@given(tables())
def test_interning_round_trip(table):
    interner = SymbolInterner()
    idt = interner.intern_table(table)
    back = interner.materialize(idt.name, idt.col_attrs, idt.row_attrs, idt.rows)
    assert back == table
    assert back.grid == table.grid


@given(tables())
def test_intern_table_caches_by_identity(table):
    interner = SymbolInterner()
    assert interner.intern_table(table) is interner.intern_table(table)


@given(tables())
def test_hash_dedup_equals_quadratic_dedup(table):
    fast = _kernel("DEDUP", [table], {})
    reference = deduplicate(table)
    assert fast.grid == reference.grid

    # Independent quadratic reference: keep the first of any identical
    # (row attribute, data row) pair, preserving order.
    kept, seen = [table.grid[0]], []
    for row in table.grid[1:]:
        if row not in seen:
            seen.append(row)
            kept.append(row)
    assert fast.grid == Table(kept).grid


@settings(max_examples=60)
@given(tables(max_height=4, max_width=3), tables(max_height=4, max_width=3),
       st.sampled_from(ATTRS), st.sampled_from(ATTRS))
def test_pushdown_equals_post_filter(rho, sigma, left, right):
    fused = _kernel("PRODUCTSELECT", [rho, sigma], {"left": left, "right": right})
    post = select(product(rho, sigma), left, right)
    assert fused.grid == post.grid
    assert product_select(rho, sigma, left, right).grid == post.grid


@settings(max_examples=60)
@given(tables(max_height=4, max_width=3), tables(max_height=4, max_width=3))
def test_difference_kernel_equals_subsumption_scan(rho, sigma):
    assert _kernel("DIFFERENCE", [rho, sigma], {}).grid == difference(rho, sigma).grid


@settings(max_examples=60)
@given(tables(max_height=4, max_width=3), tables(max_height=4, max_width=3))
def test_union_kernel_matches(rho, sigma):
    assert _kernel("UNION", [rho, sigma], {}).grid == union(rho, sigma).grid


@given(tables(), st.sampled_from(ATTRS), st.sampled_from(ATTRS))
def test_select_kernel_matches(table, left, right):
    assert (
        _kernel("SELECT", [table], {"left": left, "right": right}).grid
        == select(table, left, right).grid
    )


@given(tables(), st.sampled_from(ATTRS), st.sampled_from(ENTRIES))
def test_select_constant_kernel_matches(table, attr, value):
    assert (
        _kernel("SELECTCONST", [table], {"attr": attr, "value": value}).grid
        == select_constant(table, attr, value).grid
    )


@settings(max_examples=60)
@given(
    tables(),
    st.frozensets(st.sampled_from(ATTRS), max_size=3),
    st.frozensets(st.sampled_from(ATTRS), max_size=3),
)
def test_cleanup_kernel_matches(table, by, on):
    assert (
        _kernel("CLEANUP", [table], {"by": by, "on": on}).grid
        == cleanup(table, by, on).grid
    )


def test_dispatch_declines_unknown_ops_and_counts():
    backend = VectorEngine()
    table = Table([[Name("R"), Name("A")], [NULL, Value("x")]])
    assert backend.dispatch("GROUP", [table], {"by": frozenset(), "on": frozenset()}) is None
    produced = backend.dispatch("DEDUP", [table], {})
    assert produced is not None and produced.grid == deduplicate(table).grid
    assert backend.stats["fallbacks"] == 1
    assert backend.stats["kernel_calls"] == 1
    assert backend.stats["fallback:GROUP"] == 1
    assert backend.stats["kernel:DEDUP"] == 1


def test_dispatch_falls_back_under_lineage():
    from repro.obs.lineage import lineage

    backend = VectorEngine()
    table = Table([[Name("R"), Name("A")], [NULL, Value("x")]])
    with lineage():
        assert backend.dispatch("DEDUP", [table], {}) is None
    assert backend.stats["fallback:DEDUP"] == 1
