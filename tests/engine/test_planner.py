"""Planner fusion safety: fuse exactly the provable product/select pairs."""

from diffgen import check_case

from repro.algebra.programs.params import Star
from repro.algebra.programs.statements import Assignment, Program, While, assign
from repro.core import TabularDatabase
from repro.data.generators import random_database
from repro.engine import count_fusions, plan_program


def _pair(target="T", select_target=None, select_arg=None, left="A", right="B"):
    return [
        assign(target, "PRODUCT", "R", "S"),
        assign(select_target or target, "SELECT", select_arg or target,
               left=left, right=right),
    ]


def test_fuses_the_canonical_pair():
    program = Program(_pair())
    planned = plan_program(program)
    assert count_fusions(program) == 1
    assert len(planned.statements) == 1
    statement = planned.statements[0]
    assert statement.spec.name == "PRODUCTSELECT"
    assert [str(a) for a in statement.args] == ["R", "S"]


def test_fused_program_is_equivalent_on_both_backends():
    program = Program(_pair())
    for seed in range(10):
        db = random_database(3, seed=seed)
        assert check_case(program, db) is None
        assert plan_program(program).run(db) == program.run(db)


def test_wildcard_product_args_still_fuse():
    program = Program(
        [
            Assignment("T", "PRODUCT", [Star(1), "S"]),
            assign("T", "SELECT", "T", left="A", right="B"),
        ]
    )
    assert count_fusions(program) == 1
    for seed in range(5):
        db = random_database(3, seed=seed)
        assert check_case(program, db) is None


def test_no_fusion_when_select_has_wildcard_params():
    program = Program(
        [
            Assignment("T", "PRODUCT", [Star(1), "S"]),
            Assignment("T", "SELECT", ["T"], {"left": Star(1), "right": "B"}),
        ]
    )
    assert count_fusions(program) == 0


def test_no_fusion_when_targets_differ():
    assert count_fusions(Program(_pair(select_target="U"))) == 0
    assert count_fusions(Program(_pair(select_arg="U"))) == 0


def test_no_fusion_when_not_adjacent():
    first, second = _pair()
    program = Program([first, assign("X", "DEDUP", "R"), second])
    assert count_fusions(program) == 0


def test_no_fusion_for_wildcard_target():
    program = Program(
        [
            Assignment(Star(1), "PRODUCT", [Star(1), "S"]),
            Assignment(Star(1), "SELECT", [Star(1)], {"left": "A", "right": "B"}),
        ]
    )
    assert count_fusions(program) == 0


def test_fusion_inside_while_bodies():
    program = Program([While("R", Program(_pair()))])
    planned = plan_program(program)
    assert count_fusions(program) == 1
    body = planned.statements[0].body.statements
    assert len(body) == 1 and body[0].spec.name == "PRODUCTSELECT"


def test_plan_is_identity_without_fusable_pairs():
    program = Program([assign("X", "DEDUP", "R")])
    assert plan_program(program) is program


def test_empty_input_name_behaves_identically():
    # No table named Q: the product target becomes empty either way.
    program = Program(
        [
            assign("T", "PRODUCT", "Q", "S"),
            assign("T", "SELECT", "T", left="A", right="B"),
        ]
    )
    db = random_database(2, seed=7)
    assert check_case(program, db) is None
    assert plan_program(program).run(db) == program.run(db)


def test_compiled_joins_expose_fusable_pairs():
    """The FO+while compiler emits selects into their product's temp."""
    from repro.runtime.workloads import parse_workload

    _label, program, db = parse_workload("tc:8")
    assert count_fusions(program) >= 1
    assert check_case(program, db) is None
