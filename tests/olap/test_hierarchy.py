"""Unit tests for dimension hierarchies (multi-level roll-up)."""

import pytest

from repro.core import SchemaError, V
from repro.data import BASE_FACTS
from repro.olap import Cube, Hierarchy, agg_count, mapping_classifier


@pytest.fixture
def cube() -> Cube:
    return Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")


@pytest.fixture
def geography() -> Hierarchy:
    return Hierarchy(
        "Region",
        [
            (
                "Zone",
                mapping_classifier(
                    {
                        "east": "coastal",
                        "west": "coastal",
                        "north": "inland",
                        "south": "inland",
                    }
                ),
            ),
            ("Country", mapping_classifier({"coastal": "usa", "inland": "usa"})),
        ],
    )


class TestHierarchy:
    def test_level_names(self, geography):
        assert geography.level_names() == ("Zone", "Country")

    def test_rollup_to_first_level(self, cube, geography):
        zones = geography.rollup_to(cube, "Zone")
        assert zones.dims == ("Part", "Zone")
        assert zones[("nuts", "coastal")] == V(110)
        assert zones[("screws", "inland")] == V(110)

    def test_rollup_to_top_level(self, cube, geography):
        country = geography.rollup_to(cube, "Country")
        assert country.dims == ("Part", "Country")
        assert country[("nuts", "usa")] == V(150)
        assert country[("bolts", "usa")] == V(110)

    def test_rollup_preserves_grand_total(self, cube, geography):
        assert geography.rollup_to(cube, "Country").total() == cube.total()

    def test_alternative_aggregate(self, cube, geography):
        counts = geography.rollup_to(cube, "Country", agg_count)
        # counting counts-of-counts: 2 zones per (part, country) at the top
        assert counts[("nuts", "usa")] == V(2)

    def test_unknown_level(self, cube, geography):
        with pytest.raises(SchemaError):
            geography.rollup_to(cube, "Planet")

    def test_validation(self):
        with pytest.raises(SchemaError):
            Hierarchy("Region", [])
        with pytest.raises(SchemaError):
            Hierarchy("Region", [("Region", mapping_classifier({}))])
        with pytest.raises(SchemaError):
            Hierarchy(
                "Region",
                [("Z", mapping_classifier({})), ("Z", mapping_classifier({}))],
            )
