"""Unit tests for the Cube structure and core cube operations."""

import pytest

from repro.core import NULL, EvaluationError, SchemaError, V
from repro.data import BASE_FACTS
from repro.olap import Cube, agg_avg, agg_count, agg_max, agg_min, agg_sum


@pytest.fixture
def sales_cube() -> Cube:
    return Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")


class TestConstruction:
    def test_from_facts(self, sales_cube):
        assert sales_cube.dims == ("Part", "Region")
        assert len(sales_cube.cells) == 8
        assert sales_cube[("nuts", "east")] == V(50)
        assert sales_cube[("nuts", "north")] is NULL

    def test_coordinate_order_is_first_appearance(self, sales_cube):
        assert sales_cube.coords["Part"] == (V("nuts"), V("screws"), V("bolts"))
        assert sales_cube.coords["Region"] == (
            V("east"),
            V("west"),
            V("south"),
            V("north"),
        )

    def test_duplicate_facts_need_combiner(self):
        facts = [("a", "x", 1), ("a", "x", 2)]
        with pytest.raises(EvaluationError):
            Cube.from_facts(facts, ["D1", "D2"])
        combined = Cube.from_facts(facts, ["D1", "D2"], combine=agg_sum)
        assert combined[("a", "x")] == V(3)

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Cube.from_facts([("a", 1)], ["D1", "D2"])

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            Cube(["D", "D"], {"D": ["a"]}, {})

    def test_undeclared_coordinate_rejected(self):
        with pytest.raises(SchemaError):
            Cube(["D"], {"D": ["a"]}, {("b",): 1})

    def test_null_cells_dropped(self):
        cube = Cube(["D"], {"D": ["a", "b"]}, {("a",): 1, ("b",): None})
        assert len(cube.cells) == 1

    def test_density(self, sales_cube):
        assert sales_cube.density() == pytest.approx(8 / 12)

    def test_equality_and_hash(self, sales_cube):
        again = Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")
        assert again == sales_cube and hash(again) == hash(sales_cube)


class TestOperations:
    def test_slice(self, sales_cube):
        east = sales_cube.slice("Region", "east")
        assert east.dims == ("Part",)
        assert east[("nuts",)] == V(50)
        assert east[("screws",)] is NULL

    def test_slice_unknown_coordinate(self, sales_cube):
        with pytest.raises(SchemaError):
            sales_cube.slice("Region", "mars")

    def test_slice_to_zero_dims_forbidden(self):
        cube = Cube(["D"], {"D": ["a"]}, {("a",): 1})
        with pytest.raises(SchemaError):
            cube.slice("D", "a")

    def test_dice_keeps_dimensions(self, sales_cube):
        diced = sales_cube.dice({"Region": ["east", "west"]})
        assert diced.dims == sales_cube.dims
        assert diced.coords["Region"] == (V("east"), V("west"))
        assert len(diced.cells) == 4  # nuts/east, nuts/west, screws/west, bolts/east

    def test_dice_unknown_coordinate(self, sales_cube):
        with pytest.raises(SchemaError):
            sales_cube.dice({"Region": ["mars"]})

    def test_rollup_sum(self, sales_cube):
        per_part = sales_cube.rollup("Region")
        assert per_part[("nuts",)] == V(150)
        assert per_part[("screws",)] == V(160)
        assert per_part[("bolts",)] == V(110)

    def test_rollup_other_aggregates(self, sales_cube):
        per_part = sales_cube.rollup("Region", agg_max)
        assert per_part[("nuts",)] == V(60)
        counts = sales_cube.rollup("Region", agg_count)
        assert counts[("screws",)] == V(3)

    def test_total(self, sales_cube):
        assert sales_cube.total() == V(420)
        assert sales_cube.total(agg_min) == V(40)
        assert sales_cube.total(agg_avg).payload == pytest.approx(420 / 8)

    def test_rollup_then_slice_commutes_with_slice_then_total(self, sales_cube):
        east_total = sales_cube.rollup("Part")[("east",)]
        assert east_total == V(120)
        assert sales_cube.slice("Region", "east").total() == V(120)


class TestAggregates:
    def test_sum_skips_nulls(self):
        assert agg_sum([V(1), NULL, V(2)]) == V(3)

    def test_empty_is_null(self):
        assert agg_sum([NULL]) is NULL
        assert agg_min([]) is NULL

    def test_count_counts_applicable(self):
        assert agg_count([V(1), NULL, V("x")]) == V(2)

    def test_names_rejected(self):
        from repro.core import N

        with pytest.raises(EvaluationError):
            agg_sum([N("Part")])

    def test_non_numeric_rejected(self):
        with pytest.raises(EvaluationError):
            agg_sum([V("text")])
