"""OLAP bridge and summarization tests — Figure 1 end-to-end.

The paper claims the tabular model subsumes OLAP matrices; these tests
regenerate every representation of Figure 1 (bold and summary-extended)
from one cube.
"""

import pytest

from repro.core import NULL, N, SchemaError, V
from repro.data import (
    BASE_FACTS,
    figure4_top,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)
from repro.olap import (
    TOTAL,
    Cube,
    cube_operator,
    cube_to_database,
    cube_to_grouped_table,
    cube_to_matrix_table,
    cube_to_relation_table,
    database_with_totals,
    drilldown,
    grouped_with_totals,
    matrix_table_to_cube,
    matrix_with_totals,
    relation_table_to_cube,
    summary_relations,
)


@pytest.fixture
def cube() -> Cube:
    return Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")


class TestBridges:
    def test_relation_bridge(self, cube):
        assert cube_to_relation_table(cube, "Sales").equivalent(figure4_top())

    def test_grouped_bridge_is_salesinfo2(self, cube):
        grouped = cube_to_grouped_table(cube, "Part", "Region", "Sales")
        assert grouped.equivalent(sales_info2().tables[0])

    def test_matrix_bridge_is_salesinfo3(self, cube):
        matrix = cube_to_matrix_table(cube, "Region", "Part", "Sales")
        assert matrix.equivalent(sales_info3().tables[0])

    def test_split_bridge_is_salesinfo4(self, cube):
        per_region = cube_to_database(cube, "Region", "Sales")
        expected = sales_info4().tables
        assert len(per_region) == len(expected)
        assert all(any(t.equivalent(x) for x in expected) for t in per_region.tables)

    def test_relation_round_trip(self, cube):
        table = cube_to_relation_table(cube, "Sales")
        back = relation_table_to_cube(table, ["Part", "Region"], "Sold")
        assert back == cube

    def test_matrix_round_trip(self, cube):
        matrix = cube_to_matrix_table(cube, "Region", "Part", "Sales")
        back = matrix_table_to_cube(matrix, "Region", "Part", "Sold")
        assert back.cells == {
            (r, p): v for (p, r), v in cube.cells.items()
        }

    def test_matrix_bridge_dimension_check(self, cube):
        with pytest.raises(SchemaError):
            cube_to_matrix_table(cube, "Region", "Year")

    def test_grouped_bridge_dimension_check(self, cube):
        with pytest.raises(SchemaError):
            cube_to_grouped_table(cube, "Region", "Year")


class TestCubeOperator:
    def test_subtotals_match_figure(self, cube):
        extended = cube_operator(cube)
        assert extended[(TOTAL, V("east"))] == V(120)
        assert extended[(V("nuts"), TOTAL)] == V(150)
        assert extended[(TOTAL, TOTAL)] == V(420)

    def test_base_cells_preserved(self, cube):
        extended = cube_operator(cube)
        for key, value in cube.cells.items():
            assert extended[key] == value

    def test_total_coordinate_collision(self, cube):
        extended = cube_operator(cube)
        with pytest.raises(SchemaError):
            cube_operator(extended)

    def test_cell_count(self, cube):
        extended = cube_operator(cube)
        # 8 base + 3 part totals + 4 region totals + 1 grand total
        assert len(extended.cells) == 16


class TestDrilldown:
    def test_valid_drilldown(self, cube):
        coarse = cube.rollup("Region")
        assert drilldown(coarse, cube, "Region") == cube

    def test_inconsistent_drilldown_rejected(self, cube):
        coarse = cube.rollup("Region")
        tampered = Cube(
            cube.dims,
            cube.coords,
            {**cube.cells, (V("nuts"), V("east")): V(999)},
            cube.measure,
        )
        with pytest.raises(SchemaError):
            drilldown(coarse, tampered, "Region")

    def test_dimension_mismatch_rejected(self, cube):
        with pytest.raises(SchemaError):
            drilldown(cube.rollup("Region"), cube, "Part")


class TestSummaries:
    def test_summary_relations_match_salesinfo1(self, cube):
        summaries = summary_relations(cube)
        expected = sales_info1(with_summary=True)
        for name in ("TotalPartSales", "TotalRegionSales", "GrandTotal"):
            assert summaries.table(name).equivalent(expected.table(name)), name

    def test_grouped_with_totals_matches_salesinfo2(self, cube):
        table = grouped_with_totals(cube, "Part", "Region", "Sales")
        assert table.equivalent(sales_info2(with_summary=True).tables[0])

    def test_matrix_with_totals_matches_salesinfo3(self, cube):
        table = matrix_with_totals(cube, "Region", "Part", "Sales")
        assert table.equivalent(sales_info3(with_summary=True).tables[0])

    def test_database_with_totals_matches_salesinfo4(self, cube):
        db = database_with_totals(cube, "Region", "Sales")
        expected = sales_info4(with_summary=True).tables
        assert len(db) == len(expected) == 5
        assert all(any(t.equivalent(x) for x in expected) for t in db.tables)

    def test_summaries_only_on_2d(self):
        cube3 = Cube.from_facts(
            [("a", "x", 2020, 1)], ["D1", "D2", "Year"], measure="M"
        )
        with pytest.raises(SchemaError):
            summary_relations(cube3)
