"""Unit tests for classification and the spreadsheet analytics layer."""

import pytest

from repro.core import NULL, EvaluationError, N, SchemaError, V, make_table
from repro.data import BASE_FACTS
from repro.olap import (
    Cube,
    append_aggregate_column,
    append_aggregate_row,
    apply_external,
    block,
    block_aggregate,
    classify_column,
    classify_dimension,
    column_arithmetic,
    mapping_classifier,
    range_classifier,
    row_arithmetic,
)


@pytest.fixture
def cube() -> Cube:
    return Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")


class TestClassifiers:
    def test_mapping_classifier(self):
        classify = mapping_classifier({"east": "coastal", "west": "coastal", "north": "inland"})
        assert classify(V("east")) == V("coastal")
        assert classify(V("south")) is NULL  # unmapped -> default ⊥

    def test_mapping_classifier_default(self):
        classify = mapping_classifier({"east": "coastal"}, default="other")
        assert classify(V("north")) == V("other")

    def test_range_classifier(self):
        classify = range_classifier([50, 60], ["low", "mid", "high"])
        assert classify(V(40)) == V("low")
        assert classify(V(50)) == V("mid")
        assert classify(V(59)) == V("mid")
        assert classify(V(60)) == V("high")

    def test_range_classifier_non_numeric(self):
        classify = range_classifier([10], ["low", "high"])
        assert classify(V("text")) is NULL
        assert classify(NULL) is NULL

    def test_range_classifier_validation(self):
        with pytest.raises(SchemaError):
            range_classifier([1, 2], ["only", "two"])
        with pytest.raises(SchemaError):
            range_classifier([2, 1], ["a", "b", "c"])


class TestClassifyDimension:
    def test_zones(self, cube):
        zones = mapping_classifier(
            {"east": "coastal", "west": "coastal", "north": "inland", "south": "inland"}
        )
        zoned = classify_dimension(cube, "Region", zones, "Zone")
        assert zoned.dims == ("Part", "Zone")
        assert zoned[("nuts", "coastal")] == V(110)  # 50 + 60
        assert zoned[("screws", "inland")] == V(110)  # 60 + 50

    def test_unclassified_coordinates_drop(self, cube):
        partial = mapping_classifier({"east": "zoneA"})
        zoned = classify_dimension(cube, "Region", partial, "Zone")
        assert zoned.coords["Zone"] == (V("zoneA"),)
        assert zoned[("nuts", "zoneA")] == V(50)

    def test_name_collision(self, cube):
        with pytest.raises(SchemaError):
            classify_dimension(cube, "Region", mapping_classifier({}), "Part")


class TestClassifyColumn:
    def test_adds_class_column(self):
        t = make_table("R", ["Sold"], [(40,), (55,), (70,)])
        out = classify_column(t, "Sold", range_classifier([50, 60], ["low", "mid", "high"]), "Band")
        assert out.column_attributes == (N("Sold"), N("Band"))
        assert out.data_column(2) == (V("low"), V("mid"), V("high"))

    def test_requires_unique_column(self):
        t = make_table("R", ["A", "A"], [(1, 2)])
        with pytest.raises(EvaluationError):
            classify_column(t, "A", mapping_classifier({}), "C")


class TestBlocks:
    def test_whole_data_region(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        assert block_aggregate(t, "sum") == V(10)

    def test_sub_block(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        assert block_aggregate(t, "sum", rows=[1], cols=[2]) == V(2)
        assert block(t, rows=[2]) == [V(3), V(4)]

    def test_out_of_range(self):
        t = make_table("R", ["A"], [(1,)])
        with pytest.raises(SchemaError):
            block(t, rows=[0])
        with pytest.raises(SchemaError):
            block(t, cols=[5])

    def test_unknown_aggregate(self):
        t = make_table("R", ["A"], [(1,)])
        with pytest.raises(EvaluationError):
            block_aggregate(t, "median")


class TestArithmetic:
    def test_row_arithmetic(self):
        t = make_table("R", ["Price", "Qty"], [(10, 3), (5, None)])
        out = row_arithmetic(
            t, "Revenue", lambda p, q: p * q if None not in (p, q) else None, ["Price", "Qty"]
        )
        assert out.data_column(3) == (V(30), NULL)

    def test_row_arithmetic_needs_unique_sources(self):
        t = make_table("R", ["A", "A"], [(1, 2)])
        with pytest.raises(EvaluationError):
            row_arithmetic(t, "B", lambda a: a, ["A"])

    def test_column_arithmetic(self):
        t = make_table(
            "R", ["Q1", "Q2"], [(10, 20), (1, 2)], row_attrs=["gross", "costs"]
        )
        out = column_arithmetic(t, "net", lambda g, c: g - c, ["gross", "costs"])
        assert out.row(3) == (N("net"), V(9), V(18))

    def test_arithmetic_rejects_names(self):
        t = make_table("R", ["A"], [(N("Tag"),)])
        with pytest.raises(EvaluationError):
            row_arithmetic(t, "B", lambda a: a, ["A"])


class TestExternalFunctions:
    def test_apply_external(self):
        t = make_table("R", ["Sold"], [(50,), (None,)])
        out = apply_external(t, "Sold", lambda v: v * 2)
        assert out.data_column(1) == (V(100), NULL)

    def test_original_untouched(self):
        t = make_table("R", ["Sold"], [(50,)])
        apply_external(t, "Sold", lambda v: 0)
        assert t.entry(1, 1) == V(50)


class TestAggregateRowsColumns:
    def test_append_aggregate_row(self):
        t = make_table("R", ["A", "B"], [(1, 2), (3, 4)])
        out = append_aggregate_row(t, "sum")
        assert out.row(3) == (N("Total"), V(4), V(6))

    def test_append_aggregate_row_filtered(self):
        t = make_table("R", ["A", "B"], [(1, "x")])
        out = append_aggregate_row(t, "sum", attrs=["A"])
        assert out.row(2) == (N("Total"), V(1), NULL)

    def test_append_aggregate_column_filtered(self):
        t = make_table(
            "R", ["A", "A"], [(1, 2), ("hdr", "hdr")], row_attrs=[None, "Header"]
        )
        out = append_aggregate_column(t, "sum", "Sum", attrs=[None])
        assert out.data_column(3) == (V(3), NULL)
