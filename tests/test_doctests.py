"""Run the doctests embedded in the library's docstrings."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return sorted(out)


@pytest.mark.parametrize("module_name", _modules())
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
