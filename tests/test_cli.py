"""Tests for the ``python -m repro`` command-line entry point."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main


def run_cli(*args):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(args))
    return code, buffer.getvalue()


class TestCli:
    def test_check_passes(self):
        code, output = run_cli("check")
        assert code == 0
        assert "7/7 reproductions hold" in output
        assert "FAIL" not in output

    def test_default_command_is_check(self):
        code, _output = run_cli()
        assert code == 0

    def test_figures_prints_every_artifact(self):
        code, output = run_cli("figures")
        assert code == 0
        for marker in ("SalesInfo1", "SalesInfo4", "GROUP", "MERGE"):
            assert marker in output
        assert output.count("exactly: True") == 2

    def test_unknown_command(self):
        code, output = run_cli("frobnicate")
        assert code == 2
        assert "figures" in output


class TestTrace:
    def test_trace_default_example(self):
        code, output = run_cli("trace")
        assert code == 0
        assert "trace of fig4-group" in output
        assert "program" in output
        assert "GROUP" in output
        assert "rows 8→9" in output
        assert "Operation metrics" in output

    def test_trace_named_example(self):
        code, output = run_cli("trace", "fo-while")
        assert code == 0
        assert "trace of fo-while" in output
        assert "iterations=" in output
        assert "condition_rows=" in output

    def test_trace_json(self):
        import json

        code, output = run_cli("trace", "fig4-group", "--json")
        assert code == 0
        data = json.loads(output)
        assert set(data) == {"spans", "metrics"}
        assert data["spans"][0]["name"] == "program"
        assert data["metrics"]["operations"]["GROUP"]["calls"] == 1

    def test_trace_unknown_example_lists_bundled(self):
        code, output = run_cli("trace", "frobnicate")
        assert code == 2
        assert "unknown example" in output
        assert "fig4-group" in output
        assert "fig5-merge" in output


class TestStats:
    def test_stats_renders_metric_tables(self):
        code, output = run_cli("stats")
        assert code == 0
        assert "aggregated metrics over" in output
        assert "Operation metrics" in output
        assert "Counters" in output
        assert "GROUP" in output
        assert "Time ms" in output

    def test_stats_json(self):
        import json

        code, output = run_cli("stats", "--json")
        assert code == 0
        data = json.loads(output)
        assert set(data) == {"operations", "counters"}
        assert data["operations"]["GROUP"]["calls"] >= 1
        assert data["counters"]["programs"] >= 1
