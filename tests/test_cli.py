"""Tests for the ``python -m repro`` command-line entry point."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main


def run_cli(*args):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(args))
    return code, buffer.getvalue()


class TestCli:
    def test_check_passes(self):
        code, output = run_cli("check")
        assert code == 0
        assert "7/7 reproductions hold" in output
        assert "FAIL" not in output

    def test_default_command_is_check(self):
        code, _output = run_cli()
        assert code == 0

    def test_figures_prints_every_artifact(self):
        code, output = run_cli("figures")
        assert code == 0
        for marker in ("SalesInfo1", "SalesInfo4", "GROUP", "MERGE"):
            assert marker in output
        assert output.count("exactly: True") == 2

    def test_unknown_command(self):
        code, output = run_cli("frobnicate")
        assert code == 2
        assert "figures" in output
