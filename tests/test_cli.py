"""Tests for the ``python -m repro`` command-line entry point."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main


def run_cli(*args):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(args))
    return code, buffer.getvalue()


class TestCli:
    def test_check_passes(self):
        code, output = run_cli("check")
        assert code == 0
        assert "7/7 reproductions hold" in output
        assert "FAIL" not in output

    def test_bare_invocation_prints_the_command_listing(self):
        code, output = run_cli()
        assert code == 0
        assert "commands:" in output
        assert "exit codes:" in output

    def test_help_lists_every_command_and_exit_code(self):
        from repro.__main__ import COMMANDS, EXIT_CODES

        code, output = run_cli("--help")
        assert code == 0
        for name in COMMANDS:
            assert name in output
        for exit_code, meaning in EXIT_CODES:
            assert meaning in output
        assert {exit_code for exit_code, _ in EXIT_CODES} == {0, 1, 2, 3, 4}

    def test_every_command_has_a_handler_and_help(self):
        from repro.__main__ import COMMANDS

        for name, (handler, help_text) in COMMANDS.items():
            assert callable(handler), name
            assert help_text and len(help_text) < 80, name

    def test_figures_prints_every_artifact(self):
        code, output = run_cli("figures")
        assert code == 0
        for marker in ("SalesInfo1", "SalesInfo4", "GROUP", "MERGE"):
            assert marker in output
        assert output.count("exactly: True") == 2

    def test_unknown_command(self):
        code, output = run_cli("frobnicate")
        assert code == 2
        assert "figures" in output


class TestTrace:
    def test_trace_default_example(self):
        code, output = run_cli("trace")
        assert code == 0
        assert "trace of fig4-group" in output
        assert "program" in output
        assert "GROUP" in output
        assert "rows 8→9" in output
        assert "Operation metrics" in output

    def test_trace_named_example(self):
        code, output = run_cli("trace", "fo-while")
        assert code == 0
        assert "trace of fo-while" in output
        assert "iterations=" in output
        assert "condition_rows=" in output

    def test_trace_json(self):
        import json

        code, output = run_cli("trace", "fig4-group", "--json")
        assert code == 0
        data = json.loads(output)
        assert set(data) == {"spans", "metrics"}
        assert data["spans"][0]["name"] == "program"
        assert data["metrics"]["operations"]["GROUP"]["calls"] == 1

    def test_trace_unknown_example_lists_bundled(self):
        code, output = run_cli("trace", "frobnicate")
        assert code == 2
        assert "unknown example" in output
        assert "fig4-group" in output
        assert "fig5-merge" in output

    def test_trace_accepts_unique_prefixes(self):
        code, output = run_cli("trace", "fig5")
        assert code == 0
        assert "trace of fig5-merge" in output

    def test_trace_analyze_prints_estimated_vs_actual(self):
        code, output = run_cli("trace", "fig5", "--analyze")
        assert code == 0
        assert "EXPLAIN ANALYZE" in output
        assert "Est rows" in output
        assert "Act rows" in output
        assert "Row ratio" in output
        assert "Time ratio" in output
        assert "MERGE" in output

    def test_trace_analyze_json_carries_records(self):
        import json

        code, output = run_cli("trace", "pivot", "--json", "--analyze")
        assert code == 0
        data = json.loads(output)
        assert [r["op"] for r in data["analyze"]] == ["GROUP", "CLEANUP", "PURGE"]
        assert all("row_ratio" in r and "time_ratio" in r for r in data["analyze"])


class TestProfile:
    def test_profile_prints_hotspots(self):
        code, output = run_cli("profile", "fig5")
        assert code == 0
        assert "profile of fig5-merge" in output
        assert "by self time" in output
        assert "MERGE" in output
        assert "wall-time histogram" in output

    def test_profile_json(self):
        import json

        code, output = run_cli("profile", "fig4", "--json", "--no-memory")
        assert code == 0
        data = json.loads(output)
        assert data["total_ms"] > 0
        assert any(spot["name"] == "GROUP" for spot in data["hotspots"])

    def test_profile_exports_chrome_trace_and_jsonl(self, tmp_path):
        import json

        chrome = tmp_path / "trace.json"
        log = tmp_path / "log.jsonl"
        code, output = run_cli(
            "profile", "fig5", "--chrome-trace", str(chrome), "--log-json", str(log)
        )
        assert code == 0
        assert "chrome trace written" in output
        assert "JSON-lines log written" in output
        trace = json.loads(chrome.read_text())
        assert all(e["ph"] in {"X", "M"} for e in trace["traceEvents"])
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert records[-1]["type"] == "metrics"

    def test_profile_unknown_example(self):
        code, output = run_cli("profile", "frobnicate")
        assert code == 2
        assert "unknown example" in output


class TestBenchCompare:
    def write(self, path, medians, sha="abc"):
        from repro.obs.regress import update_trajectory

        update_trajectory(path, medians, sha=sha, recorded="2026-01-01T00:00:00+00:00")

    def test_pass_exits_zero(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        self.write(base, {"fig4/group": 1.0})
        self.write(cur, {"fig4/group": 1.1})
        code, output = run_cli("bench-compare", str(base), str(cur))
        assert code == 0
        assert "no regressions" in output

    def test_regression_exits_one(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        self.write(base, {"fig4/group": 1.0})
        self.write(cur, {"fig4/group": 2.0})
        code, output = run_cli("bench-compare", str(base), str(cur), "--tolerance", "1.5")
        assert code == 1
        assert "REGRESSED" in output

    def test_usage_error(self):
        code, output = run_cli("bench-compare", "only-one.json")
        assert code == 2
        assert "usage" in output

    def test_bad_tolerance(self, tmp_path):
        code, output = run_cli(
            "bench-compare", "a.json", "b.json", "--tolerance", "fast"
        )
        assert code == 2
        assert "invalid tolerance" in output

    def test_missing_trajectory_exits_three(self, tmp_path):
        """Exit 3 = the gate never ran, distinct from 1 (regression)."""
        base = tmp_path / "base.json"
        self.write(base, {"fig4/group": 1.0})
        code, output = run_cli(
            "bench-compare", str(base), str(tmp_path / "nope.json")
        )
        assert code == 3
        assert "cannot read current trajectory" in output

    def test_unparseable_trajectory_exits_three(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        self.write(base, {"fig4/group": 1.0})
        cur.write_text("{ this is not json")
        code, output = run_cli("bench-compare", str(base), str(cur))
        assert code == 3
        assert "not valid JSON" in output

    def test_malformed_trajectory_exits_three(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        self.write(base, {"fig4/group": 1.0})
        cur.write_text('{"format": 1}')  # no "benchmarks" mapping
        code, output = run_cli("bench-compare", str(base), str(cur))
        assert code == 3
        assert "malformed" in output


class TestStats:
    def test_stats_renders_metric_tables(self):
        code, output = run_cli("stats")
        assert code == 0
        assert "aggregated metrics over" in output
        assert "Operation metrics" in output
        assert "Counters" in output
        assert "GROUP" in output
        assert "Time ms" in output

    def test_stats_json(self):
        import json

        code, output = run_cli("stats", "--json")
        assert code == 0
        data = json.loads(output)
        assert set(data) == {"operations", "counters"}
        assert data["operations"]["GROUP"]["calls"] >= 1
        assert data["counters"]["programs"] >= 1


class TestLineageCli:
    def test_default_example_prints_witness_and_explain(self):
        code, output = run_cli("lineage")
        assert code == 0
        assert "lineage of fig4-group" in output
        assert "witness replay: regenerated" in output
        assert "provenance-annotated EXPLAIN" in output
        assert "prov_cells" in output

    def test_cell_query_names_the_origin(self):
        code, output = run_cli("lineage", "fig4", "--cell", "Sales[2,2]")
        assert code == 0
        assert "Sales[1,3]" in output  # the un-pivoted Sold cell
        assert "witness replay: regenerated" in output

    def test_malformed_cell(self):
        code, output = run_cli("lineage", "fig4", "--cell", "Sales[2;2]")
        assert code == 2
        assert "malformed --cell" in output

    def test_unknown_output_table(self):
        code, output = run_cli("lineage", "fig4", "--cell", "Nope[1,1]")
        assert code == 2
        assert "no output table 'Nope'" in output
        assert "Sales" in output  # the valid labels are listed

    def test_cell_out_of_range(self):
        code, output = run_cli("lineage", "fig4", "--cell", "Sales[99,1]")
        assert code == 2
        assert "outside" in output

    def test_olap_is_not_lineage_capable(self):
        code, output = run_cli("lineage", "olap")
        assert code == 2
        assert "not lineage-capable" in output
        assert "fig4-group" in output  # capable alternatives are listed

    def test_single_example_audit(self):
        code, output = run_cli("lineage", "fig4", "--audit")
        assert code == 0
        assert "audit of fig4-group" in output
        assert "regenerated" in output

    def test_full_audit_with_graph_exports(self, tmp_path):
        import json

        dot = tmp_path / "prov.dot"
        graph = tmp_path / "prov.json"
        code, output = run_cli(
            "lineage", "--audit", "--dot", str(dot), "--graph-json", str(graph)
        )
        assert code == 0
        assert "examples fully constructive" in output
        assert "FAIL" not in output
        assert dot.read_text().startswith("digraph")
        data = json.loads(graph.read_text())
        assert {g["name"] for g in data["graphs"]} >= {"fig4-group", "fo-while"}

    def test_unknown_example_suggests_close_names(self):
        code, output = run_cli("lineage", "figg5")
        assert code == 2
        assert "unknown example" in output
        assert "did you mean" in output
        assert "fig5-merge" in output

    def test_ambiguous_prefix_lists_matches(self):
        code, output = run_cli("lineage", "fig")
        assert code == 2
        assert "ambiguous example name" in output
        assert "fig4-group" in output and "fig5-merge" in output


class TestRun:
    def test_run_workload_to_completion(self):
        code, output = run_cli("run", "tc:5")
        assert code == 0
        assert "tc:5: finished after 1 attempt(s)" in output
        assert "governor" in output

    def test_run_bundled_example(self):
        code, output = run_cli("run", "fig4-group", "--verify")
        assert code == 0
        assert "identical to ungoverned run" in output

    def test_run_budget_kill_exits_nonzero(self):
        code, output = run_cli("run", "tc:6", "--max-rows", "10")
        assert code == 1
        assert "killed" in output
        assert "kind=total_rows" in output

    def test_run_deadline_retry_verify(self, tmp_path):
        """The headline robustness scenario, end to end through the CLI:
        a 50ms deadline kills the fixpoint; checkpointed retries resume
        it; the final database matches the ungoverned run."""
        ck = tmp_path / "ck.json"
        code, output = run_cli(
            "run", "tc:8", "--deadline", "50",
            "--checkpoint", str(ck), "--retry", "100", "--verify",
        )
        assert code == 0
        # --retry now routes through the supervisor, which reports the
        # attempt/kill totals instead of streaming per-attempt lines
        assert "budget kill(s)" in output
        assert "finished after" in output and "attempt(s)" in output
        assert "verify: identical to ungoverned run" in output

    def test_run_json_output(self):
        import json

        code, output = run_cli("run", "tc:4", "--json")
        assert code == 0
        data = json.loads(output)
        assert data["workload"] == "tc:4"
        assert data["finished"] is True
        assert data["governor"]["ops_dispatched"] > 0

    def test_run_usage_errors(self):
        code, output = run_cli("run", "tc:notanumber")
        assert code == 2
        code, output = run_cli("run", "tc:4", "--resume")
        assert code == 2
        assert "--resume requires --checkpoint" in output
        code, output = run_cli("run", "tc:4", "--deadline", "fast")
        assert code == 2
        assert "expected an integer" in output

    def test_run_rejects_non_program_examples(self):
        code, output = run_cli("run", "olap")
        assert code == 2
        assert "cannot run under the hardened runtime" in output


class TestRunEventFlags:
    def test_progress_streams_ticker_lines(self):
        code, output = run_cli("run", "tc:6", "--max-rows", "60", "--progress")
        assert code == 1
        assert "run: " in output
        assert "iter 1" in output and "frontier" in output
        assert "rows" in output and "/60]" in output
        assert "KILLED: total_rows" in output

    def test_events_flag_streams_jsonl(self, tmp_path):
        import json

        events = tmp_path / "events.jsonl"
        code, _output = run_cli("run", "tc:4", "--events", str(events))
        assert code == 0
        decoded = [json.loads(line) for line in events.read_text().splitlines()]
        assert decoded[0]["kind"] == "run_start"
        assert decoded[-1]["kind"] == "run_finish"
        kinds = {record["kind"] for record in decoded}
        assert {"span_start", "span_finish", "while_iteration"} <= kinds

    def test_flight_dir_dumps_postmortem_on_kill(self, tmp_path):
        import json

        flight = tmp_path / "flight"
        code, output = run_cli(
            "run", "tc:6", "--max-rows", "60",
            "--checkpoint", str(tmp_path / "ck.json"),
            "--flight-dir", str(flight),
        )
        assert code == 1
        assert "postmortem bundle written to" in output
        bundles = sorted(flight.iterdir())
        assert len(bundles) == 1
        manifest = json.loads((bundles[0] / "MANIFEST.json").read_text())
        assert manifest["error"]["type"] == "BudgetExceededError"
        assert manifest["checkpoint"] == str(tmp_path / "ck.json")
        assert (bundles[0] / "events.jsonl").exists()
        assert "while" in (bundles[0] / "plan.txt").read_text()

    def test_flight_dir_json_summary_carries_the_bundle(self, tmp_path):
        import json

        flight = tmp_path / "flight"
        code, output = run_cli(
            "run", "tc:6", "--max-rows", "60",
            "--flight-dir", str(flight), "--json",
        )
        assert code == 1
        data = json.loads(output)
        assert data["finished"] is False
        assert data["postmortem"].startswith(str(flight))

    def test_clean_run_with_flight_dir_writes_nothing(self, tmp_path):
        flight = tmp_path / "flight"
        code, _output = run_cli("run", "tc:4", "--flight-dir", str(flight))
        assert code == 0
        assert not flight.exists()

    def test_retried_run_only_dumps_after_the_last_attempt(self, tmp_path):
        flight = tmp_path / "flight"
        code, output = run_cli(
            "run", "tc:8", "--deadline", "50",
            "--checkpoint", str(tmp_path / "ck.json"), "--retry", "100",
            "--flight-dir", str(flight),
        )
        assert code == 0
        assert "finished after" in output
        assert not flight.exists()  # the run recovered: no postmortem


class TestMetrics:
    def test_metrics_json_snapshot(self):
        import json

        code, output = run_cli("metrics")
        assert code == 0
        data = json.loads(output)
        assert data["operations"]["GROUP"]["calls"] >= 1
        assert "hist" in data["operations"]["GROUP"]

    def test_metrics_prom_is_lintable_text(self):
        from repro.obs import lint_prometheus_text

        code, output = run_cli("metrics", "--prom")
        assert code == 0
        assert "# TYPE repro_op_calls_total counter" in output
        assert "# TYPE repro_op_duration_seconds histogram" in output
        assert 'le="+Inf"' in output
        assert lint_prometheus_text(output) == []

    def test_metrics_prom_estimates_adds_estimator_families(self, tmp_path):
        from repro.obs import lint_prometheus_text

        stats_path = tmp_path / "stats.json"
        code, _output = run_cli("analyze", "tc:6", "--out", str(stats_path))
        assert code == 0
        code, output = run_cli(
            "metrics", "--prom", "--estimates", "--stats", str(stats_path)
        )
        assert code == 0
        assert "# TYPE repro_estimator_qerror histogram" in output
        assert "# TYPE repro_estimator_worst_qerror gauge" in output
        assert "# TYPE repro_stats_age_seconds gauge" in output
        assert 'repro_estimator_estimates_total{source="stats"}' in output
        assert lint_prometheus_text(output) == []

    def test_metrics_prom_without_optins_is_unchanged(self):
        code, output = run_cli("metrics", "--prom")
        assert code == 0
        assert "estimator" not in output

    def test_metrics_bad_stats_path_exits_two(self, tmp_path):
        code, output = run_cli(
            "metrics", "--prom", "--stats", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert "error:" in output


class TestAnalyze:
    def test_analyze_workload_summary(self):
        code, output = run_cli("analyze", "tc:6")
        assert code == 0
        assert "ANALYZE of tc:6" in output
        assert "vector engine" in output
        assert "ndv" in output

    def test_analyze_example_naive(self):
        code, output = run_cli("analyze", "fig4-group", "--engine", "naive")
        assert code == 0
        assert "naive engine" in output
        assert "Sales: 8 rows x 3 cols" in output

    def test_analyze_json_is_schema_valid(self):
        import json

        from repro.obs.stats import validate_stats_data

        code, output = run_cli("analyze", "fig4-group", "--json")
        assert code == 0
        assert validate_stats_data(json.loads(output)) == []

    def test_analyze_out_writes_loadable_snapshot(self, tmp_path):
        from repro.obs.stats import load_stats

        path = tmp_path / "nested" / "stats.json"
        code, output = run_cli("analyze", "tc:6", "--out", str(path))
        assert code == 0
        assert str(path) in output
        stats = load_stats(path)
        assert stats.total_rows == 5

    def test_analyze_top_k(self):
        import json

        code, output = run_cli("analyze", "fig4-group", "--top-k", "2", "--json")
        assert code == 0
        data = json.loads(output)
        assert data["top_k"] == 2
        assert all(
            len(c["top"]) <= 2
            for t in data["tables"]
            for c in t["columns"]
        )

    def test_analyze_bad_engine_exits_two(self):
        code, output = run_cli("analyze", "tc:6", "--engine", "gpu")
        assert code == 2
        assert "invalid --engine" in output

    def test_analyze_non_program_example_exits_two(self):
        code, output = run_cli("analyze", "olap")
        assert code == 2
        assert "error" in output


class TestStatsAudit:
    def test_audit_report_covers_dispatched_ops(self, tmp_path):
        import json

        out = tmp_path / "qerror.json"
        code, output = run_cli(
            "stats-audit", "--seeds", "12", "--out", str(out)
        )
        assert code == 0
        assert "coverage: complete" in output
        assert "overall q-error" in output
        report = json.loads(out.read_text())
        assert report["coverage"]["complete"] is True
        assert report["overall"]["estimates"] > 0
        assert report["ops"]

    def test_audit_json_mode(self):
        import json

        code, output = run_cli("stats-audit", "--seeds", "2", "--tc", "4", "--json")
        data = json.loads(output)
        assert data["version"] == 1
        assert data["corpus"]["fuzz_seeds"] == 2
        assert code == (0 if data["coverage"]["complete"] else 1)

    def test_audit_bad_seeds_exits_two(self):
        code, output = run_cli("stats-audit", "--seeds", "many")
        assert code == 2
        assert "invalid --seeds" in output

    def test_audit_bad_engine_exits_two(self):
        code, output = run_cli("stats-audit", "--engine", "gpu")
        assert code == 2
        assert "invalid --engine" in output


class TestStatsFlags:
    def test_trace_analyze_with_stats_shows_source(self, tmp_path):
        stats_path = tmp_path / "stats.json"
        code, _output = run_cli("analyze", "fig4-group", "--out", str(stats_path))
        assert code == 0
        code, output = run_cli(
            "trace", "fig4-group", "--analyze", "--stats", str(stats_path)
        )
        assert code == 0
        assert "est_rows=9 (stats)" in output
        assert "| Src" in output  # the attribution column appears

    def test_trace_without_stats_has_no_source_column(self):
        code, output = run_cli("trace", "fig4-group", "--analyze")
        assert code == 0
        assert "| Src" not in output

    def test_trace_bad_stats_path_exits_two(self, tmp_path):
        code, output = run_cli(
            "trace", "fig4-group", "--stats", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert "error:" in output

    def test_run_with_stats_emits_op_estimates(self, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        code, _output = run_cli("analyze", "tc:6", "--out", str(stats_path))
        assert code == 0
        events_path = tmp_path / "events.jsonl"
        code, _output = run_cli(
            "run", "tc:6",
            "--stats", str(stats_path),
            "--events", str(events_path),
        )
        assert code == 0
        kinds = [
            json.loads(line)["kind"]
            for line in events_path.read_text().splitlines()
        ]
        assert "op_estimate" in kinds

    def test_run_bad_stats_path_exits_two(self, tmp_path):
        code, output = run_cli(
            "run", "tc:6", "--stats", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert "error:" in output


class TestPromLint:
    def test_clean_payload_exits_zero(self, tmp_path):
        path = tmp_path / "metrics.prom"
        path.write_text("# TYPE x counter\nx 1\n")
        code, output = run_cli("prom-lint", str(path))
        assert code == 0
        assert "ok: 1 sample(s)" in output

    def test_broken_payload_exits_one(self, tmp_path):
        path = tmp_path / "metrics.prom"
        path.write_text("orphan_sample 5\n")
        code, output = run_cli("prom-lint", str(path))
        assert code == 1
        assert "prom-lint:" in output and "no TYPE declaration" in output

    def test_unreadable_file_exits_two(self, tmp_path):
        code, output = run_cli("prom-lint", str(tmp_path / "missing.prom"))
        assert code == 2
        assert "cannot read" in output


class TestEngineReport:
    def test_default_corpus_fully_attributed(self):
        code, output = run_cli("engine-report")
        assert code == 0
        assert "ENGINE REPORT" in output
        assert "corpus:" in output and "tc:8" in output
        assert "(100%)" in output

    def test_json_report(self):
        import json

        code, output = run_cli("engine-report", "tc:6", "--json")
        assert code == 0
        data = json.loads(output)
        assert data["coverage"] == 1.0
        assert data["attributed"] == data["fallbacks"]
        assert data["corpus"] == ["tc:6"]
        assert data["kernel_calls"] > 0

    def test_explicit_example_spec(self):
        code, output = run_cli("engine-report", "fig4-group")
        assert code == 0
        assert "no_kernel" in output  # GROUP has no vector kernel

    def test_non_program_example_rejected(self):
        code, output = run_cli("engine-report", "olap")
        assert code == 2
        assert "cannot report" in output


class TestChaos:
    def test_chaos_single_example_matrix(self):
        code, output = run_cli("chaos", "fig4-group", "--seed", "3")
        assert code == 0
        assert "GROUP" in output
        assert "raise" in output and "delay" in output and "corrupt" in output
        assert "injection points surfaced as typed errors" in output
        assert "seed=3" in output
        assert "FAIL" not in output

    def test_chaos_kind_filter_and_json(self):
        import json

        code, output = run_cli("chaos", "fig4-group", "--kinds", "raise", "--json")
        assert code == 0
        data = json.loads(output)
        assert data["ok"] is True
        assert all(p["kind"] == "raise" for p in data["points"])
        assert all(p["typed"] and p["atomic"] for p in data["points"])

    def test_chaos_unknown_kind(self):
        code, output = run_cli("chaos", "--kinds", "meteor")
        assert code == 2
        assert "unknown fault kind" in output

    def test_chaos_unknown_example(self):
        code, output = run_cli("chaos", "not-an-example")
        assert code == 2


class TestLedgerCommands:
    """``run --ledger`` + ``history``/``replay``/``sentinel`` end to end."""

    def _ledgered_run(self, tmp_path, *extra):
        led = str(tmp_path / "led")
        code, output = run_cli("run", "tc:4", "--ledger", led, "--json", *extra)
        import json

        return code, json.loads(output), led

    def test_run_records_and_history_lists(self, tmp_path):
        code, summary, led = self._ledgered_run(tmp_path)
        assert code == 0
        assert summary["run_id"].startswith("r-")
        assert summary["ledger"] == led
        code, output = run_cli("history", "--ledger", led)
        assert code == 0
        assert summary["run_id"] in output
        assert "ok" in output

    def test_history_inspects_one_manifest(self, tmp_path):
        import json

        _code, summary, led = self._ledgered_run(tmp_path)
        code, output = run_cli("history", summary["run_id"], "--ledger", led)
        assert code == 0
        manifest = json.loads(output)
        assert manifest["run_id"] == summary["run_id"]
        assert manifest["workload"]["replayable"] is True
        assert manifest["result"]["sha256"]

    def test_history_aggregates(self, tmp_path):
        _code, _summary, led = self._ledgered_run(tmp_path)
        self._ledgered_run(tmp_path)
        code, output = run_cli("history", "--ledger", led, "--aggregates")
        assert code == 0
        assert "2 run(s)" in output

    def test_killed_run_recorded_with_outcome(self, tmp_path):
        led = str(tmp_path / "led")
        checkpoint = str(tmp_path / "run.ckpt")
        code, _output = run_cli(
            "run", "tc:8", "--ledger", led, "--deadline", "1",
            "--checkpoint", checkpoint,
        )
        assert code == 1
        code, output = run_cli("history", "--ledger", led, "--outcome", "killed")
        assert code == 0
        assert "killed" in output

    def test_replay_clean_run_exits_zero(self, tmp_path):
        _code, summary, led = self._ledgered_run(tmp_path)
        code, output = run_cli("replay", summary["run_id"], "--ledger", led)
        assert code == 0
        assert "identical" in output

    def test_replay_divergence_exits_nonzero(self, tmp_path):
        """The CI golden: an injected fault must flip the exit status."""
        _code, summary, led = self._ledgered_run(tmp_path)
        code, output = run_cli(
            "replay", summary["run_id"], "--ledger", led, "--inject-fault", "7",
        )
        assert code == 1
        assert "DIVERGED" in output
        assert "replay_error" in output

    def test_replay_missing_ledger_exits_three(self, tmp_path):
        code, output = run_cli(
            "replay", "r-nope", "--ledger", str(tmp_path / "void")
        )
        assert code == 3
        assert "no ledger at" in output

    def test_replay_unknown_run_exits_three(self, tmp_path):
        _code, _summary, led = self._ledgered_run(tmp_path)
        code, output = run_cli("replay", "r-nope", "--ledger", led)
        assert code == 3
        assert "no run" in output

    def test_replay_without_target_is_usage_error(self):
        code, output = run_cli("replay")
        assert code == 2
        assert "usage" in output

    def test_replay_accepts_a_flight_bundle(self, tmp_path):
        import json
        from pathlib import Path

        led = str(tmp_path / "led")
        flight = tmp_path / "flight"
        checkpoint = str(tmp_path / "bundle.ckpt")
        code, _output = run_cli(
            "run", "tc:8", "--ledger", led, "--flight-dir", str(flight),
            "--deadline", "1", "--checkpoint", checkpoint,
        )
        assert code == 1
        (bundle,) = flight.glob("postmortem-*")
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["run"]["ledger"] == led
        # A killed run has no result digest: the bundle resolves to its
        # run id, which then reports non-replayable (exit 3), proving
        # the pointer was followed.
        code, output = run_cli("replay", str(bundle))
        assert code == 3
        assert manifest["run"]["id"] in output

    def test_sentinel_without_history_exits_three(self, tmp_path):
        _code, _summary, led = self._ledgered_run(tmp_path)
        code, output = run_cli("sentinel", "--ledger", led)
        assert code == 3
        assert "0 judged" in output

    def test_sentinel_clean_and_drifted(self, tmp_path):
        import json

        from repro.obs.ledger import RunLedger, new_run_id

        led = tmp_path / "led"
        ledger = RunLedger(led)
        for elapsed in (10.0, 10.0, 10.0, 10.0, 11.0, 10.0):
            ledger.record({
                "run_id": new_run_id(),
                "workload": {"label": "tc:6"},
                "program": {"fingerprint": "a" * 16},
                "outcome": {"status": "ok"},
                "elapsed_ms": elapsed,
                "spans": {}, "estimates": {}, "fallbacks": {}, "events": {},
            })
        code, output = run_cli("sentinel", "--ledger", str(led), "--window", "3")
        assert code == 0
        assert "no drift detected" in output
        for _ in range(3):
            ledger.record({
                "run_id": new_run_id(),
                "workload": {"label": "tc:6"},
                "program": {"fingerprint": "a" * 16},
                "outcome": {"status": "ok"},
                "elapsed_ms": 60.0,
                "spans": {}, "estimates": {}, "fallbacks": {}, "events": {},
            })
        code, output = run_cli(
            "sentinel", "--ledger", str(led), "--window", "3", "--json"
        )
        assert code == 4
        data = json.loads(output)
        assert data["ok"] is False
        assert data["findings"]

    def test_trace_ledger_records_non_replayable_run(self, tmp_path):
        import json

        led = str(tmp_path / "led")
        code, output = run_cli("trace", "fig4-group", "--ledger", led)
        assert code == 0
        assert "recorded in ledger" in output
        code, output = run_cli("history", "--ledger", led, "--json")
        assert code == 0
        (row,) = json.loads(output)
        assert row["workload"] == "fig4-group"
        run_id = row["run_id"]
        code, output = run_cli("replay", run_id, "--ledger", led)
        assert code == 3
        assert "without a replayable" in output

    def test_metrics_surfaces_event_counters(self):
        import json

        code, output = run_cli("metrics")
        assert code == 0
        events = json.loads(output)["events"]
        assert events["published"] > 0
        assert events["rings"] == 1
        assert events["received"] > 0

    def test_prom_export_carries_event_families(self):
        code, output = run_cli("metrics", "--prom")
        assert code == 0
        assert "repro_events_published_total" in output
        assert "repro_events_ring_dropped_total" in output
        from repro.obs import lint_prometheus_text

        assert lint_prometheus_text(output) == []


class TestOptimizeCommand:
    """``repro optimize``: golden plans, the stats-driven order pair."""

    def _json(self, *args):
        import json

        code, output = run_cli("optimize", *args, "--json")
        assert code == 0, output
        return json.loads(output)

    def test_golden_plan_chain_with_stats(self):
        report = self._json("chain:3", "--analyze")
        assert report["workload"] == "chain:3"
        assert [r["rule"] for r in report["applied"]] == [
            "fuse-product-select",
            "join-reorder",
        ]
        (decision,) = report["decisions"]
        assert decision["outcome"] == "reordered"
        assert decision["order_names"] == ["A", "D", "B", "C"]
        assert decision["cost_chosen"] < decision["cost_syntactic"]
        (after,) = report["after"]
        assert after.startswith("T <- CHAINJOIN order [A, D, B, C]")
        assert len(report["before"]) == 5

    def test_golden_pair_stats_absence_changes_the_order(self):
        # The estimator is load-bearing: the same program with no stats
        # keeps the syntactic order and never builds a CHAINJOIN.
        report = self._json("chain:3")
        assert report["stats"] is None
        (decision,) = report["decisions"]
        assert decision["outcome"] == "stats-missing"
        assert decision["order"] == [0, 1, 2, 3]
        assert [r["rule"] for r in report["applied"]] == ["fuse-product-select"]
        assert not any("CHAINJOIN" in line for line in report["after"])

    def test_golden_plan_tc_workload(self):
        report = self._json("tc:6", "--analyze")
        assert report["workload"] == "tc:6"
        rules = [r["rule"] for r in report["applied"]]
        assert "fuse-product-select" in rules and "cse" in rules
        assert report["before"] and report["after"]

    def test_golden_plan_figure_example_is_already_optimal(self):
        report = self._json("fig4-group", "--analyze")
        assert report["workload"] == "fig4-group"
        assert report["applied"] == []
        assert report["before"] == report["after"]

    def test_verify_confirms_identical_database(self):
        code, output = run_cli("optimize", "chain:4", "--analyze", "--verify")
        assert code == 0
        assert "identical" in output

    def test_explain_shows_chainjoin_span_with_order(self):
        code, output = run_cli("optimize", "chain:3", "--analyze", "--explain")
        assert code == 0
        assert "CHAINJOIN" in output
        assert "order=['A', 'D', 'B', 'C']" in output
        assert "rules=['join-reorder']" in output

    def test_rules_flag_restricts_the_set(self):
        report = self._json("chain:3", "--analyze", "--rules", "cse")
        assert report["rules"] == ["cse"]
        assert report["applied"] == []

    def test_unknown_rule_exits_two(self):
        code, output = run_cli("optimize", "chain:3", "--rules", "warp-speed")
        assert code == 2
        assert "warp-speed" in output

    def test_non_program_example_exits_two(self):
        code, output = run_cli("optimize", "olap")
        assert code == 2
        assert "error" in output

    def test_stats_file_round_trip(self, tmp_path):
        stats_path = tmp_path / "chain-stats.json"
        code, _ = run_cli("analyze", "chain:3", "--out", str(stats_path))
        assert code == 0
        report = self._json("chain:3", "--stats", str(stats_path))
        (decision,) = report["decisions"]
        assert decision["outcome"] == "reordered"

    def test_metrics_optimizer_families(self):
        code, output = run_cli("metrics", "--optimizer", "--prom")
        assert code == 0
        assert 'repro_optimizer_plan_cache_total{result="hit"} 1' in output
        assert 'repro_optimizer_ordering_total{outcome="reordered"}' in output
        assert 'repro_optimizer_ordering_total{outcome="stats-missing"}' in output
        from repro.obs import lint_prometheus_text

        assert lint_prometheus_text(output) == []

    def test_run_optimize_flag_verifies(self, tmp_path):
        stats_path = tmp_path / "stats.json"
        code, _ = run_cli("analyze", "chain:4", "--out", str(stats_path))
        assert code == 0
        code, output = run_cli(
            "run", "chain:4", "--stats", str(stats_path), "--optimize", "--verify"
        )
        assert code == 0
        assert "identical" in output

    def test_optimized_ledgered_run_replays_identically(self, tmp_path):
        # The manifest records the rules + stats snapshot the plan was
        # chosen from, so replay re-derives the same rewritten plan
        # instead of diverging on the program fingerprint.
        import json as _json

        stats_path = tmp_path / "stats.json"
        code, _ = run_cli("analyze", "chain:4", "--out", str(stats_path))
        assert code == 0
        ledger = str(tmp_path / "ledger")
        code, output = run_cli(
            "run", "chain:4", "--stats", str(stats_path), "--optimize",
            "--ledger", ledger, "--json",
        )
        assert code == 0
        run_id = _json.loads(output)["run_id"]
        code, output = run_cli("replay", run_id, "--ledger", ledger)
        assert code == 0
        assert "identical" in output


class TestSupervisorCommands:
    """``run --retry``, ``supervise``, ``recover``, ``chaos --supervisor``."""

    FAULT = '{"seed": 0, "rules": [{"op": "DIFFERENCE", "kind": "raise"}]}'

    def test_run_retry_requires_a_checkpoint(self, tmp_path):
        for n in ("0", "2"):
            code, output = run_cli("run", "tc:4", "--retry", n)
            assert code == 2
            assert "--retry requires --checkpoint" in output

    def test_run_negative_retry_is_a_usage_error(self, tmp_path):
        code, output = run_cli(
            "run", "tc:4", "--retry", "-1",
            "--checkpoint", str(tmp_path / "ck.json"),
        )
        assert code == 2

    def test_run_retry_converges_past_a_deadline(self, tmp_path):
        """The acceptance scenario: tc:10 under a 50ms deadline converges
        through supervised resume attempts to the verified database."""
        import json

        code, output = run_cli(
            "run", "tc:10", "--deadline", "50",
            "--checkpoint", str(tmp_path / "ck.json"),
            "--retry", "200", "--verify", "--json",
        )
        assert code == 0
        summary = json.loads(output)
        block = summary["supervisor"]
        assert block["outcome"] == "ok"
        assert len(block["attempts"]) > 1
        assert summary["identical_to_ungoverned_run"] is True

    def test_supervise_retries_an_injected_fault(self, tmp_path):
        import json

        code, output = run_cli(
            "supervise", "tc:6", "--faults", self.FAULT,
            "--retry", "2", "--backoff", "0", "--json",
        )
        assert code == 0
        history = json.loads(output)
        assert history["outcome"] == "ok"
        assert [a["decision"] for a in history["attempts"]] == ["retry", None]

    def test_supervise_text_output_names_each_attempt(self):
        code, output = run_cli(
            "supervise", "tc:6", "--faults", self.FAULT,
            "--retry", "2", "--backoff", "0", "--verify",
        )
        assert code == 0
        assert "ok after 2 attempt(s)" in output
        assert "attempt 1" in output and "FaultInjectedError" in output
        assert "verify: identical to ungoverned run" in output

    def test_supervise_exhaustion_exits_one(self):
        code, output = run_cli(
            "supervise", "tc:6", "--faults", self.FAULT, "--retry", "0",
        )
        assert code == 1
        assert "terminal error" in output

    def test_supervise_bad_faults_payload_exits_two(self):
        code, output = run_cli("supervise", "tc:4", "--faults", "not json")
        assert code == 2
        assert "invalid --faults" in output

    def test_supervise_negative_retry_exits_two(self):
        code, output = run_cli("supervise", "tc:4", "--retry", "-3")
        assert code == 2

    def test_supervise_bad_engine_exits_two(self):
        code, output = run_cli("supervise", "tc:4", "--engine", "warp")
        assert code == 2

    def test_breaker_quarantine_survives_processes_via_ledger(self, tmp_path):
        """Two failing supervised runs against the same ledger trip the
        breaker; the third (clean) submission is refused typed."""
        led = str(tmp_path / "led")
        poison = (
            '{"seed": 0, "rules": ['
            '{"op": "*", "kind": "raise", "occurrence": 1}]}'
        )
        for _ in range(2):
            code, _output = run_cli(
                "supervise", "tc:4", "--faults", poison, "--retry", "0",
                "--breaker-threshold", "2", "--ledger", led,
            )
            assert code == 1
        code, output = run_cli(
            "supervise", "tc:4", "--breaker-threshold", "2", "--ledger", led,
        )
        assert code == 1
        assert "quarantined" in output

    def test_recover_missing_ledger_exits_three(self, tmp_path):
        code, _output = run_cli(
            "recover", "--ledger", str(tmp_path / "nope")
        )
        assert code == 3

    def test_recover_resumes_a_crashed_run(self, tmp_path):
        """A ``run_start`` with a live checkpoint and no closing record —
        the crashed-process shape — is resumed to completion."""
        import pytest as _pytest

        from repro.core.errors import BudgetExceededError
        from repro.obs.ledger import RunLedger, new_run_id
        from repro.runtime import Limits, run_hardened
        from repro.runtime.workloads import transitive_closure_workload

        program, db = transitive_closure_workload(10)
        led = tmp_path / "led"
        checkpoint = tmp_path / "crash.json"
        with _pytest.raises(BudgetExceededError):
            run_hardened(
                program, db, limits=Limits(deadline_s=0.05),
                checkpoint_path=checkpoint,
            )
        run_id = new_run_id()
        RunLedger(led).record_start(
            {
                "run_id": run_id, "ts": 1.0, "workload": "tc:10",
                "spec": "tc:10", "engine": "naive", "fingerprint": "f" * 16,
                "checkpoint": str(checkpoint), "limits": None,
            }
        )
        code, output = run_cli(
            "recover", "--ledger", str(led), "--retry", "300", "--verify"
        )
        assert code == 0
        assert "1 resumed" in output
        assert run_id in output
        code, output = run_cli("recover", "--ledger", str(led))
        assert code == 0
        assert "0 open run(s)" in output

    def test_chaos_supervisor_matrix_is_green(self):
        import json

        code, output = run_cli("chaos", "--supervisor", "--json")
        assert code == 0
        report = json.loads(output)
        assert report["ok"] is True
        decisions = {p["cell"]: p["observed"] for p in report["points"]}
        assert decisions["poison/breaker/naive"] == "quarantined"
