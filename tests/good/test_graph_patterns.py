"""Unit tests for object graphs and pattern matching."""

import pytest

from repro.core import NULL, SchemaError, V
from repro.good import (
    GoodEdge,
    GoodNode,
    ObjectGraph,
    Pattern,
    PatternEdge,
    PatternNode,
)


@pytest.fixture
def family() -> ObjectGraph:
    return ObjectGraph(
        [
            GoodNode.make("p1", "Person", "ann"),
            GoodNode.make("p2", "Person", "bob"),
            GoodNode.make("p3", "Person", "cal"),
            GoodNode.make("h1", "House"),
        ],
        [
            GoodEdge.make("p1", "parent", "p2"),
            GoodEdge.make("p2", "parent", "p3"),
            GoodEdge.make("p1", "lives", "h1"),
        ],
    )


class TestObjectGraph:
    def test_referential_integrity(self):
        with pytest.raises(SchemaError):
            ObjectGraph([GoodNode.make("a", "X")], [GoodEdge.make("a", "e", "missing")])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SchemaError):
            ObjectGraph([GoodNode.make("a", "X"), GoodNode.make("a", "Y")])

    def test_printable_vs_abstract(self, family):
        assert family.node("p1").printable
        assert not family.node("h1").printable
        assert family.node("h1").value is NULL

    def test_lookup(self, family):
        assert len(family.nodes_labelled("Person")) == 3
        assert len(family.edges_labelled("parent")) == 2
        assert family.neighbors("p1", "parent") == {V("p2")}
        with pytest.raises(SchemaError):
            family.node("zzz")

    def test_out_edges(self, family):
        assert len(family.out_edges("p1")) == 2

    def test_remove_nodes_drops_incident_edges(self, family):
        smaller = family.remove_nodes(["p2"])
        assert len(smaller) == 3
        assert len(smaller.edges_labelled("parent")) == 0

    def test_remove_edges(self, family):
        fewer = family.remove_edges([GoodEdge.make("p1", "parent", "p2")])
        assert len(fewer.edges_labelled("parent")) == 1

    def test_symbols(self, family):
        assert V("ann") in family.symbols()
        assert NULL not in family.symbols()

    def test_equality_and_hash(self, family):
        same = ObjectGraph(family.nodes, family.edges)
        assert same == family and hash(same) == hash(family)


class TestPattern:
    def test_single_node_matches_by_label(self, family):
        pattern = Pattern([PatternNode.make("X", "Person")])
        assert len(list(pattern.match(family))) == 3

    def test_value_constraint(self, family):
        pattern = Pattern([PatternNode.make("X", "Person", "bob")])
        matches = list(pattern.match(family))
        assert len(matches) == 1 and matches[0]["X"] == V("p2")

    def test_edge_constraint(self, family):
        pattern = Pattern(
            [PatternNode.make("X", "Person"), PatternNode.make("Y", "Person")],
            [PatternEdge.make("X", "parent", "Y")],
        )
        assert len(list(pattern.match(family))) == 2

    def test_path_pattern(self, family):
        pattern = Pattern(
            [
                PatternNode.make("X", "Person"),
                PatternNode.make("Y", "Person"),
                PatternNode.make("Z", "Person"),
            ],
            [PatternEdge.make("X", "parent", "Y"), PatternEdge.make("Y", "parent", "Z")],
        )
        matches = list(pattern.match(family))
        assert len(matches) == 1
        assert matches[0] == {"X": V("p1"), "Y": V("p2"), "Z": V("p3")}

    def test_homomorphism_allows_merging_variables(self):
        loop = ObjectGraph(
            [GoodNode.make("a", "N")], [GoodEdge.make("a", "e", "a")]
        )
        pattern = Pattern(
            [PatternNode.make("X", "N"), PatternNode.make("Y", "N")],
            [PatternEdge.make("X", "e", "Y")],
        )
        matches = list(pattern.match(loop))
        assert len(matches) == 1
        assert matches[0]["X"] == matches[0]["Y"]

    def test_no_match(self, family):
        pattern = Pattern([PatternNode.make("X", "Robot")])
        assert list(pattern.match(family)) == []

    def test_pattern_validation(self):
        with pytest.raises(SchemaError):
            Pattern([], [])
        with pytest.raises(SchemaError):
            Pattern([PatternNode.make("X", "N")], [PatternEdge.make("X", "e", "Y")])
        with pytest.raises(SchemaError):
            Pattern([PatternNode.make("X", "N"), PatternNode.make("X", "N")])

    def test_matching_is_deterministic(self, family):
        pattern = Pattern([PatternNode.make("X", "Person")])
        first = [m["X"] for m in pattern.match(family)]
        second = [m["X"] for m in pattern.match(family)]
        assert first == second
