"""Unit tests for the five GOOD operations and the tabular simulation."""

import pytest

from repro.core import EvaluationError, FreshValueSource, TaggedValue, V
from repro.good import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    GoodEdge,
    GoodNode,
    GoodProgram,
    NodeAddition,
    NodeDeletion,
    ObjectGraph,
    Pattern,
    PatternEdge,
    PatternNode,
    compile_to_ta,
    decode_graph,
    encode_graph,
    graphs_isomorphic,
)


@pytest.fixture
def family() -> ObjectGraph:
    return ObjectGraph(
        [
            GoodNode.make("p1", "Person", "ann"),
            GoodNode.make("p2", "Person", "bob"),
            GoodNode.make("p3", "Person", "cal"),
            GoodNode.make("p4", "Person", "dee"),
        ],
        [
            GoodEdge.make("p1", "parent", "p2"),
            GoodEdge.make("p2", "parent", "p3"),
            GoodEdge.make("p1", "parent", "p4"),
        ],
    )


def parent_pattern() -> Pattern:
    return Pattern(
        [PatternNode.make("P", "Person"), PatternNode.make("C", "Person")],
        [PatternEdge.make("P", "parent", "C")],
    )


def grandparent_pattern() -> Pattern:
    return Pattern(
        [
            PatternNode.make("X", "Person"),
            PatternNode.make("Y", "Person"),
            PatternNode.make("Z", "Person"),
        ],
        [PatternEdge.make("X", "parent", "Y"), PatternEdge.make("Y", "parent", "Z")],
    )


def simulate(program: GoodProgram, graph: ObjectGraph) -> ObjectGraph:
    return decode_graph(compile_to_ta(program).run(encode_graph(graph)))


class TestNativeOperations:
    def test_edge_addition(self, family):
        out = GoodProgram((EdgeAddition(grandparent_pattern(), "X", "gp", "Z"),)).run(family)
        assert out.edges_labelled("gp") == {GoodEdge.make("p1", "gp", "p3")}

    def test_edge_deletion(self, family):
        pattern = Pattern(
            [PatternNode.make("P", "Person", "ann"), PatternNode.make("C", "Person")],
            [PatternEdge.make("P", "parent", "C")],
        )
        out = GoodProgram((EdgeDeletion(pattern, "P", "parent", "C"),)).run(family)
        assert len(out.edges_labelled("parent")) == 1

    def test_node_deletion(self, family):
        pattern = Pattern([PatternNode.make("X", "Person", "bob")])
        out = GoodProgram((NodeDeletion(pattern, "X"),)).run(family)
        assert len(out) == 3
        assert all(e.src != V("p2") and e.dst != V("p2") for e in out.edges)

    def test_node_addition_one_per_witness(self, family):
        op = NodeAddition(parent_pattern(), "Link", (("from", "P"), ("to", "C")))
        out = GoodProgram((op,)).run(family)
        links = out.nodes_labelled("Link")
        assert len(links) == 3  # three parent edges
        assert all(isinstance(n.id, TaggedValue) for n in links)
        assert all(not n.printable for n in links)

    def test_node_addition_dedups_witnesses(self, family):
        # anchor only on the parent: ann has two children but one node
        op = NodeAddition(parent_pattern(), "IsParent", (("who", "P"),))
        out = GoodProgram((op,)).run(family)
        assert len(out.nodes_labelled("IsParent")) == 2  # ann and bob

    def test_node_addition_zero_anchors(self, family):
        op = NodeAddition(parent_pattern(), "Marker", ())
        out = GoodProgram((op,)).run(family)
        assert len(out.nodes_labelled("Marker")) == 1

    def test_abstraction_partitions_by_neighbor_set(self, family):
        op = Abstraction(
            Pattern([PatternNode.make("X", "Person")]), "X", "parent", "Cohort", "member"
        )
        out = GoodProgram((op,)).run(family)
        # neighbor sets: p1 -> {p2,p4}; p2 -> {p3}; p3,p4 -> {} (shared class)
        cohorts = out.nodes_labelled("Cohort")
        assert len(cohorts) == 3
        member_counts = sorted(
            len(out.neighbors(c.id, "member")) for c in cohorts
        )
        assert member_counts == [1, 1, 2]

    def test_program_determinism_up_to_ids(self, family):
        op = NodeAddition(parent_pattern(), "Link", (("from", "P"),))
        a = GoodProgram((op,)).run(family, FreshValueSource(100))
        b = GoodProgram((op,)).run(family, FreshValueSource(500))
        assert a != b
        assert graphs_isomorphic(a, b, fixed=family.symbols())

    def test_sequencing(self, family):
        program = GoodProgram(
            (
                EdgeAddition(grandparent_pattern(), "X", "gp", "Z"),
                EdgeDeletion(parent_pattern(), "P", "parent", "C"),
            )
        )
        out = program.run(family)
        assert len(out.edges_labelled("parent")) == 0
        assert len(out.edges_labelled("gp")) == 1


class TestEncoding:
    def test_round_trip(self, family):
        assert decode_graph(encode_graph(family)) == family

    def test_encoding_tables(self, family):
        db = encode_graph(family)
        assert db.table("Nodes").height == 4
        assert db.table("Edges").height == 3

    def test_graphs_isomorphic_detects_difference(self, family):
        other = family.remove_edges([GoodEdge.make("p1", "parent", "p2")])
        assert not graphs_isomorphic(family, other)


class TestTabularSimulation:
    def test_edge_addition(self, family):
        program = GoodProgram((EdgeAddition(grandparent_pattern(), "X", "gp", "Z"),))
        assert simulate(program, family) == program.run(family)

    def test_edge_deletion(self, family):
        program = GoodProgram((EdgeDeletion(parent_pattern(), "P", "parent", "C"),))
        assert simulate(program, family) == program.run(family)

    def test_node_deletion(self, family):
        program = GoodProgram(
            (NodeDeletion(Pattern([PatternNode.make("X", "Person", "bob")]), "X"),)
        )
        assert simulate(program, family) == program.run(family)

    def test_node_addition_isomorphic(self, family):
        program = GoodProgram(
            (NodeAddition(parent_pattern(), "Link", (("from", "P"), ("to", "C"))),)
        )
        native = program.run(family)
        simulated = simulate(program, family)
        assert graphs_isomorphic(simulated, native, fixed=family.symbols())

    def test_self_loop_edge_addition(self):
        graph = ObjectGraph([GoodNode.make("a", "N", 1)], [])
        pattern = Pattern([PatternNode.make("X", "N")])
        program = GoodProgram((EdgeAddition(pattern, "X", "self", "X"),))
        assert simulate(program, graph) == program.run(graph)

    def test_multi_operation_program(self, family):
        program = GoodProgram(
            (
                EdgeAddition(grandparent_pattern(), "X", "gp", "Z"),
                NodeDeletion(Pattern([PatternNode.make("M", "Person", "bob")]), "M"),
            )
        )
        assert simulate(program, family) == program.run(family)

    def test_abstraction_simulation(self, family):
        # abstraction compiles through SETNEW (the power-set construct):
        # one new object per neighbor-set class, the empty class shared
        program = GoodProgram(
            (
                Abstraction(
                    Pattern([PatternNode.make("X", "Person")]),
                    "X",
                    "parent",
                    "Cohort",
                    "member",
                ),
            )
        )
        native = program.run(family)
        simulated = simulate(program, family)
        assert graphs_isomorphic(simulated, native, fixed=family.symbols())
        cohorts = simulated.nodes_labelled("Cohort")
        assert len(cohorts) == 3
        member_counts = sorted(
            len(simulated.neighbors(c.id, "member")) for c in cohorts
        )
        assert member_counts == [1, 1, 2]

    def test_abstraction_simulation_guarded_exponentially(self):
        # SETNEW's guard trips when the neighbor domain is too large
        from repro.core import LimitExceededError

        nodes = [GoodNode.make(f"p{i}", "P", i) for i in range(20)]
        edges = [GoodEdge.make("p0", "likes", f"p{i}") for i in range(1, 20)]
        graph = ObjectGraph(nodes, edges)
        program = GoodProgram(
            (
                Abstraction(
                    Pattern([PatternNode.make("X", "P")]), "X", "likes", "C", "m"
                ),
            )
        )
        with pytest.raises(LimitExceededError):
            compile_to_ta(program).run(encode_graph(graph))
