"""Unit tests for the SchemaSQL_d surface: parser, evaluation, TA compilation."""

import pytest

from repro.core import EvaluationError, N, ParseError, V, database
from repro.relational import Relation, RelationalDatabase, table_to_relation
from repro.schemalog import SchemaLogDatabase
from repro.schemasql import (
    AttrVarDecl,
    ColumnRef,
    Literal,
    RelVarDecl,
    TupleVarDecl,
    VarRef,
    compile_to_ta,
    evaluate_query,
    parse_schemasql,
    validate_query,
)


@pytest.fixture
def db() -> SchemaLogDatabase:
    return SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
                Relation("west", ["part", "sold"], [("nuts", 60), ("screws", 50)]),
            ]
        )
    )


def rows(relation):
    return {tuple(str(s) for s in row) for row in relation}


class TestParser:
    def test_basic_query(self):
        q = parse_schemasql(
            "SELECT T.part AS part INTO out FROM east T WHERE T.sold = 50"
        )
        assert q.into == "out"
        assert isinstance(q.from_items[0], TupleVarDecl)
        assert isinstance(q.select[0].expression, ColumnRef)
        assert len(q.where) == 1

    def test_relation_variable(self):
        q = parse_schemasql("SELECT R AS r INTO out FROM -> R, R T")
        assert isinstance(q.from_items[0], RelVarDecl)
        tup = q.from_items[1]
        assert isinstance(tup, TupleVarDecl) and tup.source_is_var

    def test_attribute_variable(self):
        q = parse_schemasql("SELECT A AS a INTO out FROM east -> A")
        assert isinstance(q.from_items[0], AttrVarDecl)

    def test_attr_var_in_column_position(self):
        q = parse_schemasql("SELECT T.A AS v INTO out FROM east T, east -> A")
        ref = q.select[0].expression
        assert isinstance(ref, ColumnRef) and ref.attr_is_var

    def test_literals(self):
        q = parse_schemasql("SELECT 'x' AS a, 42 AS b INTO out FROM east T")
        assert q.select[0].expression == Literal(V("x"))
        assert q.select[1].expression == Literal(V(42))

    def test_keywords_case_insensitive(self):
        q = parse_schemasql("select T.part as p into out from east T")
        assert q.into == "out"

    def test_comments(self):
        q = parse_schemasql(
            """
            -- restructure
            SELECT T.part AS p INTO out FROM east T
            """
        )
        assert q.into == "out"

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT T.part INTO out FROM east T",  # missing AS
            "SELECT T.part AS p FROM east T",  # missing INTO
            "SELECT T.part AS p INTO out",  # missing FROM
            "SELECT T.part AS p INTO Out FROM east T",  # variable target
            "SELECT T.part AS p, T.sold AS p INTO out FROM east T",  # dup alias
            "SELECT t.part AS p INTO out FROM east T",  # lowercase tuple var
            "SELECT T.part AS p INTO out FROM east T WHERE T.part < 3",  # bad op
            "SELECT T.part AS p INTO out FROM east T extra",  # trailing
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_schemasql(text)


class TestValidation:
    def test_undeclared_tuple_variable(self, db):
        q = parse_schemasql("SELECT T.part AS p INTO out FROM east U")
        with pytest.raises(EvaluationError):
            evaluate_query(q, db)

    def test_tuple_var_over_undeclared_rel_var(self):
        with pytest.raises(EvaluationError):
            validate_query(parse_schemasql("SELECT T.part AS p INTO out FROM R T"))

    def test_varref_must_be_rel_or_attr_var(self, db):
        q = parse_schemasql("SELECT T AS t INTO out FROM east T")
        with pytest.raises(EvaluationError):
            evaluate_query(q, db)

    def test_double_declaration(self):
        with pytest.raises(EvaluationError):
            validate_query(
                parse_schemasql("SELECT T.part AS p INTO out FROM east T, west T")
            )


class TestEvaluation:
    def test_plain_selection(self, db):
        q = parse_schemasql("SELECT T.part AS p, T.sold AS s INTO out FROM east T")
        assert rows(evaluate_query(q, db)) == {("'nuts'", "50"), ("'bolts'", "70")}

    def test_literal_columns(self, db):
        q = parse_schemasql(
            "SELECT T.part AS p, 'east' AS region INTO out FROM east T"
        )
        assert ("'nuts'", "'east'") in rows(evaluate_query(q, db))

    def test_relation_variable_federation(self, db):
        q = parse_schemasql(
            "SELECT R AS region, T.part AS part INTO out FROM -> R, R T"
        )
        result = rows(evaluate_query(q, db))
        assert ("east", "'nuts'") in result and ("west", "'screws'") in result
        assert len(result) == 4

    def test_attribute_variable_schema_query(self, db):
        q = parse_schemasql("SELECT A AS attr INTO out FROM east -> A")
        assert rows(evaluate_query(q, db)) == {("part",), ("sold",)}

    def test_full_flattening(self, db):
        q = parse_schemasql(
            "SELECT R AS rel, A AS attr, T.A AS val INTO out FROM -> R, R T, R -> A"
        )
        assert len(evaluate_query(q, db)) == len(db)

    def test_where_equality_and_inequality(self, db):
        q = parse_schemasql(
            "SELECT T.part AS p INTO out FROM east T WHERE T.sold = 70"
        )
        assert rows(evaluate_query(q, db)) == {("'bolts'",)}
        q2 = parse_schemasql(
            "SELECT T.part AS p INTO out FROM east T WHERE T.part <> 'nuts'"
        )
        assert rows(evaluate_query(q2, db)) == {("'bolts'",)}

    def test_join_across_tuple_variables(self, db):
        q = parse_schemasql(
            "SELECT T.part AS p INTO out FROM east T, west U "
            "WHERE T.part = U.part"
        )
        assert rows(evaluate_query(q, db)) == {("'nuts'",)}

    def test_missing_attribute_drops_binding(self):
        sparse = SchemaLogDatabase(
            [
                (N("r"), V("t1"), N("a"), V(1)),
                (N("r"), V("t2"), N("b"), V(2)),
            ]
        )
        q = parse_schemasql("SELECT T.a AS a INTO out FROM r T")
        assert len(evaluate_query(q, sparse)) == 1

    def test_set_semantics(self, db):
        q = parse_schemasql("SELECT 'k' AS k INTO out FROM east T")
        assert len(evaluate_query(q, db)) == 1


class TestCompilation:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT T.part AS part, 'east' AS region INTO out FROM east T",
            "SELECT R AS region, T.part AS part INTO out FROM -> R, R T",
            "SELECT A AS attr INTO out FROM east -> A",
            "SELECT R AS rel, A AS attr, T.A AS val INTO out FROM -> R, R T, R -> A",
            "SELECT T.part AS p1, T.part AS p2 INTO out FROM east T",
            "SELECT T.part AS p INTO out FROM east T WHERE T.sold = 70",
            "SELECT T.part AS p INTO out FROM east T WHERE T.part <> 'nuts'",
            "SELECT T.part AS p INTO out FROM east T, west U WHERE T.part = U.part",
            "SELECT R AS r INTO out FROM -> R",
        ],
        ids=[
            "literal",
            "rel-var",
            "attr-var",
            "flatten",
            "dup-column",
            "where-eq",
            "where-neq",
            "join",
            "rel-var-alone",
        ],
    )
    def test_native_and_compiled_agree(self, db, text):
        query = parse_schemasql(text)
        native = evaluate_query(query, db)
        out = compile_to_ta(query).run(database(db.facts_table()))
        simulated = table_to_relation(
            out.tables_named(query.into)[0], schema=native.schema
        )
        assert simulated.tuples == native.tuples
        assert simulated.schema == native.schema
