"""Database isomorphisms and automorphisms (paper, Section 4.1).

Two tabular databases D, D' are *isomorphic* when some bijection
φ : |D| → |D'| exists that (i) is the identity on names, (ii) is the
identity on ⊥, and (iii) maps D onto D' up to permutations of the
non-attribute rows and columns of the tables.  An *M-isomorphism*
additionally fixes a set M of symbols pointwise, and an automorphism is an
isomorphism from D to itself.

Only value-sort symbols are movable; the search backtracks over
signature-compatible value assignments and validates a complete candidate
by applying it and testing permutation-equivalence.  This is exact (it is
a small graph-isomorphism-style search) and fast on the database sizes the
theory layer handles; a guard bounds the number of movable values.
"""

from __future__ import annotations

from typing import Iterator

from ..core import (
    LimitExceededError,
    Symbol,
    TabularDatabase,
    Value,
)

__all__ = [
    "movable_values",
    "find_isomorphism",
    "are_isomorphic",
    "automorphisms",
    "apply_symbol_map",
]

#: Refuse isomorphism searches beyond this many movable values.
DEFAULT_SEARCH_LIMIT = 12


def movable_values(db: TabularDatabase, fixed: frozenset[Symbol]) -> list[Symbol]:
    """The value-sort symbols of ``db`` that an isomorphism may move."""
    return sorted(
        (s for s in db.symbols() if isinstance(s, Value) and s not in fixed),
        key=lambda s: s.sort_key(),
    )


def apply_symbol_map(db: TabularDatabase, mapping: dict[Symbol, Symbol]) -> TabularDatabase:
    """Apply a symbol mapping to every entry of every table."""
    return TabularDatabase(
        table.map_entries(lambda s: mapping.get(s, s)) for table in db.tables
    )


def _signature(db: TabularDatabase, symbol: Symbol) -> tuple:
    """A permutation-invariant occurrence profile used for pruning.

    Counts, per table (aggregated as a sorted multiset), how often the
    symbol occurs as the table name, as a column attribute, as a row
    attribute, and as a data entry.
    """
    profile = []
    for table in db.tables:
        name = 1 if table.name == symbol else 0
        col_attr = sum(1 for a in table.column_attributes if a == symbol)
        row_attr = sum(1 for a in table.row_attributes if a == symbol)
        data = sum(1 for row in table.data for entry in row if entry == symbol)
        profile.append((name, col_attr, row_attr, data, table.nrows, table.ncols))
    return tuple(sorted(profile))


def _search(
    left: TabularDatabase,
    right: TabularDatabase,
    fixed: frozenset[Symbol],
    limit: int,
    partial: dict[Symbol, Symbol] | None = None,
) -> Iterator[dict[Symbol, Symbol]]:
    movable_left = movable_values(left, fixed)
    movable_right = movable_values(right, fixed)
    if len(movable_left) != len(movable_right):
        return
    partial = partial or {}
    if any(k not in movable_left or v not in movable_right for k, v in partial.items()):
        return
    if len(movable_left) > limit:
        raise LimitExceededError(
            f"isomorphism search over {len(movable_left)} movable values exceeds "
            f"the limit of {limit}",
            kind="rows",
            op="isomorphism",
            used=len(movable_left),
            limit=limit,
        )
    # Fixed symbols (and names/⊥, which never enter movable sets) must
    # occur identically on both sides — cheap necessary condition.
    left_sigs = {v: _signature(left, v) for v in movable_left}
    right_sigs: dict[tuple, list[Symbol]] = {}
    for v in movable_right:
        right_sigs.setdefault(_signature(right, v), []).append(v)
    if sorted(left_sigs.values()) != sorted(
        sig for sig, vs in right_sigs.items() for _ in vs
    ):
        return

    assignment: dict[Symbol, Symbol] = {}
    used: set[Symbol] = set()

    def assign(idx: int) -> Iterator[dict[Symbol, Symbol]]:
        if idx == len(movable_left):
            candidate = dict(assignment)
            if apply_symbol_map(left, candidate).equivalent(right):
                yield candidate
            return
        value = movable_left[idx]
        candidates = right_sigs.get(left_sigs[value], [])
        if value in partial:
            candidates = [partial[value]] if partial[value] in candidates else []
        for target in candidates:
            if target in used:
                continue
            assignment[value] = target
            used.add(target)
            yield from assign(idx + 1)
            used.discard(target)
            del assignment[value]

    yield from assign(0)


def find_isomorphism(
    left: TabularDatabase,
    right: TabularDatabase,
    fixed: frozenset[Symbol] | set[Symbol] = frozenset(),
    limit: int = DEFAULT_SEARCH_LIMIT,
    partial: dict[Symbol, Symbol] | None = None,
) -> dict[Symbol, Symbol] | None:
    """An M-isomorphism from ``left`` to ``right`` (M = ``fixed``), or None.

    The returned mapping covers only the moved values; names, ⊥, and fixed
    symbols map to themselves implicitly.  ``partial`` pre-assigns some of
    the movable values (used by the constructivity checker to ask for an
    automorphism *extending* a given one).
    """
    for mapping in _search(left, right, frozenset(fixed), limit, partial):
        return mapping
    return None


def are_isomorphic(
    left: TabularDatabase,
    right: TabularDatabase,
    fixed: frozenset[Symbol] | set[Symbol] = frozenset(),
    limit: int = DEFAULT_SEARCH_LIMIT,
) -> bool:
    """True iff an M-isomorphism from ``left`` to ``right`` exists."""
    return find_isomorphism(left, right, fixed, limit) is not None


def automorphisms(
    db: TabularDatabase,
    fixed: frozenset[Symbol] | set[Symbol] = frozenset(),
    limit: int = DEFAULT_SEARCH_LIMIT,
) -> list[dict[Symbol, Symbol]]:
    """All automorphisms of ``db`` fixing ``fixed`` (as value mappings).

    The identity is always included (as an empty mapping when there are no
    movable values).
    """
    return list(_search(db, db, frozenset(fixed), limit))
