"""The paper's notion of *transformation* and executable condition checkers.

A transformation (Section 4.1, after Chandra–Harel / Abiteboul–Kanellakis /
Van den Bussche et al.) is a recursively enumerable relation
``Q ⊆ inst(N) × inst(N)`` such that

  (i)   **genericity** — Q is invariant under every permutation of 𝒮 that
        is the identity on N ∪ {⊥};
  (ii)  **permutation invariance** — row/column order inside tables is
        immaterial;
  (iii) **symbol growth** — Q(D, D') implies |D| ⊆ |D'|;
  (iv)  **determinacy** — outputs for one input are |D|-isomorphic (new
        values are the only non-determinism);
  (v)   **constructivity** — every automorphism of D extends to an
        automorphism of D'.

On finite instances these conditions are *checkable*, and that is what
this module does: given a Python function ``f`` from databases to
databases (e.g. a compiled tabular algebra program), it samples value
permutations and row/column shuffles and verifies each condition, raising
a :class:`TransformationViolation` or returning a structured report.

These checkers power the Theorem 4.4 benchmark: every tabular algebra
operation must pass (genericity, determinacy, constructivity), and the
completeness pipeline must compute the same transformation in normal form.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core import (
    NULL,
    Name,
    Symbol,
    TabularDatabase,
    Value,
)
from .isomorphism import apply_symbol_map, are_isomorphic, automorphisms, movable_values

__all__ = [
    "TransformationReport",
    "check_transformation",
    "sample_value_permutations",
    "shuffle_database",
    "symbols_grow",
]

Transformation = Callable[[TabularDatabase], TabularDatabase]


@dataclass
class TransformationReport:
    """Outcome of checking the five transformation conditions on samples."""

    generic: bool = True
    permutation_invariant: bool = True
    symbols_grow: bool = True
    determinate: bool = True
    constructive: bool = True
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every checked condition held on every sample."""
        return (
            self.generic
            and self.permutation_invariant
            and self.symbols_grow
            and self.determinate
            and self.constructive
        )

    def _note(self, condition: str, message: str) -> None:
        setattr(self, condition, False)
        self.failures.append(f"{condition}: {message}")


def sample_value_permutations(
    db: TabularDatabase, samples: int, seed: int = 0
) -> list[dict[Symbol, Symbol]]:
    """Random permutations of ``db``'s values (identity on names and ⊥)."""
    rng = random.Random(seed)
    values = movable_values(db, frozenset())
    permutations = []
    for _ in range(samples):
        shuffled = values[:]
        rng.shuffle(shuffled)
        permutations.append(dict(zip(values, shuffled)))
    return permutations


def shuffle_database(db: TabularDatabase, seed: int | None = 0) -> TabularDatabase:
    """Shuffle the data rows and columns of every table (names fixed).

    ``seed=None`` applies a deterministic full reversal instead of a random
    shuffle — guaranteed non-trivial whenever any table has two or more
    data rows or columns.
    """
    rng = random.Random(seed) if seed is not None else None
    tables = []
    for table in db.tables:
        if rng is None:
            rows = [0] + list(reversed(range(1, table.nrows)))
            cols = [0] + list(reversed(range(1, table.ncols)))
        else:
            rows = [0] + rng.sample(range(1, table.nrows), table.height)
            cols = [0] + rng.sample(range(1, table.ncols), table.width)
        tables.append(table.subtable(rows, cols))
    return TabularDatabase(tables)


def symbols_grow(db_in: TabularDatabase, db_out: TabularDatabase) -> bool:
    """Condition (iii): ``|D| ⊆ |D'|`` (⊥ disregarded).

    The paper's transformations never lose symbols "even if entries no
    longer occur in a particular table"; operationally this corresponds to
    programs that augment the database rather than discarding their
    inputs.
    """
    missing = {s for s in db_in.symbols() if not s.is_null} - set(db_out.symbols())
    return not missing


def check_transformation(
    f: Transformation,
    db: TabularDatabase,
    samples: int = 3,
    seed: int = 0,
    check_growth: bool = False,
    max_automorphisms: int = 24,
) -> TransformationReport:
    """Check the transformation conditions for ``f`` at input ``db``.

    ``check_growth`` is off by default because single algebra operations
    legitimately discard symbols; enable it for full programs that retain
    their inputs.  ``samples`` controls how many random value permutations
    and shuffles are tried per condition.
    """
    report = TransformationReport()
    base_symbols = frozenset(db.symbols())
    output = f(db)

    # (i) genericity: f(π D) must be |π D|-isomorphic to π(f D).
    for k, perm in enumerate(sample_value_permutations(db, samples, seed)):
        permuted_in = apply_symbol_map(db, perm)
        lhs = f(permuted_in)
        rhs = apply_symbol_map(output, perm)
        if not are_isomorphic(lhs, rhs, fixed=frozenset(permuted_in.symbols())):
            report._note("generic", f"value permutation #{k} not respected")
            break

    # (ii) permutation invariance: row/column order of the input is moot.
    # The first sample is a deterministic full reversal (never a no-op on
    # non-trivial tables); the rest are random shuffles.
    shuffle_seeds: list[int | None] = [None] + [seed + k + 1 for k in range(samples - 1)]
    for k, shuffle_seed in enumerate(shuffle_seeds):
        shuffled = shuffle_database(db, seed=shuffle_seed)
        if not are_isomorphic(f(shuffled), output, fixed=base_symbols):
            report._note("permutation_invariant", f"shuffle #{k} changed the result")
            break

    # (iii) symbol growth.
    if check_growth and not symbols_grow(db, output):
        report._note("symbols_grow", "output lost input symbols")

    # (iv) determinacy: two runs differ only in the choice of new values.
    second = f(db)
    if not are_isomorphic(second, output, fixed=base_symbols):
        report._note("determinate", "two runs are not |D|-isomorphic")

    # (v) constructivity: every automorphism of D extends to one of D'.
    from .isomorphism import find_isomorphism

    auts = automorphisms(db)
    if len(auts) > max_automorphisms:
        auts = auts[:max_automorphisms]
    output_symbols = frozenset(output.symbols())
    for phi in auts:
        # ψ must agree with φ on every shared symbol — including the
        # symbols φ fixes, which ψ therefore must fix too.
        shared_map = {k: v for k, v in phi.items() if k in output_symbols}
        if any(v not in output_symbols for v in shared_map.values()):
            report._note(
                "constructive", f"automorphism {phi} maps outside the output symbols"
            )
            break
        extension = find_isomorphism(output, output, partial=shared_map)
        if extension is None:
            report._note(
                "constructive", f"automorphism {phi} does not extend to the output"
            )
            break

    return report
