"""The Theorem 4.4 normal form: computing transformations via ``Rep``.

The completeness proof factors any transformation Q as
``P_Rep ∘ P ∘ P_Rep⁻``: first encode the input into its canonical
representation (Lemma 4.2), compute the corresponding relational
transformation there (expressible in FO+while+new because the canonical
scheme has fixed width), then decode (Lemma 4.3).

This module makes that factorization executable:

* :func:`lift_to_rep` turns a tabular transformation ``f`` into the
  corresponding transformation on ``Rep`` instances
  (``encode ∘ f ∘ decode``);
* :func:`normal_form` rebuilds ``f`` from its lifted form
  (``decode ∘ f# ∘ encode``) — by the two lemmas, the result agrees with
  ``f`` up to isomorphism on every database in the round-trip domain;
* :func:`normal_form_agrees` is the executable statement of that claim.

The paper "goes via the canonical representations" only to *prove*
completeness and immediately notes "this is not the way to proceed in
practice"; accordingly these functions serve the theory benchmarks, not
the operational layer.
"""

from __future__ import annotations

from typing import Callable

from ..canonical import decode, encode
from ..core import FreshValueSource, TabularDatabase
from .isomorphism import are_isomorphic

__all__ = ["lift_to_rep", "normal_form", "normal_form_agrees"]

Transformation = Callable[[TabularDatabase], TabularDatabase]


def lift_to_rep(f: Transformation) -> Transformation:
    """The transformation induced by ``f`` on canonical representations.

    ``lift_to_rep(f)(R) = encode(f(decode(R)))`` for any ``Rep``
    instance R.
    """

    def lifted(rep: TabularDatabase) -> TabularDatabase:
        return encode(f(decode(rep)))

    lifted.__name__ = f"rep_{getattr(f, '__name__', 'transformation')}"
    return lifted


def normal_form(f: Transformation) -> Transformation:
    """``f`` recomputed through the canonical representation.

    ``normal_form(f)(D) = decode(lift_to_rep(f)(encode(D)))`` — the
    ``P_Rep ∘ P ∘ P_Rep⁻`` factorization of Theorem 4.4.
    """
    lifted = lift_to_rep(f)

    def composed(db: TabularDatabase) -> TabularDatabase:
        return decode(lifted(encode(db)))

    composed.__name__ = f"normal_form_{getattr(f, '__name__', 'transformation')}"
    return composed


def normal_form_agrees(
    f: Transformation, db: TabularDatabase, limit: int = 12
) -> bool:
    """Does the normal form of ``f`` compute the same transformation at ``db``?

    Agreement is |D|-isomorphism restricted to the symbols of the direct
    result (fresh occurrence identifiers are the only permitted
    difference, and decode discards them again, so for value-complete
    results this is plain equivalence).
    """
    direct = f(db)
    via_rep = normal_form(f)(db)
    return are_isomorphic(via_rep, direct, fixed=frozenset(db.symbols()), limit=limit)
