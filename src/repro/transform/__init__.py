"""Transformation theory: isomorphisms, the five conditions, normal forms.

Executable counterparts of Section 4.1's definitions: database
(M-)isomorphisms and automorphism groups, checkers for genericity /
permutation invariance / symbol growth / determinacy / constructivity, and
the Theorem 4.4 factorization through canonical representations.
"""

from .isomorphism import (
    apply_symbol_map,
    are_isomorphic,
    automorphisms,
    find_isomorphism,
    movable_values,
)
from .normal_form import lift_to_rep, normal_form, normal_form_agrees
from .transformation import (
    TransformationReport,
    check_transformation,
    sample_value_permutations,
    shuffle_database,
    symbols_grow,
)

__all__ = [
    "apply_symbol_map",
    "are_isomorphic",
    "automorphisms",
    "find_isomorphism",
    "movable_values",
    "lift_to_rep",
    "normal_form",
    "normal_form_agrees",
    "TransformationReport",
    "check_transformation",
    "sample_value_permutations",
    "shuffle_database",
    "symbols_grow",
]
