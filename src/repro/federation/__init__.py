"""Federations of tabular databases — the paper's multidatabase extension."""

from .model import TabularFederation, qualified_name, split_qualified
from .programs import federation_facts, parse_federated, run_federated

__all__ = [
    "TabularFederation",
    "qualified_name",
    "split_qualified",
    "parse_federated",
    "run_federated",
    "federation_facts",
]
