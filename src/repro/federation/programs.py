"""Federated tabular algebra programs.

A federated program is an ordinary tabular algebra program whose table
names may be qualified (``db::table``); running it against a
:class:`~repro.federation.model.TabularFederation` flattens the
federation, executes the program, and unflattens the result.  This is the
paper's "extended language" in its entirety — the flattening map is the
whole extension, which is why it "trivially subsumes SchemaLog": the
SchemaLog-over-federations story reduces to SchemaLog over the flattened
facts, provided here as :func:`federation_facts`.
"""

from __future__ import annotations

from ..algebra.programs import Interpreter, Program, parse_program
from ..core import FreshValueSource, Name, SchemaError
from ..schemalog import SchemaLogDatabase
from .model import SEPARATOR, TabularFederation

__all__ = ["run_federated", "parse_federated", "federation_facts"]


def parse_federated(text: str) -> Program:
    """Parse a federated program.

    The base grammar's identifiers do not contain ``::``; federated
    programs write qualified names as ``db__table`` — double underscore —
    which this wrapper rewrites to the canonical ``db::table`` before
    binding.  (A pragmatic surface choice that keeps one tokenizer.)
    """
    program = parse_program(text)
    return _rewrite_names(program)


def _rewrite_names(program: Program) -> Program:
    from ..algebra.programs import Assignment, Lit, Statement, While

    def rewrite_param(param):
        if isinstance(param, Lit) and isinstance(param.symbol, Name):
            text = param.symbol.text
            if "__" in text and not text.startswith("__"):
                db_name, _, table = text.partition("__")
                return Lit(Name(f"{db_name}{SEPARATOR}{table}"))
        return param

    def rewrite_statement(statement: Statement) -> Statement:
        if isinstance(statement, Assignment):
            return Assignment(
                rewrite_param(statement.target),
                statement.spec.name,
                [rewrite_param(a) for a in statement.args],
                statement.params,
            )
        if isinstance(statement, While):
            return While(
                rewrite_param(statement.condition),
                [rewrite_statement(s) for s in statement.body.statements],
            )
        return statement

    return Program(rewrite_statement(s) for s in program.statements)


def run_federated(
    program: Program,
    federation: TabularFederation,
    fresh: FreshValueSource | None = None,
    max_while_iterations: int = 10_000,
) -> TabularFederation:
    """Run a (possibly federated) program over a federation.

    Result tables with qualified targets land in the corresponding member;
    unqualified targets land in a member called ``result``.
    """
    flattened = federation.flatten()
    out = program.run(flattened, fresh=fresh, max_while_iterations=max_while_iterations)
    members: dict[str, list] = {name: [] for name, _db in federation}
    members.setdefault("result", [])
    from .model import split_qualified

    for table in out.tables:
        parsed = split_qualified(table.name)
        if parsed is None:
            if not isinstance(table.name, Name):
                raise SchemaError(f"result table {table.name!s} has no name")
            members["result"].append(table)
        else:
            db_name, table_name = parsed
            members.setdefault(db_name, []).append(table.with_name(table_name))
    from ..core import TabularDatabase

    return TabularFederation(
        {k: TabularDatabase(v) for k, v in members.items() if v or k != "result"}
    )


def federation_facts(federation: TabularFederation) -> SchemaLogDatabase:
    """The SchemaLog fact store of a federation (5th component folded in).

    Every member table flattens into ``rel[tid: attr → val]`` facts whose
    relation component is the qualified ``db::table`` name — exactly how
    the extended language subsumes federated SchemaLog.
    """
    return SchemaLogDatabase.from_tabular(federation.flatten())
