"""Federations of tabular databases (paper, Section 4.2's closing remark).

"It is a simple matter to extend the tabular model and algebra in a way
that accounts for a federation of (tabular) databases.  Such an extended
language would trivially subsume SchemaLog (without function symbols)."

A federation is a finite mapping from *database names* to tabular
databases.  The extension to the algebra is exactly the paper's sketch:
statements address tables with qualified names ``db::table``, and the
flattening map — which prefixes every table name with its database name —
reduces federated programs to ordinary tabular algebra programs over one
database, so every result about the single-database language lifts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..core import (
    Name,
    SchemaError,
    Symbol,
    TabularDatabase,
    Table,
)

__all__ = ["TabularFederation", "qualified_name", "split_qualified"]

#: Separator used by the flattening map (``db::table``).
SEPARATOR = "::"


def qualified_name(db_name: str, table_name: Symbol) -> Name:
    """The flattened name of a table inside a federation member."""
    if not isinstance(table_name, Name):
        raise SchemaError(
            f"only name-named tables can be qualified, got {table_name!s}"
        )
    return Name(f"{db_name}{SEPARATOR}{table_name.text}")


def split_qualified(name: Symbol) -> tuple[str, Name] | None:
    """Invert :func:`qualified_name`; None when the name is unqualified."""
    if not isinstance(name, Name) or SEPARATOR not in name.text:
        return None
    db_name, _, table_text = name.text.partition(SEPARATOR)
    if not db_name or not table_text:
        return None
    return db_name, Name(table_text)


class TabularFederation:
    """An immutable mapping from database names to tabular databases."""

    __slots__ = ("_members",)

    def __init__(self, members: Mapping[str, TabularDatabase]):
        for db_name, db in members.items():
            if not db_name or SEPARATOR in db_name:
                raise SchemaError(f"invalid federation member name {db_name!r}")
            if not isinstance(db, TabularDatabase):
                raise SchemaError(f"{db_name!r} is not a TabularDatabase")
        object.__setattr__(self, "_members", dict(sorted(members.items())))

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("TabularFederation is immutable")

    def member(self, db_name: str) -> TabularDatabase:
        """One member database."""
        if db_name not in self._members:
            raise SchemaError(f"no federation member named {db_name!r}")
        return self._members[db_name]

    def names(self) -> tuple[str, ...]:
        """The member names, sorted."""
        return tuple(self._members)

    def __iter__(self) -> Iterator[tuple[str, TabularDatabase]]:
        return iter(self._members.items())

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, db_name: object) -> bool:
        return db_name in self._members

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TabularFederation) and other._members == self._members
        )

    def __hash__(self) -> int:
        return hash(tuple(self._members.items()))

    def with_member(self, db_name: str, db: TabularDatabase) -> "TabularFederation":
        """A federation with one member added or replaced."""
        members = dict(self._members)
        members[db_name] = db
        return TabularFederation(members)

    # ------------------------------------------------------------------
    # Flattening (the reduction to the single-database language)
    # ------------------------------------------------------------------

    def flatten(self) -> TabularDatabase:
        """One tabular database with ``db::table``-qualified names.

        Every member table must be name-named (anonymous tables cannot be
        addressed across a federation).
        """
        tables: list[Table] = []
        for db_name, db in self:
            for table in db.tables:
                tables.append(table.with_name(qualified_name(db_name, table.name)))
        return TabularDatabase(tables)

    @classmethod
    def unflatten(cls, db: TabularDatabase) -> "TabularFederation":
        """Rebuild a federation from a flattened database.

        Tables with unqualified names are rejected — they do not belong to
        any member.
        """
        members: dict[str, list[Table]] = {}
        for table in db.tables:
            parsed = split_qualified(table.name)
            if parsed is None:
                raise SchemaError(
                    f"table {table.name!s} is not qualified; not a flattened federation"
                )
            db_name, table_name = parsed
            members.setdefault(db_name, []).append(table.with_name(table_name))
        return cls({k: TabularDatabase(v) for k, v in members.items()})

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}({len(v)})" for k, v in self)
        return f"TabularFederation({inner})"
