"""Classification — grouping coordinate or attribute values into classes.

Classification is one of the two OLAP functionalities the paper lists as
ongoing work ("operations corresponding to classification and
summarization"); we implement it as the natural extension: a *classifier*
maps values to class symbols, a dimension can be reclassified (cells
aggregate within each class), and a relation-style table can gain a class
column to group by.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..core import (
    EvaluationError,
    Name,
    SchemaError,
    Symbol,
    Table,
    Value,
    coerce_symbol,
)
from .aggregates import agg_sum
from .cube import Cube

__all__ = [
    "mapping_classifier",
    "range_classifier",
    "classify_dimension",
    "classify_column",
    "Hierarchy",
]

Classifier = Callable[[Symbol], Symbol]


def mapping_classifier(classes: Mapping[object, object], default: object = None) -> Classifier:
    """A classifier from an explicit value → class mapping.

    Unmapped values fall to ``default`` (⊥ when None), so partial
    classifications behave like the inapplicable null everywhere else.
    """
    table = {coerce_symbol(k): coerce_symbol(v) for k, v in classes.items()}
    default_sym = coerce_symbol(default)

    def classify(symbol: Symbol) -> Symbol:
        return table.get(symbol, default_sym)

    return classify


def range_classifier(bounds: Sequence[float], labels: Sequence[object]) -> Classifier:
    """A numeric binning classifier.

    ``len(labels) == len(bounds) + 1``; value v falls in bin i where
    ``bounds[i-1] <= v < bounds[i]`` (the first bin is unbounded below,
    the last unbounded above).  Non-numeric or ⊥ inputs classify to ⊥.
    """
    if len(labels) != len(bounds) + 1:
        raise SchemaError(
            f"{len(bounds)} bounds require {len(bounds) + 1} labels, got {len(labels)}"
        )
    if list(bounds) != sorted(bounds):
        raise SchemaError(f"bounds must be non-decreasing: {bounds}")
    label_syms = [coerce_symbol(label) for label in labels]

    def classify(symbol: Symbol) -> Symbol:
        from ..core import NULL

        if not isinstance(symbol, Value) or not isinstance(symbol.payload, (int, float)):
            return NULL
        for i, bound in enumerate(bounds):
            if symbol.payload < bound:
                return label_syms[i]
        return label_syms[-1]

    return classify


def classify_dimension(
    cube: Cube,
    dim: str,
    classifier: Classifier,
    class_dim: str | None = None,
    agg: Callable = agg_sum,
) -> Cube:
    """Reclassify one dimension; cells aggregate within each class.

    Class coordinates appear in first-derivation order; a coordinate that
    classifies to ⊥ drops its cells (it has no class).
    """
    index = cube.dim_index(dim)
    new_dim = class_dim if class_dim is not None else dim
    class_of: dict[Symbol, Symbol] = {}
    class_order: list[Symbol] = []
    for coordinate in cube.coords[dim]:
        cls = classifier(coordinate)
        class_of[coordinate] = cls
        if not cls.is_null and cls not in class_order:
            class_order.append(cls)
    grouped: dict[tuple, list[Symbol]] = {}
    for key, value in cube.cells.items():
        cls = class_of[key[index]]
        if cls.is_null:
            continue
        new_key = key[:index] + (cls,) + key[index + 1 :]
        grouped.setdefault(new_key, []).append(value)
    dims = tuple(new_dim if d == dim else d for d in cube.dims)
    if len(set(dims)) != len(dims):
        raise SchemaError(f"class dimension name {new_dim!r} collides")
    coords = {
        (new_dim if d == dim else d): (class_order if d == dim else list(cube.coords[d]))
        for d in cube.dims
    }
    cells = {key: agg(values) for key, values in grouped.items()}
    return Cube(dims, coords, cells, cube.measure)


class Hierarchy:
    """A dimension hierarchy: named levels of successive classification.

    A hierarchy is an ordered list of ``(level_name, classifier)`` pairs,
    each mapping the previous level's coordinates to the next (e.g.
    region → zone → country).  ``rollup_to`` re-classifies a cube's
    dimension up to the requested level, aggregating along the way —
    multi-level roll-up, the standard OLAP drill path.
    """

    def __init__(self, dim: str, levels: Sequence[tuple[str, Classifier]]):
        if not levels:
            raise SchemaError("a hierarchy needs at least one level")
        names = [name for (name, _c) in levels]
        if len(set(names)) != len(names) or dim in names:
            raise SchemaError(f"hierarchy level names must be distinct: {names}")
        self.dim = dim
        self.levels = tuple(levels)

    def level_names(self) -> tuple[str, ...]:
        """The level names, base-most first."""
        return tuple(name for (name, _c) in self.levels)

    def rollup_to(self, cube: Cube, level: str, agg: Callable = agg_sum) -> Cube:
        """Roll the hierarchy's dimension up to ``level``."""
        current_dim = self.dim
        out = cube
        for name, classifier in self.levels:
            out = classify_dimension(out, current_dim, classifier, name, agg)
            current_dim = name
            if name == level:
                return out
        raise SchemaError(f"no hierarchy level named {level!r}")


def classify_column(
    table: Table, attr: str, classifier: Classifier, class_attr: str
) -> Table:
    """Append a class column computed from an existing column.

    The input must have exactly one column named ``attr``; the class of
    each row's entry lands under ``class_attr``.
    """
    columns = table.columns_named(Name(attr))
    if len(columns) != 1:
        raise EvaluationError(
            f"classification needs exactly one column named {attr!r}, found {len(columns)}"
        )
    source = columns[0]
    column: list[Symbol] = [Name(class_attr)]
    column += [classifier(table.entry(i, source)) for i in table.data_row_indices()]
    return table.append_columns([column])
