"""Bridges between cubes and tabular databases (paper, Section 4.3).

"Because of the natural fit between (2- or n-dimensional) tables and OLAP
matrices, tabular algebra can be used as a fundamental querying and
restructuring language for OLAP technology."  This module realizes the
fit: every ``SalesInfo`` shape of Figure 1 is one bridge away from the
cube —

* :func:`cube_to_relation_table` — the relational shape (``SalesInfo1``);
* :func:`cube_to_grouped_table` — one measure column per coordinate
  (``SalesInfo2``), computed **through the tabular algebra** (GROUP +
  CLEAN-UP + PURGE), demonstrating pivot = tabular restructuring;
* :func:`cube_to_matrix_table` — coordinates as attributes
  (``SalesInfo3``);
* :func:`cube_to_database` — one table per coordinate of a dimension
  (``SalesInfo4``), computed through the tabular SPLIT;
* :func:`matrix_table_to_cube` / :func:`relation_table_to_cube` — back.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..algebra import group_compact, split
from ..core import (
    NULL,
    Name,
    SchemaError,
    Symbol,
    Table,
    TabularDatabase,
)
from ..obs.runtime import OBS as _OBS, span as _span
from ..obs.trace import NULL_SPAN as _NULL_SPAN
from .cube import Cube

__all__ = [
    "cube_to_relation_table",
    "cube_to_grouped_table",
    "cube_to_matrix_table",
    "cube_to_database",
    "relation_table_to_cube",
    "matrix_table_to_cube",
]


def cube_to_relation_table(cube: Cube, name: str = "Facts") -> Table:
    """The relation-style fact table: one row per applicable cell."""
    with (_span("bridge.cube_to_relation_table", cells=len(cube.cells)) if _OBS.active else _NULL_SPAN):
        header: list[Symbol] = [Name(name)]
        header += [Name(d) for d in cube.dims]
        header.append(Name(cube.measure))
        grid = [header]
        for key in _ordered_keys(cube):
            grid.append([NULL, *key, cube.cells[key]])
        return Table(grid)


def _ordered_keys(cube: Cube) -> list[tuple[Symbol, ...]]:
    """Cell keys in dimension-coordinate order (deterministic)."""
    positions = {
        dim: {c: i for i, c in enumerate(cube.coords[dim])} for dim in cube.dims
    }

    def rank(key: tuple[Symbol, ...]) -> tuple[int, ...]:
        return tuple(positions[d][c] for d, c in zip(cube.dims, key))

    return sorted(cube.cells, key=rank)


def cube_to_grouped_table(
    cube: Cube, row_dim: str, col_dim: str, name: str = "Facts"
) -> Table:
    """The ``SalesInfo2`` shape, via the tabular algebra.

    Pivot *is* restructuring: the grouped table is
    ``GROUPCOMPACT by col_dim on measure`` applied to the relation-style
    fact table.  Only defined for two-dimensional cubes.
    """
    if cube.dims != (row_dim, col_dim) and cube.dims != (col_dim, row_dim):
        raise SchemaError(
            f"grouped bridge needs exactly the dimensions {(row_dim, col_dim)}, "
            f"cube has {cube.dims}"
        )
    with (_span("bridge.cube_to_grouped_table", row_dim=row_dim, col_dim=col_dim) if _OBS.active else _NULL_SPAN):
        relation = cube_to_relation_table(cube, name)
        return group_compact(relation, by=col_dim, on=cube.measure)


def cube_to_matrix_table(
    cube: Cube, row_dim: str, col_dim: str, name: str = "Facts"
) -> Table:
    """The ``SalesInfo3`` shape: coordinates as row/column attributes."""
    if set(cube.dims) != {row_dim, col_dim}:
        raise SchemaError(
            f"matrix bridge needs exactly the dimensions {(row_dim, col_dim)}, "
            f"cube has {cube.dims}"
        )
    rows = cube.coords[row_dim]
    cols = cube.coords[col_dim]
    row_index = cube.dim_index(row_dim)
    grid: list[list[Symbol]] = [[Name(name), *cols]]
    for r in rows:
        line: list[Symbol] = [r]
        for c in cols:
            key = (r, c) if row_index == 0 else (c, r)
            line.append(cube[key])
        grid.append(line)
    return Table(grid)


def cube_to_database(
    cube: Cube, split_dim: str, name: str = "Facts"
) -> TabularDatabase:
    """The ``SalesInfo4`` shape: one table per ``split_dim`` coordinate.

    Computed through the tabular SPLIT on the relation-style fact table —
    the paper's own route from the relational to the per-region shape.
    """
    with (_span("bridge.cube_to_database", split_dim=split_dim) if _OBS.active else _NULL_SPAN):
        relation = cube_to_relation_table(cube, name)
        return TabularDatabase(split(relation, on=split_dim))


def relation_table_to_cube(
    table: Table,
    dims: Sequence[str],
    measure: str,
    combine: Callable | None = None,
) -> Cube:
    """Read a cube out of a relation-style fact table."""
    with (_span("bridge.relation_table_to_cube", rows=table.height) if _OBS.active else _NULL_SPAN):
        return _relation_table_to_cube(table, dims, measure, combine)


def _relation_table_to_cube(
    table: Table,
    dims: Sequence[str],
    measure: str,
    combine: Callable | None = None,
) -> Cube:
    dim_cols = []
    for dim in dims:
        columns = table.columns_named(Name(dim))
        if len(columns) != 1:
            raise SchemaError(f"need exactly one column named {dim!r}")
        dim_cols.append(columns[0])
    measure_cols = table.columns_named(Name(measure))
    if len(measure_cols) != 1:
        raise SchemaError(f"need exactly one column named {measure!r}")
    facts = []
    for i in table.data_row_indices():
        facts.append(
            tuple(table.entry(i, j) for j in dim_cols)
            + (table.entry(i, measure_cols[0]),)
        )
    return Cube.from_facts(facts, dims, measure, combine)


def matrix_table_to_cube(
    table: Table, row_dim: str, col_dim: str, measure: str = "Value"
) -> Cube:
    """Read a cube out of a ``SalesInfo3``-shaped matrix table."""
    with (_span("bridge.matrix_table_to_cube", rows=table.height, cols=table.width) if _OBS.active else _NULL_SPAN):
        return _matrix_table_to_cube(table, row_dim, col_dim, measure)


def _matrix_table_to_cube(
    table: Table, row_dim: str, col_dim: str, measure: str = "Value"
) -> Cube:
    rows = table.row_attributes
    cols = table.column_attributes
    if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
        raise SchemaError("matrix tables need distinct row and column attributes")
    cells = {}
    for i in table.data_row_indices():
        for j in table.data_col_indices():
            entry = table.entry(i, j)
            if not entry.is_null:
                cells[(table.entry(i, 0), table.entry(0, j))] = entry
    return Cube(
        (row_dim, col_dim), {row_dim: rows, col_dim: cols}, cells, measure
    )
