"""OLAP on the tabular model (paper, Section 4.3).

n-dimensional cubes, slice/dice/roll-up/drill-down, the cube operator,
bridges realizing every ``SalesInfo`` shape of Figure 1, summarization,
classification, and spreadsheet-style analytics.
"""

from .aggregates import (
    AGGREGATES,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    aggregate,
)
from .bridge import (
    cube_to_database,
    cube_to_grouped_table,
    cube_to_matrix_table,
    cube_to_relation_table,
    matrix_table_to_cube,
    relation_table_to_cube,
)
from .classify import (
    Hierarchy,
    classify_column,
    classify_dimension,
    mapping_classifier,
    range_classifier,
)
from .cube import Cube
from .operations import TOTAL, cube_operator, drilldown
from .spreadsheet import (
    append_aggregate_column,
    append_aggregate_row,
    apply_external,
    block,
    block_aggregate,
    column_arithmetic,
    row_arithmetic,
)
from .summary import (
    database_with_totals,
    grouped_with_totals,
    matrix_with_totals,
    summary_relations,
)

__all__ = [
    "Cube",
    "TOTAL",
    "cube_operator",
    "drilldown",
    "AGGREGATES",
    "aggregate",
    "agg_sum",
    "agg_count",
    "agg_min",
    "agg_max",
    "agg_avg",
    "cube_to_relation_table",
    "cube_to_grouped_table",
    "cube_to_matrix_table",
    "cube_to_database",
    "relation_table_to_cube",
    "matrix_table_to_cube",
    "summary_relations",
    "grouped_with_totals",
    "matrix_with_totals",
    "database_with_totals",
    "mapping_classifier",
    "range_classifier",
    "classify_dimension",
    "classify_column",
    "Hierarchy",
    "block",
    "block_aggregate",
    "row_arithmetic",
    "column_arithmetic",
    "apply_external",
    "append_aggregate_row",
    "append_aggregate_column",
]
