"""Cube-level OLAP operations: the cube operator and drill-down.

The *cube operator* materializes every subtotal combination: each
dimension gains a ``Total`` coordinate, and a cell with ``Total`` in a set
of positions holds the aggregate over those dimensions.  This is exactly
the summary data the paper's Figure 1 absorbs into ``SalesInfo2`` –
``SalesInfo4`` (per-part totals, per-region totals, grand total 420).

Drill-down is the inverse direction of roll-up; information lost by
aggregation cannot be recreated, so :func:`drilldown` *validates* that a
finer cube refines a coarser one and returns the finer view.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable

from ..core import Name, SchemaError, Symbol, coerce_symbol
from .aggregates import agg_sum
from .cube import Cube

__all__ = ["cube_operator", "drilldown", "TOTAL"]

#: The canonical subtotal coordinate — a *name*, like the figure's label.
TOTAL = Name("Total")


def cube_operator(
    cube: Cube,
    agg: Callable = agg_sum,
    total: object = TOTAL,
) -> Cube:
    """Extend ``cube`` with all 2^n subtotal combinations.

    Every dimension's coordinate list gains ``total``; for each non-empty
    subset S of dimensions and each coordinate assignment of the others,
    the cell with ``total`` at the S positions holds the S-aggregate.
    """
    total_sym = coerce_symbol(total)
    for dim in cube.dims:
        if total_sym in cube.coords[dim]:
            raise SchemaError(
                f"dimension {dim!r} already uses the total coordinate {total_sym!s}"
            )
    coords = {dim: cube.coords[dim] + (total_sym,) for dim in cube.dims}
    cells: dict[tuple, Symbol] = dict(cube.cells)
    indices = range(len(cube.dims))
    for size in range(1, len(cube.dims) + 1):
        for subset in combinations(indices, size):
            grouped: dict[tuple, list[Symbol]] = {}
            for key, value in cube.cells.items():
                collapsed = tuple(
                    total_sym if i in subset else key[i] for i in indices
                )
                grouped.setdefault(collapsed, []).append(value)
            for key, values in grouped.items():
                cells[key] = agg(values)
    return Cube(cube.dims, coords, cells, cube.measure)


def drilldown(coarse: Cube, fine: Cube, dim: str, agg: Callable = agg_sum) -> Cube:
    """Validated drill-down: return ``fine`` if rolling ``dim`` back up
    reproduces ``coarse`` (raises otherwise).

    Aggregation discards detail, so drill-down needs the finer cube to be
    supplied (in a real system: fetched from storage); the validation is
    what makes the operation meaningful rather than a cast.
    """
    rolled = fine.rollup(dim, agg)
    if rolled.dims != coarse.dims:
        raise SchemaError(
            f"rolling up {dim!r} yields dimensions {rolled.dims}, "
            f"expected {coarse.dims}"
        )
    if rolled.cells != coarse.cells:
        raise SchemaError("the finer cube does not refine the coarse cube")
    return fine
