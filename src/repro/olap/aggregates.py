"""Aggregation functions over symbol collections.

OLAP summarization (Section 4.3; the paper's "classification and
summarization" ongoing work) needs aggregates over table entries.  These
operate on iterables of symbols: ⊥ entries are *inapplicable* and are
skipped (they denote absence, exactly as in the Figure 1 summaries, where
``nuts``' total 150 ignores the missing north cell); names are rejected
(aggregating over schema elements is a category error); the numeric
aggregates require numeric payloads.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core import EvaluationError, Name, Symbol, Value

__all__ = ["AGGREGATES", "aggregate", "agg_sum", "agg_count", "agg_min", "agg_max", "agg_avg"]


def _numeric_payloads(symbols: Iterable[Symbol], op: str) -> list:
    payloads = []
    for symbol in symbols:
        if symbol.is_null:
            continue
        if isinstance(symbol, Name):
            raise EvaluationError(f"{op}: cannot aggregate over the name {symbol!s}")
        if not isinstance(symbol, Value) or not isinstance(symbol.payload, (int, float)):
            raise EvaluationError(f"{op}: non-numeric entry {symbol!s}")
        payloads.append(symbol.payload)
    return payloads


def agg_sum(symbols: Iterable[Symbol]) -> Symbol:
    """Sum of the applicable entries (⊥ when none apply)."""
    payloads = _numeric_payloads(symbols, "sum")
    if not payloads:
        from ..core import NULL

        return NULL
    return Value(sum(payloads))


def agg_count(symbols: Iterable[Symbol]) -> Symbol:
    """Number of applicable (non-⊥) entries."""
    count = 0
    for symbol in symbols:
        if not symbol.is_null:
            count += 1
    return Value(count)


def agg_min(symbols: Iterable[Symbol]) -> Symbol:
    payloads = _numeric_payloads(symbols, "min")
    if not payloads:
        from ..core import NULL

        return NULL
    return Value(min(payloads))


def agg_max(symbols: Iterable[Symbol]) -> Symbol:
    payloads = _numeric_payloads(symbols, "max")
    if not payloads:
        from ..core import NULL

        return NULL
    return Value(max(payloads))


def agg_avg(symbols: Iterable[Symbol]) -> Symbol:
    payloads = _numeric_payloads(symbols, "avg")
    if not payloads:
        from ..core import NULL

        return NULL
    return Value(sum(payloads) / len(payloads))


#: Aggregates by name, for textual interfaces.
AGGREGATES: dict[str, Callable[[Iterable[Symbol]], Symbol]] = {
    "sum": agg_sum,
    "count": agg_count,
    "min": agg_min,
    "max": agg_max,
    "avg": agg_avg,
}


def aggregate(name: str, symbols: Iterable[Symbol]) -> Symbol:
    """Apply a named aggregate."""
    if name not in AGGREGATES:
        raise EvaluationError(f"unknown aggregate {name!r}")
    return AGGREGATES[name](symbols)
