"""Spreadsheet-style analytics on tables (the paper's OLTP/OLAP bridge).

The introduction's motivation: integrating database systems with
spreadsheets, which "have several powerful analytical functions built into
them.  Examples include row and column arithmetic, generalized aggregation
on arbitrary blocks of values drawn from tables, and the ability to invoke
external functions."  This module provides exactly those three families on
tabular-model tables:

* :func:`block` / :func:`block_aggregate` — rectangular regions and
  aggregation over them;
* :func:`row_arithmetic` / :func:`column_arithmetic` — derived
  rows/columns computed from existing ones;
* :func:`apply_external` — arbitrary Python functions over one column's
  values.

These functions intentionally step outside the generic tabular algebra —
they distinguish individual values, exactly like a spreadsheet formula —
which is why they live in the OLAP layer rather than in
:mod:`repro.algebra`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core import (
    NULL,
    EvaluationError,
    Name,
    SchemaError,
    Symbol,
    Table,
    Value,
    coerce_symbol,
)
from .aggregates import AGGREGATES, aggregate

__all__ = [
    "block",
    "block_aggregate",
    "row_arithmetic",
    "column_arithmetic",
    "apply_external",
    "append_aggregate_row",
    "append_aggregate_column",
]


def block(
    table: Table,
    rows: Sequence[int] | None = None,
    cols: Sequence[int] | None = None,
) -> list[Symbol]:
    """The values of a rectangular block (default: the whole data region)."""
    row_range = list(rows) if rows is not None else list(table.data_row_indices())
    col_range = list(cols) if cols is not None else list(table.data_col_indices())
    for i in row_range:
        if not 1 <= i < table.nrows:
            raise SchemaError(f"block row {i} out of data range")
    for j in col_range:
        if not 1 <= j < table.ncols:
            raise SchemaError(f"block column {j} out of data range")
    return [table.entry(i, j) for i in row_range for j in col_range]


def block_aggregate(
    table: Table,
    agg: str,
    rows: Sequence[int] | None = None,
    cols: Sequence[int] | None = None,
) -> Symbol:
    """Generalized aggregation over an arbitrary block of values."""
    return aggregate(agg, block(table, rows, cols))


def _payload(symbol: Symbol):
    if symbol.is_null:
        return None
    if isinstance(symbol, Value):
        return symbol.payload
    raise EvaluationError(f"arithmetic over the name {symbol!s} is undefined")


def row_arithmetic(
    table: Table,
    target: str,
    fn: Callable,
    sources: Sequence[str],
) -> Table:
    """Append a column computed row-wise from existing columns.

    ``fn`` receives one payload per source attribute (``None`` for ⊥) and
    returns a payload (or ``None`` for ⊥).  Each source attribute must
    name exactly one column.
    """
    source_cols = []
    for attr in sources:
        columns = table.columns_named(Name(attr))
        if len(columns) != 1:
            raise EvaluationError(
                f"row arithmetic needs exactly one column named {attr!r}, "
                f"found {len(columns)}"
            )
        source_cols.append(columns[0])
    column: list[Symbol] = [Name(target)]
    for i in table.data_row_indices():
        result = fn(*(_payload(table.entry(i, j)) for j in source_cols))
        column.append(coerce_symbol(result))
    return table.append_columns([column])


def column_arithmetic(
    table: Table,
    target: str,
    fn: Callable,
    sources: Sequence[str],
) -> Table:
    """Append a row computed column-wise from existing rows (the dual).

    Source attributes name *row* attributes; each must name exactly one
    row.  The new row's attribute is ``target``.
    """
    source_rows = []
    for attr in sources:
        rows = table.rows_named(Name(attr))
        if len(rows) != 1:
            raise EvaluationError(
                f"column arithmetic needs exactly one row named {attr!r}, "
                f"found {len(rows)}"
            )
        source_rows.append(rows[0])
    new_row: list[Symbol] = [Name(target)]
    for j in table.data_col_indices():
        result = fn(*(_payload(table.entry(i, j)) for i in source_rows))
        new_row.append(coerce_symbol(result))
    return table.append_rows([new_row])


def apply_external(table: Table, attr: str, fn: Callable) -> Table:
    """Invoke an external function over one column's values, in place.

    ⊥ entries pass through untouched; others are replaced by
    ``fn(payload)`` (coerced back to a symbol).
    """
    columns = table.columns_named(Name(attr))
    if len(columns) != 1:
        raise EvaluationError(
            f"external application needs exactly one column named {attr!r}, "
            f"found {len(columns)}"
        )
    target = columns[0]
    out = table
    for i in table.data_row_indices():
        entry = table.entry(i, target)
        if entry.is_null:
            continue
        out = out.with_entry(i, target, coerce_symbol(fn(_payload(entry))))
    return out


def append_aggregate_row(
    table: Table,
    agg: str,
    row_attr: str = "Total",
    attrs: Sequence[str] | None = None,
    over_rows: Sequence[str | None] | None = None,
) -> Table:
    """Append a summary row aggregating each data column.

    With ``attrs``, only columns carrying those attributes aggregate; the
    rest hold ⊥ (like the ⊥ under ``Part`` in ``SalesInfo2``'s Total row).
    With ``over_rows``, only entries from rows carrying those row
    attributes enter the aggregate — pass ``[None]`` to sum the plain data
    rows of a grouped table while skipping its Region-style header rows.
    ``None`` stands for the ⊥ attribute in both filters.
    """
    from ..core import attr_symbol

    wanted = {attr_symbol(a) for a in attrs} if attrs is not None else None
    row_filter = (
        {attr_symbol(a) for a in over_rows} if over_rows is not None else None
    )
    rows = [
        i
        for i in table.data_row_indices()
        if row_filter is None or table.entry(i, 0) in row_filter
    ]
    new_row: list[Symbol] = [Name(row_attr)]
    for j in table.data_col_indices():
        if wanted is not None and table.entry(0, j) not in wanted:
            new_row.append(NULL)
        else:
            new_row.append(aggregate(agg, (table.entry(i, j) for i in rows)))
    return table.append_rows([new_row])


def append_aggregate_column(
    table: Table, agg: str, col_attr: str, attrs: Sequence[str] | None = None
) -> Table:
    """Append a summary column aggregating each data row (the dual).

    With ``attrs``, only rows carrying those row attributes aggregate; the
    rest hold ⊥ (like the Region header row in ``SalesInfo2``).  ``None``
    inside ``attrs`` stands for the ⊥ attribute.
    """
    from ..core import attr_symbol

    wanted = {attr_symbol(a) for a in attrs} if attrs is not None else None
    column: list[Symbol] = [Name(col_attr)]
    for i in table.data_row_indices():
        if wanted is not None and table.entry(i, 0) not in wanted:
            column.append(NULL)
        else:
            column.append(aggregate(agg, table.data_row(i)))
    return table.append_columns([column])
