"""n-dimensional data cubes on the tabular model (paper, Section 4.3).

"Whereas the relational model organizes data along one dimension …, the
OLAP model allows data to be stored in the form of (n-dimensional)
matrices."  A :class:`Cube` is such a matrix: named dimensions, each with
an ordered coordinate list of symbols, and a partial mapping from full
coordinate tuples to measure values (⊥ cells are inapplicable, as in the
tables of Figure 1).

The tabular model generalizes to n dimensions exactly as the paper says;
operationally we keep the cube as the OLAP-facing structure and move in
and out of tables via :mod:`repro.olap.bridge` — "a tabular database can
be thought of as a three-dimensional table".
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..core import (
    NULL,
    EvaluationError,
    SchemaError,
    Symbol,
    coerce_symbol,
)
from .aggregates import agg_sum

__all__ = ["Cube"]

Coords = tuple[Symbol, ...]


class Cube:
    """An immutable n-dimensional cube of measure values.

    ``dims`` names the dimensions; ``coords[dim]`` is the ordered
    coordinate list; ``cells`` maps full coordinate tuples (one symbol per
    dimension, in ``dims`` order) to measure values.  Missing tuples are
    inapplicable (⊥).
    """

    __slots__ = ("dims", "coords", "cells", "measure")

    def __init__(
        self,
        dims: Iterable[str],
        coords: Mapping[str, Iterable[object]],
        cells: Mapping[tuple, object],
        measure: str = "Value",
    ):
        dims_tuple = tuple(dims)
        if len(set(dims_tuple)) != len(dims_tuple) or not dims_tuple:
            raise SchemaError(f"dimensions must be distinct and non-empty: {dims_tuple}")
        coord_map: dict[str, tuple[Symbol, ...]] = {}
        for dim in dims_tuple:
            if dim not in coords:
                raise SchemaError(f"no coordinates for dimension {dim!r}")
            coord_map[dim] = tuple(coerce_symbol(c) for c in coords[dim])
            if len(set(coord_map[dim])) != len(coord_map[dim]):
                raise SchemaError(f"duplicate coordinates in dimension {dim!r}")
        cell_map: dict[Coords, Symbol] = {}
        for key, value in cells.items():
            coords_key = tuple(coerce_symbol(c) for c in key)
            if len(coords_key) != len(dims_tuple):
                raise SchemaError(
                    f"cell key {key} has {len(coords_key)} coordinates for "
                    f"{len(dims_tuple)} dimensions"
                )
            for dim, coordinate in zip(dims_tuple, coords_key):
                if coordinate not in coord_map[dim]:
                    raise SchemaError(
                        f"coordinate {coordinate!s} not declared in dimension {dim!r}"
                    )
            symbol = coerce_symbol(value)
            if not symbol.is_null:
                cell_map[coords_key] = symbol
        object.__setattr__(self, "dims", dims_tuple)
        object.__setattr__(self, "coords", coord_map)
        object.__setattr__(self, "cells", cell_map)
        object.__setattr__(self, "measure", measure)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("Cube is immutable")

    # -- inspection -------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    def dim_index(self, dim: str) -> int:
        try:
            return self.dims.index(dim)
        except ValueError:
            raise SchemaError(f"no dimension named {dim!r}") from None

    def __getitem__(self, key: tuple) -> Symbol:
        """The cell at a coordinate tuple (⊥ when inapplicable)."""
        coords_key = tuple(coerce_symbol(c) for c in key)
        return self.cells.get(coords_key, NULL)

    def density(self) -> float:
        """Fraction of applicable cells."""
        total = 1
        for dim in self.dims:
            total *= len(self.coords[dim])
        return len(self.cells) / total if total else 0.0

    def values(self) -> list[Symbol]:
        """All applicable cell values (deterministic order)."""
        return [
            self.cells[key]
            for key in sorted(self.cells, key=lambda k: tuple(s.sort_key() for s in k))
        ]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Cube)
            and other.dims == self.dims
            and other.coords == self.coords
            and other.cells == self.cells
            and other.measure == self.measure
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.dims,
                tuple(sorted((d, c) for d, c in self.coords.items())),
                frozenset(self.cells.items()),
                self.measure,
            )
        )

    def __repr__(self) -> str:
        shape = "x".join(str(len(self.coords[d])) for d in self.dims)
        return f"Cube({', '.join(self.dims)}; shape {shape}; {len(self.cells)} cells)"

    # -- construction -----------------------------------------------------

    @classmethod
    def from_facts(
        cls,
        facts: Iterable[tuple],
        dims: Iterable[str],
        measure: str = "Value",
        combine: Callable | None = None,
    ) -> "Cube":
        """Build a cube from (coord…, value) fact rows.

        Coordinates are collected in first-appearance order.  Duplicate
        coordinate tuples are an error unless ``combine`` (e.g.
        :func:`repro.olap.aggregates.agg_sum`) merges them.
        """
        dims_tuple = tuple(dims)
        coord_lists: dict[str, list[Symbol]] = {d: [] for d in dims_tuple}
        collected: dict[Coords, list[Symbol]] = {}
        for fact in facts:
            if len(fact) != len(dims_tuple) + 1:
                raise SchemaError(
                    f"fact {fact} does not match {len(dims_tuple)} dimensions + measure"
                )
            key = tuple(coerce_symbol(c) for c in fact[:-1])
            for dim, coordinate in zip(dims_tuple, key):
                if coordinate not in coord_lists[dim]:
                    coord_lists[dim].append(coordinate)
            collected.setdefault(key, []).append(coerce_symbol(fact[-1]))
        cells: dict[Coords, Symbol] = {}
        for key, values in collected.items():
            if len(values) == 1:
                cells[key] = values[0]
            elif combine is None:
                raise EvaluationError(
                    f"duplicate coordinates {tuple(str(s) for s in key)}; "
                    "pass combine= to aggregate"
                )
            else:
                cells[key] = combine(values)
        return cls(dims_tuple, coord_lists, cells, measure)

    # -- core cube operations ---------------------------------------------

    def slice(self, dim: str, coordinate: object) -> "Cube":
        """Fix one dimension at a coordinate; the result drops it."""
        if self.arity == 1:
            raise SchemaError("cannot slice a one-dimensional cube away entirely")
        index = self.dim_index(dim)
        coordinate_sym = coerce_symbol(coordinate)
        if coordinate_sym not in self.coords[dim]:
            raise SchemaError(f"coordinate {coordinate_sym!s} not in dimension {dim!r}")
        rest = tuple(d for d in self.dims if d != dim)
        cells = {
            key[:index] + key[index + 1 :]: value
            for key, value in self.cells.items()
            if key[index] == coordinate_sym
        }
        return Cube(rest, {d: self.coords[d] for d in rest}, cells, self.measure)

    def dice(self, selections: Mapping[str, Iterable[object]]) -> "Cube":
        """Restrict dimensions to coordinate subsets (dims are kept)."""
        keep: dict[str, tuple[Symbol, ...]] = {}
        for dim in self.dims:
            if dim in selections:
                wanted = [coerce_symbol(c) for c in selections[dim]]
                unknown = [c for c in wanted if c not in self.coords[dim]]
                if unknown:
                    raise SchemaError(
                        f"unknown coordinates {[str(c) for c in unknown]} in {dim!r}"
                    )
                keep[dim] = tuple(c for c in self.coords[dim] if c in wanted)
            else:
                keep[dim] = self.coords[dim]
        cells = {
            key: value
            for key, value in self.cells.items()
            if all(c in keep[d] for d, c in zip(self.dims, key))
        }
        return Cube(self.dims, keep, cells, self.measure)

    def rollup(
        self, dim: str, agg: Callable = agg_sum
    ) -> "Cube":
        """Aggregate a dimension away (sum by default)."""
        if self.arity == 1:
            raise SchemaError("cannot roll up a one-dimensional cube; use total()")
        index = self.dim_index(dim)
        rest = tuple(d for d in self.dims if d != dim)
        grouped: dict[Coords, list[Symbol]] = {}
        for key, value in self.cells.items():
            grouped.setdefault(key[:index] + key[index + 1 :], []).append(value)
        cells = {key: agg(values) for key, values in grouped.items()}
        return Cube(rest, {d: self.coords[d] for d in rest}, cells, self.measure)

    def total(self, agg: Callable = agg_sum) -> Symbol:
        """The grand aggregate over every applicable cell."""
        return agg(self.cells.values())
