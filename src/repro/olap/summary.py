"""Summarization — regenerating the Figure 1 summary data from the cube.

The paper's motivating example: summary data (per-part totals, per-region
totals, the grand total 420) "can come from, e.g., OLAP tools"; the
relational model is *forced* to keep it in separate relations, while the
tabular representations absorb it in place.  This module computes both
forms from a two-dimensional cube via roll-up and the cube operator:

* :func:`summary_relations` — the separate ``TotalPartSales`` /
  ``TotalRegionSales`` / ``GrandTotal`` relations of ``SalesInfo1``;
* :func:`grouped_with_totals` — ``SalesInfo2``'s single table with the
  extra ``Sold``/Total column and ``Total`` row;
* :func:`matrix_with_totals` — ``SalesInfo3`` with Total row and column;
* :func:`database_with_totals` — ``SalesInfo4`` with per-table ``Total``
  rows plus the extra table for the literal ``Total`` region.

Each output is validated in the test-suite against the *printed* figure.
"""

from __future__ import annotations

from typing import Callable

from ..core import (
    NULL,
    Name,
    SchemaError,
    Symbol,
    Table,
    TabularDatabase,
)
from .aggregates import agg_sum
from .bridge import cube_to_grouped_table, cube_to_matrix_table, cube_to_relation_table
from .cube import Cube
from .operations import TOTAL, cube_operator

__all__ = [
    "summary_relations",
    "grouped_with_totals",
    "matrix_with_totals",
    "database_with_totals",
]


def _require_2d(cube: Cube) -> None:
    if cube.arity != 2:
        raise SchemaError(f"summaries are defined on 2-d cubes, got {cube.arity}-d")


def summary_relations(
    cube: Cube, agg: Callable = agg_sum, total_attr: str = "Total"
) -> TabularDatabase:
    """The separate summary relations of ``SalesInfo1``.

    For a cube over dimensions (D1, D2): ``TotalD1<measure-relation>``
    style naming follows the figure — ``Total<dim><measure>s`` is overly
    clever, so the figure's own names are used for the sales dimensions
    and a generic ``Total<dim>`` otherwise.
    """
    _require_2d(cube)
    tables = []
    for dim in cube.dims:
        other = next(d for d in cube.dims if d != dim)
        rolled = cube.rollup(other, agg)
        rel_name = _summary_name(dim, cube.measure)
        header: list[Symbol] = [Name(rel_name), Name(dim), Name(total_attr)]
        grid = [header]
        for coordinate in rolled.coords[dim]:
            value = rolled[(coordinate,)]
            if not value.is_null:
                grid.append([NULL, coordinate, value])
        tables.append(Table(grid))
    grand = Table(
        [
            [Name("GrandTotal"), Name(total_attr)],
            [NULL, cube.total(agg)],
        ]
    )
    tables.append(grand)
    return TabularDatabase(tables)


def _summary_name(dim: str, measure: str) -> str:
    # the figure names them TotalPartSales / TotalRegionSales
    if measure == "Sold":
        return f"Total{dim}Sales"
    return f"Total{dim}{measure}"


def grouped_with_totals(
    cube: Cube,
    row_dim: str,
    col_dim: str,
    name: str = "Facts",
    agg: Callable = agg_sum,
) -> Table:
    """``SalesInfo2`` with its summary column and row, from the cube operator."""
    _require_2d(cube)
    extended = cube_operator(cube, agg)
    # Build the grouped shape for the extended coordinate lists directly:
    # one measure column per col_dim coordinate (Total last), one data row
    # per row_dim coordinate plus the Total row.
    rows = extended.coords[row_dim]
    cols = extended.coords[col_dim]
    row_index = extended.dim_index(row_dim)
    measure = Name(cube.measure)
    header: list[Symbol] = [Name(name), Name(row_dim)] + [measure] * len(cols)
    coord_row: list[Symbol] = [Name(col_dim), NULL] + list(cols)
    grid = [header, coord_row]
    for r in rows:
        attr: Symbol = r if r == TOTAL else NULL
        value_cell: Symbol = NULL if r == TOTAL else r
        line: list[Symbol] = [attr, value_cell]
        for c in cols:
            key = (r, c) if row_index == 0 else (c, r)
            line.append(extended[key])
        grid.append(line)
    return Table(grid)


def matrix_with_totals(
    cube: Cube,
    row_dim: str,
    col_dim: str,
    name: str = "Facts",
    agg: Callable = agg_sum,
) -> Table:
    """``SalesInfo3`` with its Total row and column, from the cube operator."""
    _require_2d(cube)
    extended = cube_operator(cube, agg)
    return cube_to_matrix_table(extended, row_dim, col_dim, name)


def database_with_totals(
    cube: Cube,
    split_dim: str,
    name: str = "Facts",
    agg: Callable = agg_sum,
) -> TabularDatabase:
    """``SalesInfo4`` with per-table Total rows and the Total-region table."""
    _require_2d(cube)
    other = next(d for d in cube.dims if d != split_dim)
    extended = cube_operator(cube, agg)
    split_index = extended.dim_index(split_dim)
    measure = Name(cube.measure)
    tables = []
    for coordinate in extended.coords[split_dim]:
        grid: list[list[Symbol]] = [
            [Name(name), Name(other), measure],
            [Name(split_dim), coordinate, coordinate],
        ]
        for other_coord in extended.coords[other]:
            key = (
                (coordinate, other_coord)
                if split_index == 0
                else (other_coord, coordinate)
            )
            value = extended[key]
            if value.is_null:
                continue
            if other_coord == TOTAL:
                grid.append([TOTAL, NULL, value])
            else:
                grid.append([NULL, other_coord, value])
        tables.append(Table(grid))
    return TabularDatabase(tables)
