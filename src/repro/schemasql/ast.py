"""SchemaSQL_d — an SQL surface for schema-transparent querying.

The paper points to SchemaSQL [13] ("an extension to SQL … inspired by
SchemaLog, for facilitating interoperability"); this package implements
the single-database dialect matching the SchemaLog_d fragment of
Theorem 4.5.  The distinguishing feature survives intact: FROM items may
range over *relation names* and *attribute names*, not just tuples::

    SELECT R AS region, T.part AS part, T.sold AS sold
    INTO   sales
    FROM   -> R, R T
    WHERE  R <> 'summary'

Declarations (``FROM``):

* ``-> R``        — R ranges over the database's relation names;
* ``east T``      — T ranges over the tuples of relation ``east``;
* ``R T``         — T ranges over the tuples of the relation R is bound to;
* ``east -> A``   — A ranges over the attribute names of ``east``;
* ``R -> A``      — A ranges over the attributes of R's relation.

Select/condition expressions: ``T.attr``, ``T.A`` (attribute variable),
``R`` / ``A`` (the bound name itself, as a value of the result), and
literals.  Conditions are ``=`` / ``<>`` conjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion

from ..core import Symbol

__all__ = [
    "RelVarDecl",
    "TupleVarDecl",
    "AttrVarDecl",
    "FromItem",
    "ColumnRef",
    "VarRef",
    "Literal",
    "Expression",
    "Condition",
    "SelectItem",
    "SchemaSQLQuery",
]


@dataclass(frozen=True)
class RelVarDecl:
    """``-> R`` — a variable over relation names."""

    var: str


@dataclass(frozen=True)
class TupleVarDecl:
    """``rel T`` or ``R T`` — a tuple variable over a relation.

    ``source`` is the literal relation name (str) or the name of a
    relation variable (marked by ``source_is_var``).
    """

    source: str
    var: str
    source_is_var: bool = False


@dataclass(frozen=True)
class AttrVarDecl:
    """``rel -> A`` or ``R -> A`` — a variable over attribute names."""

    source: str
    var: str
    source_is_var: bool = False


FromItem = TypingUnion[RelVarDecl, TupleVarDecl, AttrVarDecl]


@dataclass(frozen=True)
class ColumnRef:
    """``T.attr`` or ``T.A`` — a tuple variable's component.

    ``attr`` is a literal attribute name (str) or an attribute variable's
    name (marked by ``attr_is_var``).
    """

    tuple_var: str
    attr: str
    attr_is_var: bool = False


@dataclass(frozen=True)
class VarRef:
    """A relation- or attribute-name variable used as a value."""

    var: str


@dataclass(frozen=True)
class Literal:
    """A constant value."""

    symbol: Symbol


Expression = TypingUnion[ColumnRef, VarRef, Literal]


@dataclass(frozen=True)
class Condition:
    """``left op right`` with op ∈ {=, <>}."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in ("=", "<>"):
            raise ValueError(f"unsupported condition operator {self.op!r}")


@dataclass(frozen=True)
class SelectItem:
    """``expression AS name``."""

    expression: Expression
    alias: str


@dataclass(frozen=True)
class SchemaSQLQuery:
    """A full ``SELECT … INTO … FROM … [WHERE …]`` query."""

    select: tuple[SelectItem, ...]
    into: str
    from_items: tuple[FromItem, ...]
    where: tuple[Condition, ...] = ()

    def __post_init__(self):
        aliases = [item.alias for item in self.select]
        if len(set(aliases)) != len(aliases):
            raise ValueError(f"duplicate output column names {aliases}")
        if not self.select or not self.from_items:
            raise ValueError("SELECT and FROM must be non-empty")
