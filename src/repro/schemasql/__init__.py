"""SchemaSQL_d — the SQL face of SchemaLog (paper reference [13]).

A single-database dialect whose FROM items range over relation and
attribute names; evaluated natively over a fact store and compilable into
tabular algebra through the Theorem 4.1/4.5 machinery.
"""

from .ast import (
    AttrVarDecl,
    ColumnRef,
    Condition,
    Expression,
    FromItem,
    Literal,
    RelVarDecl,
    SchemaSQLQuery,
    SelectItem,
    TupleVarDecl,
    VarRef,
)
from .compile_ta import compile_to_fw, compile_to_ta, query_to_expression
from .evaluate import QueryInfo, evaluate_query, validate_query
from .parser import parse_schemasql

__all__ = [
    "SchemaSQLQuery",
    "SelectItem",
    "RelVarDecl",
    "TupleVarDecl",
    "AttrVarDecl",
    "FromItem",
    "ColumnRef",
    "VarRef",
    "Literal",
    "Expression",
    "Condition",
    "parse_schemasql",
    "evaluate_query",
    "validate_query",
    "QueryInfo",
    "query_to_expression",
    "compile_to_fw",
    "compile_to_ta",
]
