"""Parser for the SchemaSQL_d surface syntax.

Grammar (keywords case-insensitive; identifiers follow the logic-
programming convention — capitalized = variable, lower-case = name)::

    query    = "SELECT" selitem {"," selitem}
               "INTO" NAME
               "FROM" fromitem {"," fromitem}
               [ "WHERE" cond { "AND" cond } ] ;
    selitem  = expr "AS" NAME ;
    fromitem = "->" VAR                 (relation-name variable)
             | NAME VAR                 (tuple variable over a relation)
             | VAR VAR                  (tuple variable over a rel-var)
             | NAME "->" VAR            (attribute variable)
             | VAR "->" VAR ;
    expr     = VAR "." NAME | VAR "." VAR | VAR | NAME? no — bare names
               are not expressions; use quoted literals | STRING | NUMBER ;
    cond     = expr ("=" | "<>") expr ;
"""

from __future__ import annotations

import re

from ..core import ParseError, Value
from .ast import (
    AttrVarDecl,
    ColumnRef,
    Condition,
    Expression,
    FromItem,
    Literal,
    RelVarDecl,
    SchemaSQLQuery,
    SelectItem,
    TupleVarDecl,
    VarRef,
)

__all__ = ["parse_schemasql"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<arrow>->)
  | (?P<neq><>)
  | (?P<number>-?[0-9]+(?:\.[0-9]+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[,.=()])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "into", "from", "where", "as", "and"}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup or ""
        chunk = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, chunk, line))
        line += chunk.count("\n")
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


def _is_var(text: str) -> bool:
    return text[0].isupper() or text[0] == "_"


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text.lower() == word

    def expect_keyword(self, word: str) -> None:
        if not self.at_keyword(word):
            token = self.peek()
            raise ParseError(
                f"expected {word.upper()}, found {token.text or 'end of input'!r}",
                token.line,
            )
        self.advance()

    def expect_ident(self, variable: bool | None = None) -> str:
        token = self.peek()
        if token.kind != "ident" or token.text.lower() in _KEYWORDS:
            raise ParseError(
                f"expected an identifier, found {token.text or 'end of input'!r}",
                token.line,
            )
        if variable is True and not _is_var(token.text):
            raise ParseError(f"expected a variable, found {token.text!r}", token.line)
        if variable is False and _is_var(token.text):
            raise ParseError(f"expected a name, found {token.text!r}", token.line)
        return self.advance().text

    # -- grammar -----------------------------------------------------------

    def parse_query(self) -> SchemaSQLQuery:
        self.expect_keyword("select")
        select = [self.parse_select_item()]
        while self.peek().kind == "sym" and self.peek().text == ",":
            self.advance()
            select.append(self.parse_select_item())
        self.expect_keyword("into")
        into = self.expect_ident(variable=False)
        self.expect_keyword("from")
        from_items = [self.parse_from_item()]
        while self.peek().kind == "sym" and self.peek().text == ",":
            self.advance()
            from_items.append(self.parse_from_item())
        where: list[Condition] = []
        if self.at_keyword("where"):
            self.advance()
            where.append(self.parse_condition())
            while self.at_keyword("and"):
                self.advance()
                where.append(self.parse_condition())
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(f"trailing input {token.text!r}", token.line)
        try:
            return SchemaSQLQuery(tuple(select), into, tuple(from_items), tuple(where))
        except ValueError as exc:
            raise ParseError(str(exc)) from exc

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        self.expect_keyword("as")
        alias = self.expect_ident(variable=False)
        return SelectItem(expression, alias)

    def parse_from_item(self) -> FromItem:
        token = self.peek()
        if token.kind == "arrow":
            self.advance()
            return RelVarDecl(self.expect_ident(variable=True))
        source = self.expect_ident()
        source_is_var = _is_var(source)
        if self.peek().kind == "arrow":
            self.advance()
            return AttrVarDecl(source, self.expect_ident(variable=True), source_is_var)
        return TupleVarDecl(source, self.expect_ident(variable=True), source_is_var)

    def parse_expression(self) -> Expression:
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return Literal(Value(token.text[1:-1]))
        if token.kind == "number":
            self.advance()
            number = float(token.text) if "." in token.text else int(token.text)
            return Literal(Value(number))
        name = self.expect_ident(variable=True)
        if self.peek().kind == "sym" and self.peek().text == ".":
            self.advance()
            attr = self.expect_ident()
            return ColumnRef(name, attr, attr_is_var=_is_var(attr))
        return VarRef(name)

    def parse_condition(self) -> Condition:
        left = self.parse_expression()
        token = self.peek()
        if token.kind == "neq":
            op = "<>"
            self.advance()
        elif token.kind == "sym" and token.text == "=":
            op = "="
            self.advance()
        else:
            raise ParseError(
                f"expected = or <>, found {token.text or 'end of input'!r}", token.line
            )
        right = self.parse_expression()
        return Condition(op, left, right)


def parse_schemasql(text: str) -> SchemaSQLQuery:
    """Parse one SchemaSQL_d query."""
    return _Parser(text).parse_query()
