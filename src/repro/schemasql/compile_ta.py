"""Compiling SchemaSQL_d into the tabular algebra.

The same route as Theorem 4.5: a query is a conjunctive expression over
the flattened ``Facts(Rel, Tid, Attr, Val)`` relation, compiled through
FO + while + new (here: FO only — SchemaSQL_d queries are nonrecursive)
into tabular algebra by the Theorem 4.1 compiler.

Copy plan: one ``Facts`` copy per access pair (tuple variable × attribute
term), plus one anchor copy for every tuple variable, relation variable,
or attribute variable that no access pair covers.  Shared variables become
equality selections; literal relation/attribute names become constant
selections; WHERE ``=``/``<>`` become (differences over) selections; the
SELECT list projects, renames to the aliases, and extends with constant
columns for literals.
"""

from __future__ import annotations

from ..core import EvaluationError, Name, Symbol
from ..algebra.programs import Program
from ..relational import (
    Assign,
    ConstColumn,
    Difference,
    Expr,
    FWProgram,
    Product,
    Project,
    Rel,
    RenameAttr,
    SelectConst,
    SelectEq,
    compile_program as compile_fw_to_ta,
)
from ..schemalog import FACTS_SCHEMA
from .ast import (
    AttrVarDecl,
    ColumnRef,
    Condition,
    Expression,
    Literal,
    RelVarDecl,
    SchemaSQLQuery,
    TupleVarDecl,
    VarRef,
)
from .evaluate import QueryInfo, validate_query

__all__ = ["query_to_expression", "compile_to_fw", "compile_to_ta"]

FACTS = "Facts"


class _Plan:
    """Columns of the big conjunctive expression."""

    def __init__(self, info: QueryInfo):
        self.info = info
        self.copies: list[dict] = []  # one entry per Facts copy
        self.pair_column: dict[tuple, str] = {}  # access pair -> V column
        self.var_column: dict[str, str] = {}  # rel/attr var -> column

    def new_copy(self) -> tuple[str, str, str, str]:
        index = len(self.copies)
        columns = (f"R{index}", f"T{index}", f"A{index}", f"V{index}")
        self.copies.append({})
        return columns


def _build_expression(info: QueryInfo) -> tuple[Expr, _Plan]:
    plan = _Plan(info)
    equalities: list[tuple[str, str]] = []
    constants: list[tuple[str, Symbol]] = []

    tuple_rel_col: dict[str, str] = {}
    tuple_tid_col: dict[str, str] = {}

    def anchor_tuple_var(var: str, rel_col: str, tid_col: str) -> None:
        decl = info.tuple_vars[var]
        if var in tuple_tid_col:
            equalities.append((tuple_tid_col[var], tid_col))
            equalities.append((tuple_rel_col[var], rel_col))
            return
        tuple_tid_col[var] = tid_col
        tuple_rel_col[var] = rel_col
        if decl.source_is_var:
            if decl.source in plan.var_column:
                equalities.append((plan.var_column[decl.source], rel_col))
            else:
                plan.var_column[decl.source] = rel_col
        else:
            constants.append((rel_col, Name(decl.source)))

    expr: Expr | None = None

    def add_copy() -> tuple[str, str, str, str]:
        nonlocal expr
        columns = plan.new_copy()
        copy: Expr = Rel(FACTS)
        for attr, column in zip(FACTS_SCHEMA, columns):
            copy = RenameAttr(copy, attr, column)
        expr = copy if expr is None else Product(expr, copy)
        return columns

    # one copy per access pair
    for pair in info.access_pairs:
        tuple_var, attr, attr_is_var = pair
        rel_col, tid_col, attr_col, val_col = add_copy()
        anchor_tuple_var(tuple_var, rel_col, tid_col)
        plan.pair_column[pair] = val_col
        if attr_is_var:
            if attr in plan.var_column:
                equalities.append((plan.var_column[attr], attr_col))
            else:
                plan.var_column[attr] = attr_col
                # tie the attribute variable to its declared source below
        else:
            constants.append((attr_col, Name(attr)))

    # anchors for tuple variables never accessed
    for var in info.tuple_vars:
        if var not in tuple_tid_col:
            rel_col, tid_col, _attr_col, _val_col = add_copy()
            anchor_tuple_var(var, rel_col, tid_col)

    # anchors and domain constraints for attribute variables
    for var, decl in info.attr_vars.items():
        rel_col, _tid_col, attr_col, _val_col = add_copy()
        if var in plan.var_column:
            equalities.append((plan.var_column[var], attr_col))
        else:
            plan.var_column[var] = attr_col
        if decl.source_is_var:
            if decl.source in plan.var_column:
                equalities.append((plan.var_column[decl.source], rel_col))
            else:
                plan.var_column[decl.source] = rel_col
        else:
            constants.append((rel_col, Name(decl.source)))

    # anchors for relation variables never touched
    for var in info.rel_vars:
        if var not in plan.var_column:
            rel_col, _tid_col, _attr_col, _val_col = add_copy()
            plan.var_column[var] = rel_col

    assert expr is not None  # queries have at least one FROM item
    for column, symbol in constants:
        expr = SelectConst(expr, column, symbol)
    for left, right in equalities:
        expr = SelectEq(expr, left, right)
    return expr, plan


def _expression_column(expression: Expression, plan: _Plan) -> str | None:
    """The column an expression reads, or None for literals."""
    if isinstance(expression, Literal):
        return None
    if isinstance(expression, VarRef):
        return plan.var_column[expression.var]
    assert isinstance(expression, ColumnRef)
    return plan.pair_column[
        (expression.tuple_var, expression.attr, expression.attr_is_var)
    ]


def _apply_condition(expr: Expr, condition: Condition, plan: _Plan) -> Expr:
    left_col = _expression_column(condition.left, plan)
    right_col = _expression_column(condition.right, plan)

    def equal(e: Expr) -> Expr:
        if left_col is None and right_col is None:
            same = condition.left.symbol == condition.right.symbol  # type: ignore[union-attr]
            return e if same else Difference(e, e)
        if left_col is None:
            return SelectConst(e, right_col, condition.left.symbol)  # type: ignore[union-attr]
        if right_col is None:
            return SelectConst(e, left_col, condition.right.symbol)  # type: ignore[union-attr]
        return SelectEq(e, left_col, right_col)

    if condition.op == "=":
        return equal(expr)
    return Difference(expr, equal(expr))


def query_to_expression(query: SchemaSQLQuery) -> Expr:
    """The relational expression computing the query's result.

    Output schema: the SELECT aliases, in order.
    """
    info = validate_query(query)
    expr, plan = _build_expression(info)
    for condition in query.where:
        expr = _apply_condition(expr, condition, plan)

    used: list[str] = []
    slots: list[tuple[str, str]] = []  # (alias, source column)
    const_slots: list[tuple[str, Symbol]] = []
    duplicates = 0
    for item in query.select:
        column = _expression_column(item.expression, plan)
        if column is None:
            const_slots.append((item.alias, item.expression.symbol))  # type: ignore[union-attr]
            continue
        if column in used:
            dup = f"D{duplicates}"
            duplicates += 1
            copy = RenameAttr(Project(expr, [column]), column, dup)
            expr = SelectEq(Product(expr, copy), column, dup)
            column = dup
        used.append(column)
        slots.append((item.alias, column))

    expr = Project(expr, [column for (_a, column) in slots])
    for alias, column in slots:
        expr = RenameAttr(expr, column, alias)
    for alias, symbol in const_slots:
        expr = ConstColumn(expr, alias, symbol)
    return Project(expr, [item.alias for item in query.select])


def compile_to_fw(query: SchemaSQLQuery) -> FWProgram:
    """The FO + while + new program binding the INTO relation."""
    from ..obs.runtime import OBS as _OBS, span as _span
    from ..obs.trace import NULL_SPAN as _NULL_SPAN
    from ..runtime.governor import GOV as _GOV

    if _GOV.active and _GOV.governor is not None:
        _GOV.governor.check(op="compile.schemasql")
    with (
        _span(
            "compile.schemasql",
            select_items=len(query.select),
            conditions=len(query.where),
        )
        if _OBS.active
        else _NULL_SPAN
    ):
        return FWProgram([Assign(query.into, query_to_expression(query))])


def compile_to_ta(query: SchemaSQLQuery) -> Program:
    """The tabular algebra program computing the query over ``Facts``."""
    return compile_fw_to_ta(compile_to_fw(query), {FACTS: FACTS_SCHEMA})
