"""Native evaluation of SchemaSQL_d queries over a SchemaLog fact store.

Bindings are enumerated FROM-item by FROM-item (relation-name variables
over the store's relation names, tuple variables over a relation's tuple
ids, attribute variables over a relation's attribute names), then every
query expression resolves against the facts; a tuple-variable component
that is
absent makes the binding drop (inner-join semantics).  Results carry set
semantics and land in a classical :class:`~repro.relational.Relation`
named by the INTO clause.
"""

from __future__ import annotations

from typing import Iterator

from ..core import EvaluationError, Name, Symbol
from ..relational import Relation
from ..schemalog import SchemaLogDatabase
from .ast import (
    AttrVarDecl,
    ColumnRef,
    Condition,
    Expression,
    Literal,
    RelVarDecl,
    SchemaSQLQuery,
    TupleVarDecl,
    VarRef,
)

__all__ = ["evaluate_query", "validate_query", "QueryInfo"]


class QueryInfo:
    """Validated variable classification for one query."""

    def __init__(self, query: SchemaSQLQuery):
        self.query = query
        self.rel_vars: set[str] = set()
        self.tuple_vars: dict[str, TupleVarDecl] = {}
        self.attr_vars: dict[str, AttrVarDecl] = {}
        declared: set[str] = set()
        for item in query.from_items:
            if isinstance(item, RelVarDecl):
                self._declare(declared, item.var)
                self.rel_vars.add(item.var)
            elif isinstance(item, TupleVarDecl):
                if item.source_is_var and item.source not in self.rel_vars:
                    raise EvaluationError(
                        f"tuple variable {item.var} ranges over undeclared "
                        f"relation variable {item.source}"
                    )
                self._declare(declared, item.var)
                self.tuple_vars[item.var] = item
            elif isinstance(item, AttrVarDecl):
                if item.source_is_var and item.source not in self.rel_vars:
                    raise EvaluationError(
                        f"attribute variable {item.var} ranges over undeclared "
                        f"relation variable {item.source}"
                    )
                self._declare(declared, item.var)
                self.attr_vars[item.var] = item
        for expression in self._expressions():
            self._check_expression(expression)
        # every access pair (tuple var, attribute term) used anywhere
        self.access_pairs: list[tuple[str, str, bool]] = []
        for expression in self._expressions():
            if isinstance(expression, ColumnRef):
                key = (expression.tuple_var, expression.attr, expression.attr_is_var)
                if key not in self.access_pairs:
                    self.access_pairs.append(key)

    @staticmethod
    def _declare(declared: set[str], var: str) -> None:
        if var in declared:
            raise EvaluationError(f"variable {var} declared twice")
        declared.add(var)

    def _expressions(self) -> Iterator[Expression]:
        for item in self.query.select:
            yield item.expression
        for condition in self.query.where:
            yield condition.left
            yield condition.right

    def _check_expression(self, expression: Expression) -> None:
        if isinstance(expression, Literal):
            return
        if isinstance(expression, VarRef):
            if expression.var not in self.rel_vars | set(self.attr_vars):
                raise EvaluationError(
                    f"{expression.var} is not a relation or attribute variable"
                )
            return
        if isinstance(expression, ColumnRef):
            if expression.tuple_var not in self.tuple_vars:
                raise EvaluationError(
                    f"{expression.tuple_var} is not a tuple variable"
                )
            if expression.attr_is_var and expression.attr not in self.attr_vars:
                raise EvaluationError(
                    f"{expression.attr} is not an attribute variable"
                )
            return
        raise EvaluationError(f"unknown expression {expression!r}")


def validate_query(query: SchemaSQLQuery) -> QueryInfo:
    """Validate and classify a query's variables."""
    return QueryInfo(query)


class _Indexes:
    def __init__(self, db: SchemaLogDatabase):
        self.relations = list(db.relations())
        self.tids: dict[Symbol, list[Symbol]] = {}
        self.attrs: dict[Symbol, list[Symbol]] = {}
        self.values: dict[tuple[Symbol, Symbol, Symbol], list[Symbol]] = {}
        for rel, tid, attr, val in db:
            self.tids.setdefault(rel, [])
            if tid not in self.tids[rel]:
                self.tids[rel].append(tid)
            self.attrs.setdefault(rel, [])
            if attr not in self.attrs[rel]:
                self.attrs[rel].append(attr)
            self.values.setdefault((rel, tid, attr), []).append(val)


def evaluate_query(query: SchemaSQLQuery, db: SchemaLogDatabase) -> Relation:
    """Evaluate a query, returning the INTO relation."""
    info = validate_query(query)
    indexes = _Indexes(db)
    rows: set[tuple[Symbol, ...]] = set()

    def resolve_rel(item) -> Iterator[Symbol]:
        if item.source_is_var:
            yield binding[item.source]  # type: ignore[index]
        else:
            yield Name(item.source)

    binding: dict[str, Symbol] = {}
    tuple_rel: dict[str, Symbol] = {}

    def enumerate_from(index: int) -> Iterator[None]:
        if index == len(query.from_items):
            yield None
            return
        item = query.from_items[index]
        if isinstance(item, RelVarDecl):
            for rel in indexes.relations:
                binding[item.var] = rel
                yield from enumerate_from(index + 1)
                del binding[item.var]
        elif isinstance(item, TupleVarDecl):
            for rel in resolve_rel(item):
                for tid in indexes.tids.get(rel, []):
                    binding[item.var] = tid
                    tuple_rel[item.var] = rel
                    yield from enumerate_from(index + 1)
                    del binding[item.var]
                    del tuple_rel[item.var]
        else:  # AttrVarDecl
            for rel in resolve_rel(item):
                for attr in indexes.attrs.get(rel, []):
                    binding[item.var] = attr
                    yield from enumerate_from(index + 1)
                    del binding[item.var]

    def access_values(pair: tuple[str, str, bool]) -> list[Symbol]:
        tuple_var, attr, attr_is_var = pair
        rel = tuple_rel[tuple_var]
        tid = binding[tuple_var]
        attr_sym = binding[attr] if attr_is_var else Name(attr)
        return indexes.values.get((rel, tid, attr_sym), [])

    def enumerate_access(index: int, chosen: dict) -> Iterator[dict]:
        if index == len(info.access_pairs):
            yield dict(chosen)
            return
        pair = info.access_pairs[index]
        for value in access_values(pair):
            chosen[pair] = value
            yield from enumerate_access(index + 1, chosen)
            del chosen[pair]

    def expression_value(expression: Expression, access: dict) -> Symbol:
        if isinstance(expression, Literal):
            return expression.symbol
        if isinstance(expression, VarRef):
            return binding[expression.var]
        assert isinstance(expression, ColumnRef)
        return access[(expression.tuple_var, expression.attr, expression.attr_is_var)]

    def satisfied(condition: Condition, access: dict) -> bool:
        left = expression_value(condition.left, access)
        right = expression_value(condition.right, access)
        return (left == right) if condition.op == "=" else (left != right)

    for _ in enumerate_from(0):
        for access in enumerate_access(0, {}):
            if all(satisfied(c, access) for c in query.where):
                rows.add(
                    tuple(
                        expression_value(item.expression, access)
                        for item in query.select
                    )
                )

    schema = [item.alias for item in query.select]
    return Relation(query.into, schema, rows)
