"""Hash-based kernels over interned id-tables.

Each kernel reimplements one registered operation of the tabular
algebra on :class:`~repro.engine.interning.IdTable` inputs, returning a
result **grid-identical** to the naive operation (same rows, same
order, cell-for-cell equal symbols).  The differential harness in
``tests/engine`` is the contract: any divergence from
:mod:`repro.algebra` is a bug in the kernel, never a "close enough".

Where the naive operations pay quadratic symbol-level scans, the
kernels hash:

* ``difference``/``intersection`` replace the O(|ρ|·|σ|) mutual-
  subsumption scan with per-row *signatures* — a row's stripped entry
  set per column attribute, as a frozenset of ``(attr, ids)`` pairs.
  Two rows mutually subsume each other iff their signatures are equal
  and their row attributes coincide, so membership is one set lookup;
* ``deduplicate`` degenerates to keep-first distinct over full id-rows
  (clean-up by the full scheme groups rows by their entire content, and
  identical rows always merge into themselves);
* ``product_select`` (the planner's fused ``PRODUCT``+``SELECT`` pair)
  pushes the selection below the product: when the two compared
  attributes live on opposite sides it becomes a hash join, when both
  live on one side a pre-filter, and only genuinely mixed attributes
  fall back to a pairwise id scan — which still skips materializing the
  unselected rows as symbol tables.

Kernels take ``(interner, tables, kwargs)`` with the keyword arguments
already evaluated by the statement layer, and return a ``Table`` (or
``None`` to decline, routing the call to the naive operation).
Operations whose semantics are inherently symbol-minting (TUPLENEW,
SETNEW) or rare/structural (GROUP, MERGE, SPLIT, COLLAPSE, SWITCH,
NATURALJOIN, the compacts) have no kernel and always fall back.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..algebra.opshelpers import as_attr_set, as_attr_symbol
from ..core import Table, coerce_symbol
from .interning import IdTable, SymbolInterner

__all__ = ["KERNELS"]


# ----------------------------------------------------------------------
# Shared id-level helpers
# ----------------------------------------------------------------------

def _attr_groups(col_attrs: tuple[int, ...]) -> dict[int, list[int]]:
    """Data-column positions grouped by their attribute id."""
    groups: dict[int, list[int]] = {}
    for j, a in enumerate(col_attrs):
        groups.setdefault(a, []).append(j)
    return groups


def _row_signatures(idt: IdTable) -> list[frozenset]:
    """Per row: the ⊥-stripped entry set of every column attribute.

    ``sig(i) = { (a, {ids}) : a an attribute, {ids} the non-null entries
    of row i under a, nonempty }``.  For two tables ρ, σ and the
    attribute universe of *both* schemes, ``ρ_i ≍ σ_k`` (mutual row
    subsumption) holds iff ``sig_ρ(i) == sig_σ(k)`` — attributes absent
    from a scheme contribute empty sets on that side and are omitted
    from the signature on both.
    """
    items = list(_attr_groups(idt.col_attrs).items())
    sigs: list[frozenset] = []
    for row in idt.rows:
        sig = []
        for a, js in items:
            entries = frozenset(row[j] for j in js if row[j])
            if entries:
                sig.append((a, entries))
        sigs.append(frozenset(sig))
    return sigs


def _difference_keys(idt: IdTable) -> list[tuple]:
    """Row keys for difference: exact row attribute plus the signature."""
    return list(zip(idt.row_attrs, _row_signatures(idt)))


def _combine_attr(left: int, right: int) -> int:
    """Id-level ``combine_row_attributes`` (0 is ⊥)."""
    if left == right:
        return left
    if not left:
        return right
    if not right:
        return left
    return 0


def _merge_ids(
    row_attrs: tuple[int, ...],
    rows: Sequence[tuple[int, ...]],
    members: list[int],
    width: int,
) -> tuple[int, tuple[int, ...]] | None:
    """Position-wise merge of a clean-up group, or None when incompatible."""
    candidate = 0
    for i in members:
        entry = row_attrs[i]
        if not entry:
            continue
        if not candidate:
            candidate = entry
        elif candidate != entry:
            return None
    merged_attr = candidate
    merged: list[int] = []
    for j in range(width):
        candidate = 0
        for i in members:
            entry = rows[i][j]
            if not entry:
                continue
            if not candidate:
                candidate = entry
            elif candidate != entry:
                return None
        merged.append(candidate)
    return merged_attr, tuple(merged)


def _cleanup_rows(
    col_attrs: tuple[int, ...],
    row_attrs: tuple[int, ...],
    rows: Sequence[tuple[int, ...]],
    by_ids: frozenset[int],
    on_ids: frozenset[int],
) -> tuple[tuple[int, ...], list[tuple[int, ...]]]:
    """The clean-up algorithm of :func:`repro.algebra.redundancy.cleanup`
    ported to ids: group the on-rows by (row attribute, by-subtuple),
    merge compatible groups at their first member, keep the rest."""
    by_cols = [j for j, a in enumerate(col_attrs) if a in by_ids]
    order: list[tuple] = []
    groups: dict[tuple, list[int]] = {}
    for i, attr in enumerate(row_attrs):
        if attr not in on_ids:
            continue
        key = (attr, tuple(rows[i][j] for j in by_cols))
        bucket = groups.get(key)
        if bucket is None:
            order.append(key)
            groups[key] = [i]
        else:
            bucket.append(i)
    replacement: dict[int, tuple[int, tuple[int, ...]]] = {}
    skip: set[int] = set()
    width = len(col_attrs)
    for key in order:
        members = groups[key]
        if len(members) == 1:
            continue
        merged = _merge_ids(row_attrs, rows, members, width)
        if merged is None:
            continue
        replacement[members[0]] = merged
        skip.update(members[1:])
    out_attrs: list[int] = []
    out_rows: list[tuple[int, ...]] = []
    for i, attr in enumerate(row_attrs):
        if i in skip:
            continue
        rep = replacement.get(i)
        if rep is not None:
            out_attrs.append(rep[0])
            out_rows.append(rep[1])
        else:
            out_attrs.append(attr)
            out_rows.append(tuple(rows[i]))
    return tuple(out_attrs), out_rows


def _cleanup_idt(idt: IdTable, by_ids: frozenset[int], on_ids: frozenset[int]) -> IdTable:
    attrs, rows = _cleanup_rows(idt.col_attrs, idt.row_attrs, idt.rows, by_ids, on_ids)
    return IdTable(idt.name, idt.col_attrs, attrs, rows=tuple(rows))


def _purge_idt(idt: IdTable, on_ids: frozenset[int], by_ids: frozenset[int]) -> IdTable:
    """PURGE on ℬ by 𝒜 = TRANSPOSE ∘ CLEAN-UP by 𝒜 on ℬ ∘ TRANSPOSE."""
    return _cleanup_idt(idt.transposed(), by_ids, on_ids).transposed()


def _distinct_rows(idt: IdTable) -> tuple[tuple[int, ...], list[tuple[int, ...]]]:
    """Keep-first distinct full rows (row attribute included).

    Equivalent to ``deduplicate``: clean-up by the full scheme keys
    every data column, so groups hold exactly the identical rows, and
    identical rows always merge into themselves at the first position.
    """
    seen: set[tuple] = set()
    out_attrs: list[int] = []
    out_rows: list[tuple[int, ...]] = []
    for attr, row in zip(idt.row_attrs, idt.rows):
        key = (attr, row)
        if key in seen:
            continue
        seen.add(key)
        out_attrs.append(attr)
        out_rows.append(row)
    return tuple(out_attrs), out_rows


def _dedup_columns_idt(idt: IdTable) -> IdTable:
    """``deduplicate_columns``: purge over the full scheme, empty 𝒜."""
    on = frozenset(idt.col_attrs) | {0}
    return _purge_idt(idt, on, frozenset())


def _union_idt(r: IdTable, s: IdTable) -> IdTable:
    left_pad = (0,) * s.width
    right_pad = (0,) * r.width
    rows = [row + left_pad for row in r.rows]
    rows += [right_pad + row for row in s.rows]
    return IdTable(
        r.name, r.col_attrs + s.col_attrs, r.row_attrs + s.row_attrs, rows=tuple(rows)
    )


def _out(itn: SymbolInterner, idt: IdTable) -> Table:
    return itn.materialize(idt.name, idt.col_attrs, idt.row_attrs, idt.rows)


# ----------------------------------------------------------------------
# Kernels (same observable behaviour as repro.algebra, on ids)
# ----------------------------------------------------------------------

def k_union(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    r, s = itn.intern_table(tables[0]), itn.intern_table(tables[1])
    return _out(itn, _union_idt(r, s))


def k_difference(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    r, s = itn.intern_table(tables[0]), itn.intern_table(tables[1])
    drop = set(_difference_keys(s))
    kept = [i for i, key in enumerate(_difference_keys(r)) if key not in drop]
    return itn.materialize(
        r.name,
        r.col_attrs,
        tuple(r.row_attrs[i] for i in kept),
        [r.rows[i] for i in kept],
    )


def k_intersection(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    # R \ (R \ S): a ρ-row survives iff its key occurs among σ's keys.
    r, s = itn.intern_table(tables[0]), itn.intern_table(tables[1])
    hits = set(_difference_keys(s))
    kept = [i for i, key in enumerate(_difference_keys(r)) if key in hits]
    return itn.materialize(
        r.name,
        r.col_attrs,
        tuple(r.row_attrs[i] for i in kept),
        [r.rows[i] for i in kept],
    )


def k_product(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    r, s = itn.intern_table(tables[0]), itn.intern_table(tables[1])
    out_attrs: list[int] = []
    out_rows: list[tuple[int, ...]] = []
    s_pairs = list(zip(s.row_attrs, s.rows))
    for left_attr, left_row in zip(r.row_attrs, r.rows):
        for right_attr, right_row in s_pairs:
            out_attrs.append(_combine_attr(left_attr, right_attr))
            out_rows.append(left_row + right_row)
    return itn.materialize(r.name, r.col_attrs + s.col_attrs, tuple(out_attrs), out_rows)


def k_product_select(
    itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping
) -> Table:
    """Fused ``SELECT left A right B (PRODUCT (R, S))`` with pushdown.

    The selection condition on a product row is ``τ(A) ≈ τ(B)`` where
    each entry set splits by side: ``τ(A) = A_left(i) ∪ A_right(k)``.
    When neither attribute's columns span both sides the condition
    factors — into a one-sided pre-filter (both attributes on the same
    side) or an equality of per-side signatures (opposite sides), which
    is a hash join.  Output order is exactly the naive ``(i, k)``
    product order filtered.
    """
    r, s = itn.intern_table(tables[0]), itn.intern_table(tables[1])
    a = itn.intern(as_attr_symbol(kwargs["left"]))
    b = itn.intern(as_attr_symbol(kwargs["right"]))
    a_left = [j for j, x in enumerate(r.col_attrs) if x == a]
    a_right = [j for j, x in enumerate(s.col_attrs) if x == a]
    b_left = [j for j, x in enumerate(r.col_attrs) if x == b]
    b_right = [j for j, x in enumerate(s.col_attrs) if x == b]

    r_attrs, r_rows = r.row_attrs, r.rows
    s_attrs, s_rows = s.row_attrs, s.rows
    out_attrs: list[int] = []
    out_rows: list[tuple[int, ...]] = []

    def emit(i: int, k: int) -> None:
        out_attrs.append(_combine_attr(r_attrs[i], s_attrs[k]))
        out_rows.append(r_rows[i] + s_rows[k])

    def sig(row: tuple[int, ...], cols: list[int]) -> frozenset[int]:
        return frozenset(row[j] for j in cols if row[j])

    if a == b:
        # τ(A) ≈ τ(A): every pair qualifies — a plain product.
        for i in range(len(r_rows)):
            for k in range(len(s_rows)):
                emit(i, k)
    elif (a_left and a_right) or (b_left and b_right):
        # An attribute's columns span both sides: the condition does not
        # factor, scan pairs (still id-level, still unmaterialized).
        for i in range(len(r_rows)):
            sa_l = sig(r_rows[i], a_left)
            sb_l = sig(r_rows[i], b_left)
            for k in range(len(s_rows)):
                if sa_l | sig(s_rows[k], a_right) == sb_l | sig(s_rows[k], b_right):
                    emit(i, k)
    elif not a_right and not b_right:
        # Both attributes resolve on the left: filter ρ, product with σ.
        for i in range(len(r_rows)):
            if sig(r_rows[i], a_left) == sig(r_rows[i], b_left):
                for k in range(len(s_rows)):
                    emit(i, k)
    elif not a_left and not b_left:
        # Both resolve on the right: filter σ once, then emit per ρ-row.
        kept = [
            k
            for k in range(len(s_rows))
            if sig(s_rows[k], a_right) == sig(s_rows[k], b_right)
        ]
        for i in range(len(r_rows)):
            for k in kept:
                emit(i, k)
    else:
        # Opposite sides: hash join on the per-side signatures.
        left_cols, right_cols = (a_left, b_right) if a_left else (b_left, a_right)
        buckets: dict[frozenset[int], list[int]] = {}
        for k in range(len(s_rows)):
            buckets.setdefault(sig(s_rows[k], right_cols), []).append(k)
        empty: list[int] = []
        for i in range(len(r_rows)):
            for k in buckets.get(sig(r_rows[i], left_cols), empty):
                emit(i, k)
    return itn.materialize(r.name, r.col_attrs + s.col_attrs, tuple(out_attrs), out_rows)


def k_select(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    t = itn.intern_table(tables[0])
    a = itn.intern(as_attr_symbol(kwargs["left"]))
    b = itn.intern(as_attr_symbol(kwargs["right"]))
    a_cols = [j for j, x in enumerate(t.col_attrs) if x == a]
    b_cols = [j for j, x in enumerate(t.col_attrs) if x == b]
    kept = [
        i
        for i, row in enumerate(t.rows)
        if {row[j] for j in a_cols if row[j]} == {row[j] for j in b_cols if row[j]}
    ]
    return itn.materialize(
        t.name,
        t.col_attrs,
        tuple(t.row_attrs[i] for i in kept),
        [t.rows[i] for i in kept],
    )


def k_select_constant(
    itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping
) -> Table:
    t = itn.intern_table(tables[0])
    a = itn.intern(as_attr_symbol(kwargs["attr"]))
    v = itn.intern(coerce_symbol(kwargs["value"]))
    target = {v} if v else set()
    a_cols = [j for j, x in enumerate(t.col_attrs) if x == a]
    kept = [
        i
        for i, row in enumerate(t.rows)
        if {row[j] for j in a_cols if row[j]} == target
    ]
    return itn.materialize(
        t.name,
        t.col_attrs,
        tuple(t.row_attrs[i] for i in kept),
        [t.rows[i] for i in kept],
    )


def k_project(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    t = itn.intern_table(tables[0])
    attrs = itn.intern_all(as_attr_set(kwargs["attrs"]))
    keep = [j for j, x in enumerate(t.col_attrs) if x in attrs]
    return itn.materialize(
        t.name,
        tuple(t.col_attrs[j] for j in keep),
        t.row_attrs,
        [tuple(row[j] for j in keep) for row in t.rows],
    )


def k_rename(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    t = itn.intern_table(tables[0])
    old = itn.intern(as_attr_symbol(kwargs["old"]))
    new = itn.intern(as_attr_symbol(kwargs["new"]))
    col_attrs = tuple(new if x == old else x for x in t.col_attrs)
    return itn.materialize(t.name, col_attrs, t.row_attrs, t.rows)


def k_transpose(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    return _out(itn, itn.intern_table(tables[0]).transposed())


def k_cleanup(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    t = itn.intern_table(tables[0])
    by_ids = itn.intern_all(as_attr_set(kwargs["by"]))
    on_ids = itn.intern_all(as_attr_set(kwargs["on"]))
    return _out(itn, _cleanup_idt(t, by_ids, on_ids))


def k_purge(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    t = itn.intern_table(tables[0])
    on_ids = itn.intern_all(as_attr_set(kwargs["on"]))
    by_ids = itn.intern_all(as_attr_set(kwargs["by"]))
    return _out(itn, _purge_idt(t, on_ids, by_ids))


def k_deduplicate(itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping) -> Table:
    t = itn.intern_table(tables[0])
    attrs, rows = _distinct_rows(t)
    return itn.materialize(t.name, t.col_attrs, attrs, rows)


def k_deduplicate_columns(
    itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping
) -> Table:
    return _out(itn, _dedup_columns_idt(itn.intern_table(tables[0])))


def k_classical_union(
    itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping
) -> Table:
    # union → purge duplicate columns → clean up duplicate rows, composed
    # entirely at the id level (one materialization at the end).
    combined = _union_idt(itn.intern_table(tables[0]), itn.intern_table(tables[1]))
    purged = _dedup_columns_idt(combined)
    attrs, rows = _distinct_rows(purged)
    return itn.materialize(purged.name, purged.col_attrs, attrs, rows)


def k_drop_all_null_rows(
    itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping
) -> Table:
    # R \ σ_{attr=⊥}(R): drop every row whose difference key matches a
    # row with an entirely-⊥ attr entry set (subsumption, not identity).
    t = itn.intern_table(tables[0])
    a = itn.intern(as_attr_symbol(kwargs["attr"]))
    a_cols = [j for j, x in enumerate(t.col_attrs) if x == a]
    keys = _difference_keys(t)
    null_keys = {
        keys[i]
        for i, row in enumerate(t.rows)
        if not any(row[j] for j in a_cols)
    }
    kept = [i for i, key in enumerate(keys) if key not in null_keys]
    return itn.materialize(
        t.name,
        t.col_attrs,
        tuple(t.row_attrs[i] for i in kept),
        [t.rows[i] for i in kept],
    )


def k_const_column(
    itn: SymbolInterner, tables: Sequence[Table], kwargs: Mapping
) -> Table:
    t = itn.intern_table(tables[0])
    a = itn.intern(as_attr_symbol(kwargs["attr"]))
    v = itn.intern(coerce_symbol(kwargs["value"]))
    return itn.materialize(
        t.name,
        t.col_attrs + (a,),
        t.row_attrs,
        [row + (v,) for row in t.rows],
    )


#: Kernel catalogue, keyed by registry operation name.  Anything absent
#: here (GROUP, MERGE, SPLIT, COLLAPSE, SWITCH, TUPLENEW, SETNEW,
#: NATURALJOIN, the compacts) falls back to the naive operation.
KERNELS: dict[str, object] = {
    "UNION": k_union,
    "DIFFERENCE": k_difference,
    "INTERSECTION": k_intersection,
    "PRODUCT": k_product,
    "PRODUCTSELECT": k_product_select,
    "SELECT": k_select,
    "SELECTCONST": k_select_constant,
    "PROJECT": k_project,
    "RENAME": k_rename,
    "TRANSPOSE": k_transpose,
    "CLEANUP": k_cleanup,
    "PURGE": k_purge,
    "DEDUP": k_deduplicate,
    "DEDUPCOLUMNS": k_deduplicate_columns,
    "CLASSICALUNION": k_classical_union,
    "DROPNULLROWS": k_drop_all_null_rows,
    "CONSTCOLUMN": k_const_column,
}
