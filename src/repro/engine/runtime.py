"""The global engine switch and the ``engine_scope()`` scope.

Mirrors :mod:`repro.obs.runtime`: one module-level singleton,
:data:`ENGINE`, is consulted by the operation registry's raw dispatch.
When ``ENGINE.active`` is False — the default — every invocation falls
through to the naive operation after a single attribute check, so the
vectorized backend costs nothing unless switched on::

    from repro.engine.runtime import VectorEngine, engine_scope

    with engine_scope(VectorEngine()) as backend:
        out = program.run(db)
    print(backend.stats)        # kernel hits / fallbacks per operation

Scopes nest and restore the previous state on exit, exactly like
``observation()`` and ``governed()``.  The backend holds the symbol
interner, so tables interned by one kernel stay interned for the next —
entering a fresh scope per program run keeps the id space bounded.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from ..obs import runtime as _obs

__all__ = ["ENGINE", "VectorEngine", "engine_scope"]


class _EngineState:
    """The mutable global: one attribute check guards the raw dispatch."""

    __slots__ = ("active", "backend")

    def __init__(self):
        self.active = False
        self.backend: VectorEngine | None = None


#: The process-wide engine state consulted by ``OpSpec._invoke_raw``.
ENGINE = _EngineState()


class VectorEngine:
    """The vectorized backend: an interner plus a kernel catalogue.

    ``dispatch`` is the single entry point: given a registered operation
    name, the argument tables, and the already-evaluated keyword
    arguments, it either returns the result table computed by a
    hash-based kernel over interned integer ids, or ``None`` to signal
    that the naive operation must run instead (no kernel, an active
    lineage scope, or a kernel that declines the inputs).

    The decision is *per invocation*, so a single program can mix
    vectorized SELECTs with naive GROUPs statement by statement; the
    ``stats`` counters record the split for EXPLAIN-style reporting.
    """

    __slots__ = ("interner", "kernels", "stats")

    def __init__(self):
        from .interning import SymbolInterner
        from .kernels import KERNELS

        self.interner = SymbolInterner()
        self.kernels = KERNELS
        self.stats: dict[str, int] = {"kernel_calls": 0, "fallbacks": 0}

    def dispatch(self, name: str, tables: Sequence, arguments: Mapping[str, object]):
        """A result :class:`~repro.core.table.Table`, or None to fall back.

        Lineage-active runs always fall back: the kernels rebuild rows
        from interned ids, which cannot thread per-cell provenance the
        way the naive operations do.
        """
        kernel = self.kernels.get(name)
        if kernel is None or _obs.OBS.lineage is not None:
            self.stats["fallbacks"] += 1
            self.stats[f"fallback:{name}"] = self.stats.get(f"fallback:{name}", 0) + 1
            return None
        result = kernel(self.interner, tables, arguments)
        if result is None:
            self.stats["fallbacks"] += 1
            self.stats[f"fallback:{name}"] = self.stats.get(f"fallback:{name}", 0) + 1
            return None
        self.stats["kernel_calls"] += 1
        self.stats[f"kernel:{name}"] = self.stats.get(f"kernel:{name}", 0) + 1
        obs = _obs.OBS
        if obs.active and obs.metrics is not None:
            obs.metrics.count("vector_kernel_hits")
        return result


@contextmanager
def engine_scope(backend: VectorEngine | None = None) -> Iterator[VectorEngine]:
    """Route registry dispatch through ``backend`` inside the block."""
    if backend is None:
        backend = VectorEngine()
    previous = (ENGINE.active, ENGINE.backend)
    ENGINE.active, ENGINE.backend = True, backend
    try:
        yield backend
    finally:
        ENGINE.active, ENGINE.backend = previous
