"""The global engine switch and the ``engine_scope()`` scope.

Mirrors :mod:`repro.obs.runtime`: one module-level singleton,
:data:`ENGINE`, is consulted by the operation registry's raw dispatch.
When ``ENGINE.active`` is False — the default — every invocation falls
through to the naive operation after a single attribute check, so the
vectorized backend costs nothing unless switched on::

    from repro.engine.runtime import VectorEngine, engine_scope

    with engine_scope(VectorEngine()) as backend:
        out = program.run(db)
    print(backend.stats)        # kernel hits / fallbacks per operation

Scopes nest and restore the previous state on exit, exactly like
``observation()`` and ``governed()``.  The backend holds the symbol
interner, so tables interned by one kernel stay interned for the next —
entering a fresh scope per program run keeps the id space bounded.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from ..obs import events as _ev
from ..obs import runtime as _obs

__all__ = ["ENGINE", "VectorEngine", "engine_scope", "FALLBACK_REASONS"]

#: The machine-readable vocabulary of fallback reasons.  Every naive
#: fallback under an engine scope is tagged with exactly one of these
#: (``repro engine-report`` attributes 100% of fallbacks to a reason):
#:
#: * ``no_kernel``       — no vectorized kernel is registered for the op;
#: * ``lineage_active``  — a lineage scope is live and kernels cannot
#:   thread per-cell provenance;
#: * ``kernel_declined`` — the kernel inspected the inputs and declined;
#: * ``needs_fresh``     — tagging ops mint fresh values, naive-only;
#: * ``multi_result``    — the op returns several tables, naive-only;
#: * ``aggregate``       — COLLAPSE-style ops consume all tables of a
#:   name at once, naive-only.
FALLBACK_REASONS = (
    "no_kernel",
    "lineage_active",
    "kernel_declined",
    "needs_fresh",
    "multi_result",
    "aggregate",
)


class _EngineState:
    """The mutable global: one attribute check guards the raw dispatch."""

    __slots__ = ("active", "backend")

    def __init__(self):
        self.active = False
        self.backend: VectorEngine | None = None


#: The process-wide engine state consulted by ``OpSpec._invoke_raw``.
ENGINE = _EngineState()


class VectorEngine:
    """The vectorized backend: an interner plus a kernel catalogue.

    ``dispatch`` is the single entry point: given a registered operation
    name, the argument tables, and the already-evaluated keyword
    arguments, it either returns the result table computed by a
    hash-based kernel over interned integer ids, or ``None`` to signal
    that the naive operation must run instead (no kernel, an active
    lineage scope, or a kernel that declines the inputs).

    The decision is *per invocation*, so a single program can mix
    vectorized SELECTs with naive GROUPs statement by statement; the
    ``stats`` counters record the split for EXPLAIN-style reporting.
    """

    __slots__ = ("interner", "kernels", "stats")

    def __init__(self):
        from .interning import SymbolInterner
        from .kernels import KERNELS

        self.interner = SymbolInterner()
        self.kernels = KERNELS
        self.stats: dict[str, int] = {"kernel_calls": 0, "fallbacks": 0}

    def note_fallback(self, name: str, reason: str) -> None:
        """Count one naive fallback, attributed to a machine-readable reason.

        Called by :meth:`dispatch` for its own declines and by the op
        registry for the invocations it never offers to the backend
        (tagging, multi-result, and aggregate ops), so ``stats`` accounts
        for *every* naive execution under the scope — the engine report
        can attribute 100% of fallbacks, not just the dispatched ones.
        """
        self.stats["fallbacks"] += 1
        self.stats[f"fallback:{name}"] = self.stats.get(f"fallback:{name}", 0) + 1
        key = f"reason:{name}:{reason}"
        self.stats[key] = self.stats.get(key, 0) + 1
        if _ev.EVT.active:
            _ev.emit("engine_fallback", op=name, reason=reason)

    def dispatch(self, name: str, tables: Sequence, arguments: Mapping[str, object]):
        """A result :class:`~repro.core.table.Table`, or None to fall back.

        Lineage-active runs always fall back: the kernels rebuild rows
        from interned ids, which cannot thread per-cell provenance the
        way the naive operations do.
        """
        kernel = self.kernels.get(name)
        if kernel is None:
            self.note_fallback(name, "no_kernel")
            return None
        if _obs.OBS.lineage is not None:
            self.note_fallback(name, "lineage_active")
            return None
        result = kernel(self.interner, tables, arguments)
        if result is None:
            self.note_fallback(name, "kernel_declined")
            return None
        self.stats["kernel_calls"] += 1
        self.stats[f"kernel:{name}"] = self.stats.get(f"kernel:{name}", 0) + 1
        if _ev.EVT.active:
            _ev.emit("engine_dispatch", op=name, rows_in=sum(t.height for t in tables))
        obs = _obs.OBS
        if obs.active and obs.metrics is not None:
            obs.metrics.count("vector_kernel_hits")
        return result


@contextmanager
def engine_scope(backend: VectorEngine | None = None) -> Iterator[VectorEngine]:
    """Route registry dispatch through ``backend`` inside the block."""
    if backend is None:
        backend = VectorEngine()
    previous = (ENGINE.active, ENGINE.backend)
    ENGINE.active, ENGINE.backend = True, backend
    try:
        yield backend
    finally:
        ENGINE.active, ENGINE.backend = previous
