"""The vectorized execution backend (docs/ENGINE.md).

Layout:

* :mod:`repro.engine.runtime` — the global ``ENGINE`` switch, the
  ``VectorEngine`` backend object, and the ``engine_scope()`` context
  manager consulted by the operation registry;
* :mod:`repro.engine.interning` — symbol ↔ integer-id interning and the
  :class:`IdTable` id-column table representation;
* :mod:`repro.engine.kernels` — the hash-based kernel catalogue;
* :mod:`repro.engine.planner` — product/select fusion;
* :mod:`repro.engine.run` — ``run_program(..., engine="vector")``;
* :mod:`repro.engine.report` — kernel/fallback attribution reporting.

Only :mod:`~repro.engine.runtime` is imported eagerly: the operation
registry imports this package while the algebra package is still
initialising, so everything that depends on the algebra (planner, run)
is exposed lazily via module ``__getattr__``.
"""

from .runtime import ENGINE, FALLBACK_REASONS, VectorEngine, engine_scope

__all__ = [
    "ENGINE",
    "ENGINES",
    "FALLBACK_REASONS",
    "VectorEngine",
    "engine_scope",
    "plan_program",
    "count_fusions",
    "run_program",
    "fallback_report",
    "report_text",
    "optimize_program",
    "OptimizationResult",
    "PlanCache",
    "PLAN_CACHE",
    "OPTIMIZER_STATS",
    "RULES",
    "RULE_ORDER",
    "ChainJoin",
    "SelectUnion",
]

_LAZY = {
    "run_program": ("repro.engine.run", "run_program"),
    "ENGINES": ("repro.engine.run", "ENGINES"),
    "plan_program": ("repro.engine.planner", "plan_program"),
    "count_fusions": ("repro.engine.planner", "count_fusions"),
    "fallback_report": ("repro.engine.report", "fallback_report"),
    "report_text": ("repro.engine.report", "report_text"),
    "optimize_program": ("repro.engine.optimizer", "optimize_program"),
    "OptimizationResult": ("repro.engine.optimizer", "OptimizationResult"),
    "PlanCache": ("repro.engine.optimizer", "PlanCache"),
    "PLAN_CACHE": ("repro.engine.optimizer", "PLAN_CACHE"),
    "OPTIMIZER_STATS": ("repro.engine.optimizer", "OPTIMIZER_STATS"),
    "RULES": ("repro.engine.optimizer", "RULES"),
    "RULE_ORDER": ("repro.engine.optimizer", "RULE_ORDER"),
    "ChainJoin": ("repro.engine.optimizer", "ChainJoin"),
    "SelectUnion": ("repro.engine.optimizer", "SelectUnion"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
