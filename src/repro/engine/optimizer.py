"""Cost-based plan optimizer driven by ANALYZE statistics (docs/OPTIMIZER.md).

The planner (:mod:`repro.engine.planner`) performs one syntactic rewrite
— product/select fusion.  This module is the *decision-making* layer on
top of it: a catalogue of named, individually toggleable
:class:`RewriteRule` passes, each justified by an algebraic identity of
the tabular algebra, plus cost-based join ordering of PRODUCT chains
driven by :class:`~repro.obs.stats.DatabaseStats` from ANALYZE.

Soundness contract (enforced by the differential harness and the
hypothesis property tests): an optimized program must produce the
**byte-identical** final database of the original on success — same
table grids, same column order, same row order within each table, same
row attributes — and raise the same error type on failure.  Resource
*profiles* (op counts, intermediate sizes, which statement a governor
budget trips on) are exactly what optimization changes and are not part
of the contract.

Rule catalogue (applied in this order; each entry names the identity
that justifies it — the full derivations live in docs/OPTIMIZER.md):

``select-pushdown``
    σ_{a≈b}(ρ_{n←o}(R)) = ρ_{n←o}(σ_{a≈b}(R)) when {a,b} ∩ {o,n} = ∅,
    and σ_{a≈b}(π_A(R)) = π_A(σ_{a≈b}(R)) when a, b ∈ A.  Bubbles
    selections left over renames/projections so they filter earlier and
    expose PRODUCT+SELECT adjacency to fusion and join ordering.

``prune-dead-project``
    Dead-store elimination for projections (a PROJECT whose target is
    overwritten before any read computes nothing observable — PROJECT
    never raises, so removing it preserves error behaviour too) and
    π_{A₂}(π_{A₁}(R)) = π_{A₁∩A₂}(R) (adjacent projection collapse —
    the columns in A₁ \\ A₂ are dead).

``cse``
    Within a straight-line region, a repeated pure assignment with
    identical operation, arguments, and parameters recomputes a value
    already on hand; the duplicate is replaced by an identity copy
    ``Y ← RENAME ⊥ ⊥ (X)`` (renaming an attribute to itself is the
    identity on any table), valid while neither the arguments nor the
    source target were overwritten in between.

``fuse-product-select``
    σ_{a≈b}(R × S) as one PRODUCTSELECT — the planner's fusion,
    re-expressed as a toggleable rule with a recorded justification.

``join-reorder``
    × is associative/commutative up to column order and σ-filters
    commute, so a PRODUCT/PRODUCTSELECT chain into one target may be
    *evaluated* in any leaf order as long as the result is assembled in
    syntactic order.  :class:`ChainJoin` does exactly that: hash-joins
    the leaves in a cost-chosen order over row-index tuples, then sorts
    the matches lexicographically (= the nested-loop order) and emits
    rows with columns and the row-attribute fold in syntactic order.
    Ordering is chosen by dynamic programming over the C_out cost
    (sum of estimated intermediate cardinalities) for chains of ≤ 8
    leaves and greedily beyond, with selectivities from ANALYZE NDVs;
    missing stats keep the syntactic order, and stale stats (shape
    mismatch at run time, the estimator's staleness guard) fall back
    per combination.

``select-pushdown-union``
    σ_{a≈b}(R ∪ S) = σ_{a≈b}(R) ∪ σ_{a≈b}(S) — exactly, including row
    order, because tabular union pads with ⊥ and weak equality strips ⊥
    from both entry sets before comparing.  Fused as
    :class:`SelectUnion` so the selection runs on the inputs.

Plans are cached under ``(program fingerprint, stats fingerprint,
enabled rules)`` — the normalized program fingerprint from
:mod:`repro.obs.workload` plus the stats *content* fingerprint, so a
re-ANALYZE invalidates every cached plan it could change.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from ..algebra.opshelpers import combine_row_attributes
from ..algebra.programs.params import (
    NOTHING,
    Binding,
    Lit,
    Nothing,
    Parameter,
    ParamSet,
    Star,
)
from ..algebra.programs.registry import OPERATIONS, OpSpec
from ..algebra.programs.statements import Assignment, Program, Statement, While
from ..core import EvaluationError, Symbol, Table, TabularDatabase, weakly_equal
from ..obs import events as _ev
from ..obs import runtime as _obs
from ..obs.stats import DatabaseStats
from ..obs.trace import NULL_SPAN
from ..runtime import governor as _gv
from .planner import _fusable, _fuse

__all__ = [
    "RULE_ORDER",
    "RULES",
    "Rewrite",
    "RewriteRule",
    "OrderDecision",
    "OptimizationResult",
    "PlanCache",
    "PLAN_CACHE",
    "OptimizerStats",
    "OPTIMIZER_STATS",
    "ChainJoin",
    "SelectUnion",
    "optimize_program",
]

#: Chains longer than this use greedy ordering instead of subset DP.
DP_LEAF_LIMIT = 8

#: Pseudo-op name the chain join dispatches under (events, governor,
#: estimator, metrics — the same surfaces a registry op gets).
CHAINJOIN_OP = "CHAINJOIN"


# ----------------------------------------------------------------------
# Records: applied rewrites, ordering decisions, the optimize result
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Rewrite:
    """One applied rewrite: which rule, where, and why it is sound."""

    rule: str
    detail: str
    justification: str

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "detail": self.detail,
            "justification": self.justification,
        }


@dataclass(frozen=True)
class OrderDecision:
    """One join-ordering decision over a PRODUCT chain."""

    target: str
    leaves: tuple[str, ...]
    #: Chosen evaluation order as indices into ``leaves``.
    order: tuple[int, ...]
    #: ``reordered`` | ``syntactic`` | ``stats-missing``.
    outcome: str
    reason: str
    est_rows: int | None = None
    cost_syntactic: float | None = None
    cost_chosen: float | None = None

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "leaves": list(self.leaves),
            "order": list(self.order),
            "order_names": [self.leaves[i] for i in self.order],
            "outcome": self.outcome,
            "reason": self.reason,
            "est_rows": self.est_rows,
            "cost_syntactic": self.cost_syntactic,
            "cost_chosen": self.cost_chosen,
        }


@dataclass(frozen=True)
class OptimizationResult:
    """What :func:`optimize_program` decided, and the plan it produced."""

    program: Program
    source: Program
    applied: tuple[Rewrite, ...]
    decisions: tuple[OrderDecision, ...]
    fingerprint: str
    stats_fingerprint: str
    rules: tuple[str, ...]
    cache_hit: bool = False

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "stats_fingerprint": self.stats_fingerprint,
            "rules": list(self.rules),
            "cache_hit": self.cache_hit,
            "before": [repr(s) for s in self.source.statements],
            "after": [repr(s) for s in self.program.statements],
            "applied": [r.to_json() for r in self.applied],
            "decisions": [d.to_json() for d in self.decisions],
        }


@dataclass(frozen=True)
class RewriteRule:
    """A named, toggleable rewrite pass over one statement list."""

    name: str
    justification: str
    apply: Callable[[list[Statement], "_Context"], list[Statement]]


@dataclass
class _Context:
    """Mutable state threaded through the rule passes of one optimize."""

    stats: DatabaseStats | None
    applied: list[Rewrite] = field(default_factory=list)
    decisions: list[OrderDecision] = field(default_factory=list)

    def record(self, rule: str, detail: str) -> None:
        self.applied.append(Rewrite(rule, detail, RULES[rule].justification))


# ----------------------------------------------------------------------
# Static-shape helpers shared by the rules
# ----------------------------------------------------------------------


def _lit(param: object) -> Symbol | None:
    """The symbol of a literal parameter, else None."""
    return param.symbol if isinstance(param, Lit) else None


def _lit_set(param: object) -> frozenset[Symbol] | None:
    """The symbol set of a wildcard-free set parameter, else None."""
    if isinstance(param, Lit):
        return frozenset([param.symbol])
    if isinstance(param, Nothing):
        return frozenset()
    if isinstance(param, ParamSet):
        items = param.positive + param.negative
        if all(isinstance(p, Lit) for p in items):
            return param.evaluate(Binding(), None)
    return None


def _static_params(statement: Assignment) -> bool:
    """True when no parameter depends on wildcards or table contents."""
    for param in statement.params.values():
        if isinstance(param, Lit) or isinstance(param, Nothing):
            continue
        if _lit_set(param) is None:
            return False
    return True


def _statement_writes(statement: Statement) -> frozenset[Symbol] | None:
    """Names a statement definitely assigns; None = unknown (be safe)."""
    if isinstance(statement, (SelectUnion, ChainJoin)):
        return frozenset([statement.target_symbol()])
    if isinstance(statement, Assignment):
        if isinstance(statement.target, Lit):
            return frozenset([statement.target.symbol])
        return None
    return None


def _statement_reads(statement: Statement) -> frozenset[Symbol] | None:
    """Names a statement reads tables from; None = unknown (be safe)."""
    if isinstance(statement, (SelectUnion, ChainJoin)):
        return statement.read_symbols()
    if isinstance(statement, Assignment):
        names: set[Symbol] = set()
        for arg in statement.args:
            if isinstance(arg, Lit):
                names.add(arg.symbol)
            else:
                return None
        return frozenset(names)
    return None


# ----------------------------------------------------------------------
# select-pushdown: σ through RENAME and PROJECT
# ----------------------------------------------------------------------


def _pushdown_swap(
    first: Statement, second: Statement
) -> tuple[Assignment, Assignment, str] | None:
    if not (isinstance(first, Assignment) and isinstance(second, Assignment)):
        return None
    if second.spec.name != "SELECT" or first.spec.name not in ("RENAME", "PROJECT"):
        return None
    if not (isinstance(first.target, Lit) and isinstance(second.target, Lit)):
        return None
    target = first.target.symbol
    if second.target.symbol != target:
        return None
    if len(second.args) != 1 or _lit(second.args[0]) != target:
        return None
    left = _lit(second.params.get("left"))
    right = _lit(second.params.get("right"))
    if left is None or right is None:
        return None
    if first.spec.name == "RENAME":
        old = _lit(first.params.get("old"))
        new = _lit(first.params.get("new"))
        if old is None or new is None:
            return None
        # The selection must not mention the renamed attribute on either
        # side — then σ reads the same columns before and after ρ.
        if {left, right} & {old, new}:
            return None
        detail = f"σ {left}≈{right} pushed below RENAME {old}→{new} into {target}"
    else:
        attrs = _lit_set(first.params.get("attrs"))
        if attrs is None or left not in attrs or right not in attrs:
            return None
        detail = f"σ {left}≈{right} pushed below PROJECT into {target}"
    swapped_select = Assignment(first.target, "SELECT", first.args, second.params)
    swapped_first = Assignment(
        first.target, first.spec.name, [first.target], first.params
    )
    return swapped_select, swapped_first, detail


def _apply_select_pushdown(
    statements: list[Statement], ctx: _Context
) -> list[Statement]:
    out = list(statements)
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1):
            swap = _pushdown_swap(out[i], out[i + 1])
            if swap is not None:
                out[i], out[i + 1] = swap[0], swap[1]
                ctx.record("select-pushdown", swap[2])
                changed = True
    return out


# ----------------------------------------------------------------------
# prune-dead-project: dead stores and adjacent projection collapse
# ----------------------------------------------------------------------


def _prunable_project(statement: Statement) -> bool:
    return (
        isinstance(statement, Assignment)
        and statement.spec.name == "PROJECT"
        and isinstance(statement.target, Lit)
        and _lit_set(statement.params.get("attrs")) is not None
        and all(isinstance(a, (Lit, Star)) for a in statement.args)
    )


def _dead_store(statements: Sequence[Statement], i: int) -> bool:
    """True when statement ``i``'s target is overwritten before any read."""
    target = statements[i].target.symbol
    for j in range(i + 1, len(statements)):
        nxt = statements[j]
        if isinstance(nxt, While):
            # The loop condition or body may read the target.
            return False
        reads = _statement_reads(nxt)
        if reads is None or target in reads:
            return False
        if isinstance(nxt, Assignment) and isinstance(nxt.target, Lit):
            if nxt.target.symbol == target:
                return True
    return False


def _collapse_projects(
    first: Statement, second: Statement
) -> tuple[Assignment, str] | None:
    if not (_prunable_project(first) and _prunable_project(second)):
        return None
    target = first.target.symbol
    if second.target.symbol != target:
        return None
    if len(second.args) != 1 or _lit(second.args[0]) != target:
        return None
    attrs1 = _lit_set(first.params["attrs"])
    attrs2 = _lit_set(second.params["attrs"])
    kept = attrs1 & attrs2
    dead = sorted(str(a) for a in attrs1 - kept)
    param = (
        ParamSet([Lit(s) for s in sorted(kept, key=lambda s: s.sort_key())])
        if kept
        else NOTHING
    )
    fused = Assignment(first.target, "PROJECT", first.args, {"attrs": param})
    detail = f"π∘π over {target} collapsed; dead columns [{', '.join(dead)}]"
    return fused, detail


def _apply_prune_dead_project(
    statements: list[Statement], ctx: _Context
) -> list[Statement]:
    # To a fixpoint: removing a dead store removes its *reads*, which can
    # make an earlier overwritten projection dead in turn.
    current = list(statements)
    while True:
        out: list[Statement] = []
        for i, statement in enumerate(current):
            if _prunable_project(statement) and _dead_store(current, i):
                ctx.record(
                    "prune-dead-project",
                    f"dead π store into {statement.target.symbol} removed",
                )
                continue
            out.append(statement)
        collapsed: list[Statement] = []
        for statement in out:
            if collapsed:
                pair = _collapse_projects(collapsed[-1], statement)
                if pair is not None:
                    collapsed[-1] = pair[0]
                    ctx.record("prune-dead-project", pair[1])
                    continue
            collapsed.append(statement)
        if len(collapsed) == len(current):
            return collapsed
        current = collapsed


# ----------------------------------------------------------------------
# cse: duplicate pure assignments become identity copies
# ----------------------------------------------------------------------


def _cse_key(statement: Statement):
    """A value-semantics key for pure, fully static assignments."""
    if not isinstance(statement, Assignment):
        return None
    spec = statement.spec
    if spec.needs_fresh or spec.aggregate:
        return None
    if not isinstance(statement.target, Lit):
        return None
    if not all(isinstance(a, Lit) for a in statement.args):
        return None
    if not _static_params(statement):
        return None
    params = tuple(
        (keyword, statement.params[keyword].evaluate(Binding(), None))
        for keyword in sorted(statement.params)
    )
    return (spec.name, tuple(a.symbol for a in statement.args), params)


def _identity_copy(target: Parameter, source: Symbol) -> Assignment:
    # RENAME ⊥→⊥ replaces ⊥ header slots with ⊥: the identity on any
    # table, so this statement is a pure copy that can never raise.
    return Assignment(target, "RENAME", [source], {"old": None, "new": None})


def _is_identity_copy(statement: Statement) -> bool:
    return (
        isinstance(statement, Assignment)
        and statement.spec.name == "RENAME"
        and _lit(statement.params.get("old")) is not None
        and _lit(statement.params.get("new")) is not None
        and statement.params["old"].symbol.is_null
        and statement.params["new"].symbol.is_null
    )


def _apply_cse(statements: list[Statement], ctx: _Context) -> list[Statement]:
    out = list(statements)
    for j in range(len(out)):
        if _is_identity_copy(out[j]):
            continue  # already a copy; rewriting again is churn, not CSE
        key = _cse_key(out[j])
        if key is None:
            continue
        deps = set(key[1])
        written: set[Symbol] = set()
        for i in range(j - 1, -1, -1):
            candidate = out[i]
            writes = _statement_writes(candidate)
            if writes is None:
                break
            if (
                _cse_key(candidate) == key
                and candidate.target.symbol not in written
                and candidate.target.symbol not in deps
            ):
                source = candidate.target.symbol
                ctx.record(
                    "cse",
                    f"{out[j].target} recomputes {key[0]}({', '.join(map(str, key[1]))});"
                    f" copied from {source}",
                )
                out[j] = _identity_copy(out[j].target, source)
                break
            if writes & deps:
                break
            written |= writes
    return out


# ----------------------------------------------------------------------
# fuse-product-select: the planner's fusion as a recorded rule
# ----------------------------------------------------------------------


def _apply_fusion(statements: list[Statement], ctx: _Context) -> list[Statement]:
    out: list[Statement] = []
    i = 0
    while i < len(statements):
        statement = statements[i]
        if i + 1 < len(statements) and _fusable(statement, statements[i + 1]):
            fused = _fuse(statement, statements[i + 1])
            ctx.record(
                "fuse-product-select",
                f"σ fused into × for {fused.target}",
            )
            out.append(fused)
            i += 2
            continue
        out.append(statement)
        i += 1
    return out


# ----------------------------------------------------------------------
# join-reorder: chain detection, costing, and the ChainJoin statement
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Cond:
    """One σ_{left≈right} applied when the chain had ``prefix`` leaves."""

    left: Symbol
    right: Symbol
    prefix: int


@dataclass(frozen=True)
class _Chain:
    target: Symbol
    leaves: tuple[Symbol, ...]
    conds: tuple[_Cond, ...]
    statements: tuple[Statement, ...]
    end: int  # index just past the chain in the enclosing list


def _match_chain(statements: Sequence[Statement], start: int) -> _Chain | None:
    first = statements[start]
    if not isinstance(first, Assignment):
        return None
    if first.spec.name not in ("PRODUCT", "PRODUCTSELECT"):
        return None
    if not isinstance(first.target, Lit):
        return None
    target = first.target.symbol
    if not all(isinstance(a, Lit) for a in first.args):
        return None
    leaves = [a.symbol for a in first.args]
    conds: list[_Cond] = []
    if first.spec.name == "PRODUCTSELECT":
        left, right = _lit(first.params["left"]), _lit(first.params["right"])
        if left is None or right is None:
            return None
        conds.append(_Cond(left, right, 2))
    j = start + 1
    while j < len(statements):
        statement = statements[j]
        if not isinstance(statement, Assignment):
            break
        if not isinstance(statement.target, Lit) or statement.target.symbol != target:
            break
        name = statement.spec.name
        if name == "SELECT":
            if len(statement.args) != 1 or _lit(statement.args[0]) != target:
                break
            left = _lit(statement.params["left"])
            right = _lit(statement.params["right"])
            if left is None or right is None:
                break
            conds.append(_Cond(left, right, len(leaves)))
            j += 1
            continue
        if name in ("PRODUCT", "PRODUCTSELECT"):
            if len(statement.args) != 2 or not all(
                isinstance(a, Lit) for a in statement.args
            ):
                break
            if _lit(statement.args[0]) != target or _lit(statement.args[1]) == target:
                break
            leaves.append(statement.args[1].symbol)
            if name == "PRODUCTSELECT":
                left = _lit(statement.params["left"])
                right = _lit(statement.params["right"])
                if left is None or right is None:
                    leaves.pop()
                    break
                conds.append(_Cond(left, right, len(leaves)))
            j += 1
            continue
        break
    if len(leaves) < 3:
        return None
    return _Chain(target, tuple(leaves), tuple(conds), tuple(statements[start:j]), j)


def _order_chain(chain: _Chain, stats: DatabaseStats | None) -> OrderDecision:
    k = len(chain.leaves)
    identity = tuple(range(k))
    base = dict(
        target=str(chain.target),
        leaves=tuple(str(s) for s in chain.leaves),
        order=identity,
    )
    if stats is None:
        return OrderDecision(
            outcome="stats-missing", reason="no stats snapshot", **base
        )
    per_leaf = []
    for name in chain.leaves:
        entries = stats.for_name(str(name))
        if not entries:
            return OrderDecision(
                outcome="stats-missing", reason=f"no stats for {name}", **base
            )
        per_leaf.append(entries)
    heights = [sum(e.height for e in entries) for entries in per_leaf]

    def has(leaf: int, attr: Symbol) -> bool:
        return any(e.column_for(attr) is not None for e in per_leaf[leaf])

    def ndv(leaf: int, attr: Symbol) -> int:
        best = 0
        for entry in per_leaf[leaf]:
            column = entry.column_for(attr)
            if column is not None:
                best = max(best, column.ndv)
        return best

    selective: list[tuple[frozenset[int], float]] = []
    for cond in chain.conds:
        involved = frozenset(
            l
            for l in range(cond.prefix)
            if has(l, cond.left) or has(l, cond.right)
        )
        if not involved:
            # Neither attribute occurs: both entry sets are always ∅,
            # the condition keeps every row.
            continue
        ndv_left = max((ndv(l, cond.left) for l in involved), default=0)
        ndv_right = max((ndv(l, cond.right) for l in involved), default=0)
        selective.append((involved, 1.0 / max(ndv_left, ndv_right, 1)))

    def est(subset: frozenset[int]) -> float:
        rows = 1.0
        for l in subset:
            rows *= heights[l]
        for involved, sel in selective:
            if involved <= subset:
                rows *= sel
        return rows

    def order_cost(order: Sequence[int]) -> float:
        return sum(est(frozenset(order[:p])) for p in range(2, k + 1))

    cost_syntactic = order_cost(identity)
    if k <= DP_LEAF_LIMIT:
        best: dict[frozenset[int], tuple[float, tuple[int, ...]]] = {
            frozenset([l]): (0.0, (l,)) for l in range(k)
        }
        for size in range(2, k + 1):
            for subset in itertools.combinations(range(k), size):
                fs = frozenset(subset)
                rows = est(fs)
                best[fs] = min(
                    (best[fs - {last}][0] + rows, best[fs - {last}][1] + (last,))
                    for last in subset
                )
        cost_chosen, chosen = best[frozenset(identity)]
        method = "dp"
    else:
        pair_cost, pair = min(
            (est(frozenset(p)), p) for p in itertools.permutations(range(k), 2)
        )
        chosen_list = list(pair)
        cost_chosen = pair_cost
        while len(chosen_list) < k:
            members = frozenset(chosen_list)
            step_cost, nxt = min(
                (est(members | {l}), l) for l in range(k) if l not in members
            )
            chosen_list.append(nxt)
            cost_chosen += step_cost
        chosen = tuple(chosen_list)
        method = "greedy"
    est_rows = int(est(frozenset(identity)))
    if cost_syntactic <= cost_chosen or chosen == identity:
        return OrderDecision(
            outcome="syntactic",
            reason=f"{method}: syntactic order already optimal",
            est_rows=est_rows,
            cost_syntactic=cost_syntactic,
            cost_chosen=cost_syntactic,
            **base,
        )
    base["order"] = chosen
    return OrderDecision(
        outcome="reordered",
        reason=f"{method}: C_out {cost_chosen:.0f} vs syntactic {cost_syntactic:.0f}",
        est_rows=est_rows,
        cost_syntactic=cost_syntactic,
        cost_chosen=cost_chosen,
        **base,
    )


class ChainJoin(Statement):
    """A PRODUCT/σ chain evaluated in a cost-chosen leaf order.

    Replaces a run of statements that left-fold ``k ≥ 3`` leaves into one
    literal target with interleaved selections.  Per leaf-table
    combination it joins row *indices* in the chosen order (hash joins
    where a condition links the built side to the new leaf, filters as
    soon as a condition's columns are all present — sound because the
    conjunctive filters commute), then restores the exact naive result:
    matched index tuples sorted lexicographically equal the nested-loop
    row order, and rows are assembled with columns and the
    order-sensitive row-attribute fold in *syntactic* leaf order.

    Dispatches through a pseudo registry op (:data:`CHAINJOIN_OP`) so
    events, governor accounting, estimation, and EXPLAIN spans see it
    like any other operation.  Falls back to the original statements
    under an active lineage scope (the provenance fold is
    order-sensitive) and to syntactic evaluation order per combination
    when a leaf's shape no longer matches the planning stats (stale).
    """

    def __init__(
        self,
        chain: _Chain,
        order: tuple[int, ...],
        stats: DatabaseStats | None,
        est_rows: int | None = None,
    ):
        self.target = chain.target
        self.leaves = chain.leaves
        self.conds = chain.conds
        self.order = order
        self.stats = stats
        self.est_rows = est_rows
        self.source = chain.statements
        self._spec = OpSpec(
            name=CHAINJOIN_OP, function=self._join_tables, arity=len(chain.leaves)
        )
        self._arguments = {
            "conds": tuple((c.left, c.right, c.prefix) for c in self.conds)
        }

    def target_symbol(self) -> Symbol:
        return self.target

    def read_symbols(self) -> frozenset[Symbol]:
        return frozenset(self.leaves)

    def _stats_fresh(self, tables: Sequence[Table]) -> bool:
        if self.stats is None:
            return False
        return all(
            self.stats.lookup(str(name), t.height, t.width) is not None
            for name, t in zip(self.leaves, tables)
        )

    def _join_tables(self, *tables: Table, conds=None) -> Table:
        k = len(tables)
        headers = [t.column_attributes for t in tables]
        resolved = []
        for cond in self.conds:
            pos_left = [
                (l, j + 1)
                for l in range(cond.prefix)
                for j, attr in enumerate(headers[l])
                if attr == cond.left
            ]
            pos_right = [
                (l, j + 1)
                for l in range(cond.prefix)
                for j, attr in enumerate(headers[l])
                if attr == cond.right
            ]
            if not pos_left and not pos_right:
                continue  # ∅ ≈ ∅ holds for every row
            involved = frozenset(l for l, _ in pos_left) | frozenset(
                l for l, _ in pos_right
            )
            resolved.append((involved, pos_left, pos_right))
        order = self.order if self._stats_fresh(tables) else tuple(range(k))

        def values(positions, at: dict[int, int], tup: tuple[int, ...]):
            return frozenset(
                tables[l].entry(tup[at[l]], j) for l, j in positions
            )

        joined: list[int] = []
        at: dict[int, int] = {}
        tuples: list[tuple[int, ...]] | None = None
        pending = list(resolved)
        for leaf in order:
            visible = set(joined) | {leaf}
            ready = [c for c in pending if c[0] <= visible]
            pending = [c for c in pending if not (c[0] <= visible)]
            table = tables[leaf]
            rows = list(range(1, table.height + 1))
            local = [c for c in ready if c[0] <= {leaf}]
            for _inv, pos_l, pos_r in local:
                leaf_at = {leaf: 0}
                rows = [
                    i
                    for i in rows
                    if weakly_equal(
                        values(pos_l, leaf_at, (i,)), values(pos_r, leaf_at, (i,))
                    )
                ]
            others = [c for c in ready if not (c[0] <= {leaf})]
            if tuples is None:
                tuples = [(i,) for i in rows]
                joined = [leaf]
                at = {leaf: 0}
                continue
            hash_cond = None
            for cond in others:
                inv, pos_l, pos_r = cond
                left_on_leaf = all(l == leaf for l, _ in pos_l)
                right_on_leaf = all(l == leaf for l, _ in pos_r)
                left_built = all(l != leaf for l, _ in pos_l)
                right_built = all(l != leaf for l, _ in pos_r)
                if pos_l and pos_r and (
                    (left_built and right_on_leaf) or (right_built and left_on_leaf)
                ):
                    hash_cond = cond
                    break
            new_at = dict(at)
            new_at[leaf] = len(joined)
            if hash_cond is not None:
                _inv, pos_l, pos_r = hash_cond
                if all(l == leaf for l, _ in pos_l):
                    leaf_pos, built_pos = pos_l, pos_r
                else:
                    leaf_pos, built_pos = pos_r, pos_l
                leaf_at = {leaf: 0}
                buckets: dict[frozenset, list[int]] = {}
                for i in rows:
                    key = frozenset(
                        s for s in values(leaf_pos, leaf_at, (i,)) if not s.is_null
                    )
                    buckets.setdefault(key, []).append(i)
                new_tuples = []
                for tup in tuples:
                    key = frozenset(
                        s for s in values(built_pos, at, tup) if not s.is_null
                    )
                    for i in buckets.get(key, ()):
                        new_tuples.append(tup + (i,))
                others = [c for c in others if c is not hash_cond]
            else:
                new_tuples = [tup + (i,) for tup in tuples for i in rows]
            for _inv, pos_l, pos_r in others:
                new_tuples = [
                    tup
                    for tup in new_tuples
                    if weakly_equal(
                        values(pos_l, new_at, tup), values(pos_r, new_at, tup)
                    )
                ]
            tuples = new_tuples
            joined.append(leaf)
            at = new_at
        matches = sorted(
            tuple(tup[at[l]] for l in range(k)) for tup in (tuples or [])
        )
        grid = [(self.target,) + tuple(a for h in headers for a in h)]
        for index in matches:
            parts = [tables[l].row(index[l]) for l in range(k)]
            attr = parts[0][0]
            for part in parts[1:]:
                attr = combine_row_attributes(attr, part[0])
            row = [attr]
            for part in parts:
                row.extend(part[1:])
            grid.append(tuple(row))
        return Table(grid)

    def execute(self, db: TabularDatabase, interp) -> TabularDatabase:
        gov = _gv.GOV
        if gov.active and gov.governor is not None:
            gov.governor.check(op=CHAINJOIN_OP)
        obs = _obs.OBS
        observing = obs.active
        if observing and obs.lineage is not None:
            # The provenance fold over column 0 is order-sensitive; the
            # original statements thread it correctly.
            for statement in self.source:
                db = statement.execute(db, interp)
            return db
        cm = (
            obs.tracer.span("statement", text=repr(self))
            if observing and obs.tracer is not None
            else NULL_SPAN
        )
        with cm as sp:
            lists = [db.tables_named(name) for name in self.leaves]
            results: list[Table] = []
            combinations = 0
            stale = 0
            for tables in itertools.product(*lists):
                combinations += 1
                if not self._stats_fresh(tables):
                    stale += 1
                produced = self._spec.invoke(tables, self._arguments, interp.fresh)
                results.extend(t.with_name(self.target) for t in produced)
            new_db = db.replace_named(self.target, results)
            if observing:
                sp.set(
                    combinations=combinations,
                    tables_in=len(db),
                    tables_out=len(new_db),
                    order=[str(self.leaves[l]) for l in self.order],
                    rules=["join-reorder"],
                )
                if self.est_rows is not None:
                    sp.set(est_rows=self.est_rows, est_source="stats")
                if stale:
                    sp.set(stale_combinations=stale)
                if obs.metrics is not None:
                    obs.metrics.count("statements")
                    obs.metrics.count("combinations", combinations)
            return new_db

    def __repr__(self) -> str:
        order = ", ".join(str(self.leaves[l]) for l in self.order)
        conds = ", ".join(f"{c.left}~{c.right}@{c.prefix}" for c in self.conds)
        args = ", ".join(str(l) for l in self.leaves)
        return (
            f"{self.target} <- CHAINJOIN order [{order}] conds [{conds}] ({args})"
        )


def _apply_join_reorder(statements: list[Statement], ctx: _Context) -> list[Statement]:
    out: list[Statement] = []
    i = 0
    while i < len(statements):
        chain = _match_chain(statements, i)
        if chain is None:
            out.append(statements[i])
            i += 1
            continue
        decision = _order_chain(chain, ctx.stats)
        ctx.decisions.append(decision)
        if decision.outcome == "reordered":
            ctx.record(
                "join-reorder",
                f"{len(chain.leaves)}-way chain into {chain.target} evaluated as "
                f"[{', '.join(decision.leaves[l] for l in decision.order)}] "
                f"({decision.reason})",
            )
            out.append(
                ChainJoin(chain, decision.order, ctx.stats, decision.est_rows)
            )
        else:
            out.extend(chain.statements)
        i = chain.end
    return out


# ----------------------------------------------------------------------
# select-pushdown-union: the fused σ(R ∪ S) = σ(R) ∪ σ(S) statement
# ----------------------------------------------------------------------


class SelectUnion(Statement):
    """``T ← σ_{a≈b}(R ∪ S)`` computed as ``σ_{a≈b}(R) ∪ σ_{a≈b}(S)``.

    Exact, including row order: tabular union pads each side's rows with
    ⊥ under the other side's columns, and weak equality strips ⊥ from
    both entry sets, so a padded row satisfies the selection iff the
    unpadded row does; filtering then padding preserves the
    ρ-rows-then-σ-rows order.  Each component σ and the ∪ dispatch
    through the registry, so telemetry sees the real (smaller) work.
    """

    def __init__(self, target: Lit, args: tuple[Lit, Lit], left: Lit, right: Lit):
        self.target = target
        self.args = args
        self.left = left
        self.right = right

    def target_symbol(self) -> Symbol:
        return self.target.symbol

    def read_symbols(self) -> frozenset[Symbol]:
        return frozenset(a.symbol for a in self.args)

    def execute(self, db: TabularDatabase, interp) -> TabularDatabase:
        gov = _gv.GOV
        if gov.active and gov.governor is not None:
            gov.governor.check(op="SELECTUNION")
        obs = _obs.OBS
        observing = obs.active
        cm = (
            obs.tracer.span("statement", text=repr(self))
            if observing and obs.tracer is not None
            else NULL_SPAN
        )
        with cm as sp:
            target = self.target.symbol
            select_spec = OPERATIONS["SELECT"]
            union_spec = OPERATIONS["UNION"]
            arguments = {"left": self.left.symbol, "right": self.right.symbol}
            lefts = db.tables_named(self.args[0].symbol)
            rights = db.tables_named(self.args[1].symbol)
            results: list[Table] = []
            combinations = 0
            if lefts and rights:
                filtered_left = [
                    select_spec.invoke((t,), arguments, interp.fresh)[0]
                    for t in lefts
                ]
                filtered_right = [
                    select_spec.invoke((t,), arguments, interp.fresh)[0]
                    for t in rights
                ]
                for fl in filtered_left:
                    for fr in filtered_right:
                        combinations += 1
                        produced = union_spec.invoke((fl, fr), {}, interp.fresh)
                        results.extend(t.with_name(target) for t in produced)
            new_db = db.replace_named(target, results)
            if observing:
                sp.set(
                    combinations=combinations,
                    tables_in=len(db),
                    tables_out=len(new_db),
                    rules=["select-pushdown-union"],
                )
                if obs.metrics is not None:
                    obs.metrics.count("statements")
                    obs.metrics.count("combinations", combinations)
            return new_db

    def __repr__(self) -> str:
        return (
            f"{self.target} <- SELECTUNION left {self.left} right {self.right} "
            f"({self.args[0]}, {self.args[1]})"
        )


def _apply_select_pushdown_union(
    statements: list[Statement], ctx: _Context
) -> list[Statement]:
    out: list[Statement] = []
    i = 0
    while i < len(statements):
        first = statements[i]
        second = statements[i + 1] if i + 1 < len(statements) else None
        if (
            isinstance(first, Assignment)
            and isinstance(second, Assignment)
            and first.spec.name == "UNION"
            and second.spec.name == "SELECT"
            and isinstance(first.target, Lit)
            and isinstance(second.target, Lit)
            and first.target.symbol == second.target.symbol
            and len(second.args) == 1
            and _lit(second.args[0]) == first.target.symbol
            and all(isinstance(a, Lit) for a in first.args)
            and _lit(second.params.get("left")) is not None
            and _lit(second.params.get("right")) is not None
        ):
            fused = SelectUnion(
                first.target,
                (first.args[0], first.args[1]),
                second.params["left"],
                second.params["right"],
            )
            ctx.record(
                "select-pushdown-union",
                f"σ {fused.left}≈{fused.right} pushed into both sides of "
                f"∪ for {first.target}",
            )
            out.append(fused)
            i += 2
            continue
        out.append(first)
        i += 1
    return out


# ----------------------------------------------------------------------
# The rule registry and the optimize driver
# ----------------------------------------------------------------------


RULES: dict[str, RewriteRule] = {
    rule.name: rule
    for rule in (
        RewriteRule(
            "select-pushdown",
            "σ_{a≈b}∘ρ_{n←o} = ρ_{n←o}∘σ_{a≈b} when {a,b}∩{o,n}=∅; "
            "σ_{a≈b}∘π_A = π_A∘σ_{a≈b} when a,b∈A",
            _apply_select_pushdown,
        ),
        RewriteRule(
            "prune-dead-project",
            "π never raises and assignment replaces its target wholesale, "
            "so an unread, overwritten π store is unobservable; "
            "π_{A₂}∘π_{A₁} = π_{A₁∩A₂}",
            _apply_prune_dead_project,
        ),
        RewriteRule(
            "cse",
            "operations are deterministic functions of their argument "
            "tables; RENAME ⊥→⊥ is the identity, so a duplicate pure "
            "assignment equals a copy of the earlier result",
            _apply_cse,
        ),
        RewriteRule(
            "fuse-product-select",
            "σ_{a≈b}(R × S) = PRODUCTSELECT_{a≈b}(R, S) by definition of "
            "the derived operation",
            _apply_fusion,
        ),
        RewriteRule(
            "join-reorder",
            "× is associative and commutative up to column order and "
            "σ-filters commute, so a chain may be evaluated in any leaf "
            "order when the result is assembled in syntactic order",
            _apply_join_reorder,
        ),
        RewriteRule(
            "select-pushdown-union",
            "σ_{a≈b}(R ∪ S) = σ_{a≈b}(R) ∪ σ_{a≈b}(S): union's ⊥-padding "
            "is invisible to weak equality",
            _apply_select_pushdown_union,
        ),
    )
}

#: Application order of the shipped rules (structural rules first, the
#: fused-statement builders last so they see the normalized program).
RULE_ORDER = (
    "select-pushdown",
    "prune-dead-project",
    "cse",
    "fuse-product-select",
    "join-reorder",
    "select-pushdown-union",
)


class PlanCache:
    """Fingerprint-keyed optimized-plan cache with FIFO eviction."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def get(self, key) -> OptimizationResult | None:
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key, result: OptimizationResult) -> None:
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = result

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide plan cache (a re-ANALYZE changes the stats
#: fingerprint, so stale plans are never returned — only evicted).
PLAN_CACHE = PlanCache()


class OptimizerStats:
    """Process-wide optimizer counters for the Prometheus export."""

    def __init__(self):
        self.cache = {"hit": 0, "miss": 0}
        self.rewrites: dict[str, int] = {}
        self.ordering: dict[str, int] = {}

    def record_cache(self, hit: bool) -> None:
        self.cache["hit" if hit else "miss"] += 1

    def record_rewrite(self, rule: str) -> None:
        self.rewrites[rule] = self.rewrites.get(rule, 0) + 1

    def record_decision(self, outcome: str) -> None:
        self.ordering[outcome] = self.ordering.get(outcome, 0) + 1

    def snapshot(self) -> dict:
        return {
            "cache": dict(self.cache),
            "rewrites": dict(self.rewrites),
            "ordering": dict(self.ordering),
        }

    def reset(self) -> None:
        self.__init__()


#: The counters behind ``repro metrics --prom --optimizer``.
OPTIMIZER_STATS = OptimizerStats()


def _optimize_statements(
    statements: Sequence[Statement], ctx: _Context, enabled: tuple[str, ...]
) -> list[Statement]:
    out: list[Statement] = []
    for statement in statements:
        if isinstance(statement, While):
            before = len(ctx.applied)
            body = _optimize_statements(statement.body.statements, ctx, enabled)
            if len(ctx.applied) != before:
                statement = While(statement.condition, Program(body))
        out.append(statement)
    for name in enabled:
        out = RULES[name].apply(out, ctx)
    return out


def optimize_program(
    program: Program,
    stats: DatabaseStats | None = None,
    *,
    rules: Iterable[str] | None = None,
    cache: PlanCache | None = PLAN_CACHE,
) -> OptimizationResult:
    """Optimize ``program`` under the enabled rules and ``stats``.

    ``rules`` restricts the pass list (names from :data:`RULE_ORDER`;
    order is fixed, membership is the toggle).  Results are cached under
    ``(program fingerprint, stats fingerprint, enabled rules)``; pass
    ``cache=None`` to bypass caching.
    """
    if rules is None:
        enabled = RULE_ORDER
    else:
        requested = list(rules)
        unknown = sorted(set(requested) - set(RULES))
        if unknown:
            raise EvaluationError(
                f"unknown rewrite rule(s) {unknown}; known: {sorted(RULES)}"
            )
        enabled = tuple(r for r in RULE_ORDER if r in set(requested))
    from ..obs.workload import fingerprint_program

    fingerprint = fingerprint_program(program)
    stats_fingerprint = stats.fingerprint if stats is not None else ""
    key = (fingerprint, stats_fingerprint, enabled)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            OPTIMIZER_STATS.record_cache(True)
            return replace(cached, cache_hit=True)
        OPTIMIZER_STATS.record_cache(False)
    ctx = _Context(stats=stats)
    statements = _optimize_statements(program.statements, ctx, enabled)
    optimized = Program(statements) if ctx.applied else program
    result = OptimizationResult(
        program=optimized,
        source=program,
        applied=tuple(ctx.applied),
        decisions=tuple(ctx.decisions),
        fingerprint=fingerprint,
        stats_fingerprint=stats_fingerprint,
        rules=enabled,
    )
    for rewrite in result.applied:
        OPTIMIZER_STATS.record_rewrite(rewrite.rule)
        if _ev.EVT.active:
            _ev.emit(
                "plan_rewrite",
                rule=rewrite.rule,
                detail=rewrite.detail,
                fingerprint=fingerprint,
            )
    for decision in result.decisions:
        OPTIMIZER_STATS.record_decision(decision.outcome)
    if cache is not None:
        cache.put(key, result)
    return result
