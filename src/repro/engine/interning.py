"""Symbol interning and the id-column table representation.

The naive operations walk ``(m+1) × (n+1)`` grids of :class:`Symbol`
objects; every comparison pays Python-level ``__eq__``/``__hash__``
(a ``Name`` hashes a ``(type, text)`` tuple per call).  The vectorized
kernels instead work over an :class:`IdTable`: the same four-region
table with every symbol replaced by a small integer id from one
:class:`SymbolInterner`.  Two ids are equal iff the symbols are equal,
⊥ is always id 0 (so "non-null" is plain truthiness), and row/column
operations become tuple-of-int manipulations that hash and compare at C
speed.

Tables are immutable, so interning is cached per *object*: the interner
keeps an ``id(table)``-keyed map validated (and evicted) through weak
references — a table produced by one kernel re-enters the next kernel
without touching its symbols again.  ``materialize`` registers its
output in the same cache, which is what makes multi-statement pipelines
pay the symbol-level costs only at the engine boundary.

Interning canonicalizes equal symbols to one representative object
(e.g. two equal ``Name("A")`` instances share an id).  Grids built from
ids are therefore equal — cell by cell under ``Symbol.__eq__`` — to the
naive results, which is the equivalence the differential harness pins.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Sequence

from ..core import NULL, Symbol, Table

__all__ = ["IdTable", "SymbolInterner"]


class IdTable:
    """One table as integer ids: name, attribute regions, and id-columns.

    ``cols[j]`` holds data column ``j+1`` top to bottom (no attribute
    slot); ``rows`` is the cached row-major view kernels use for
    hashing whole rows.  Ids refer to the owning interner's symbol
    list; 0 is always ⊥.
    """

    __slots__ = ("name", "col_attrs", "row_attrs", "cols", "_rows")

    def __init__(
        self,
        name: int,
        col_attrs: tuple[int, ...],
        row_attrs: tuple[int, ...],
        cols: tuple[tuple[int, ...], ...] | None = None,
        rows: tuple[tuple[int, ...], ...] | None = None,
    ):
        if cols is None:
            if rows is None:
                raise ValueError("IdTable needs cols or rows")
            cols = tuple(zip(*rows)) if rows else ()
            if not cols:
                cols = tuple(() for _ in col_attrs)
        self.name = name
        self.col_attrs = col_attrs
        self.row_attrs = row_attrs
        self.cols = cols
        self._rows = rows

    @property
    def rows(self) -> tuple[tuple[int, ...], ...]:
        """Row-major data ids (computed once from the columns)."""
        if self._rows is None:
            if self.cols and self.row_attrs:
                self._rows = tuple(zip(*self.cols))
            else:
                self._rows = tuple(() for _ in self.row_attrs)
        return self._rows

    @property
    def height(self) -> int:
        return len(self.row_attrs)

    @property
    def width(self) -> int:
        return len(self.col_attrs)

    def transposed(self) -> "IdTable":
        """The matrix transpose: attribute regions swap, data flips."""
        return IdTable(
            self.name, self.row_attrs, self.col_attrs, cols=self.rows, rows=self.cols
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IdTable({self.height}x{self.width} name={self.name})"


class SymbolInterner:
    """A bijection symbol ↔ small int, with a weak per-table cache.

    ⊥ is interned first so its id is 0; kernels rely on that for
    null-stripping via truthiness.
    """

    __slots__ = ("_ids", "_symbols", "_cache")

    #: Tables cached at once; the cache resets wholesale beyond this (a
    #: backstop — weakref callbacks already evict dead entries).
    CACHE_CAP = 4096

    def __init__(self):
        self._ids: dict[Symbol, int] = {NULL: 0}
        self._symbols: list[Symbol] = [NULL]
        self._cache: dict[int, tuple[weakref.ref, IdTable]] = {}

    def __len__(self) -> int:
        return len(self._symbols)

    def intern(self, symbol: Symbol) -> int:
        """The id of ``symbol``, minting a new one on first sight."""
        i = self._ids.get(symbol)
        if i is None:
            i = len(self._symbols)
            self._ids[symbol] = i
            self._symbols.append(symbol)
        return i

    def intern_all(self, symbols: Iterable[Symbol]) -> frozenset[int]:
        return frozenset(self.intern(s) for s in symbols)

    def symbol(self, i: int) -> Symbol:
        """The representative symbol for id ``i``."""
        return self._symbols[i]

    def _intern_row(self, row: Sequence[Symbol]) -> tuple[int, ...]:
        try:
            return tuple(map(self._ids.__getitem__, row))
        except KeyError:
            return tuple(self.intern(s) for s in row)

    def intern_table(self, table: Table) -> IdTable:
        """The :class:`IdTable` for ``table``, cached by object identity."""
        key = id(table)
        hit = self._cache.get(key)
        if hit is not None and hit[0]() is table:
            return hit[1]
        grid = table.grid
        header = self._intern_row(grid[0])
        body = [self._intern_row(row) for row in grid[1:]]
        idt = IdTable(
            header[0],
            header[1:],
            tuple(row[0] for row in body),
            rows=tuple(row[1:] for row in body),
        )
        self._remember(table, idt)
        return idt

    def materialize(
        self,
        name: int,
        col_attrs: Sequence[int],
        row_attrs: Sequence[int],
        rows: Sequence[Sequence[int]],
    ) -> Table:
        """Build the symbol-level :class:`Table` and cache its id form."""
        lookup = self._symbols.__getitem__
        grid = [tuple(map(lookup, (name,) + tuple(col_attrs)))]
        for attr, row in zip(row_attrs, rows):
            grid.append(tuple(map(lookup, (attr,) + tuple(row))))
        table = Table(grid)
        idt = IdTable(
            name,
            tuple(col_attrs),
            tuple(row_attrs),
            rows=tuple(tuple(row) for row in rows),
        )
        self._remember(table, idt)
        return table

    def _remember(self, table: Table, idt: IdTable) -> None:
        if len(self._cache) >= self.CACHE_CAP:
            self._cache.clear()
        key = id(table)
        cache = self._cache

        def _evict(_ref, _key=key, _cache=cache):
            _cache.pop(_key, None)

        try:
            cache[key] = (weakref.ref(table, _evict), idt)
        except TypeError:  # pragma: no cover - Table is weak-referenceable
            pass
