"""A small statement-level planner for the vectorized backend.

The planner rewrites a program into an equivalent one that exposes more
work to the kernels; today that means a single, provably safe rewrite —
**product/select fusion**::

    T <- PRODUCT (R, S)            T <- PRODUCTSELECT left A right B (R, S)
    T <- SELECT left A right B (T)

Both forms compute ``select(product(R, S), A, B)`` named ``T``; the
fused operation lets the kernel push the selection below the product
(hash join / pre-filter) instead of materializing ``|R|·|S|`` rows
first.  Fusion applies only when it cannot change observable behaviour:

* both statements are plain assignments, adjacent, with **literal**
  targets naming the same table ``T``, and the select reads exactly
  that literal ``T`` — so no later statement could have seen the
  intermediate product;
* the selection parameters are **literals** (a wildcard could be bound
  differently by the product's argument matching, and a data-dependent
  ``Pair`` parameter evaluates against the intermediate product — both
  are left unfused rather than reasoned about);
* the product's *arguments* may be literals or wildcards — the fused
  statement keeps them verbatim, so name matching and wildcard binding
  are untouched.

Everything else — wildcard targets, tagging operations, aggregate
statements — passes through unchanged; falling back to the naive
statement sequence is always correct.
"""

from __future__ import annotations

from ..algebra.programs.params import Lit
from ..algebra.programs.statements import Assignment, Program, Statement, While

__all__ = ["plan_program", "count_fusions"]


def _fusable(first: Statement, second: Statement) -> bool:
    if not (isinstance(first, Assignment) and isinstance(second, Assignment)):
        return False
    if first.spec.name != "PRODUCT" or second.spec.name != "SELECT":
        return False
    if not (isinstance(first.target, Lit) and isinstance(second.target, Lit)):
        return False
    if len(second.args) != 1 or not isinstance(second.args[0], Lit):
        return False
    target = first.target.symbol
    if second.target.symbol != target or second.args[0].symbol != target:
        return False
    left = second.params.get("left")
    right = second.params.get("right")
    return isinstance(left, Lit) and isinstance(right, Lit)


def _fuse(first: Assignment, second: Assignment) -> Assignment:
    return Assignment(
        first.target,
        "PRODUCTSELECT",
        first.args,
        {"left": second.params["left"], "right": second.params["right"]},
    )


def _plan_statements(statements: tuple[Statement, ...]) -> tuple[list[Statement], int]:
    out: list[Statement] = []
    fused = 0
    i = 0
    while i < len(statements):
        statement = statements[i]
        if i + 1 < len(statements) and _fusable(statement, statements[i + 1]):
            out.append(_fuse(statement, statements[i + 1]))
            fused += 1
            i += 2
            continue
        if isinstance(statement, While):
            body, inner = _plan_statements(statement.body.statements)
            if inner:
                statement = While(statement.condition, Program(body))
                fused += inner
        out.append(statement)
        i += 1
    return out, fused


def plan_program(program: Program) -> Program:
    """An equivalent program with fusable product/select pairs fused."""
    statements, fused = _plan_statements(program.statements)
    if not fused:
        return program
    return Program(statements)


def count_fusions(program: Program) -> int:
    """How many product/select pairs :func:`plan_program` would fuse."""
    return _plan_statements(program.statements)[1]
