"""The engine report: kernel/fallback attribution from ``VectorEngine.stats``.

A vector-engine run leaves behind a flat ``stats`` dict — kernel hits
and fallbacks per op, plus ``reason:{op}:{reason}`` attribution counters
(see :data:`~repro.engine.runtime.FALLBACK_REASONS`).  This module turns
that dict into the structured report behind ``python -m repro
engine-report``: per-op dispatch counts, every fallback attributed to a
machine-readable reason, and a coverage figure that must be 100% — an
unattributed fallback means a dispatch path forgot to call
:meth:`~repro.engine.runtime.VectorEngine.note_fallback`, which the
differential-fuzzer attribution test would catch.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["fallback_report", "report_text"]


def fallback_report(stats: Mapping[str, int]) -> dict:
    """Structure one ``VectorEngine.stats`` dict for reporting.

    Returns::

        {
          "kernel_calls": int, "fallbacks": int, "attributed": int,
          "coverage": float,          # attributed / fallbacks (1.0 = full)
          "ops": {op: {"kernel": int, "fallback": int,
                       "reasons": {reason: int}}},
          "reasons": {reason: int},   # totals across ops
        }
    """
    ops: dict[str, dict] = {}

    def entry(op: str) -> dict:
        record = ops.get(op)
        if record is None:
            record = ops[op] = {"kernel": 0, "fallback": 0, "reasons": {}}
        return record

    reasons_total: dict[str, int] = {}
    attributed = 0
    for key, value in stats.items():
        if key.startswith("kernel:"):
            entry(key[len("kernel:"):])["kernel"] = value
        elif key.startswith("fallback:"):
            entry(key[len("fallback:"):])["fallback"] = value
        elif key.startswith("reason:"):
            _, op, reason = key.split(":", 2)
            entry(op)["reasons"][reason] = value
            reasons_total[reason] = reasons_total.get(reason, 0) + value
            attributed += value

    fallbacks = int(stats.get("fallbacks", 0))
    return {
        "kernel_calls": int(stats.get("kernel_calls", 0)),
        "fallbacks": fallbacks,
        "attributed": attributed,
        "coverage": (attributed / fallbacks) if fallbacks else 1.0,
        "ops": {op: ops[op] for op in sorted(ops)},
        "reasons": dict(sorted(reasons_total.items())),
    }


def report_text(report: dict) -> str:
    """Render one :func:`fallback_report` as the CLI's plain-text table."""
    lines = ["ENGINE REPORT", "=" * 64]
    total = report["kernel_calls"] + report["fallbacks"]
    lines.append(
        f"dispatches: {total}  kernel: {report['kernel_calls']}  "
        f"fallback: {report['fallbacks']}  "
        f"attributed: {report['attributed']}/{report['fallbacks']} "
        f"({report['coverage']:.0%})"
    )
    if report["ops"]:
        lines.append("")
        lines.append(f"{'op':<16} {'kernel':>7} {'fallback':>9}  reasons")
        lines.append("-" * 64)
        for op, record in report["ops"].items():
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(record["reasons"].items())
            )
            lines.append(
                f"{op:<16} {record['kernel']:>7} {record['fallback']:>9}  {reasons}"
            )
    if report["reasons"]:
        lines.append("")
        lines.append("fallback reasons:")
        for reason, count in report["reasons"].items():
            lines.append(f"  {reason:<16} {count}")
    return "\n".join(lines)
