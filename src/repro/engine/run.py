"""The backend switch: run a program on the naive or vectorized engine.

``run_program(program, db, engine="vector")`` is the one entry point
the rest of the system goes through (``Program.run(engine=...)``, the
CLI ``--engine`` flag, and ``run_hardened`` all delegate here).  The
vector path plans the program (product/select fusion), then executes it
inside an :func:`~repro.engine.runtime.engine_scope`, so the operation
registry routes each invocation through the kernel catalogue with
per-invocation fallback to the naive operations.

``optimize=True`` additionally runs the program through the cost-based
optimizer (:mod:`repro.engine.optimizer`) before execution — on either
backend — using ``stats`` (or the active estimation scope's stats
snapshot) to drive join ordering.
"""

from __future__ import annotations

from ..core import EvaluationError, FreshValueSource, TabularDatabase
from .planner import plan_program
from .runtime import VectorEngine, engine_scope

__all__ = ["ENGINES", "run_program"]

#: The recognised values of the ``engine=`` switch.
ENGINES = ("naive", "vector")


def run_program(
    program,
    db: TabularDatabase,
    *,
    engine: str | None = "naive",
    fresh: FreshValueSource | None = None,
    max_while_iterations: int = 10_000,
    backend: VectorEngine | None = None,
    optimize: bool = False,
    stats=None,
) -> TabularDatabase:
    """Run ``program`` on ``db`` under the selected backend.

    ``engine=None`` or ``"naive"`` is the plain interpreter,
    ``"vector"`` plans the program and dispatches through the kernels.
    Pass a ``backend`` to inspect its ``stats`` afterwards (a fresh one
    is created per run otherwise, keeping the interner's id space
    bounded to the run).  ``optimize=True`` applies the cost-based
    rewrite rules first; ``stats`` is a
    :class:`~repro.obs.stats.DatabaseStats` snapshot for join ordering
    (defaults to the active estimation scope's snapshot, if any).
    """
    if optimize:
        from ..obs import estimator as _est
        from .optimizer import optimize_program

        if stats is None and _est.EST.active and _est.EST.estimator is not None:
            stats = _est.EST.estimator.stats
        program = optimize_program(program, stats).program
    if engine in (None, "naive"):
        return program.run(
            db, fresh=fresh, max_while_iterations=max_while_iterations
        )
    if engine != "vector":
        raise EvaluationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    planned = plan_program(program)
    with engine_scope(backend):
        return planned.run(
            db, fresh=fresh, max_while_iterations=max_while_iterations
        )
