"""Transposition operators (paper, Section 3.3).

``TRANSPOSE`` flips a table as a matrix; ``SWITCH_V`` promotes a uniquely
occurring entry V to the table-name position by swapping its row with row 0
and its column with column 0.  Together they give every tabular algebra
operation an expressible *dual* (rows and columns interchanged), provided
here as the :func:`dual` combinator; constant selection is derivable this
way (the library also ships it directly in
:func:`repro.algebra.traditional.select_constant`).

Provenance contract: both operations are pure permutations of the grid —
every output cell *is* an input symbol object — so cell lineage
(:mod:`repro.obs.lineage`) flows through them untouched.
"""

from __future__ import annotations

from typing import Callable

from ..core import Symbol, Table
from .opshelpers import as_attr_symbol

__all__ = ["transpose", "switch", "dual"]


def _named(table: Table, name: object | None) -> Table:
    if name is None:
        return table
    return table.with_name(as_attr_symbol(name))


def transpose(table: Table, name: object | None = None) -> Table:
    """``T ← TRANSPOSE(R)``: column attributes become row attributes and
    vice versa; the table name stays put at (0, 0)."""
    return _named(table.transpose(), name)


def switch(table: Table, value: object, name: object | None = None) -> Table:
    """``T ← SWITCH_V(R)``.

    If ``V`` occurs at exactly one position (i, j) of the table, rows 0 and
    i and columns 0 and j are swapped (so V becomes the table name, its row
    the attribute row, its column the attribute column).  Otherwise the
    table is merely renamed — the paper's fallback for non-unique V.
    """
    from ..core import coerce_symbol

    v = coerce_symbol(value)
    hits = [
        (i, j)
        for i in range(table.nrows)
        for j in range(table.ncols)
        if table.entry(i, j) == v
    ]
    if len(hits) != 1:
        return _named(table, name)
    i, j = hits[0]
    rows = list(range(table.nrows))
    cols = list(range(table.ncols))
    rows[0], rows[i] = rows[i], rows[0]
    cols[0], cols[j] = cols[j], cols[0]
    return _named(table.subtable(rows, cols), name)


def dual(operation: Callable[..., Table]) -> Callable[..., Table]:
    """Lift an operation to its dual (rows and columns interchanged).

    ``dual(op)(R, …) = TRANSPOSE(op(TRANSPOSE(R), …))``.  PURGE is the dual
    of CLEAN-UP obtained exactly this way.
    """

    def dual_operation(table: Table, *args, name: object | None = None, **kwargs) -> Table:
        result = operation(transpose(table), *args, **kwargs)
        return _named(transpose(result), name)

    dual_operation.__name__ = f"dual_{getattr(operation, '__name__', 'op')}"
    dual_operation.__doc__ = f"Dual (transposed) form of {getattr(operation, '__name__', 'op')}."
    return dual_operation
