"""The four restructuring operations (paper, Section 3.2).

GROUP and MERGE (respectively SPLIT and COLLAPSE) are inverses of each
other — up to the redundancy that CLEAN-UP and PURGE remove.  The formal
definitions were suppressed in the extended abstract; the semantics here
are reconstructed from the paper's worked examples and validated against
Figures 1, 4, and 5 (see DESIGN.md, Section 3, decisions 5–8).

Summary of the reconstruction:

* ``GROUP by 𝒜 on ℬ (R)``: pivots the ℬ-columns out into one ℬ-block per
  data row and turns each 𝒜-column into a header data row (row attribute =
  the attribute itself) carrying the per-row 𝒜-values.
* ``MERGE on ℬ by 𝒜 (R)``: segments the ℬ-columns into blocks (a block
  closes when an attribute name would repeat) and emits one output row per
  (non-𝒜 data row × block), reading the 𝒜-values from the rows whose row
  attribute is in 𝒜.
* ``SPLIT on 𝒜 (R)``: one result table per distinct combination of
  𝒜-column entries; each gets per-𝒜-column header rows with the
  combination value repeated across the width.
* ``COLLAPSE by 𝒜 (R)``: merges every table named R on *all* its scheme
  attributes by 𝒜, then folds the results with tabular union.

Provenance contract: all four operations build their outputs purely by
*copying* input symbol objects into new positions (the pivoted header
rows of GROUP replicate attribute and value cells; MERGE reads its
𝒜-values from provider rows; padding uses the un-tagged ⊥ constant), so
cell lineage (:mod:`repro.obs.lineage`) flows through them without any
explicit hook — except COLLAPSE's final clean-up, which unions lineage
at its merge sites like every redundancy removal.
"""

from __future__ import annotations

from typing import Sequence

from ..core import NULL, Symbol, Table, UndefinedOperationError
from .opshelpers import as_attr_set, as_attr_symbol, columns_with_attr_in, require
from .traditional import union

__all__ = ["group", "merge", "split", "collapse", "segment_blocks"]


def _named(table: Table, name: object | None) -> Table:
    if name is None:
        return table
    return table.with_name(as_attr_symbol(name))


def group(table: Table, by: object, on: object, name: object | None = None) -> Table:
    """``T ← GROUP by 𝒜 on ℬ (R)`` — Section 3.2's three-step construction.

    1. The new attribute row keeps the attributes outside 𝒜 ∪ ℬ and then
       repeats the ℬ-attributes once per data row of R.
    2. Each 𝒜-column becomes the next data row: row attribute = that
       column's attribute (a literal), ⊥ under the kept attributes, and
       under block *i* the 𝒜-entry of R's row *i* (repeated across the
       block's columns).
    3. R's data row *i* re-appears with its kept entries and its ℬ-entries
       under block *i*, ⊥ elsewhere.

    Validated against Figure 4 (top ↦ bottom) exactly.
    """
    by_set = as_attr_set(by)
    on_set = as_attr_set(on)
    require(not (by_set & on_set), "GROUP: the by- and on-attribute sets must be disjoint")
    by_cols = columns_with_attr_in(table, by_set)
    on_cols = columns_with_attr_in(table, on_set)
    require(bool(by_cols), f"GROUP: no column carries a by-attribute from {sorted(map(str, by_set))}")
    require(bool(on_cols), f"GROUP: no column carries an on-attribute from {sorted(map(str, on_set))}")
    rest_cols = [
        j for j in table.data_col_indices() if j not in set(by_cols) and j not in set(on_cols)
    ]
    data_rows = list(table.data_row_indices())
    block_width = len(on_cols)
    n_blocks = len(data_rows)

    header: list[Symbol] = [table.name]
    header += [table.entry(0, j) for j in rest_cols]
    for _ in range(n_blocks):
        header += [table.entry(0, j) for j in on_cols]
    grid = [header]

    # One header data row per 𝒜-column.
    for c in by_cols:
        row: list[Symbol] = [table.entry(0, c)]
        row += [NULL] * len(rest_cols)
        for i in data_rows:
            row += [table.entry(i, c)] * block_width
        grid.append(row)

    # One data row per original data row, its ℬ-entries under its own block.
    for position, i in enumerate(data_rows):
        row = [table.entry(i, 0)]
        row += [table.entry(i, j) for j in rest_cols]
        for block in range(n_blocks):
            if block == position:
                row += [table.entry(i, j) for j in on_cols]
            else:
                row += [NULL] * block_width
        grid.append(row)

    return _named(Table(grid), name)


def segment_blocks(table: Table, on_cols: Sequence[int]) -> list[list[int]]:
    """Segment ℬ-columns into blocks, closing a block on a repeated attribute.

    The output of ``GROUP … on ℬ`` segments back into its per-row copies of
    the ℬ-sequence; a relation-style table in which each ℬ-attribute occurs
    once forms a single block.  (DESIGN.md decision 6.)
    """
    blocks: list[list[int]] = []
    current: list[int] = []
    seen: set[Symbol] = set()
    for j in on_cols:
        attr = table.entry(0, j)
        if attr in seen:
            blocks.append(current)
            current = []
            seen = set()
        current.append(j)
        seen.add(attr)
    if current:
        blocks.append(current)
    return blocks


def merge(table: Table, on: object, by: object, name: object | None = None) -> Table:
    """``T ← MERGE on ℬ by 𝒜 (R)`` — the inverse of grouping.

    Emits one output data row per (data row whose row attribute ∉ 𝒜) ×
    (block of ℬ-columns); the 𝒜-values come from the data rows whose row
    attribute *is* in 𝒜, read at the block's columns.  Defined on *all*
    tables, not only those that resulted from a grouping (Section 3.2).

    Validated against Figure 5 (``SalesInfo2`` ↦ the printed 12-row table).
    """
    on_set = as_attr_set(on)
    by_set = as_attr_set(by)
    on_cols = columns_with_attr_in(table, on_set)
    require(bool(on_cols), f"MERGE: no column carries an on-attribute from {sorted(map(str, on_set))}")
    blocks = segment_blocks(table, on_cols)
    rest_cols = [j for j in table.data_col_indices() if j not in set(on_cols)]

    provider_rows = [i for i in table.data_row_indices() if table.entry(i, 0) in by_set]
    emit_rows = [i for i in table.data_row_indices() if table.entry(i, 0) not in by_set]

    # Output 𝒜-columns, ordered by first appearance as a provider row
    # attribute; members of 𝒜 never appearing come last in symbol order.
    seen_order: list[Symbol] = []
    for i in provider_rows:
        attr = table.entry(i, 0)
        if attr not in seen_order:
            seen_order.append(attr)
    missing = sorted(by_set - set(seen_order), key=lambda s: s.sort_key())
    by_order = seen_order + missing

    # Output ℬ-columns: distinct ℬ-names in first-appearance column order.
    on_names: list[Symbol] = []
    for j in on_cols:
        attr = table.entry(0, j)
        if attr not in on_names:
            on_names.append(attr)

    header: list[Symbol] = [table.name]
    header += [table.entry(0, j) for j in rest_cols]
    header += by_order
    header += on_names
    grid = [header]

    def provider_value(attr: Symbol, block: Sequence[int]) -> Symbol:
        """First non-⊥ entry of an 𝒜-named provider row at the block."""
        for i in provider_rows:
            if table.entry(i, 0) != attr:
                continue
            for j in block:
                entry = table.entry(i, j)
                if not entry.is_null:
                    return entry
        return NULL

    for i in emit_rows:
        for block in blocks:
            row: list[Symbol] = [table.entry(i, 0)]
            row += [table.entry(i, j) for j in rest_cols]
            row += [provider_value(attr, block) for attr in by_order]
            block_attrs = {table.entry(0, j): j for j in block}
            row += [
                table.entry(i, block_attrs[a]) if a in block_attrs else NULL
                for a in on_names
            ]
            grid.append(row)

    return _named(Table(grid), name)


def split(table: Table, on: object, name: object | None = None) -> tuple[Table, ...]:
    """``T ← SPLIT on 𝒜 (R)`` — one table per 𝒜-combination.

    All result tables share the attribute row of R minus the 𝒜-columns.
    Each carries, per 𝒜-column, a header data row whose row attribute is
    that column's attribute (a literal) and whose every other position
    repeats the combination's value; then the matching data rows, with the
    𝒜-columns projected out.  Validated against ``SalesInfo4`` (Figure 1).
    """
    on_set = as_attr_set(on)
    a_cols = columns_with_attr_in(table, on_set)
    require(bool(a_cols), f"SPLIT: no column carries an attribute from {sorted(map(str, on_set))}")
    rest_cols = [j for j in table.data_col_indices() if j not in set(a_cols)]

    keys: list[tuple[Symbol, ...]] = []
    members: dict[tuple[Symbol, ...], list[int]] = {}
    for i in table.data_row_indices():
        key = tuple(table.entry(i, j) for j in a_cols)
        if key not in members:
            keys.append(key)
            members[key] = []
        members[key].append(i)

    result_name = table.name if name is None else as_attr_symbol(name)
    tables = []
    for key in keys:
        grid: list[list[Symbol]] = [
            [result_name] + [table.entry(0, j) for j in rest_cols]
        ]
        for value, c in zip(key, a_cols):
            grid.append([table.entry(0, c)] + [value] * len(rest_cols))
        for i in members[key]:
            grid.append([table.entry(i, 0)] + [table.entry(i, j) for j in rest_cols])
        tables.append(Table(grid))
    return tuple(tables)


def collapse(tables: Sequence[Table], by: object, name: object | None = None) -> Table:
    """``T ← COLLAPSE by 𝒜 (R)`` — the inverse of splitting.

    Every input table is first merged on *all* the attributes of its scheme
    by 𝒜, then the results are folded with tabular union (Section 3.2).
    The result is deliberately uneconomical; CLEAN-UP and PURGE recover the
    compact form (see :func:`repro.algebra.derived.collapse_compact`).
    """
    require(bool(tables), "COLLAPSE: at least one input table is required")
    merged = []
    for table in tables:
        scheme = frozenset(table.column_attributes)
        require(
            bool(scheme),
            "COLLAPSE: a table with no data columns cannot be merged",
        )
        merged.append(merge(table, on=scheme, by=by))
    result = merged[0]
    for other in merged[1:]:
        result = union(result, other)
    return _named(result, name)
