"""Derived operations — compositions the paper singles out.

The tabular algebra was designed so that "useful transformations can be
expressed directly at a high level"; this module packages the compositions
the paper itself describes:

* :func:`classical_union` — tabular union, then purge (redundant columns),
  then clean-up (duplicate rows), for union-compatible relation-style
  tables (Section 3.4);
* :func:`deduplicate` / :func:`deduplicate_columns` — clean-up/purge as
  duplicate elimination;
* :func:`group_compact` — GROUP followed by the CLEAN-UP and PURGE of the
  Section 3.2/3.4 running example, yielding the *economical* grouped table
  the authors "had in mind … when we conceived this operation" (the bold
  ``Sales`` of ``SalesInfo2``);
* :func:`merge_compact` — MERGE followed by removal of the all-⊥ rows via
  projection/difference, recovering the relation-style table (Figure 4
  top from Figure 5);
* :func:`collapse_compact` — COLLAPSE followed by redundancy removal;
* :func:`drop_all_null_rows` — "selecting out the tuples with Sold entry
  ⊥", the difference-based simulation the paper sketches.

Provenance contract: derived operations inherit lineage behaviour from
the primitives they compose; nothing here needs its own hook.  The one
symbol-*creating* site, :func:`const_column`, deliberately emits cells
with empty lineage — a constant genuinely derives from no input cell,
and the witness-replay audit treats it as vacuously constructive.
"""

from __future__ import annotations

from typing import Sequence

from ..core import NULL, Symbol, Table
from .opshelpers import as_attr_set, as_attr_symbol
from .redundancy import cleanup, purge
from .restructuring import collapse, group, merge
from .traditional import difference, product, project, select, select_constant, union

__all__ = [
    "classical_union",
    "const_column",
    "deduplicate",
    "deduplicate_columns",
    "drop_all_null_rows",
    "group_compact",
    "merge_compact",
    "collapse_compact",
    "natural_join",
    "product_select",
]


def _named(table: Table, name: object | None) -> Table:
    if name is None:
        return table
    return table.with_name(as_attr_symbol(name))


def _scheme(table: Table) -> frozenset[Symbol]:
    return frozenset(table.column_attributes)


def _row_attr_universe(table: Table) -> frozenset[Symbol]:
    return frozenset(table.row_attributes) | {NULL}


def deduplicate(table: Table, name: object | None = None) -> Table:
    """Duplicate-row elimination: clean-up by the full scheme, on every
    row attribute (identical rows always merge position-wise)."""
    return _named(
        cleanup(table, by=_scheme(table), on=_row_attr_universe(table)), name
    )


def deduplicate_columns(table: Table, name: object | None = None) -> Table:
    """Duplicate-column elimination: purge over the full scheme.

    The empty 𝒜 makes columns group by their attribute alone, so the
    ⊥-disjoint copies produced by tabular union merge position-wise.
    """
    return _named(
        purge(table, on=_scheme(table) | {NULL}, by=frozenset()),
        name,
    )


def classical_union(rho: Table, sigma: Table, name: object | None = None) -> Table:
    """Classical union of two union-compatible relation-style tables.

    Exactly the Section 3.4 recipe: tabular union (schemes concatenate,
    rows pad with ⊥), purge to eliminate the redundant columns, clean-up
    to eliminate duplicate rows.
    """
    combined = union(rho, sigma)
    return _named(deduplicate(deduplicate_columns(combined)), name)


def product_select(
    rho: Table, sigma: Table, left: object, right: object, name: object | None = None
) -> Table:
    """``σ_{left ≈ right}(ρ × σ)`` as one operation.

    Semantically nothing but the composition — this definition *is* the
    reference the vectorized backend is differentially tested against.
    The planner rewrites adjacent ``T ← PRODUCT; T ← SELECT (T)`` pairs
    into this operation so the vector kernel can push the selection
    below the product (hash join / pre-filter) instead of materializing
    ``|ρ|·|σ|`` rows first; on the naive engine the fused statement
    costs the same as the pair it replaces.
    """
    return _named(select(product(rho, sigma), left, right), name)


def const_column(
    table: Table, attr: object, value: object, name: object | None = None
) -> Table:
    """Append a column named ``attr`` holding ``value`` in every data row.

    Needed to express rules whose heads mention explicit constants (the
    SchemaLog embedding, Theorem 4.5).  In core tabular algebra the same
    effect is reachable through the attribute machinery — RENAME can write
    any symbol into the attribute row, TRANSPOSE/SWITCH relocate it, and a
    GROUP header row replicates it across a row — but the composition is
    long and instance-dependent, so the library ships the operation as a
    first-class derived op.
    """
    from ..core import coerce_symbol

    column: list[Symbol] = [as_attr_symbol(attr)]
    column += [coerce_symbol(value)] * table.height
    return _named(table.append_columns([column]), name)


def drop_all_null_rows(table: Table, attr: object, name: object | None = None) -> Table:
    """Remove the data rows whose ``attr``-entries are entirely ⊥.

    This is the paper's "selecting out the tuples with Sold entry ⊥ …
    simulated using projection, transposition, and difference": here
    realized as ``R \\ σ_{attr=⊥}(R)``.
    """
    return _named(difference(table, select_constant(table, attr, None)), name)


def group_compact(table: Table, by: object, on: object, name: object | None = None) -> Table:
    """GROUP, then CLEAN-UP and PURGE — the economical grouped table.

    For Figure 4 top with ``by=Region, on=Sold`` this is precisely
    ``PURGE on Sold by Region (CLEAN-UP by Part on ⊥ (GROUP by Region on
    Sold (Sales)))`` and reproduces the bold ``Sales`` of ``SalesInfo2``.
    """
    by_set = as_attr_set(by)
    on_set = as_attr_set(on)
    grouped = group(table, by=by_set, on=on_set)
    rest = _scheme(table) - by_set - on_set
    cleaned = cleanup(grouped, by=rest, on=_row_attr_universe(table))
    header_names = frozenset(
        table.entry(0, j) for j in table.data_col_indices() if table.entry(0, j) in by_set
    )
    return _named(purge(cleaned, on=on_set, by=header_names), name)


def merge_compact(table: Table, on: object, by: object, name: object | None = None) -> Table:
    """MERGE, then drop the rows that are entirely ⊥ on the merged names.

    For the bold ``Sales`` of ``SalesInfo2`` with ``on=Sold, by=Region``
    this recovers Figure 4 top (up to row order).
    """
    on_set = as_attr_set(on)
    merged = merge(table, on=on_set, by=by)
    result = merged
    for attr in sorted(on_set, key=lambda s: s.sort_key()):
        result = drop_all_null_rows(result, attr)
    return _named(result, name)


def natural_join(rho: Table, sigma: Table, name: object | None = None) -> Table:
    """Classical natural join of two relation-style tables.

    Derived from the tabular primitives exactly like its relational
    counterpart: rename σ's shared attributes apart, take the Cartesian
    product, select equality per shared attribute, project the result
    schema, and deduplicate.  Shared attributes must occur exactly once on
    each side (the classical named perspective).
    """
    from .traditional import rename as rename_op
    from .traditional import select

    shared = [a for a in rho.column_attributes if a in set(sigma.column_attributes)]
    for attr in shared:
        if (
            len(rho.columns_named(attr)) != 1
            or len(sigma.columns_named(attr)) != 1
        ):
            from ..core import UndefinedOperationError

            raise UndefinedOperationError(
                f"natural join needs each shared attribute once per side; "
                f"{attr!s} repeats"
            )
    from ..core import Name

    primed = sigma
    primes = {}
    for attr in shared:
        primed_name = Name(f"__join_{attr!s}")
        primes[attr] = primed_name
        primed = rename_op(primed, attr, primed_name)
    joined = product(rho, primed)
    for attr in shared:
        joined = select(joined, attr, primes[attr])
    keep = list(rho.column_attributes) + [
        a for a in sigma.column_attributes if a not in set(shared)
    ]
    projected = project(joined, keep)
    return _named(deduplicate(projected), name)


def collapse_compact(tables: Sequence[Table], by: object, name: object | None = None) -> Table:
    """COLLAPSE, then purge the padded columns and deduplicate rows.

    Recovers the relation-style table from the ``SalesInfo4``-style family
    (Figure 1's claim that any representation restructures to any other).
    """
    collapsed = collapse(tables, by=by)
    return _named(deduplicate(deduplicate_columns(collapsed)), name)
