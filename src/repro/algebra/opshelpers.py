"""Shared helpers for the tabular algebra operations.

Operations accept attribute parameters as symbols, strings (coerced to
names), ``None`` (coerced to ⊥), or iterables thereof; the helpers here
normalize those inputs and provide the small pieces of shared machinery
(column/row selection by attribute set, row-attribute combination).
"""

from __future__ import annotations

from typing import Iterable

from ..core import NULL, Name, Symbol, Table, UndefinedOperationError, coerce_symbol

__all__ = [
    "as_attr_symbol",
    "as_attr_set",
    "columns_with_attr_in",
    "rows_with_attr_in",
    "combine_row_attributes",
]


def as_attr_symbol(obj: object) -> Symbol:
    """Coerce a single attribute parameter (str → Name, None → ⊥)."""
    if isinstance(obj, Symbol):
        return obj
    if obj is None:
        return NULL
    if isinstance(obj, str):
        return Name(obj)
    return coerce_symbol(obj)


def as_attr_set(obj: object) -> frozenset[Symbol]:
    """Coerce an attribute-set parameter.

    Accepts a single attribute (symbol/str/None) or an iterable of them.
    Strings coerce to names; ``None`` to ⊥ (attributes are optional in the
    tabular model, so ⊥ is a legitimate member of an attribute set — e.g.
    ``CLEAN-UP by Part on ⊥``).
    """
    if obj is None or isinstance(obj, (Symbol, str)):
        return frozenset([as_attr_symbol(obj)])
    if isinstance(obj, Iterable):
        return frozenset(as_attr_symbol(item) for item in obj)
    return frozenset([as_attr_symbol(obj)])


def columns_with_attr_in(table: Table, attrs: frozenset[Symbol]) -> list[int]:
    """Data-column indices whose column attribute lies in ``attrs``, in order."""
    header = table.row(0)
    return [j for j in range(1, table.ncols) if header[j] in attrs]


def rows_with_attr_in(table: Table, attrs: frozenset[Symbol]) -> list[int]:
    """Data-row indices whose row attribute lies in ``attrs``, in order."""
    return [i for i in range(1, table.nrows) if table.entry(i, 0) in attrs]


def combine_row_attributes(left: Symbol, right: Symbol) -> Symbol:
    """Combine two row attributes into the single slot of a product row.

    Equal attributes survive; a ⊥ yields to the other side; a genuine
    conflict becomes ⊥ (DESIGN.md interpretation decision 3).
    """
    if left == right:
        return left
    if left.is_null:
        return right
    if right.is_null:
        return left
    return NULL


def require(condition: bool, message: str) -> None:
    """Raise :class:`UndefinedOperationError` unless ``condition`` holds."""
    if not condition:
        raise UndefinedOperationError(message)
