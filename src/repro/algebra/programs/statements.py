"""Tabular algebra programs: assignment statements, while loops, interpreter.

A program is a sequence of assignment statements of the form
``T ← (operation)(parameter list)(argument list)`` and while programs
``while R ≠ ∅ do P`` (paper, Sections 3 and 3.6).  Execution semantics:

* each assignment is executed for **all combinations of tables** whose
  names match the argument parameters (a name parameter matches every
  table carrying that name — there may be several); wildcards bind to the
  names in the combination and are shared across the whole statement,
  including the target;
* the results of all combinations are named after the target and
  **replace** the tables previously carrying that name (DESIGN.md
  decision 13) — the database is otherwise only augmented;
* aggregate operations (COLLAPSE) consume all tables of a matching name at
  once rather than one combination at a time;
* ``while R ≠ ∅ do P`` repeats P as long as some table named R contains a
  non-empty set of data rows; the interpreter enforces an iteration budget
  since the language is Turing-complete.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ...core import (
    EvaluationError,
    FreshValueSource,
    NonTerminationError,
    Symbol,
    TabularDatabase,
    Table,
)
from ...obs import estimator as _est
from ...obs import events as _ev
from ...obs import runtime as _obs
from ...obs.trace import NULL_SPAN
from ...runtime import governor as _gv
from .params import Binding, Lit, Parameter, Star, as_parameter
from .registry import OPERATIONS, PARAM_ENTRY, PARAM_SET, PARAM_SINGLE, OpSpec

__all__ = ["Statement", "Assignment", "While", "Program", "Interpreter", "assign"]


class Statement:
    """Abstract base of program statements."""

    def execute(self, db: TabularDatabase, interp: "Interpreter") -> TabularDatabase:
        raise NotImplementedError


class Assignment(Statement):
    """``target ← OP (params) (args)``.

    ``target`` and each member of ``args`` are name parameters (literal
    names or wildcards); ``params`` maps the operation's keywords to
    parameters (coerced via :func:`repro.algebra.programs.params.as_parameter`).
    """

    def __init__(
        self,
        target: object,
        op: str,
        args: Sequence[object],
        params: Mapping[str, object] | None = None,
    ):
        op_key = op.upper().replace("-", "").replace("_", "")
        if op_key not in OPERATIONS:
            raise EvaluationError(f"unknown operation {op!r}")
        self.spec: OpSpec = OPERATIONS[op_key]
        self.target = as_parameter(target)
        self.args = tuple(as_parameter(a) for a in args)
        self.params = {k: as_parameter(v) for k, v in (params or {}).items()}
        unknown = set(self.params) - set(self.spec.params)
        if unknown:
            raise EvaluationError(
                f"{self.spec.name} does not take parameter(s) {sorted(unknown)}"
            )
        missing = set(self.spec.params) - set(self.params)
        if missing:
            raise EvaluationError(
                f"{self.spec.name} is missing parameter(s) {sorted(missing)}"
            )
        if not self.spec.aggregate and len(self.args) != self.spec.arity:
            raise EvaluationError(
                f"{self.spec.name} takes {self.spec.arity} argument table(s), got {len(self.args)}"
            )
        if self.spec.aggregate and len(self.args) != 1:
            raise EvaluationError(f"{self.spec.name} takes exactly one argument name")

    # -- matching ------------------------------------------------------

    def _candidate_names(
        self, param: Parameter, db: TabularDatabase, binding: Binding
    ) -> Iterator[tuple[Symbol, Binding]]:
        """Names a table-name parameter can denote, with extended bindings."""
        if isinstance(param, Star):
            if binding.bound(param.index):
                yield binding.get(param.index), binding
            else:
                for name in sorted(db.table_names(), key=lambda s: s.sort_key()):
                    yield name, binding.extended(param.index, name)
        elif isinstance(param, Lit):
            yield param.symbol, binding
        else:
            raise EvaluationError(
                f"argument parameters must be names or wildcards, got {param!r}"
            )

    def _combinations(
        self, db: TabularDatabase, binding: Binding
    ) -> Iterator[tuple[tuple[Table, ...], Binding]]:
        """All argument-table combinations with their wildcard bindings."""

        def recurse(
            idx: int, chosen: tuple[Table, ...], bnd: Binding
        ) -> Iterator[tuple[tuple[Table, ...], Binding]]:
            if idx == len(self.args):
                yield chosen, bnd
                return
            for name, bnd2 in self._candidate_names(self.args[idx], db, bnd):
                for table in db.tables_named(name):
                    yield from recurse(idx + 1, chosen + (table,), bnd2)

        yield from recurse(0, (), binding)

    def _aggregate_groups(
        self, db: TabularDatabase, binding: Binding
    ) -> Iterator[tuple[tuple[Table, ...], Binding]]:
        """For aggregate operations: all tables of each matching name."""
        for name, bnd in self._candidate_names(self.args[0], db, binding):
            tables = db.tables_named(name)
            if tables:
                yield tables, bnd

    # -- parameter evaluation ------------------------------------------

    def _evaluate_params(self, binding: Binding, table: Table) -> dict[str, object]:
        out: dict[str, object] = {}
        for keyword, kind in self.spec.params.items():
            param = self.params[keyword]
            if kind == PARAM_SET:
                out[keyword] = param.evaluate(binding, table)
            elif kind in (PARAM_SINGLE, PARAM_ENTRY):
                out[keyword] = param.evaluate_single(binding, table)
            else:  # pragma: no cover - registry invariant
                raise EvaluationError(f"unknown parameter kind {kind!r}")
        return out

    # -- execution ------------------------------------------------------

    def execute(self, db: TabularDatabase, interp: "Interpreter") -> TabularDatabase:
        gov = _gv.GOV
        if gov.active and gov.governor is not None:
            # Statement-entry check: deadline/cancellation trip even when
            # no combination matches and no op is ever dispatched.
            gov.governor.check(op=self.spec.name)
        obs = _obs.OBS
        observing = obs.active
        cm = (
            obs.tracer.span("statement", text=repr(self))
            if observing and obs.tracer is not None
            else NULL_SPAN
        )
        with cm as sp:
            source = (
                self._aggregate_groups(db, interp.binding)
                if self.spec.aggregate
                else self._combinations(db, interp.binding)
            )
            results: dict[Symbol, list[Table]] = {}
            target_names: set[Symbol] = set()
            combinations = 0
            bindings_seen: list[str] = []
            for tables, binding in source:
                combinations += 1
                if observing and binding is not interp.binding:
                    # Snapshot the wildcard environment driving this
                    # combination (bounded, so wide fan-outs stay readable).
                    if len(bindings_seen) < 8:
                        bindings_seen.append(repr(binding))
                    elif len(bindings_seen) == 8:
                        bindings_seen.append("…")
                arguments = self._evaluate_params(binding, tables[0])
                produced = self.spec.invoke(tables, arguments, interp.fresh)
                target = self.target.evaluate_single(binding, tables[0])
                target_names.add(target)
                results.setdefault(target, []).extend(
                    t.with_name(target) for t in produced
                )
            if not target_names and isinstance(self.target, Lit):
                # No combination matched: the target name becomes empty.
                target_names.add(self.target.symbol)
            new_db = db
            for name in target_names:
                new_db = new_db.replace_named(name, results.get(name, []))
            if observing:
                sp.set(
                    combinations=combinations,
                    tables_in=len(db),
                    tables_out=len(new_db),
                )
                if bindings_seen:
                    sp.set(bindings=bindings_seen)
                if obs.lineage is not None:
                    from ...obs.lineage import count_prov_cells

                    sp.set(
                        prov_cells=count_prov_cells(
                            t for tables in results.values() for t in tables
                        )
                    )
                if obs.metrics is not None:
                    obs.metrics.count("statements")
                    obs.metrics.count("combinations", combinations)
            return new_db

    def __repr__(self) -> str:
        params = " ".join(f"{k} {v}" for k, v in self.params.items())
        args = ", ".join(str(a) for a in self.args)
        middle = f" {params}" if params else ""
        return f"{self.target} <- {self.spec.name}{middle} ({args})"


class While(Statement):
    """``while R ≠ ∅ do P`` — repeat P while some table named R has data rows.

    The condition parameter must denote a fixed name (a literal or a
    wildcard already bound by an enclosing statement).
    """

    def __init__(self, condition: object, body: "Program | Sequence[Statement]"):
        self.condition = as_parameter(condition)
        self.body = body if isinstance(body, Program) else Program(body)

    def _holds(self, db: TabularDatabase, interp: "Interpreter") -> bool:
        name = self.condition.evaluate_single(interp.binding, None)
        return any(t.height > 0 for t in db.tables_named(name))

    def _condition_rows(self, db: TabularDatabase, interp: "Interpreter") -> int:
        name = self.condition.evaluate_single(interp.binding, None)
        return sum(t.height for t in db.tables_named(name))

    def execute(self, db: TabularDatabase, interp: "Interpreter") -> TabularDatabase:
        obs = _obs.OBS
        observing = obs.active
        cm = (
            obs.tracer.span("while", text=str(self.condition))
            if observing and obs.tracer is not None
            else NULL_SPAN
        )
        with cm as sp:
            iterations = 0
            condition_rows: list[int] = []
            prov_frontier: list[int] = []
            lineage_on = observing and obs.lineage is not None
            gov = _gv.GOV
            predicted_iterations = None
            if _est.EST.active and _est.EST.estimator is not None:
                # Predict the fixpoint's iteration count from the
                # loop-entry frontier; scored under the pseudo-op WHILE.
                try:
                    predicted_iterations = _est.EST.estimator.predict_while(
                        str(self.condition), self._condition_rows(db, interp)
                    )
                except Exception:
                    predicted_iterations = None
            prev_rows = prev_cells = 0
            if _ev.EVT.active:
                prev_rows = sum(t.height for t in db.tables)
                prev_cells = sum(t.nrows * t.ncols for t in db.tables)
            while self._holds(db, interp):
                iterations += 1
                if gov.active and gov.governor is not None:
                    # Deadline/cancellation/governor iteration cap, once
                    # per tick — the same chokepoint the FO+while budget
                    # delegates to, so both languages share one governor.
                    gov.governor.while_tick(str(self.condition), iterations)
                if _ev.EVT.active:
                    # Fixpoint frontier, live: condition rows plus the
                    # database's row/cell growth since the previous tick.
                    total_rows = sum(t.height for t in db.tables)
                    total_cells = sum(t.nrows * t.ncols for t in db.tables)
                    _ev.emit(
                        "while_iteration",
                        condition=str(self.condition),
                        iteration=iterations,
                        frontier_rows=self._condition_rows(db, interp),
                        total_rows=total_rows,
                        total_cells=total_cells,
                        delta_rows=total_rows - prev_rows,
                        delta_cells=total_cells - prev_cells,
                    )
                    prev_rows, prev_cells = total_rows, total_cells
                if iterations > interp.max_while_iterations:
                    raise NonTerminationError(
                        f"while loop on {self.condition} exceeded "
                        f"{interp.max_while_iterations} iterations",
                        kind="iterations",
                        condition=str(self.condition),
                        iteration=iterations,
                        limit=interp.max_while_iterations,
                    )
                if observing:
                    # Fixpoint visibility: the condition's row count per
                    # iteration shows how fast the loop converges.
                    condition_rows.append(self._condition_rows(db, interp))
                    if lineage_on:
                        # Provenance unions across iterations: the size of
                        # the cumulative origin set over the whole database
                        # grows monotonically toward the fixpoint.
                        from ...obs.lineage import table_origins

                        prov_frontier.append(len(table_origins(db)))
                    if obs.metrics is not None:
                        obs.metrics.count("while_iterations")
                    if obs.tracer is not None:
                        with obs.tracer.span("iteration", n=iterations):
                            db = self.body.execute(db, interp)
                        continue
                db = self.body.execute(db, interp)
            if predicted_iterations is not None:
                estimator = _est.EST.estimator
                if estimator is not None:
                    try:
                        estimator.observe("WHILE", predicted_iterations, iterations)
                    except Exception:
                        pass
                if observing:
                    sp.set(est_iterations=predicted_iterations[0])
            if observing:
                sp.set(iterations=iterations, condition_rows=condition_rows)
                if lineage_on:
                    from ...obs.lineage import table_origins

                    prov_frontier.append(len(table_origins(db)))
                    sp.set(prov_frontier=prov_frontier)
                if obs.metrics is not None:
                    obs.metrics.count("while_loops")
            return db

    def __repr__(self) -> str:
        return f"while {self.condition} do {self.body!r} end"


class Program:
    """A sequence of statements, executed consecutively."""

    def __init__(self, statements: Iterable[Statement] = ()):
        self.statements = tuple(statements)
        for statement in self.statements:
            if not isinstance(statement, Statement):
                raise EvaluationError(f"not a statement: {statement!r}")

    def execute(self, db: TabularDatabase, interp: "Interpreter") -> TabularDatabase:
        if _gv.GOV.active:
            return self._execute_hardened(db, interp)
        for statement in self.statements:
            db = statement.execute(db, interp)
        return db

    def _execute_hardened(
        self, db: TabularDatabase, interp: "Interpreter"
    ) -> TabularDatabase:
        """Snapshot-and-commit statement semantics under the governor.

        The database is immutable, so the only interpreter state a
        failing statement can leave behind is the fresh-value source it
        advanced while building partial results.  Rolling the source
        back to its pre-statement tag makes every statement atomic: the
        environment after a caught fault equals the environment before
        the failing statement, and a checkpointed resume re-mints the
        identical tags.
        """
        for statement in self.statements:
            mark = interp.fresh.next_tag
            try:
                db = statement.execute(db, interp)
            except BaseException:
                interp.fresh.reset_to(mark)
                raise
        return db

    def run(
        self,
        db: TabularDatabase,
        fresh: FreshValueSource | None = None,
        max_while_iterations: int = 10_000,
        engine: str | None = None,
    ) -> TabularDatabase:
        """Convenience: run on ``db`` with a fresh interpreter.

        ``engine="vector"`` routes execution through the vectorized
        backend (:mod:`repro.engine`); ``None``/``"naive"`` is the plain
        interpreter.
        """
        if engine not in (None, "naive"):
            from ...engine import run_program

            return run_program(
                self,
                db,
                engine=engine,
                fresh=fresh,
                max_while_iterations=max_while_iterations,
            )
        return Interpreter(
            fresh=fresh, max_while_iterations=max_while_iterations
        ).run(self, db)

    def __add__(self, other: "Program") -> "Program":
        if not isinstance(other, Program):
            return NotImplemented
        return Program(self.statements + other.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:
        return "Program([\n  " + ",\n  ".join(repr(s) for s in self.statements) + "\n])"


class Interpreter:
    """Executes tabular algebra programs against a database.

    Carries the fresh-value source (advanced past every tagged value in
    the input so tagging yields globally new values), the wildcard binding
    environment, and the while-loop iteration budget.
    """

    def __init__(
        self,
        fresh: FreshValueSource | None = None,
        max_while_iterations: int = 10_000,
        binding: Binding | None = None,
    ):
        self.fresh = fresh if fresh is not None else FreshValueSource()
        self.max_while_iterations = max_while_iterations
        self.binding = binding if binding is not None else Binding()

    def run(self, program: Program, db: TabularDatabase) -> TabularDatabase:
        self.fresh.advance_past(db.symbols())
        obs = _obs.OBS
        if not obs.active:
            return program.execute(db, self)
        cm = (
            obs.tracer.span("program", statements=len(program))
            if obs.tracer is not None
            else NULL_SPAN
        )
        with cm as sp:
            bound = self.binding.snapshot()
            if bound:
                sp.set(binding={f"*{k}": str(v) for k, v in sorted(bound.items())})
            out = program.execute(db, self)
            sp.set(tables_in=len(db), tables_out=len(out))
            if obs.metrics is not None:
                obs.metrics.count("programs")
            return out


def assign(target: object, op: str, *args: object, **params: object) -> Assignment:
    """Sugar for building assignment statements.

    >>> stmt = assign("T", "group", "Sales", by="Region", on="Sold")
    """
    return Assignment(target, op, args, params)
