"""A textual surface syntax for tabular algebra programs.

The paper presents statements like ``Sales ← GROUP by Region on Sold
(Sales)``; this parser accepts exactly that style::

    Grouped   <- GROUP by {Region} on {Sold} (Sales)
    Cleaned   <- CLEANUP by {Part} on {null} (Grouped)
    Pivot     <- PURGE on {Sold} by {Region} (Cleaned)
    Everything <- UNION (R, S)
    while Work do
        Work <- DIFFERENCE (Work, Done)
    end

Grammar (EBNF)::

    program    = { statement } ;
    statement  = assignment | while ;
    assignment = nameparam "<-" OP { keyword param } "(" nameparam { "," nameparam } ")" ;
    while      = "while" nameparam "do" { statement } "end" ;
    param      = item | "{" item { "," item } [ "-" item { "," item } ] "}" ;
    item       = NAME | STAR | "null" | "any" | STRING | NUMBER
               | "(" param "," param ")" ;
    nameparam  = NAME | STAR ;

``null`` is the inapplicable ⊥, ``any`` the catch-all pair component,
``*``/``*1``/``*2`` are wildcards, quoted strings and numbers are values,
bare identifiers are names.  ``#`` starts a comment.  Operation names and
their keywords come from :mod:`repro.algebra.programs.registry`
(e.g. ``GROUP`` takes ``by`` and ``on``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...core import NULL, ParseError, Value
from .params import ANY, Lit, Pair, Parameter, ParamSet, Star
from .registry import OPERATIONS
from .statements import Assignment, Program, Statement, While

__all__ = ["parse_program", "parse_statement"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<arrow><-)
  | (?P<star>\*[0-9]*)
  | (?P<number>-?[0-9]+(?:\.[0-9]+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[{}(),\-])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"while", "do", "end", "null", "any"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, col = 1, 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line, col)
        kind = match.lastgroup or ""
        chunk = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, chunk, line, col))
        newlines = chunk.count("\n")
        if newlines:
            line += newlines
            col = len(chunk) - chunk.rfind("\n")
        else:
            col += len(chunk)
        pos = match.end()
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def at_ident(self, text: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text == text

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> Program:
        statements: list[Statement] = []
        while self.peek().kind != "eof":
            statements.append(self.parse_statement())
        return Program(statements)

    def parse_statement(self) -> Statement:
        if self.at_ident("while"):
            return self.parse_while()
        return self.parse_assignment()

    def parse_while(self) -> While:
        self.expect("ident", "while")
        condition = self.parse_name_param()
        self.expect("ident", "do")
        body: list[Statement] = []
        while not self.at_ident("end"):
            if self.peek().kind == "eof":
                token = self.peek()
                raise ParseError("while without matching 'end'", token.line, token.column)
            body.append(self.parse_statement())
        self.expect("ident", "end")
        return While(condition, body)

    def parse_assignment(self) -> Assignment:
        target = self.parse_name_param()
        self.expect("arrow")
        op_token = self.expect("ident")
        op_key = op_token.text.upper().replace("_", "")
        if op_key not in OPERATIONS:
            raise ParseError(
                f"unknown operation {op_token.text!r}", op_token.line, op_token.column
            )
        spec = OPERATIONS[op_key]
        params: dict[str, Parameter] = {}
        while self.peek().kind == "ident" and self.peek().text in spec.params:
            keyword = self.advance().text
            if keyword in params:
                token = self.peek()
                raise ParseError(f"duplicate parameter {keyword!r}", token.line, token.column)
            params[keyword] = self.parse_param()
        self.expect("sym", "(")
        args = [self.parse_name_param()]
        while self.peek().kind == "sym" and self.peek().text == ",":
            self.advance()
            args.append(self.parse_name_param())
        self.expect("sym", ")")
        try:
            return Assignment(target, op_key, args, params)
        except Exception as exc:
            raise ParseError(f"{exc}", op_token.line, op_token.column) from exc

    def parse_name_param(self) -> Parameter:
        token = self.peek()
        if token.kind == "star":
            self.advance()
            index = int(token.text[1:]) if len(token.text) > 1 else 0
            return Star(index)
        if token.kind == "ident" and token.text not in _KEYWORDS:
            self.advance()
            return Lit(token.text)
        raise ParseError(
            f"expected a table name or wildcard, found {token.text!r}",
            token.line,
            token.column,
        )

    def parse_param(self) -> Parameter:
        token = self.peek()
        if token.kind == "sym" and token.text == "{":
            return self.parse_param_set()
        return self.parse_item()

    def parse_param_set(self) -> Parameter:
        self.expect("sym", "{")
        positive = [self.parse_item()]
        while self.peek().kind == "sym" and self.peek().text == ",":
            self.advance()
            positive.append(self.parse_item())
        negative: list[Parameter] = []
        if self.peek().kind == "sym" and self.peek().text == "-":
            self.advance()
            negative.append(self.parse_item())
            while self.peek().kind == "sym" and self.peek().text == ",":
                self.advance()
                negative.append(self.parse_item())
        self.expect("sym", "}")
        return ParamSet(positive, negative)

    def parse_item(self) -> Parameter:
        token = self.peek()
        if token.kind == "star":
            self.advance()
            index = int(token.text[1:]) if len(token.text) > 1 else 0
            return Star(index)
        if token.kind == "string":
            self.advance()
            return Lit(Value(token.text[1:-1]))
        if token.kind == "number":
            self.advance()
            number = float(token.text) if "." in token.text else int(token.text)
            return Lit(Value(number))
        if token.kind == "ident":
            if token.text == "null":
                self.advance()
                return Lit(NULL)
            if token.text == "any":
                self.advance()
                return ANY
            if token.text not in _KEYWORDS:
                self.advance()
                return Lit(token.text)
        if token.kind == "sym" and token.text == "(":
            self.advance()
            row = self.parse_param()
            self.expect("sym", ",")
            col = self.parse_param()
            self.expect("sym", ")")
            return Pair(row, col)
        raise ParseError(
            f"expected a parameter item, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )


def parse_program(text: str) -> Program:
    """Parse a full tabular algebra program."""
    return _Parser(text).parse_program()


def parse_statement(text: str) -> Statement:
    """Parse a single statement (assignment or while)."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"trailing input {token.text!r}", token.line, token.column)
    return statement
