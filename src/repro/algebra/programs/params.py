"""Parameters of tabular algebra statements (paper, Section 3.6).

The paper's parameter grammar (de-garbled from the OCR) is::

    (parameter) ::= ⊥ | * | (name){, (name)} | ((parameter), (parameter))
                    [ - ⊥ | (name){, (name)} | ((parameter), (parameter)) ]

"A parameter represents an entry or a set of entries, consisting of the
interpretations of the items in the positive list that are not
interpretations of items in the negative list.  A star, possibly
subscripted for distinction, is a wild card.  A pair of parameters defines
entries in the table under consideration by specifying attribute and
column row entries."

Model here:

* :class:`Lit` — a literal symbol (a name, ⊥, or — beyond the strict
  grammar but needed for SWITCH and constant selection — a value);
* :class:`Star` — a wild card, optionally subscripted; wildcards are bound
  by table-name matching and are then the *same* symbol everywhere they
  occur in the statement;
* :class:`Pair` — ``((row-param, col-param))``: the set of entries
  ``τ_i^j`` of the table under consideration whose row attribute matches
  the first component and whose column attribute matches the second
  (:data:`ANY` matches everything);
* :class:`ParamSet` — positive items minus negative items.

Every parameter evaluates, relative to a wildcard :class:`Binding` and the
table under consideration, to a set of symbols; single-attribute positions
additionally require that set to be a singleton ("otherwise the effect of
the statement is undefined").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...core import (
    NULL,
    EvaluationError,
    Name,
    Symbol,
    Table,
    UndefinedOperationError,
    coerce_symbol,
)

__all__ = [
    "Parameter",
    "Lit",
    "Star",
    "Pair",
    "ParamSet",
    "AnyParam",
    "ANY",
    "Nothing",
    "NOTHING",
    "Binding",
    "as_parameter",
]


class Binding:
    """A wildcard environment: subscript → bound symbol."""

    def __init__(self, values: dict[int, Symbol] | None = None):
        self._values = dict(values or {})

    def get(self, index: int) -> Symbol:
        if index not in self._values:
            raise EvaluationError(f"wildcard *{index} is unbound")
        return self._values[index]

    def bound(self, index: int) -> bool:
        return index in self._values

    def snapshot(self) -> dict[int, Symbol]:
        """A copy of the environment (subscript → symbol), for observability."""
        return dict(self._values)

    def extended(self, index: int, symbol: Symbol) -> "Binding":
        if index in self._values and self._values[index] != symbol:
            raise EvaluationError(
                f"wildcard *{index} already bound to {self._values[index]!s}"
            )
        values = dict(self._values)
        values[index] = symbol
        return Binding(values)

    def __repr__(self) -> str:
        inner = ", ".join(f"*{k}={v!s}" for k, v in sorted(self._values.items()))
        return f"Binding({inner})"


class Parameter:
    """Abstract base of statement parameters."""

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        """The set of symbols this parameter denotes."""
        raise NotImplementedError

    def evaluate_single(self, binding: Binding, table: Table | None) -> Symbol:
        """The unique symbol this parameter denotes, or an error.

        Implements the paper's rule that "a parameter representing a single
        column attribute should have a singleton set as interpretation,
        otherwise the effect of the statement is undefined".
        """
        symbols = self.evaluate(binding, table)
        if len(symbols) != 1:
            raise UndefinedOperationError(
                f"parameter {self} denotes {len(symbols)} symbols where exactly one is required"
            )
        return next(iter(symbols))

    def wildcards(self) -> frozenset[int]:
        """Subscripts of the wildcards occurring in this parameter."""
        return frozenset()


class Lit(Parameter):
    """A literal symbol parameter (name, ⊥, or value)."""

    def __init__(self, symbol: object):
        self.symbol = coerce_symbol(symbol) if not isinstance(symbol, str) else Name(symbol)

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        return frozenset([self.symbol])

    def __repr__(self) -> str:
        return f"Lit({self.symbol!s})"

    def __str__(self) -> str:
        return str(self.symbol)


class Star(Parameter):
    """A wild card ``*`` (optionally subscripted: ``*1``, ``*2`` …)."""

    def __init__(self, index: int = 0):
        self.index = index

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        return frozenset([binding.get(self.index)])

    def wildcards(self) -> frozenset[int]:
        return frozenset([self.index])

    def __repr__(self) -> str:
        return f"Star({self.index})"

    def __str__(self) -> str:
        return "*" if self.index == 0 else f"*{self.index}"


class AnyParam(Parameter):
    """Matches every symbol; usable only inside a :class:`Pair` component."""

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        raise EvaluationError("ANY is only meaningful inside a Pair component")

    def matches(self, symbol: Symbol, binding: Binding, table: Table | None) -> bool:
        return True

    def __repr__(self) -> str:
        return "ANY"

    def __str__(self) -> str:
        return "any"


#: The catch-all pair component.
ANY = AnyParam()


class Nothing(Parameter):
    """The empty attribute set.

    Arises from programmatic empty sets (e.g. a projection onto no
    attributes, or a purge with an empty grouping key); the textual
    grammar has no literal for it, matching the paper's non-empty positive
    lists, but compiled programs need it.
    """

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        return frozenset()

    def __repr__(self) -> str:
        return "NOTHING"

    def __str__(self) -> str:
        return "{}"


#: The empty attribute-set parameter.
NOTHING = Nothing()


def _component_matches(
    component: Parameter, symbol: Symbol, binding: Binding, table: Table | None
) -> bool:
    if isinstance(component, AnyParam):
        return True
    return symbol in component.evaluate(binding, table)


class Pair(Parameter):
    """``((row-param, col-param))`` — data-dependent entry selection.

    Evaluates, on the table under consideration, to the set of data
    entries ``τ_i^j`` (i, j ≥ 1) whose row attribute ``τ_i^0`` matches the
    first component and whose column attribute ``τ_0^j`` matches the
    second.  This is how a statement can use *data* as attributes — e.g.
    "the entries of the Region row" as a split criterion.
    """

    def __init__(self, row: Parameter, col: Parameter):
        self.row = row
        self.col = col

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        if table is None:
            raise EvaluationError("a Pair parameter needs a table under consideration")
        rows = [
            i
            for i in table.data_row_indices()
            if _component_matches(self.row, table.entry(i, 0), binding, table)
        ]
        cols = [
            j
            for j in table.data_col_indices()
            if _component_matches(self.col, table.entry(0, j), binding, table)
        ]
        return frozenset(table.entry(i, j) for i in rows for j in cols)

    def wildcards(self) -> frozenset[int]:
        return self.row.wildcards() | self.col.wildcards()

    def __repr__(self) -> str:
        return f"Pair({self.row!r}, {self.col!r})"

    def __str__(self) -> str:
        return f"(({self.row}, {self.col}))"


class ParamSet(Parameter):
    """Positive items minus negative items.

    ``ParamSet([Lit("A"), Lit("B")], [Lit("B")])`` denotes ``{A}``.
    """

    def __init__(self, positive: Sequence[Parameter], negative: Sequence[Parameter] = ()):
        self.positive = tuple(positive)
        self.negative = tuple(negative)
        if not self.positive:
            raise EvaluationError("a ParamSet requires at least one positive item")

    def evaluate(self, binding: Binding, table: Table | None) -> frozenset[Symbol]:
        included: set[Symbol] = set()
        for item in self.positive:
            included |= item.evaluate(binding, table)
        for item in self.negative:
            included -= item.evaluate(binding, table)
        return frozenset(included)

    def wildcards(self) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for item in self.positive + self.negative:
            out |= item.wildcards()
        return out

    def __repr__(self) -> str:
        return f"ParamSet({list(self.positive)!r}, {list(self.negative)!r})"

    def __str__(self) -> str:
        text = ", ".join(str(p) for p in self.positive)
        if self.negative:
            text += " - " + ", ".join(str(n) for n in self.negative)
        return "{" + text + "}"


def as_parameter(obj: object) -> Parameter:
    """Coerce Python objects into parameters.

    Strings become literal *names*, ``None`` the ⊥ literal, symbols pass
    through as literals, iterables become positive :class:`ParamSet` lists,
    and parameters pass through unchanged.
    """
    if isinstance(obj, Parameter):
        return obj
    if obj is None or isinstance(obj, (str, Symbol)):
        return Lit(obj if obj is not None else NULL)
    if isinstance(obj, Iterable):
        items = [as_parameter(item) for item in obj]
        if not items:
            return NOTHING
        return ParamSet(items)
    return Lit(obj)
