"""The tabular algebra program layer (paper, Section 3.6).

Exports parameters, statements, the interpreter, and the textual parser.
"""

from .params import (
    ANY,
    NOTHING,
    AnyParam,
    Binding,
    Lit,
    Nothing,
    Pair,
    Parameter,
    ParamSet,
    Star,
    as_parameter,
)
from .optimize import collapse_idempotent_pairs, eliminate_dead_statements, optimize
from .parser import parse_program, parse_statement
from .registry import OPERATIONS, OpSpec
from .statements import Assignment, Interpreter, Program, Statement, While, assign

__all__ = [
    "ANY",
    "NOTHING",
    "AnyParam",
    "Nothing",
    "Binding",
    "Lit",
    "Pair",
    "Parameter",
    "ParamSet",
    "Star",
    "as_parameter",
    "parse_program",
    "parse_statement",
    "optimize",
    "eliminate_dead_statements",
    "collapse_idempotent_pairs",
    "OPERATIONS",
    "OpSpec",
    "Assignment",
    "Interpreter",
    "Program",
    "Statement",
    "While",
    "assign",
]
