"""Registry of the tabular algebra operations available to statements.

Each entry describes how an assignment statement invokes the underlying
operation from :mod:`repro.algebra`: how many argument tables it takes, the
keyword parameters it expects and whether each denotes a single symbol or a
symbol set, and whether it runs once per matching table combination or once
over the whole set of matching tables (COLLAPSE).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ...core import EvaluationError, FreshValueSource, Symbol, Table
from ...engine import runtime as _engine
from ...obs import estimator as _est
from ...obs import events as _ev
from ...obs import runtime as _obs
from ...obs.trace import NULL_SPAN
from ...runtime import governor as _gv
from .. import (
    classical_union,
    const_column,
    cleanup,
    collapse,
    collapse_compact,
    deduplicate,
    deduplicate_columns,
    difference,
    drop_all_null_rows,
    group,
    group_compact,
    intersection,
    merge,
    merge_compact,
    natural_join,
    product,
    product_select,
    project,
    purge,
    rename,
    select,
    select_constant,
    setnew,
    split,
    switch,
    transpose,
    tuplenew,
    union,
)

__all__ = ["OpSpec", "OPERATIONS", "PARAM_SINGLE", "PARAM_SET", "PARAM_ENTRY"]

#: Parameter kinds: a single attribute, an attribute set, a single entry.
PARAM_SINGLE = "single"
PARAM_SET = "set"
PARAM_ENTRY = "entry"


@dataclass(frozen=True)
class OpSpec:
    """How a statement invokes one algebra operation.

    ``params`` maps keyword → kind (:data:`PARAM_SINGLE`,
    :data:`PARAM_SET`, or :data:`PARAM_ENTRY`); ``arity`` is the number of
    argument tables; ``aggregate`` marks operations consuming *all* tables
    of a name at once; ``multi_result`` marks operations returning several
    tables; ``needs_fresh`` marks the tagging operations.
    """

    name: str
    function: Callable
    arity: int = 1
    params: Mapping[str, str] = field(default_factory=dict)
    aggregate: bool = False
    multi_result: bool = False
    needs_fresh: bool = False

    def invoke(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        """Run the operation; always returns a tuple of result tables.

        When an :func:`repro.obs.observation` scope is active, every
        invocation is additionally timed, counted, and row/column
        accounted — covering all registered operations without touching
        their bodies.  When a :func:`repro.runtime.governor.governed`
        scope is active, every invocation is additionally budget-checked
        and fault-injected at this same boundary.  When an
        :func:`repro.obs.events.event_stream` is active, the invocation
        additionally publishes ``span_start``/``span_finish`` (and
        ``error``) events around whichever of those layers applies.  The
        disabled path pays one attribute check per layer.  When an
        :func:`repro.obs.estimator.estimation` scope is active, the
        outermost layer additionally predicts rows-out *before* dispatch
        and records the estimate's q-error against the actual afterwards.
        """
        if _est.EST.active:
            return self._invoke_estimated(tables, arguments, fresh)
        # The chain below is duplicated in _invoke_inner (the estimated
        # layer's continuation): keeping it inline here means the fully
        # disabled dispatch pays attribute checks only, no extra frame.
        if _ev.EVT.active:
            return self._invoke_evented(tables, arguments, fresh)
        if _gv.GOV.active:
            return self._invoke_governed(tables, arguments, fresh)
        if _obs.OBS.active:
            return self._invoke_observed(tables, arguments, fresh)
        return self._invoke_raw(tables, arguments, fresh)

    def _invoke_inner(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        """The event/governor/observation/raw chain (below estimation)."""
        if _ev.EVT.active:
            return self._invoke_evented(tables, arguments, fresh)
        if _gv.GOV.active:
            return self._invoke_governed(tables, arguments, fresh)
        if _obs.OBS.active:
            return self._invoke_observed(tables, arguments, fresh)
        return self._invoke_raw(tables, arguments, fresh)

    def _invoke_estimated(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        """Predict, dispatch, then score the prediction.

        Estimation is telemetry: prediction and scoring are wrapped so a
        stats/estimator defect can never alter or kill a run.  The
        prediction is handed to the observed layer through a per-thread
        pending slot so EXPLAIN spans carry ``est_rows`` without
        predicting twice.
        """
        estimator = _est.EST.estimator
        predicted = None
        if estimator is not None:
            try:
                predicted = estimator.predict(self.name, tables, arguments)
            except Exception:
                predicted = None
            if predicted is not None:
                _est._push_pending(predicted)
        try:
            produced = self._invoke_inner(tables, arguments, fresh)
        finally:
            _est._pop_pending()
        if predicted is not None:
            try:
                estimator.observe(
                    self.name, predicted, sum(t.height for t in produced)
                )
            except Exception:
                pass
        return produced

    def _invoke_evented(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        """Publish dispatch events around the governed/observed/raw chain."""
        _ev.emit(
            "span_start",
            op=self.name,
            tables_in=len(tables),
            rows_in=sum(t.height for t in tables),
        )
        started = time.perf_counter()
        try:
            if _gv.GOV.active:
                produced = self._invoke_governed(tables, arguments, fresh)
            elif _obs.OBS.active:
                produced = self._invoke_observed(tables, arguments, fresh)
            else:
                produced = self._invoke_raw(tables, arguments, fresh)
        except Exception as err:
            duration_ms = round((time.perf_counter() - started) * 1e3, 3)
            _ev.emit(
                "error",
                op=self.name,
                error=str(err),
                error_type=type(err).__name__,
            )
            _ev.emit(
                "span_finish", op=self.name, ok=False, duration_ms=duration_ms
            )
            raise
        _ev.emit(
            "span_finish",
            op=self.name,
            ok=True,
            duration_ms=round((time.perf_counter() - started) * 1e3, 3),
            tables_out=len(produced),
            rows_out=sum(t.height for t in produced),
        )
        return produced

    def _invoke_raw(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        kwargs = dict(arguments)
        if self.needs_fresh:
            kwargs["source"] = fresh
        if self.aggregate:
            eng = _engine.ENGINE
            if eng.active and eng.backend is not None:
                eng.backend.note_fallback(self.name, "aggregate")
            result = self.function(list(tables), **kwargs)
        else:
            if len(tables) != self.arity:
                raise EvaluationError(
                    f"{self.name} expects {self.arity} argument table(s), got {len(tables)}"
                )
            eng = _engine.ENGINE
            if eng.active and eng.backend is not None:
                if self.needs_fresh:
                    eng.backend.note_fallback(self.name, "needs_fresh")
                elif self.multi_result:
                    eng.backend.note_fallback(self.name, "multi_result")
                else:
                    # Vectorized backend: a kernel may take the invocation;
                    # None means "no kernel / declined" and falls through
                    # to the naive operation below (per-invocation
                    # fallback, attributed by the backend).
                    produced = eng.backend.dispatch(self.name, tables, kwargs)
                    if produced is not None:
                        return (produced,)
            result = self.function(*tables, **kwargs)
        if self.multi_result:
            return tuple(result)
        return (result,)

    def _invoke_governed(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        """The hardened dispatch: budgets before, faults around, rows after.

        The governor's ``before_op``/``account`` pair brackets the op;
        the fault plan's ``before``/``after`` pair fires raise/delay
        faults pre-dispatch and corrupt faults on the output.  Either
        layer may be absent (governing without chaos and vice versa).
        Observation, when also active, nests inside so failed ops still
        close their spans with the error recorded.
        """
        gov = _gv.GOV
        governor = gov.governor
        faults = gov.faults
        if governor is not None:
            governor.before_op(self.name)
        if faults is not None:
            faults.before(self.name)
        if _obs.OBS.active:
            produced = self._invoke_observed(tables, arguments, fresh)
        else:
            produced = self._invoke_raw(tables, arguments, fresh)
        if faults is not None:
            produced = faults.after(self.name, produced)
        if governor is not None:
            governor.account(
                self.name,
                sum(t.height for t in produced),
                sum(t.nrows * t.ncols for t in produced),
            )
            obs = _obs.OBS
            if obs.active and obs.metrics is not None:
                obs.metrics.count("governor_checks")
        return produced

    def _invoke_observed(
        self,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
        fresh: FreshValueSource | None,
    ) -> tuple[Table, ...]:
        obs = _obs.OBS
        # Per-table (height, width) pairs: the cost model estimates from
        # these, so they ride on the span next to the summed figures.
        shapes_in = tuple((t.height, t.width) for t in tables)
        tables_in = len(tables)
        rows_in = sum(shape[0] for shape in shapes_in)
        cols_in = sum(shape[1] for shape in shapes_in)
        cm = obs.tracer.span(self.name) if obs.tracer is not None else NULL_SPAN
        started = time.perf_counter()
        try:
            with cm as sp:
                sp.set(
                    tables_in=tables_in,
                    rows_in=rows_in,
                    cols_in=cols_in,
                    shapes_in=shapes_in,
                )
                # An active estimation scope handed its rows-out
                # prediction over; stamp it so EXPLAIN shows est_rows
                # from stats (not shape heuristics) wherever stats exist.
                pending = _est._pop_pending()
                if pending is not None:
                    sp.set(est_rows=pending[0], est_source=pending[1])
                produced = self._invoke_raw(tables, arguments, fresh)
                sp.set(
                    tables_out=len(produced),
                    rows_out=sum(t.height for t in produced),
                    cols_out=sum(t.width for t in produced),
                    shapes_out=tuple((t.height, t.width) for t in produced),
                )
                if obs.lineage is not None:
                    from ...obs.lineage import count_prov_cells

                    sp.set(
                        prov_cells_in=count_prov_cells(tables),
                        prov_cells_out=count_prov_cells(produced),
                    )
        except Exception:
            if obs.metrics is not None:
                obs.metrics.record_op(
                    self.name,
                    time.perf_counter() - started,
                    tables_in=tables_in,
                    rows_in=rows_in,
                    cols_in=cols_in,
                    error=True,
                )
            raise
        if obs.metrics is not None:
            obs.metrics.record_op(
                self.name,
                time.perf_counter() - started,
                tables_in=tables_in,
                tables_out=len(produced),
                rows_in=rows_in,
                rows_out=sum(t.height for t in produced),
                cols_in=cols_in,
                cols_out=sum(t.width for t in produced),
            )
        return produced


def _spec(name, function, arity=1, params=None, **flags) -> tuple[str, OpSpec]:
    return name, OpSpec(name=name, function=function, arity=arity, params=dict(params or {}), **flags)


#: All statement-invocable operations, keyed by their (upper-case) name.
OPERATIONS: dict[str, OpSpec] = dict(
    [
        # Traditional (Section 3.1)
        _spec("UNION", union, arity=2),
        _spec("DIFFERENCE", difference, arity=2),
        _spec("INTERSECTION", intersection, arity=2),
        _spec("PRODUCT", product, arity=2),
        _spec("RENAME", rename, params={"old": PARAM_SINGLE, "new": PARAM_SINGLE}),
        _spec("PROJECT", project, params={"attrs": PARAM_SET}),
        _spec("SELECT", select, params={"left": PARAM_SINGLE, "right": PARAM_SINGLE}),
        _spec(
            "SELECTCONST",
            select_constant,
            params={"attr": PARAM_SINGLE, "value": PARAM_ENTRY},
        ),
        # Restructuring (Section 3.2)
        _spec("GROUP", group, params={"by": PARAM_SET, "on": PARAM_SET}),
        _spec("MERGE", merge, params={"on": PARAM_SET, "by": PARAM_SET}),
        _spec("SPLIT", split, params={"on": PARAM_SET}, multi_result=True),
        _spec("COLLAPSE", collapse, params={"by": PARAM_SET}, aggregate=True),
        # Transposition (Section 3.3)
        _spec("TRANSPOSE", transpose),
        _spec("SWITCH", switch, params={"value": PARAM_ENTRY}),
        # Redundancy removal (Section 3.4)
        _spec("CLEANUP", cleanup, params={"by": PARAM_SET, "on": PARAM_SET}),
        _spec("PURGE", purge, params={"on": PARAM_SET, "by": PARAM_SET}),
        # Tagging (Section 3.5)
        _spec("TUPLENEW", tuplenew, params={"attr": PARAM_SINGLE}, needs_fresh=True),
        _spec("SETNEW", setnew, params={"attr": PARAM_SINGLE}, needs_fresh=True),
        # Derived operations (Sections 3.2/3.4 compositions)
        _spec(
            "PRODUCTSELECT",
            product_select,
            arity=2,
            params={"left": PARAM_SINGLE, "right": PARAM_SINGLE},
        ),
        _spec("CLASSICALUNION", classical_union, arity=2),
        _spec("NATURALJOIN", natural_join, arity=2),
        _spec("DEDUP", deduplicate),
        _spec("DEDUPCOLUMNS", deduplicate_columns),
        _spec("DROPNULLROWS", drop_all_null_rows, params={"attr": PARAM_SINGLE}),
        _spec(
            "CONSTCOLUMN",
            const_column,
            params={"attr": PARAM_SINGLE, "value": PARAM_ENTRY},
        ),
        _spec("GROUPCOMPACT", group_compact, params={"by": PARAM_SET, "on": PARAM_SET}),
        _spec("MERGECOMPACT", merge_compact, params={"on": PARAM_SET, "by": PARAM_SET}),
        _spec(
            "COLLAPSECOMPACT",
            collapse_compact,
            params={"by": PARAM_SET},
            aggregate=True,
        ),
    ]
)
