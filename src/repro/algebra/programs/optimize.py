"""Tabular algebra program optimization (the paper's announced future work).

"Query (and program) optimization is an important issue."  The compilers
(Theorems 4.1/4.5, GOOD) emit long chains of reserved temporaries; these
rewrites clean them up without changing observable results:

* **dead-statement elimination** — drop assignments whose target is never
  read later and is not among the program's outputs (loop bodies are kept
  conservative: anything read anywhere inside a loop, or steering its
  condition, stays live across iterations);
* **idempotent-pair collapsing** — ``DEDUP`` of a ``DEDUP``, and
  ``TRANSPOSE`` of a ``TRANSPOSE`` with the same names, are collapsed.

Both are *syntactic* and sound for the statement semantics (assignment
replaces the target's tables); they never touch statements with wildcard
arguments, whose read-set is data-dependent.
"""

from __future__ import annotations

from typing import Iterable

from ...core import Symbol
from .params import Lit, Parameter, Star
from .statements import Assignment, Program, Statement, While

__all__ = ["eliminate_dead_statements", "collapse_idempotent_pairs", "optimize"]


def _literal_name(param: Parameter) -> Symbol | None:
    if isinstance(param, Lit):
        return param.symbol
    return None


def _reads(statement: Statement) -> set[Symbol] | None:
    """Names a statement reads, or None when data-dependent (wildcards)."""
    if isinstance(statement, Assignment):
        names: set[Symbol] = set()
        for arg in statement.args:
            name = _literal_name(arg)
            if name is None:
                return None
            names.add(name)
        return names
    if isinstance(statement, While):
        condition = _literal_name(statement.condition)
        if condition is None:
            return None
        names = {condition}
        for inner in statement.body.statements:
            inner_reads = _reads(inner)
            if inner_reads is None:
                return None
            names |= inner_reads
        return names
    return None


def _writes(statement: Statement) -> set[Symbol] | None:
    """Names a statement (re)binds, or None when data-dependent."""
    if isinstance(statement, Assignment):
        target = _literal_name(statement.target)
        return None if target is None else {target}
    if isinstance(statement, While):
        names: set[Symbol] = set()
        for inner in statement.body.statements:
            inner_writes = _writes(inner)
            if inner_writes is None:
                return None
            names |= inner_writes
        return names
    return None


def eliminate_dead_statements(program: Program, outputs: Iterable[object]) -> Program:
    """Drop assignments whose targets are never observed.

    ``outputs`` are the names whose final contents matter.  A statement
    survives if its write-set intersects the live set; its reads then
    become live.  Statements with wildcard parameters are conservatively
    kept (and everything they might read stays unknown, so elimination
    stops being applied before them).
    """
    from .params import as_parameter

    live: set[Symbol] = set()
    for output in outputs:
        param = as_parameter(output)
        name = _literal_name(param)
        if name is None:
            return program  # wildcard outputs: give up
        live.add(name)

    kept_reversed: list[Statement] = []
    barrier = False  # a preceding (in reverse) wildcard statement was kept
    for statement in reversed(program.statements):
        writes = _writes(statement)
        reads = _reads(statement)
        if writes is None or reads is None or barrier:
            kept_reversed.append(statement)
            barrier = True
            continue
        if isinstance(statement, While):
            # keep loops whose writes are observed; their reads become live
            if writes & live or not writes:
                kept_reversed.append(statement)
                live |= reads
            continue
        if writes & live:
            kept_reversed.append(statement)
            live -= writes
            live |= reads
    return Program(reversed(kept_reversed))


def optimize(program: Program, outputs: Iterable[object]) -> Program:
    """The standard pipeline: collapse chains, then drop dead statements."""
    return eliminate_dead_statements(collapse_idempotent_pairs(program), outputs)


_IDEMPOTENT_OPS = {"DEDUP"}
_INVOLUTION_OPS = {"TRANSPOSE"}


def collapse_idempotent_pairs(program: Program) -> Program:
    """Rewrite idempotent and involutive chains to skip the intermediate.

    ``T ← DEDUP(S); U ← DEDUP(T)`` becomes ``T ← DEDUP(S); U ← DEDUP(S)``
    (DEDUP is idempotent), and a TRANSPOSE of a TRANSPOSE becomes an
    identity copy (a no-op RENAME) of the original source.  The
    intermediate statement is *kept* — soundness does not depend on who
    else reads it — and a subsequent dead-statement pass removes it when
    nothing does.
    """
    statements = list(program.statements)
    out: list[Statement] = []
    previous: Statement | None = None
    for current in statements:
        if isinstance(current, While):
            rewritten: Statement = While(
                current.condition, collapse_idempotent_pairs(current.body)
            )
        else:
            rewritten = _rewrite_second(previous, current) or current
        out.append(rewritten)
        previous = rewritten
    return Program(out)


def _rewrite_second(first: Statement | None, second: Statement) -> Statement | None:
    if not (isinstance(first, Assignment) and isinstance(second, Assignment)):
        return None
    if len(first.args) != 1 or len(second.args) != 1 or first.params or second.params:
        return None
    first_target = _literal_name(first.target)
    second_source = _literal_name(second.args[0])
    first_source = _literal_name(first.args[0])
    if None in (first_target, second_source, first_source):
        return None
    if first_target != second_source or first_target == first_source:
        return None
    op1, op2 = first.spec.name, second.spec.name
    if op1 == op2 and op1 in _IDEMPOTENT_OPS:
        return Assignment(second.target, op1, [first.args[0]])
    if op1 == op2 and op1 in _INVOLUTION_OPS:
        # TRANSPOSE ∘ TRANSPOSE = identity: copy via a no-op rename
        return Assignment(
            second.target,
            "RENAME",
            [first.args[0]],
            {"old": "__never__", "new": "__never__"},
        )
    return None
