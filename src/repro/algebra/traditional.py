"""Traditional operations of the tabular algebra (paper, Section 3.1).

Adaptations of the classical relational operations to tables: union,
difference, intersection, Cartesian product, renaming, projection, and
selection.  Following Figure 3:

* **union** and **difference** are defined so that they *always exist* —
  union concatenates schemes and pads with ⊥; difference keeps the left
  scheme and filters rows by mutual subsumption;
* **selection** compares attribute entry sets under *weak* equality;
* the **classical** versions of union etc. are *derived* (see
  :mod:`repro.algebra.derived`) by composing the tabular versions with the
  redundancy-removal operations, exactly as Section 3.4 describes.

Every operation takes an optional ``name`` for the result table (the ``T``
of an assignment statement); by default the left operand's name is kept.
"""

from __future__ import annotations

from ..core import NULL, Symbol, Table
from ..obs import runtime as _obs
from ..obs.lineage import derived_from
from .opshelpers import (
    as_attr_set,
    as_attr_symbol,
    columns_with_attr_in,
    combine_row_attributes,
)

__all__ = [
    "union",
    "difference",
    "intersection",
    "product",
    "rename",
    "project",
    "select",
    "select_constant",
]


def _named(table: Table, name: object | None) -> Table:
    if name is None:
        return table
    return table.with_name(as_attr_symbol(name))


def union(rho: Table, sigma: Table, name: object | None = None) -> Table:
    """Tabular union ``T ← R ∪ S`` (Figure 3, left).

    The result's scheme is ρ's columns followed by σ's; ρ's data rows are
    padded with ⊥ under σ's columns and vice versa.  Always defined — no
    union compatibility is required.
    """
    left_pad = (NULL,) * sigma.width
    right_pad = (NULL,) * rho.width
    grid = [rho.row(0) + sigma.column_attributes]
    for i in rho.data_row_indices():
        grid.append(rho.row(i) + left_pad)
    for k in sigma.data_row_indices():
        row = sigma.row(k)
        grid.append((row[0],) + right_pad + row[1:])
    return _named(Table(grid), name)


def difference(rho: Table, sigma: Table, name: object | None = None) -> Table:
    """Tabular difference ``T ← R \\ S`` (Figure 3, middle).

    Keeps ρ's scheme; a data row of ρ is dropped iff some data row of σ
    *mutually subsumes* it (ρ_i ≍ σ_k) and their row attributes coincide.
    Always defined.
    """
    kept = [rho.row(0)]
    for i in rho.data_row_indices():
        dropped = any(
            rho.entry(i, 0) == sigma.entry(k, 0)
            and rho.rows_subsume_each_other(i, sigma, k)
            for k in sigma.data_row_indices()
        )
        if not dropped:
            kept.append(rho.row(i))
    return _named(Table(kept), name)


def intersection(rho: Table, sigma: Table, name: object | None = None) -> Table:
    """Tabular intersection, defined as ``R \\ (R \\ S)`` in the usual way."""
    return _named(difference(rho, difference(rho, sigma)), name)


def product(rho: Table, sigma: Table, name: object | None = None) -> Table:
    """Tabular Cartesian product ``T ← R × S`` (Figure 3, right).

    One output data row per pair of data rows; schemes concatenate; the
    single row-attribute slot combines the two input row attributes
    (equal → kept, one ⊥ → the other, conflict → ⊥).

    Under an active lineage scope the combined row attribute accumulates
    the provenance of *both* argument rows: column 0 can never be
    projected away, so join ancestry survives any later PROJECT/SELECT —
    this is what makes multi-hop witnesses (e.g. transitive closure)
    cite their intermediate edges.
    """
    lin = _obs.OBS.lineage
    grid = [rho.row(0) + sigma.column_attributes]
    if lin is None:
        for i in rho.data_row_indices():
            left = rho.row(i)
            for k in sigma.data_row_indices():
                right = sigma.row(k)
                attr = combine_row_attributes(left[0], right[0])
                grid.append((attr,) + left[1:] + right[1:])
    else:
        for i in rho.data_row_indices():
            left = rho.row(i)
            for k in sigma.data_row_indices():
                right = sigma.row(k)
                attr = combine_row_attributes(left[0], right[0])
                attr = derived_from(attr, left + right)
                grid.append((attr,) + left[1:] + right[1:])
    return _named(Table(grid), name)


def rename(table: Table, old: object, new: object, name: object | None = None) -> Table:
    """``T ← RENAME_{B←A}(R)``: replace attribute ``A`` by ``B`` in the
    attribute row (every occurrence).

    Under an active lineage scope each substituted attribute derives
    from the attribute cell it replaces.
    """
    lin = _obs.OBS.lineage
    old_sym = as_attr_symbol(old)
    new_sym = as_attr_symbol(new)
    header = list(table.row(0))
    for j in range(1, len(header)):
        if header[j] == old_sym:
            header[j] = new_sym if lin is None else derived_from(new_sym, (header[j],))
    grid = [tuple(header)] + [table.row(i) for i in table.data_row_indices()]
    return _named(Table(grid), name)


def project(table: Table, attrs: object, name: object | None = None) -> Table:
    """``T ← PROJECT_𝒜(R)``: keep the columns whose attribute lies in 𝒜.

    The attribute column (row attributes) is kept implicitly, mirroring how
    the relational projection keeps tuple identity (DESIGN.md decision 4).
    """
    attr_set = as_attr_set(attrs)
    keep = [0] + columns_with_attr_in(table, attr_set)
    return _named(table.subtable(range(table.nrows), keep), name)


def select(table: Table, left: object, right: object, name: object | None = None) -> Table:
    """``T ← SELECT_{A=B}(R)``: keep data rows where ``τ_i(A) ≈ τ_i(B)``.

    Weak equality is used instead of classical equality (Section 3.1), so
    rows where both attribute entry sets are entirely ⊥ also qualify.
    """
    a = as_attr_symbol(left)
    b = as_attr_symbol(right)
    from ..core import weakly_equal

    kept = [table.row(0)]
    for i in table.data_row_indices():
        if weakly_equal(table.row_entry_set(i, a), table.row_entry_set(i, b)):
            kept.append(table.row(i))
    return _named(Table(kept), name)


def select_constant(
    table: Table, attr: object, value: object, name: object | None = None
) -> Table:
    """Constant selection ``T ← σ_{A=v}(R)``: keep rows with ``τ_i(A) ≈ {v}``.

    The paper derives this from SWITCH and SELECT (Section 3.3); it is
    provided directly as a derived operation.  With ``v = ⊥`` this keeps
    the rows whose ``A``-entries are entirely inapplicable — the building
    block for "selecting out the tuples with Sold entry ⊥" (Section 3.2).
    """
    from ..core import coerce_symbol, weakly_equal

    a = as_attr_symbol(attr)
    v = coerce_symbol(value)
    kept = [table.row(0)]
    for i in table.data_row_indices():
        if weakly_equal(table.row_entry_set(i, a), {v}):
            kept.append(table.row(i))
    return _named(Table(kept), name)
