"""Redundancy removal: CLEAN-UP and its dual PURGE (paper, Section 3.4).

``CLEAN-UP by 𝒜 on ℬ`` merges groups of data rows that (a) carry the same
row attribute, drawn from ℬ, (b) agree on their 𝒜-subtuple, and (c) are
position-wise compatible — every data column sees at most one distinct
non-⊥ value across the group.  The merged row is the least common subsumer
and replaces the group at its first member's position.

``PURGE on ℬ by 𝒜`` is the exact dual, implemented as
``TRANSPOSE ∘ CLEAN-UP by 𝒜 on ℬ ∘ TRANSPOSE``.

Clean-up generalizes duplicate-row elimination (identical rows always merge)
and purge duplicate-column elimination; composed with tabular union they
yield the classical union (see :func:`repro.algebra.derived.classical_union`).

The position-wise reading of "least common tuple" is an interpretation
decision forced by the figures — see DESIGN.md, Section 3, decision 9.
"""

from __future__ import annotations

from ..core import NULL, Symbol, Table
from ..obs import runtime as _obs
from ..obs.lineage import derived_from
from .opshelpers import as_attr_set, as_attr_symbol, columns_with_attr_in
from .transposition import transpose

__all__ = ["cleanup", "purge"]


def _named(table: Table, name: object | None) -> Table:
    if name is None:
        return table
    return table.with_name(as_attr_symbol(name))


def _merge_rows(table: Table, rows: list[int]) -> list[Symbol] | None:
    """Position-wise merge of a group of data rows, or None when incompatible.

    Compatible means: at every grid column (including column 0, the row
    attribute) the group's non-⊥ entries are all equal.  The merged row
    takes each column's unique non-⊥ entry, or ⊥.

    Under an active lineage scope each merged cell derives from *all* of
    the group's entries in that column (⊥ entries included), so
    duplicate elimination unions rather than drops provenance.
    """
    lin = _obs.OBS.lineage
    merged: list[Symbol] = []
    for j in range(table.ncols):
        candidate: Symbol = NULL
        for i in rows:
            entry = table.entry(i, j)
            if entry.is_null:
                continue
            if candidate.is_null:
                candidate = entry
            elif candidate != entry:
                return None
        if lin is not None:
            candidate = derived_from(candidate, (table.entry(i, j) for i in rows))
        merged.append(candidate)
    return merged


def cleanup(table: Table, by: object, on: object, name: object | None = None) -> Table:
    """``T ← CLEAN-UP by 𝒜 on ℬ (R)``.

    Example (Section 3.4): ``CLEAN-UP by Part on ⊥`` applied to Figure 4
    *bottom* groups the information on nuts, screws, and bolts into one row
    each; the subsequent ``PURGE on Sold by Region`` yields the bold
    ``Sales`` of ``SalesInfo2``.
    """
    by_set = as_attr_set(by)
    on_set = as_attr_set(on)
    by_cols = columns_with_attr_in(table, by_set)

    # Group the ℬ-rows by (row attribute, 𝒜-subtuple); keep first positions.
    order: list[tuple[Symbol, tuple[Symbol, ...]]] = []
    groups: dict[tuple[Symbol, tuple[Symbol, ...]], list[int]] = {}
    untouched: list[int] = []
    for i in table.data_row_indices():
        attr = table.entry(i, 0)
        if attr not in on_set:
            untouched.append(i)
            continue
        key = (attr, tuple(table.entry(i, j) for j in by_cols))
        if key not in groups:
            order.append(key)
            groups[key] = []
        groups[key].append(i)

    # Emit rows in original order; each group appears (merged or intact) at
    # its first member's position.
    replacement: dict[int, list[list[Symbol]]] = {}
    skip: set[int] = set()
    for key in order:
        rows = groups[key]
        if len(rows) == 1:
            continue
        merged = _merge_rows(table, rows)
        if merged is None:
            continue
        replacement[rows[0]] = [merged]
        skip.update(rows[1:])

    grid: list[tuple[Symbol, ...] | list[Symbol]] = [table.row(0)]
    for i in table.data_row_indices():
        if i in skip:
            continue
        if i in replacement:
            grid.extend(replacement[i])
        else:
            grid.append(table.row(i))
    return _named(Table(grid), name)


def purge(table: Table, on: object, by: object, name: object | None = None) -> Table:
    """``T ← PURGE on ℬ by 𝒜 (R)`` — the dual of clean-up.

    Merges position-wise compatible groups of data *columns* that carry the
    same column attribute (from ℬ) and agree on their 𝒜-subcolumn (entries
    in the rows whose row attribute is in 𝒜).
    """
    return _named(transpose(cleanup(transpose(table), by=by, on=on)), name)
