"""Tagging operations: TUPLENEW and SETNEW (paper, Section 3.5).

These introduce *new values* into the database — the object-creating
primitives (inspired by FO + new + while of [3]) needed for the
completeness theorem.  ``TUPLENEW_A`` tags every data row with a distinct
fresh value in a new ``A``-column; ``SETNEW_A`` enumerates *all non-empty
subsets* of the data rows, each subset re-listing its rows tagged with the
subset's own fresh value — the power-set construct.

Fresh values come from a :class:`repro.core.FreshValueSource`; an
interpreter advances the source past every tagged value already present so
freshness is global (see DESIGN.md decision 14).
"""

from __future__ import annotations

from ..core import FreshValueSource, LimitExceededError, Symbol, Table
from ..obs import runtime as _obs
from ..obs.lineage import derived_from
from .opshelpers import as_attr_symbol

__all__ = ["tuplenew", "setnew", "DEFAULT_SETNEW_LIMIT"]

#: SETNEW enumerates 2^m - 1 subsets; refuse beyond this many data rows.
DEFAULT_SETNEW_LIMIT = 16


def _named(table: Table, name: object | None) -> Table:
    if name is None:
        return table
    return table.with_name(as_attr_symbol(name))


def tuplenew(
    table: Table,
    attr: object,
    source: FreshValueSource | None = None,
    name: object | None = None,
) -> Table:
    """``T ← TUPLENEW_A(R)``: a new ``A``-column holding a distinct new
    value for each data row (tuple identifiers).

    Under an active lineage scope each fresh tag derives from the row it
    identifies (the tag is "about" that tuple).
    """
    lin = _obs.OBS.lineage
    src = source if source is not None else FreshValueSource()
    column: list[Symbol] = [as_attr_symbol(attr)]
    if lin is None:
        column += [src.fresh() for _ in table.data_row_indices()]
    else:
        column += [derived_from(src.fresh(), table.row(i)) for i in table.data_row_indices()]
    return _named(table.append_columns([column]), name)


def setnew(
    table: Table,
    attr: object,
    source: FreshValueSource | None = None,
    name: object | None = None,
    limit: int = DEFAULT_SETNEW_LIMIT,
) -> Table:
    """``T ← SETNEW_A(R)``: enumerate all non-empty subsets of the data rows.

    The result consecutively lists, for every non-empty subset of R's data
    rows, that subset's rows extended with a new ``A``-column holding the
    subset's own distinct new value.  Subsets are enumerated in increasing
    bitmask order (deterministic); the operation is exponential by design
    and guarded by ``limit``.

    Under an active lineage scope each subset's fresh tag derives from
    every row of the subset it identifies.
    """
    m = table.height
    if m > limit:
        raise LimitExceededError(
            f"SETNEW on {m} data rows would enumerate 2^{m} - 1 subsets; "
            f"limit is {limit} rows (pass a higher limit explicitly to override)",
            kind="rows",
            op="SETNEW",
            used=m,
            limit=limit,
        )
    lin = _obs.OBS.lineage
    src = source if source is not None else FreshValueSource()
    header = list(table.row(0)) + [as_attr_symbol(attr)]
    grid: list[list[Symbol]] = [header]
    data_rows = list(table.data_row_indices())
    for mask in range(1, 1 << m):
        tag = src.fresh()
        members = [i for position, i in enumerate(data_rows) if mask & (1 << position)]
        if lin is not None:
            tag = derived_from(
                tag, (symbol for i in members for symbol in table.row(i))
            )
        for i in members:
            grid.append(list(table.row(i)) + [tag])
    return _named(Table(grid), name)
