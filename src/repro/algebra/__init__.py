"""The tabular algebra (paper, Section 3).

Operations are pure functions from tables to tables (SPLIT returns a tuple
of tables); the program layer in :mod:`repro.algebra.programs` adds the
assignment-statement semantics, parameters, and the while construct.
"""

from .derived import (
    classical_union,
    const_column,
    collapse_compact,
    deduplicate,
    deduplicate_columns,
    drop_all_null_rows,
    group_compact,
    merge_compact,
    natural_join,
    product_select,
)
from .redundancy import cleanup, purge
from .restructuring import collapse, group, merge, segment_blocks, split
from .tagging import DEFAULT_SETNEW_LIMIT, setnew, tuplenew
from .traditional import (
    difference,
    intersection,
    product,
    project,
    rename,
    select,
    select_constant,
    union,
)
from .transposition import dual, switch, transpose

__all__ = [
    "union",
    "difference",
    "intersection",
    "product",
    "rename",
    "project",
    "select",
    "select_constant",
    "group",
    "merge",
    "split",
    "collapse",
    "segment_blocks",
    "transpose",
    "switch",
    "dual",
    "cleanup",
    "purge",
    "tuplenew",
    "setnew",
    "DEFAULT_SETNEW_LIMIT",
    "classical_union",
    "const_column",
    "deduplicate",
    "deduplicate_columns",
    "drop_all_null_rows",
    "group_compact",
    "merge_compact",
    "collapse_compact",
    "natural_join",
    "product_select",
]
