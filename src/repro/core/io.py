"""Plain-text import/export for tables: CSV and Markdown.

A production library needs to move tables in and out; these functions
serialize the *full* tabular model (names vs values vs ⊥ survive a round
trip) using a small prefix convention in CSV cells:

* ``#text``  — a name (``#`` chosen because names may not be empty);
* ``@n``     — a tagged value with tag n;
* ``!``      — the inapplicable null ⊥;
* ``=text``  — a string value (the ``=`` guards strings that would
  otherwise look like one of the above or like a number);
* ``3`` / ``2.5`` — numeric values;
* anything else — a string value.

Markdown export is one-way (for reports); CSV round-trips.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable

from .errors import SchemaError
from .symbols import NULL, Name, Symbol, TaggedValue, Value
from .table import Table

__all__ = ["table_to_csv", "table_from_csv", "table_to_markdown"]

_NULL_TOKEN = "!"


def _encode_cell(symbol: Symbol) -> str:
    if symbol.is_null:
        return _NULL_TOKEN
    if isinstance(symbol, Name):
        return f"#{symbol.text}"
    if isinstance(symbol, TaggedValue):
        return f"@{symbol.payload}"
    if isinstance(symbol, Value):
        payload = symbol.payload
        if isinstance(payload, (int, float)) and not isinstance(payload, bool):
            return repr(payload)
        if isinstance(payload, str):
            if payload[:1] in ("#", "@", "!", "=") or _looks_numeric(payload):
                return f"={payload}"
            return payload
        raise SchemaError(f"cannot serialize value payload {payload!r} to CSV")
    raise SchemaError(f"cannot serialize symbol {symbol!r}")


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def _decode_cell(text: str) -> Symbol:
    if text == _NULL_TOKEN:
        return NULL
    if text.startswith("#"):
        return Name(text[1:])
    if text.startswith("@"):
        return TaggedValue(int(text[1:]))
    if text.startswith("="):
        return Value(text[1:])
    if _looks_numeric(text):
        number = float(text)
        if number.is_integer() and "." not in text and "e" not in text.lower():
            return Value(int(text))
        return Value(number)
    return Value(text)


def table_to_csv(table: Table) -> str:
    """Serialize a table (all four regions) to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for row in table.grid:
        writer.writerow([_encode_cell(s) for s in row])
    return buffer.getvalue()


def table_from_csv(text: str) -> Table:
    """Rebuild a table from :func:`table_to_csv` output."""
    rows = [row for row in csv.reader(io.StringIO(text)) if row]
    if not rows:
        raise SchemaError("empty CSV input")
    return Table([_decode_cell(cell) for cell in row] for row in rows)


def table_to_markdown(table: Table) -> str:
    """Render a table as a GitHub-flavored Markdown table (one-way)."""
    cells = [[str(s) for s in row] for row in table.grid]
    header = "| " + " | ".join(cells[0]) + " |"
    rule = "|" + "|".join(" --- " for _ in cells[0]) + "|"
    body = ["| " + " | ".join(row) + " |" for row in cells[1:]]
    return "\n".join([header, rule, *body])
