"""Exception hierarchy for the tabular database reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type to handle any model- or algebra-level failure while letting
genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ContextualError(ReproError):
    """A :class:`ReproError` carrying structured execution context.

    ``context`` holds the machine-readable fields handlers branch on —
    op name, statement index, while-loop iteration, rows produced so
    far, the tripped limit.  The rendered message appends them as
    ``key=value`` pairs so logs stay greppable while programmatic
    callers read the attributes directly (``err.op``, ``err.iteration``,
    …).  Fields that are ``None`` are dropped, so bare raises
    (``NonTerminationError("msg")``) keep working unchanged.
    """

    def __init__(self, message: str, **context):
        self.context = {k: v for k, v in context.items() if v is not None}
        suffix = ""
        if self.context:
            rendered = ", ".join(f"{k}={v}" for k, v in self.context.items())
            suffix = f" [{rendered}]"
        super().__init__(message + suffix)

    def __getattr__(self, name: str):
        try:
            return self.__dict__["context"][name]
        except KeyError:
            raise AttributeError(name) from None


class SchemaError(ReproError):
    """A table, database, or relation violates a structural requirement.

    Examples: a ragged grid, an empty grid, a relation tuple whose arity
    does not match its schema, or a canonical representation instance that
    violates one of the ``Rep`` functional dependencies.
    """


class UndefinedOperationError(ReproError):
    """A tabular algebra operation was applied outside its domain.

    The paper leaves an operation's effect *undefined* when, for instance, a
    parameter that must denote a single column attribute matches several
    attributes, or a grouping attribute occurs in no column at all.  We
    surface those situations as this exception rather than guessing.
    """


class BudgetExceededError(ContextualError):
    """A hardened-runtime resource budget tripped.

    The :class:`repro.runtime.governor.ResourceGovernor` raises this for
    wall-clock deadlines (``kind="deadline"``), per-op and per-program
    row/cell budgets (``"rows"``/``"cells"``/``"total_rows"``), memory
    high-water marks (``"memory"``), and governor-level while-iteration
    caps (``"iterations"``).  The context carries the op name, statement
    index, iteration, the limit, and the amount used when it tripped.
    """


class CancelledError(ContextualError):
    """Execution was cooperatively cancelled via the resource governor.

    :meth:`repro.runtime.governor.ResourceGovernor.cancel` sets a flag
    (safe to call from another thread or a signal handler); the next
    chokepoint check — op dispatch, statement entry, while tick — raises
    this instead of starting more work.
    """


class LimitExceededError(BudgetExceededError):
    """A resource guard tripped (e.g. SETNEW on too many data rows).

    ``SETNEW`` enumerates all non-empty subsets of the data rows and is
    therefore exponential by design (it is the power-set construct needed
    for completeness).  A configurable guard raises this error instead of
    exhausting memory.
    """


class NonTerminationError(BudgetExceededError):
    """A ``while`` program exceeded its iteration budget.

    Tabular algebra with iteration is Turing-complete, so the interpreter
    enforces a caller-configurable bound on loop iterations.
    """


class FaultInjectedError(ContextualError):
    """A chaos-engineering fault plan fired a ``raise`` fault.

    Raised at an op boundary by :class:`repro.runtime.faults.FaultPlan`;
    the context names the op, the matching rule's occurrence, and the
    plan's seed, so chaos-test failures reproduce deterministically.
    """


class QuarantinedError(ContextualError):
    """A workload was refused admission by an open circuit breaker.

    The :class:`repro.runtime.policy.CircuitBreaker` opens after a
    configurable number of consecutive failures of one workload
    fingerprint; until the cool-down elapses, submissions of that
    fingerprint are rejected up front with this error instead of
    burning retry budget on a poison workload.  The context carries the
    fingerprint, the breaker state, and the seconds until the next
    half-open probe is allowed.
    """


class VerificationError(ContextualError):
    """A supervised run finished but its result diverged from the reference.

    Verification re-executes the program ungoverned on the naive engine
    and compares databases; a mismatch is *terminal* — retrying an
    execution that completed with the wrong answer cannot help, so the
    supervisor fails the run (and feeds the circuit breaker) instead.
    """


class CheckpointError(ReproError):
    """A checkpoint file could not be written, read, or applied.

    Covers unreadable/corrupt files, format-version mismatches, and a
    checkpoint taken from a *different* program than the one resuming
    (the program fingerprint is verified before any state is restored).
    """


class ExternalToolError(ContextualError):
    """An external tool invocation (e.g. the git SHA probe) failed.

    Used by the benchmark-trajectory machinery to surface subprocess
    timeouts and failures as a typed error instead of an unhandled
    exception killing ``bench-compare``.
    """


class StatsError(ReproError):
    """A statistics snapshot could not be computed, written, or read.

    Covers unreadable/corrupt stats files, schema-version mismatches,
    and invalid ANALYZE parameters (unknown engine, non-positive top-K).
    """


class LedgerError(ReproError):
    """A run-ledger directory could not be written, read, or applied.

    Covers unreadable/corrupt ledger segments, schema-version
    mismatches (a ledger written by a different format cannot be
    silently reinterpreted), unknown run ids, and runs recorded without
    enough state to replay.
    """


class ParseError(ReproError):
    """A textual tabular algebra or SchemaLog program failed to parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class EvaluationError(ReproError):
    """A program (TA, FO+while+new, SchemaLog, GOOD) failed during evaluation."""
