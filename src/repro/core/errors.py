"""Exception hierarchy for the tabular database reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type to handle any model- or algebra-level failure while letting
genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A table, database, or relation violates a structural requirement.

    Examples: a ragged grid, an empty grid, a relation tuple whose arity
    does not match its schema, or a canonical representation instance that
    violates one of the ``Rep`` functional dependencies.
    """


class UndefinedOperationError(ReproError):
    """A tabular algebra operation was applied outside its domain.

    The paper leaves an operation's effect *undefined* when, for instance, a
    parameter that must denote a single column attribute matches several
    attributes, or a grouping attribute occurs in no column at all.  We
    surface those situations as this exception rather than guessing.
    """


class LimitExceededError(ReproError):
    """A resource guard tripped (e.g. SETNEW on too many data rows).

    ``SETNEW`` enumerates all non-empty subsets of the data rows and is
    therefore exponential by design (it is the power-set construct needed
    for completeness).  A configurable guard raises this error instead of
    exhausting memory.
    """


class NonTerminationError(ReproError):
    """A ``while`` program exceeded its iteration budget.

    Tabular algebra with iteration is Turing-complete, so the interpreter
    enforces a caller-configurable bound on loop iterations.
    """


class ParseError(ReproError):
    """A textual tabular algebra or SchemaLog program failed to parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class EvaluationError(ReproError):
    """A program (TA, FO+while+new, SchemaLog, GOOD) failed during evaluation."""
