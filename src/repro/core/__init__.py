"""Core tabular database model (paper, Section 2).

Exports the symbol sorts, weak containment/equality, the :class:`Table`
matrix with its four regions and subsumption relations, the
:class:`TabularDatabase` set-of-tables, builders, and the ASCII renderer.
"""

from .builders import N, V, attr_symbol, data_symbol, database, grid_table, make_table, relation_table
from .database import TabularDatabase
from .errors import (
    BudgetExceededError,
    CancelledError,
    CheckpointError,
    ContextualError,
    EvaluationError,
    ExternalToolError,
    FaultInjectedError,
    LimitExceededError,
    NonTerminationError,
    ParseError,
    ReproError,
    StatsError,
    SchemaError,
    UndefinedOperationError,
)
from .io import table_from_csv, table_to_csv, table_to_markdown
from .render import render_database, render_symbol, render_table
from .symbols import (
    NULL,
    FreshValueSource,
    Name,
    Null,
    Symbol,
    TaggedValue,
    Value,
    coerce_name,
    coerce_symbol,
    strip_null,
    weakly_contained,
    weakly_equal,
)
from .table import Table

__all__ = [
    "N",
    "V",
    "NULL",
    "Name",
    "Null",
    "Symbol",
    "TaggedValue",
    "Value",
    "FreshValueSource",
    "Table",
    "TabularDatabase",
    "attr_symbol",
    "coerce_name",
    "coerce_symbol",
    "data_symbol",
    "database",
    "grid_table",
    "make_table",
    "relation_table",
    "render_database",
    "render_symbol",
    "render_table",
    "table_to_csv",
    "table_from_csv",
    "table_to_markdown",
    "strip_null",
    "weakly_contained",
    "weakly_equal",
    "ReproError",
    "ContextualError",
    "SchemaError",
    "UndefinedOperationError",
    "BudgetExceededError",
    "CancelledError",
    "CheckpointError",
    "ExternalToolError",
    "FaultInjectedError",
    "LimitExceededError",
    "NonTerminationError",
    "ParseError",
    "EvaluationError",
    "StatsError",
]
