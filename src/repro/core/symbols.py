"""Symbols of the tabular database model.

The paper distinguishes two sorts of symbols (Section 2):

* **names** (:class:`Name`), a generalization of relation and attribute
  names — operations *may* distinguish individual names;
* **values** (:class:`Value`) — for genericity reasons operations may *not*
  distinguish individual values;

plus the special **inapplicable null** ``⊥`` (:data:`NULL`), used whenever a
table entry is not applicable.  The set of all symbols is
``𝒮 = 𝒩 ∪ 𝒱 ∪ {⊥}``.

The presence of ``⊥`` requires an adapted notion of equality on *sets* of
symbols: ``A ⊑ B`` (*weak containment*) iff ``A \\ {⊥} ⊆ B \\ {⊥}``, and
``A ≈ B`` (*weak equality*) iff both containments hold.  These are provided
by :func:`weakly_contained` and :func:`weakly_equal`.

Symbols are immutable, hashable, and totally ordered (the order is an
implementation convenience used for deterministic rendering and canonical
sorting; it carries no model-level meaning).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

__all__ = [
    "Symbol",
    "Name",
    "Value",
    "TaggedValue",
    "Null",
    "NULL",
    "FreshValueSource",
    "coerce_symbol",
    "coerce_name",
    "weakly_contained",
    "weakly_equal",
    "strip_null",
]


class Symbol:
    """Abstract base class of all tabular model symbols.

    Concrete symbols are :class:`Name`, :class:`Value`,
    :class:`TaggedValue`, and the :data:`NULL` singleton.  Instances are
    immutable and hashable, so they can be stored in the frozen grids of
    :class:`repro.core.table.Table` and in Python sets.
    """

    __slots__ = ()

    #: Rank used for the (arbitrary but total) cross-sort ordering.
    _sort_rank = 99

    #: Why-provenance of the cell this symbol occupies: a frozenset of
    #: input-cell ids, or None when the symbol carries no lineage.  Plain
    #: symbols share this class-level None; the provenance layer
    #: (:mod:`repro.obs.lineage`) substitutes per-cell *copies* that shadow
    #: it with an instance slot.  Provenance never participates in
    #: equality, hashing, or ordering — a tagged copy is indistinguishable
    #: from its original to every operation of the algebra.
    prov = None

    @property
    def is_null(self) -> bool:
        """True iff this symbol is the inapplicable null ``⊥``."""
        return False

    @property
    def is_name(self) -> bool:
        """True iff this symbol belongs to the name sort 𝒩."""
        return False

    @property
    def is_value(self) -> bool:
        """True iff this symbol belongs to the value sort 𝒱."""
        return False

    def sort_key(self) -> tuple:
        """A key that totally orders all symbols (nulls < names < values)."""
        raise NotImplementedError

    def __lt__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.sort_key() < other.sort_key()


class Name(Symbol):
    """A symbol of the name sort 𝒩 (table and attribute names).

    Names are rendered in typewriter font in the paper; here they print
    bare (e.g. ``Part``) while values print with quotes when textual.
    """

    __slots__ = ("text",)
    _sort_rank = 1

    def __init__(self, text: str):
        if not isinstance(text, str) or not text:
            raise ValueError(f"a Name requires a non-empty string, got {text!r}")
        object.__setattr__(self, "text", text)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("Name is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Name) and other.text == self.text

    def __hash__(self) -> int:
        return hash((Name, self.text))

    def __repr__(self) -> str:
        return f"Name({self.text!r})"

    def __str__(self) -> str:
        return self.text

    @property
    def is_name(self) -> bool:
        return True

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.text)


class Value(Symbol):
    """A symbol of the value sort 𝒱.

    The payload may be any hashable Python object (strings and numbers in
    practice).  Generic operations never branch on the payload; it only
    matters for equality, ordering, and rendering — and for the arithmetic
    offered by the OLAP/spreadsheet layer, which deliberately steps outside
    the generic algebra exactly as the paper's "external functions" do.
    """

    __slots__ = ("payload",)
    _sort_rank = 2

    def __init__(self, payload: Hashable):
        if isinstance(payload, Symbol):
            raise TypeError("Value payload must be a plain Python object, not a Symbol")
        hash(payload)  # fail fast on unhashable payloads
        object.__setattr__(self, "payload", payload)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("Value is immutable")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Value)
            and not isinstance(other, TaggedValue)
            and not isinstance(self, TaggedValue)
            and other.payload == self.payload
        )

    def __hash__(self) -> int:
        return hash((Value, self.payload))

    def __repr__(self) -> str:
        return f"Value({self.payload!r})"

    def __str__(self) -> str:
        if isinstance(self.payload, str):
            return f"'{self.payload}'"
        return str(self.payload)

    @property
    def is_value(self) -> bool:
        return True

    def sort_key(self) -> tuple:
        payload = self.payload
        # Order numbers before everything else, then strings, then the rest
        # by repr; this keeps sorting total across heterogeneous payloads.
        if isinstance(payload, (bool, int, float)):
            return (self._sort_rank, 0, float(payload))
        if isinstance(payload, str):
            return (self._sort_rank, 2, payload)
        return (self._sort_rank, 3, repr(payload))


class TaggedValue(Value):
    """A *new* value created by a tagging operation (TUPLENEW / SETNEW).

    Tagged values are drawn "non-deterministically from 𝒮" in the paper;
    here they come from a :class:`FreshValueSource`, which makes programs
    reproducible while preserving determinacy up to the choice of new
    values (transformation condition (iv)).
    """

    __slots__ = ()
    _sort_rank = 3

    def __init__(self, tag: int):
        if not isinstance(tag, int) or tag < 0:
            raise ValueError(f"a TaggedValue requires a non-negative int tag, got {tag!r}")
        super().__init__(tag)

    def __eq__(self, other) -> bool:
        return isinstance(other, TaggedValue) and other.payload == self.payload

    def __hash__(self) -> int:
        return hash((TaggedValue, self.payload))

    def __repr__(self) -> str:
        return f"TaggedValue({self.payload})"

    def __str__(self) -> str:
        return f"@{self.payload}"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.payload)


class Null(Symbol):
    """The inapplicable null ``⊥``.  Use the :data:`NULL` singleton."""

    __slots__ = ()
    _sort_rank = 0
    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other) -> bool:
        return isinstance(other, Null)

    def __hash__(self) -> int:
        return hash(Null)

    def __repr__(self) -> str:
        return "NULL"

    def __str__(self) -> str:
        return "⊥"

    @property
    def is_null(self) -> bool:
        return True

    def sort_key(self) -> tuple:
        return (self._sort_rank,)


#: The unique inapplicable-null symbol ``⊥``.
NULL = Null()


class FreshValueSource:
    """Deterministic source of globally fresh :class:`TaggedValue` symbols.

    The tagging operations require values "distinct … chosen
    non-deterministically from 𝒮".  A source hands out tagged values with
    strictly increasing tags; :meth:`advance_past` lets an interpreter skip
    tags already present in a database so freshness is guaranteed.
    """

    def __init__(self, start: int = 0):
        self._next = start

    def fresh(self) -> TaggedValue:
        """Return a tagged value never returned by this source before."""
        value = TaggedValue(self._next)
        self._next += 1
        return value

    def advance_past(self, symbols: Iterable[Symbol]) -> None:
        """Ensure future fresh values differ from every tagged value given."""
        for symbol in symbols:
            if isinstance(symbol, TaggedValue):
                self._next = max(self._next, symbol.payload + 1)

    @property
    def next_tag(self) -> int:
        """The tag the next call to :meth:`fresh` will use."""
        return self._next

    def reset_to(self, tag: int) -> None:
        """Rewind (or fast-forward) the source so the next tag is ``tag``.

        Only safe when every tagged value handed out at or after ``tag``
        has been discarded — the snapshot-and-commit statement semantics
        of the hardened runtime and checkpoint restore, where a failed
        statement's partial results (and the tags minted for them) are
        thrown away wholesale.
        """
        if not isinstance(tag, int) or tag < 0:
            raise ValueError(f"reset_to requires a non-negative int tag, got {tag!r}")
        self._next = tag


def coerce_symbol(obj: object) -> Symbol:
    """Coerce a Python object into a :class:`Symbol`.

    ``Symbol`` instances pass through, ``None`` becomes :data:`NULL`, and
    anything else becomes a :class:`Value` with that payload.  Strings are
    *values* by default; use :class:`Name` (or :func:`coerce_name`)
    explicitly for names, mirroring the paper's typographic distinction.
    """
    if isinstance(obj, Symbol):
        return obj
    if obj is None:
        return NULL
    return Value(obj)


def coerce_name(obj: object) -> Name:
    """Coerce a string or :class:`Name` into a :class:`Name`."""
    if isinstance(obj, Name):
        return obj
    if isinstance(obj, str):
        return Name(obj)
    raise TypeError(f"expected a Name or string, got {obj!r}")


def strip_null(symbols: Iterable[Symbol]) -> frozenset[Symbol]:
    """Return ``A \\ {⊥}`` as a frozenset."""
    return frozenset(s for s in symbols if not s.is_null)


def weakly_contained(left: Iterable[Symbol], right: Iterable[Symbol]) -> bool:
    """Weak containment ``A ⊑ B``:  ``A \\ {⊥} ⊆ B \\ {⊥}``."""
    return strip_null(left) <= strip_null(right)


def weakly_equal(left: Iterable[Symbol], right: Iterable[Symbol]) -> bool:
    """Weak equality ``A ≈ B``:  ``A ⊑ B`` and ``B ⊑ A``."""
    return strip_null(left) == strip_null(right)


def iter_symbols(objs: Iterable[object]) -> Iterator[Symbol]:
    """Coerce each object in ``objs`` via :func:`coerce_symbol`."""
    for obj in objs:
        yield coerce_symbol(obj)
