"""The table — the central data structure of the tabular database model.

Formally (paper, Section 2) a table is a *total mapping from the Cartesian
product of two initial segments of the natural numbers into 𝒮*; i.e. a
matrix of symbols.  For a table τ with row numbers ``0..m`` and column
numbers ``0..n``:

* ``τ_0^0`` is the **table name**,
* ``τ_0^>`` (row 0, columns ≥ 1) are the **column attributes**,
* ``τ_>^0`` (column 0, rows ≥ 1) are the **row attributes**,
* ``τ_>^>`` are the **data entries**

— the four regions of the paper's Figure 2.  The paper calls ``n`` the
*width* and ``m`` the *height*; so a table of width n and height m is an
``(m+1) × (n+1)`` matrix.

Both row and column attributes are optional (they may be ``⊥``), attributes
need not be distinct, data may appear in attribute positions, and names may
appear in data positions — this is exactly the flexibility that separates
tables from relations.

:class:`Table` is immutable; every "mutation" returns a new table.  This is
what makes the algebra's assignment semantics and the hypothesis-based
property tests straightforward.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from .errors import SchemaError
from .symbols import NULL, Name, Symbol, weakly_contained, weakly_equal

__all__ = ["Table"]


def _freeze_grid(rows: Iterable[Iterable[Symbol]]) -> tuple[tuple[Symbol, ...], ...]:
    grid = tuple(tuple(row) for row in rows)
    if not grid or not grid[0]:
        raise SchemaError("a table requires at least the name position (a 1x1 grid)")
    ncols = len(grid[0])
    for i, row in enumerate(grid):
        if len(row) != ncols:
            raise SchemaError(
                f"ragged grid: row {i} has {len(row)} entries, expected {ncols}"
            )
        for j, entry in enumerate(row):
            if not isinstance(entry, Symbol):
                raise SchemaError(
                    f"grid entry ({i},{j}) is {entry!r}, not a Symbol; "
                    "use repro.core.builders for coercing plain Python objects"
                )
    return grid


class Table:
    """An immutable tabular-model table (a matrix of :class:`Symbol`).

    Construct directly from a grid of symbols, or use the convenience
    constructors in :mod:`repro.core.builders` for plain Python data.

    Indexing follows the paper: row 0 is the attribute row, column 0 is the
    attribute column, and position (0, 0) holds the table name.
    """

    __slots__ = ("_grid", "_hash", "_sort_key", "__weakref__")

    def __init__(self, grid: Iterable[Iterable[Symbol]]):
        object.__setattr__(self, "_grid", _freeze_grid(grid))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_sort_key", None)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("Table is immutable")

    # ------------------------------------------------------------------
    # Basic shape and access
    # ------------------------------------------------------------------

    @property
    def grid(self) -> tuple[tuple[Symbol, ...], ...]:
        """The raw ``(m+1) × (n+1)`` grid of symbols."""
        return self._grid

    @property
    def nrows(self) -> int:
        """Number of grid rows, ``m + 1``."""
        return len(self._grid)

    @property
    def ncols(self) -> int:
        """Number of grid columns, ``n + 1``."""
        return len(self._grid[0])

    @property
    def height(self) -> int:
        """The paper's *height* ``m`` (number of data rows)."""
        return self.nrows - 1

    @property
    def width(self) -> int:
        """The paper's *width* ``n`` (number of data columns)."""
        return self.ncols - 1

    @property
    def name(self) -> Symbol:
        """The table name ``τ_0^0``."""
        return self._grid[0][0]

    @property
    def column_attributes(self) -> tuple[Symbol, ...]:
        """The column attributes ``τ_0^>`` (row 0 without the name)."""
        return self._grid[0][1:]

    @property
    def row_attributes(self) -> tuple[Symbol, ...]:
        """The row attributes ``τ_>^0`` (column 0 without the name)."""
        return tuple(row[0] for row in self._grid[1:])

    def entry(self, i: int, j: int) -> Symbol:
        """The entry ``τ_i^j``."""
        return self._grid[i][j]

    def row(self, i: int) -> tuple[Symbol, ...]:
        """The full row ``τ_i`` (including the column-0 slot)."""
        return self._grid[i]

    def column(self, j: int) -> tuple[Symbol, ...]:
        """The full column ``τ^j`` (including the row-0 slot)."""
        return tuple(row[j] for row in self._grid)

    def data_row(self, i: int) -> tuple[Symbol, ...]:
        """Row ``i``'s data entries ``τ_i^>`` (without the row attribute)."""
        return self._grid[i][1:]

    def data_column(self, j: int) -> tuple[Symbol, ...]:
        """Column ``j``'s data entries ``τ_>^j`` (without the attribute)."""
        return tuple(row[j] for row in self._grid[1:])

    @property
    def data(self) -> tuple[tuple[Symbol, ...], ...]:
        """The data region ``τ_>^>``."""
        return tuple(row[1:] for row in self._grid[1:])

    def data_row_indices(self) -> range:
        """Indices of the data rows (``1..m``)."""
        return range(1, self.nrows)

    def data_col_indices(self) -> range:
        """Indices of the data columns (``1..n``)."""
        return range(1, self.ncols)

    def symbols(self) -> frozenset[Symbol]:
        """The set of all symbols occurring anywhere in the table."""
        return frozenset(entry for row in self._grid for entry in row)

    # ------------------------------------------------------------------
    # Subtables (the τ_I^J notation)
    # ------------------------------------------------------------------

    def subtable(self, rows: Sequence[int], cols: Sequence[int]) -> "Table":
        """The subtable ``τ_I^J`` formed by the indicated rows and columns.

        Indices may repeat and appear in any order, exactly as the paper's
        finite index sequences allow.
        """
        try:
            return Table((self._grid[i][j] for j in cols) for i in rows)
        except IndexError as exc:
            raise SchemaError(f"subtable index out of range: {exc}") from exc

    # ------------------------------------------------------------------
    # Attribute-based access (the τ_i(a) notation)
    # ------------------------------------------------------------------

    def columns_named(self, attribute: Symbol) -> list[int]:
        """Data-column indices whose column attribute equals ``attribute``."""
        header = self._grid[0]
        return [j for j in range(1, self.ncols) if header[j] == attribute]

    def rows_named(self, attribute: Symbol) -> list[int]:
        """Data-row indices whose row attribute equals ``attribute``."""
        return [i for i in range(1, self.nrows) if self._grid[i][0] == attribute]

    def row_entry_set(self, i: int, attribute: Symbol) -> frozenset[Symbol]:
        """``τ_i(a)`` — the *set* of data entries of row ``i`` in columns named ``a``."""
        row = self._grid[i]
        header = self._grid[0]
        return frozenset(row[j] for j in range(1, self.ncols) if header[j] == attribute)

    def column_entry_set(self, j: int, attribute: Symbol) -> frozenset[Symbol]:
        """The dual ``τ^j(a)`` — entries of column ``j`` in rows named ``a``."""
        return frozenset(
            self._grid[i][j] for i in range(1, self.nrows) if self._grid[i][0] == attribute
        )

    # ------------------------------------------------------------------
    # Subsumption (paper, end of Section 2)
    # ------------------------------------------------------------------

    def row_subsumed_by(self, i: int, other: "Table", k: int) -> bool:
        """``ρ_i ⪯ σ_k``: row ``i`` of self is subsumed by row ``k`` of other.

        For each column attribute ``a`` occurring in either table,
        ``ρ_i(a) ⊑ σ_k(a)`` must hold.
        """
        attributes = set(self.column_attributes) | set(other.column_attributes)
        return all(
            weakly_contained(self.row_entry_set(i, a), other.row_entry_set(k, a))
            for a in attributes
        )

    def rows_subsume_each_other(self, i: int, other: "Table", k: int) -> bool:
        """``ρ_i ≍ σ_k``: mutual row subsumption."""
        return self.row_subsumed_by(i, other, k) and other.row_subsumed_by(k, self, i)

    def column_subsumed_by(self, j: int, other: "Table", l: int) -> bool:
        """Dual of :meth:`row_subsumed_by` with rows and columns swapped."""
        attributes = set(self.row_attributes) | set(other.row_attributes)
        return all(
            weakly_contained(self.column_entry_set(j, a), other.column_entry_set(l, a))
            for a in attributes
        )

    def columns_subsume_each_other(self, j: int, other: "Table", l: int) -> bool:
        """Mutual column subsumption."""
        return self.column_subsumed_by(j, other, l) and other.column_subsumed_by(l, self, j)

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------

    def transpose(self) -> "Table":
        """The matrix transpose (column attributes become row attributes)."""
        return Table(zip(*self._grid))

    def with_name(self, name: Symbol) -> "Table":
        """A copy whose table-name position holds ``name``."""
        first = (name,) + self._grid[0][1:]
        return Table((first,) + self._grid[1:])

    def with_entry(self, i: int, j: int, symbol: Symbol) -> "Table":
        """A copy with entry (i, j) replaced by ``symbol``."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise SchemaError(f"entry ({i},{j}) out of range for {self.nrows}x{self.ncols}")
        rows = list(self._grid)
        row = list(rows[i])
        row[j] = symbol
        rows[i] = tuple(row)
        return Table(rows)

    def append_rows(self, rows: Iterable[Sequence[Symbol]]) -> "Table":
        """A copy with extra full-width rows appended below."""
        return Table(self._grid + tuple(tuple(r) for r in rows))

    def append_columns(self, columns: Iterable[Sequence[Symbol]]) -> "Table":
        """A copy with extra full-height columns appended at the right."""
        cols = [tuple(c) for c in columns]
        for c in cols:
            if len(c) != self.nrows:
                raise SchemaError(
                    f"appended column has {len(c)} entries, expected {self.nrows}"
                )
        return Table(
            tuple(row + tuple(c[i] for c in cols) for i, row in enumerate(self._grid))
        )

    def drop_rows(self, indices: Iterable[int]) -> "Table":
        """A copy without the indicated rows (row 0 cannot be dropped)."""
        drop = set(indices)
        if 0 in drop:
            raise SchemaError("the attribute row (row 0) cannot be dropped")
        return Table(row for i, row in enumerate(self._grid) if i not in drop)

    def drop_columns(self, indices: Iterable[int]) -> "Table":
        """A copy without the indicated columns (column 0 cannot be dropped)."""
        drop = set(indices)
        if 0 in drop:
            raise SchemaError("the attribute column (column 0) cannot be dropped")
        keep = [j for j in range(self.ncols) if j not in drop]
        return Table(tuple(row[j] for j in keep) for row in self._grid)

    def map_entries(self, fn: Callable[[Symbol], Symbol]) -> "Table":
        """A copy with ``fn`` applied to every grid entry."""
        return Table(tuple(fn(entry) for entry in row) for row in self._grid)

    def sorted_canonically(self) -> "Table":
        """A copy with data rows and columns in a deterministic order.

        Rows and columns are sorted by iterated lexicographic refinement
        (sort columns by their entry sequence, then rows, until a fixpoint).
        Used for stable rendering and as a cheap pre-pass for
        permutation-equivalence checks.
        """
        grid = [list(row) for row in self._grid]
        for _ in range(max(len(grid), len(grid[0])) + 2):
            new_cols = sorted(
                range(1, len(grid[0])),
                key=lambda j: tuple(grid[i][j].sort_key() for i in range(len(grid))),
            )
            grid = [[row[0]] + [row[j] for j in new_cols] for row in grid]
            new_rows = sorted(
                range(1, len(grid)), key=lambda i: tuple(s.sort_key() for s in grid[i])
            )
            reordered = [grid[0]] + [grid[i] for i in new_rows]
            if reordered == grid and new_cols == list(range(1, len(grid[0]))):
                grid = reordered
                break
            grid = reordered
        return Table(grid)

    # ------------------------------------------------------------------
    # Equality and hashing
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Table) and other._grid == self._grid

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._grid))
        return self._hash

    def sort_key(self) -> tuple:
        """A key totally ordering tables (used for canonical database order).

        Cached: the grid is immutable, and :class:`TabularDatabase` re-sorts
        its tables after every program statement, so without the cache this
        key dominates interpreter time on multi-statement programs.
        """
        if self._sort_key is None:
            object.__setattr__(
                self,
                "_sort_key",
                tuple(tuple(s.sort_key() for s in row) for row in self._grid),
            )
        return self._sort_key

    def equivalent(self, other: "Table") -> bool:
        """Equality up to permutations of data rows and of data columns.

        This is the paper's identification of tables that differ only in
        "the order of rows and columns", used by isomorphism of databases.
        A sort-refinement canonical form settles most cases; ties fall back
        to a backtracking search over column matchings.
        """
        if self is other:
            return True
        if (self.nrows, self.ncols) != (other.nrows, other.ncols):
            return False
        a = self.sorted_canonically()
        b = other.sorted_canonically()
        if a._grid == b._grid:
            return True
        return _permutation_equal(self, other)

    def __repr__(self) -> str:
        return f"Table({self.nrows}x{self.ncols} name={self.name!s})"

    def __str__(self) -> str:
        from .render import render_table

        return render_table(self)

    def __iter__(self) -> Iterator[tuple[Symbol, ...]]:
        return iter(self._grid)


def _permutation_equal(left: Table, right: Table) -> bool:
    """Exact search: is there a data-row and data-column permutation mapping
    ``left``'s grid onto ``right``'s?

    Columns are matched first (constrained by the full column content as a
    multiset ignoring row order — approximated by sorted entries), then row
    permutation is checked by comparing row multisets under the chosen
    column matching.
    """
    n = left.ncols
    if n != right.ncols or left.nrows != right.nrows:
        return False

    def column_fingerprint(table: Table, j: int) -> tuple:
        column = table.column(j)
        return (column[0].sort_key(), tuple(sorted(s.sort_key() for s in column[1:])))

    right_groups: dict[tuple, list[int]] = {}
    for j in range(1, n):
        right_groups.setdefault(column_fingerprint(right, j), []).append(j)
    left_fingerprints = [column_fingerprint(left, j) for j in range(1, n)]
    needed: dict[tuple, int] = {}
    for fp in left_fingerprints:
        needed[fp] = needed.get(fp, 0) + 1
    if any(len(right_groups.get(fp, [])) != count for fp, count in needed.items()):
        return False
    if sum(len(v) for v in right_groups.values()) != n - 1:
        return False

    def rows_match(col_map: list[int]) -> bool:
        order = [0] + col_map
        if left._grid[0] != tuple(right._grid[0][j] for j in order):
            return False
        left_rows = sorted(tuple(s.sort_key() for s in row) for row in left._grid[1:])
        right_rows = sorted(
            tuple(right._grid[i][j].sort_key() for j in order)
            for i in range(1, right.nrows)
        )
        return left_rows == right_rows

    # Backtracking: assign each left data column to an unused right column
    # carrying the same fingerprint; a complete assignment succeeds if a row
    # permutation exists (multiset equality of reordered rows).
    col_map: list[int] = []
    used: set[int] = set()

    def assign(pos: int) -> bool:
        if pos == n - 1:
            return rows_match(col_map)
        for candidate in right_groups[left_fingerprints[pos]]:
            if candidate in used:
                continue
            used.add(candidate)
            col_map.append(candidate)
            if assign(pos + 1):
                return True
            col_map.pop()
            used.discard(candidate)
        return False

    return assign(0)
