"""Tabular databases — sets of tables.

A tabular database is a *set* of tables (paper, Section 2).  Unlike in the
relational model, several tables may carry the same name (``SalesInfo4`` in
Figure 1 has one ``Sales`` table per region, their number depending on the
instance), so lookup by name returns a tuple of tables.

Databases are immutable; tables are stored deduplicated and in a canonical
deterministic order, so two databases built from the same tables in any
order compare equal, hash equal, and render identically.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .errors import SchemaError
from .symbols import NULL, Name, Symbol
from .table import Table

__all__ = ["TabularDatabase"]


class TabularDatabase:
    """An immutable set of :class:`Table` objects.

    Supports the paper's notions directly:

    * ``db.table_names()`` — the names occurring as table names (a scheme
      for ``db`` is any finite superset of these inside 𝒩);
    * ``db.symbols()`` — ``|D|``, the set of symbols occurring in ``db``;
    * ``db.tables_named(n)`` — all tables named ``n`` (possibly several);
    * set-like combination (``|``), addition and replacement of tables.
    """

    __slots__ = ("_tables", "_hash")

    def __init__(self, tables: Iterable[Table] = ()):
        unique = set()
        for table in tables:
            if not isinstance(table, Table):
                raise SchemaError(f"a TabularDatabase holds Table objects, got {table!r}")
            unique.add(table)
        ordered = tuple(sorted(unique, key=Table.sort_key))
        object.__setattr__(self, "_tables", ordered)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("TabularDatabase is immutable")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def tables(self) -> tuple[Table, ...]:
        """All tables, in canonical order."""
        return self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables)

    def __contains__(self, table: object) -> bool:
        return table in set(self._tables)

    def is_empty(self) -> bool:
        """True iff the database holds no tables."""
        return not self._tables

    def tables_named(self, name: Symbol | str) -> tuple[Table, ...]:
        """All tables whose name position holds ``name``."""
        if isinstance(name, str):
            name = Name(name)
        return tuple(t for t in self._tables if t.name == name)

    def table(self, name: Symbol | str) -> Table:
        """The unique table named ``name``; raises if absent or ambiguous."""
        found = self.tables_named(name)
        if not found:
            raise SchemaError(f"no table named {name!s}")
        if len(found) > 1:
            raise SchemaError(f"{len(found)} tables named {name!s}; use tables_named()")
        return found[0]

    def table_names(self) -> frozenset[Symbol]:
        """The set of symbols used as table names."""
        return frozenset(t.name for t in self._tables)

    def symbols(self) -> frozenset[Symbol]:
        """``|D|`` — all symbols occurring anywhere in the database."""
        out: set[Symbol] = set()
        for table in self._tables:
            out |= table.symbols()
        return frozenset(out)

    def names(self) -> frozenset[Name]:
        """All symbols of the name sort occurring in the database."""
        return frozenset(s for s in self.symbols() if isinstance(s, Name))

    def scheme(self) -> frozenset[Name]:
        """The minimal scheme: table names that are proper names.

        The paper allows any finite ``N ⊆ 𝒩`` containing all table names as
        a scheme; this returns the smallest such set.  Table names that are
        not of the name sort (⊥ or values) are not part of any scheme.
        """
        return frozenset(n for n in self.table_names() if isinstance(n, Name))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, *tables: Table) -> "TabularDatabase":
        """A database with the given tables added (set union)."""
        return TabularDatabase(self._tables + tables)

    def remove(self, *tables: Table) -> "TabularDatabase":
        """A database with the given tables removed (missing ones ignored)."""
        drop = set(tables)
        return TabularDatabase(t for t in self._tables if t not in drop)

    def without_name(self, name: Symbol | str) -> "TabularDatabase":
        """A database with every table named ``name`` removed."""
        if isinstance(name, str):
            name = Name(name)
        return TabularDatabase(t for t in self._tables if t.name != name)

    def replace_named(self, name: Symbol | str, tables: Iterable[Table]) -> "TabularDatabase":
        """Assignment semantics: drop all tables named ``name``, add ``tables``.

        This is how ``T ← op(...)`` statements update the database (DESIGN.md
        interpretation decision 13).
        """
        return self.without_name(name).add(*tables)

    def __or__(self, other: "TabularDatabase") -> "TabularDatabase":
        if not isinstance(other, TabularDatabase):
            return NotImplemented
        return TabularDatabase(self._tables + other._tables)

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, TabularDatabase) and other._tables == self._tables

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._tables))
        return self._hash

    def equivalent(self, other: "TabularDatabase") -> bool:
        """Equality up to row/column permutations inside the tables.

        Two databases are identified when their tables pairwise match up to
        permutations of non-attribute rows and columns (the paper's
        condition (iii) on isomorphisms, with the identity on symbols).
        """
        if len(self) != len(other):
            return False
        remaining = list(other._tables)
        for table in self._tables:
            for candidate in remaining:
                if table.equivalent(candidate):
                    remaining.remove(candidate)
                    break
            else:
                return False
        return not remaining

    def __repr__(self) -> str:
        names = ", ".join(sorted(str(t.name) for t in self._tables))
        return f"TabularDatabase({len(self._tables)} tables: {names})"

    def __str__(self) -> str:
        from .render import render_database

        return render_database(self)
