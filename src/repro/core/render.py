"""ASCII rendering of tables and databases in the style of the paper's figures.

Tables render as boxed grids with the attribute row and attribute column
visually separated (mirroring the bold rulings of Figure 1):

    +-------+--------+--------+
    | Sales | Part   | Sold   |
    +-------+--------+--------+
    | ⊥     | 'nuts' | 50     |
    +-------+--------+--------+

Names print bare, textual values print quoted, numbers print plainly, and
the inapplicable null prints as ``⊥``.  The renderer is deterministic, so
figure-regeneration benchmarks can diff rendered output against the
expected text.
"""

from __future__ import annotations

from typing import Iterable

from .symbols import Symbol
from .table import Table

__all__ = ["render_table", "render_database", "render_symbol"]


def render_symbol(symbol: Symbol) -> str:
    """The display text of a symbol (``str(symbol)``)."""
    return str(symbol)


def render_table(table: Table, title: str | None = None) -> str:
    """Render a table as a boxed ASCII grid.

    ``title`` adds a caption line above the box (used by
    :func:`render_database` to label multiple tables).
    """
    cells = [[render_symbol(entry) for entry in row] for row in table.grid]
    widths = [
        max(len(cells[i][j]) for i in range(len(cells))) for j in range(len(cells[0]))
    ]

    def rule() -> str:
        return "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def line(row: list[str]) -> str:
        padded = (f" {text.ljust(widths[j])} " for j, text in enumerate(row))
        return "|" + "|".join(padded) + "|"

    out = []
    if title:
        out.append(title)
    out.append(rule())
    out.append(line(cells[0]))
    out.append(rule())
    for row in cells[1:]:
        out.append(line(row))
    if len(cells) > 1:
        out.append(rule())
    return "\n".join(out)


def render_database(db: Iterable[Table], title: str | None = None) -> str:
    """Render every table of a database, separated by blank lines."""
    blocks = []
    if title:
        blocks.append(f"=== {title} ===")
    for table in db:
        blocks.append(render_table(table))
    return "\n\n".join(blocks) if blocks else "(empty database)"
