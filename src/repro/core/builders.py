"""Convenience constructors for tables and databases.

The :class:`repro.core.table.Table` constructor is strict (symbols only);
these helpers coerce plain Python data using the conventions:

* ``None`` becomes the inapplicable null ``⊥``;
* in *attribute* positions (table name, column attributes, row attributes)
  strings become :class:`~repro.core.symbols.Name`;
* in *data* positions strings and numbers become
  :class:`~repro.core.symbols.Value`;
* :class:`~repro.core.symbols.Symbol` instances always pass through, so any
  convention can be overridden locally (e.g. a value in an attribute
  position, as in ``SalesInfo3`` of Figure 1, or a name in a data position,
  as the ``Region`` rows of ``SalesInfo4``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .database import TabularDatabase
from .errors import SchemaError
from .symbols import NULL, Name, Symbol, Value, coerce_symbol
from .table import Table

__all__ = [
    "N",
    "V",
    "attr_symbol",
    "data_symbol",
    "make_table",
    "relation_table",
    "grid_table",
    "database",
]


def N(text: str) -> Name:
    """Shorthand for :class:`Name` (the paper's typewriter font)."""
    return Name(text)


def V(payload: object) -> Value:
    """Shorthand for :class:`Value`."""
    return Value(payload)


def attr_symbol(obj: object) -> Symbol:
    """Coerce an object destined for an attribute position (str → Name)."""
    if isinstance(obj, Symbol):
        return obj
    if obj is None:
        return NULL
    if isinstance(obj, str):
        return Name(obj)
    return Value(obj)


def data_symbol(obj: object) -> Symbol:
    """Coerce an object destined for a data position (str → Value)."""
    return coerce_symbol(obj)


def make_table(
    name: object,
    columns: Sequence[object],
    rows: Iterable[Sequence[object]],
    row_attrs: Sequence[object] | None = None,
) -> Table:
    """Build a table from a name, column attributes, and data rows.

    ``row_attrs`` gives the column-0 entries of the data rows; omitted row
    attributes default to ``⊥`` (the common case for relation-style tables).

    >>> t = make_table("Sales", ["Part", "Sold"], [["nuts", 50]])
    >>> t.width, t.height
    (2, 1)
    """
    data_rows = [list(r) for r in rows]
    if row_attrs is None:
        row_attrs = [None] * len(data_rows)
    if len(row_attrs) != len(data_rows):
        raise SchemaError(
            f"{len(row_attrs)} row attributes for {len(data_rows)} data rows"
        )
    for i, row in enumerate(data_rows):
        if len(row) != len(columns):
            raise SchemaError(
                f"data row {i} has {len(row)} entries for {len(columns)} columns"
            )
    grid = [[attr_symbol(name)] + [attr_symbol(c) for c in columns]]
    for attr, row in zip(row_attrs, data_rows):
        grid.append([attr_symbol(attr)] + [data_symbol(v) for v in row])
    return Table(grid)


def relation_table(name: object, columns: Sequence[object], rows: Iterable[Sequence[object]]) -> Table:
    """The natural tabular counterpart of a relation (⊥ row attributes)."""
    return make_table(name, columns, rows)


def grid_table(grid: Iterable[Sequence[object]], names: Iterable[str] = ()) -> Table:
    """Build a table from a full grid of plain Python objects.

    Row 0 and column 0 coerce as attribute positions; other positions as
    data.  Strings listed in ``names`` coerce to :class:`Name` in *any*
    position (e.g. the literal ``Region`` row attribute that GROUP and
    SPLIT introduce into data rows).
    """
    name_set = set(names)

    def coerce(i: int, j: int, obj: object) -> Symbol:
        if isinstance(obj, str) and obj in name_set:
            return Name(obj)
        if i == 0 or j == 0:
            return attr_symbol(obj)
        return data_symbol(obj)

    materialized = [list(row) for row in grid]
    return Table(
        [coerce(i, j, obj) for j, obj in enumerate(row)]
        for i, row in enumerate(materialized)
    )


def database(*tables: Table) -> TabularDatabase:
    """Build a :class:`TabularDatabase` from tables."""
    return TabularDatabase(tables)
