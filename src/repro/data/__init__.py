"""Workloads: Figure 1 sales data, synthetic generators, corpus programs."""

from typing import TYPE_CHECKING

from .generators import (
    random_database,
    random_table,
    synthetic_grouped_table,
    synthetic_sales_facts,
    synthetic_sales_table,
)
from .sales import (
    BASE_FACTS,
    GRAND_TOTAL,
    PART_TOTALS,
    PARTS,
    REGION_TOTALS,
    REGIONS,
    figure4_bottom,
    figure4_top,
    figure5_result,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)

__all__ = [
    "BASE_FACTS",
    "PARTS",
    "REGIONS",
    "PART_TOTALS",
    "REGION_TOTALS",
    "GRAND_TOTAL",
    "sales_info1",
    "sales_info2",
    "sales_info3",
    "sales_info4",
    "figure4_top",
    "figure4_bottom",
    "figure5_result",
    "random_database",
    "random_table",
    "synthetic_grouped_table",
    "synthetic_sales_facts",
    "synthetic_sales_table",
    "random_case",
]

if TYPE_CHECKING:  # pragma: no cover
    from .programs import random_case


def __getattr__(name: str):
    # ``programs`` pulls in the algebra package (statements, registry),
    # which itself imports repro.data-adjacent modules during interpreter
    # setup — loading it lazily keeps ``import repro.data`` light and
    # cycle-proof for consumers that only want the figures.
    if name == "random_case":
        from .programs import random_case

        return random_case
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
