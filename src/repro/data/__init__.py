"""Workloads: the paper's Figure 1 sales data and synthetic generators."""

from .generators import (
    random_database,
    random_table,
    synthetic_grouped_table,
    synthetic_sales_facts,
    synthetic_sales_table,
)
from .sales import (
    BASE_FACTS,
    GRAND_TOTAL,
    PART_TOTALS,
    PARTS,
    REGION_TOTALS,
    REGIONS,
    figure4_bottom,
    figure4_top,
    figure5_result,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)

__all__ = [
    "BASE_FACTS",
    "PARTS",
    "REGIONS",
    "PART_TOTALS",
    "REGION_TOTALS",
    "GRAND_TOTAL",
    "sales_info1",
    "sales_info2",
    "sales_info3",
    "sales_info4",
    "figure4_top",
    "figure4_bottom",
    "figure5_result",
    "random_database",
    "random_table",
    "synthetic_grouped_table",
    "synthetic_sales_facts",
    "synthetic_sales_table",
]
