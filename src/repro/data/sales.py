"""The paper's running example: the sales data of Figure 1.

Figure 1 shows four tabular databases — ``SalesInfo1`` … ``SalesInfo4`` —
representing the same eight sales facts:

    ========  ========  ======
    Part      Region    Sold
    ========  ========  ======
    nuts      east      50
    nuts      west      60
    nuts      south     40
    screws    west      50
    screws    north     60
    screws    south     50
    bolts     east      70
    bolts     north     40
    ========  ========  ======

Each database exists in two versions, mirroring the figure's typography:

* the **bold** part — the base data only;
* the **full** version — extended with the summary data (per-part totals,
  per-region totals, and the grand total 420) printed in regular outline.

Symbol conventions match the paper: part and region occurrences are
*values* (even when they sit in attribute positions, as in ``SalesInfo3`` —
"row and column names are actually data!"), while ``Part``, ``Region``,
``Sold``, and the summary label ``Total`` are *names*.

One OCR repair: the scanned ``SalesInfo3`` north row is garbled; the
printed values are reconstructed from the base facts (north sold 60 screws
and 40 bolts, total 100), consistent with every other row and with
``SalesInfo1``.

Figures 4 and 5 reuse this data; :func:`figure4_top`, :func:`figure4_bottom`
and :func:`figure5_result` build their printed tables exactly.
"""

from __future__ import annotations

from ..core import NULL, N, Table, TabularDatabase, V, make_table

__all__ = [
    "BASE_FACTS",
    "PARTS",
    "REGIONS",
    "PART_TOTALS",
    "REGION_TOTALS",
    "GRAND_TOTAL",
    "sales_info1",
    "sales_info2",
    "sales_info3",
    "sales_info4",
    "figure4_top",
    "figure4_bottom",
    "figure5_result",
]

#: The eight base facts (part, region, sold) exactly as printed.
BASE_FACTS: tuple[tuple[str, str, int], ...] = (
    ("nuts", "east", 50),
    ("nuts", "west", 60),
    ("nuts", "south", 40),
    ("screws", "west", 50),
    ("screws", "north", 60),
    ("screws", "south", 50),
    ("bolts", "east", 70),
    ("bolts", "north", 40),
)

#: Parts in the figure's row order.
PARTS: tuple[str, ...] = ("nuts", "screws", "bolts")

#: Regions in the figure's column order.
REGIONS: tuple[str, ...] = ("east", "west", "north", "south")

#: Per-part totals, as printed in ``TotalPartSales``.
PART_TOTALS: dict[str, int] = {"nuts": 150, "screws": 160, "bolts": 110}

#: Per-region totals, as printed in ``TotalRegionSales``.
REGION_TOTALS: dict[str, int] = {"east": 120, "west": 110, "north": 100, "south": 90}

#: The grand total, as printed in ``GrandTotal``.
GRAND_TOTAL: int = 420


def _sold(part: str, region: str) -> int | None:
    """The units sold for a (part, region) pair, or None when inapplicable."""
    for p, r, s in BASE_FACTS:
        if p == part and r == region:
            return s
    return None


def sales_info1(with_summary: bool = False) -> TabularDatabase:
    """``SalesInfo1`` — the relational representation.

    The bold part is the single relation-style ``Sales(Part, Region, Sold)``
    table; with ``with_summary`` the separate summary relations
    ``TotalPartSales``, ``TotalRegionSales`` and ``GrandTotal`` are added
    (in the relational model summary data is *forced* into separate
    relations — the paper's motivating observation).
    """
    sales = make_table("Sales", ["Part", "Region", "Sold"], BASE_FACTS)
    if not with_summary:
        return TabularDatabase([sales])
    part_totals = make_table(
        "TotalPartSales", ["Part", "Total"], [(p, PART_TOTALS[p]) for p in PARTS]
    )
    region_totals = make_table(
        "TotalRegionSales", ["Region", "Total"], [(r, REGION_TOTALS[r]) for r in REGIONS]
    )
    grand = make_table("GrandTotal", ["Total"], [(GRAND_TOTAL,)])
    return TabularDatabase([sales, part_totals, region_totals, grand])


def sales_info2(with_summary: bool = False) -> TabularDatabase:
    """``SalesInfo2`` — sales organized per region.

    One table whose ``Sold`` columns repeat, one per region; the ``Region``
    data row names the region of each column.  Width is instance-dependent.
    With ``with_summary``: an extra ``Sold``/``Total`` column and a
    ``Total`` data row, exactly as printed.
    """
    regions = list(REGIONS) + (["Total"] if with_summary else [])
    header = [N("Sales"), N("Part")] + [N("Sold")] * len(regions)
    region_row = [N("Region"), NULL] + [
        N(r) if r == "Total" else V(r) for r in regions
    ]
    grid = [header, region_row]
    for part in PARTS:
        row = [NULL, V(part)]
        for region in REGIONS:
            sold = _sold(part, region)
            row.append(NULL if sold is None else V(sold))
        if with_summary:
            row.append(V(PART_TOTALS[part]))
        grid.append(row)
    if with_summary:
        total_row = [N("Total"), NULL] + [V(REGION_TOTALS[r]) for r in REGIONS]
        total_row.append(V(GRAND_TOTAL))
        grid.append(total_row)
    return TabularDatabase([Table(grid)])


def sales_info3(with_summary: bool = False) -> TabularDatabase:
    """``SalesInfo3`` — one entry per (region, part) combination.

    Row and column attribute positions hold *data* (region and part
    values).  With ``with_summary``: a ``Total`` column and ``Total`` row.
    """
    parts = list(PARTS)
    header = [N("Sales")] + [V(p) for p in parts]
    if with_summary:
        header.append(N("Total"))
    grid = [header]
    for region in REGIONS:
        row = [V(region)]
        for part in parts:
            sold = _sold(part, region)
            row.append(NULL if sold is None else V(sold))
        if with_summary:
            row.append(V(REGION_TOTALS[region]))
        grid.append(row)
    if with_summary:
        total_row = [N("Total")] + [V(PART_TOTALS[p]) for p in parts]
        total_row.append(V(GRAND_TOTAL))
        grid.append(total_row)
    return TabularDatabase([Table(grid)])


def _region_table(region: str, with_summary: bool) -> Table:
    """One ``Sales`` table of ``SalesInfo4`` for a single region."""
    region_sym = V(region)
    grid = [
        [N("Sales"), N("Part"), N("Sold")],
        [N("Region"), region_sym, region_sym],
    ]
    for part, r, sold in BASE_FACTS:
        if r == region:
            grid.append([NULL, V(part), V(sold)])
    if with_summary:
        grid.append([N("Total"), NULL, V(REGION_TOTALS[region])])
    return Table(grid)


def _total_region_table() -> Table:
    """The summary ``Sales`` table of ``SalesInfo4`` (region = ``Total``)."""
    grid = [
        [N("Sales"), N("Part"), N("Sold")],
        [N("Region"), N("Total"), N("Total")],
    ]
    for part in PARTS:
        grid.append([NULL, V(part), V(PART_TOTALS[part])])
    grid.append([N("Total"), NULL, V(GRAND_TOTAL)])
    return Table(grid)


def sales_info4(with_summary: bool = False) -> TabularDatabase:
    """``SalesInfo4`` — a separate ``Sales`` table per region.

    All tables share the name ``Sales``; their number depends on the
    instance.  With ``with_summary``: per-table ``Total`` rows plus the
    additional summary table whose region is the literal ``Total``.
    """
    tables = [_region_table(region, with_summary) for region in REGIONS]
    if with_summary:
        tables.append(_total_region_table())
    return TabularDatabase(tables)


def figure4_top() -> Table:
    """Figure 4 *top* — the relation-style ``Sales`` table (bold part of
    ``SalesInfo1`` viewed in the tabular model)."""
    return make_table("Sales", ["Part", "Region", "Sold"], BASE_FACTS)


def figure4_bottom() -> Table:
    """Figure 4 *bottom* — the printed result of
    ``Sales ← GROUP by Region on Sold (Sales)`` on :func:`figure4_top`.

    One ``Sold`` column per original data row; the original ``Region``
    column becomes the first data row (row attribute ``Region``); each
    original row contributes its ``Sold`` value under its own column.
    """
    n = len(BASE_FACTS)
    header = [N("Sales"), N("Part")] + [N("Sold")] * n
    region_row = [N("Region"), NULL] + [V(r) for (_, r, _) in BASE_FACTS]
    grid = [header, region_row]
    for i, (part, _, sold) in enumerate(BASE_FACTS):
        row = [NULL, V(part)] + [NULL] * n
        row[2 + i] = V(sold)
        grid.append(row)
    return Table(grid)


def figure5_result() -> Table:
    """Figure 5 — the printed result of
    ``Sales ← MERGE on Sold by Region (Sales)`` on the bold ``Sales`` of
    ``SalesInfo2``: twelve rows, one per (part, region), nulls included.
    """
    rows = []
    for part in PARTS:
        for region in REGIONS:
            rows.append((part, region, _sold(part, region)))
    return make_table("Sales", ["Part", "Region", "Sold"], rows)
